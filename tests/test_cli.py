"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_every_experiment():
    parser = build_parser()
    for command in ["sweep", "fig1", "fig5", "fig6", "fig7", "table1", "table3", "accuracy"]:
        args = parser.parse_args([command] if command in ("table1", "fig6") else [command, "--profile", "tiny"])
        assert callable(args.func)


def test_cli_requires_a_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_rejects_unknown_profile():
    with pytest.raises(SystemExit):
        main(["fig1", "--profile", "gigantic"])


def test_cli_table1_runs(capsys):
    assert main(["table1"]) == 0
    output = capsys.readouterr().out
    assert "Table I" in output


def test_cli_fig6_runs(capsys):
    assert main(["fig6"]) == 0
    output = capsys.readouterr().out
    assert "crossover" in output


def test_cli_sweep_exports_artifacts(tmp_path, capsys):
    assert main(["sweep", "--profile", "tiny", "--output-dir", str(tmp_path)]) == 0
    output = capsys.readouterr().out
    assert "selector slowdown vs Oracle" in output
    assert (tmp_path / "runtime.csv").exists()
    assert (tmp_path / "seer_models.h").exists()
    assert (tmp_path / "seer_models.py").exists()


def test_cli_fig1_on_tiny_profile(capsys):
    assert main(["fig1", "--profile", "tiny"]) == 0
    assert "fastest kernel per matrix" in capsys.readouterr().out


def test_parser_accepts_engine_options():
    parser = build_parser()
    args = parser.parse_args(
        ["sweep", "--profile", "tiny", "--jobs", "4", "--cache-dir", "/tmp/c"]
    )
    assert args.jobs == 4
    assert args.cache_dir == "/tmp/c"
    defaults = parser.parse_args(["sweep"])
    assert defaults.jobs is None
    assert defaults.cache_dir is None


def test_parser_accepts_scenario_profiles():
    parser = build_parser()
    for profile in ("wide", "banded"):
        args = parser.parse_args(["sweep", "--profile", profile])
        assert args.profile == profile


def test_experiment_commands_accept_engine_options():
    parser = build_parser()
    args = parser.parse_args(["fig1", "--profile", "tiny", "--jobs", "2"])
    assert args.jobs == 2


def test_cli_sweep_uses_cache_between_runs(tmp_path, capsys):
    argv = ["sweep", "--profile", "tiny", "--jobs", "2", "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "sweep-cache=miss" in cold
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "sweep-cache=hit" in warm


# ----------------------------------------------------------------------
# The experiment suite subcommand
# ----------------------------------------------------------------------
def test_parser_knows_experiments_subcommands():
    parser = build_parser()
    args = parser.parse_args(["experiments", "list"])
    assert callable(args.func)
    args = parser.parse_args(
        ["experiments", "run", "fig1", "table3", "--domain", "spmm",
         "--profile", "tiny", "--jobs", "2", "--out-dir", "/tmp/x"]
    )
    assert args.names == ["fig1", "table3"]
    assert args.domain == "spmm" and args.profile == "tiny"
    assert args.jobs == 2 and args.out_dir == "/tmp/x"
    args = parser.parse_args(["experiments", "run", "--all"])
    assert args.all and args.names == []


def test_cli_experiments_list(capsys):
    assert main(["experiments", "list"]) == 0
    output = capsys.readouterr().out
    for name in ("fig1", "fig7", "table3", "spmm_amortization"):
        assert name in output
    assert "[spmv]" in output  # fig7 is SpMV-only
    assert "[spmm]" in output  # the amortization study is SpMM-only


def test_cli_experiments_run_writes_artifacts(tmp_path, capsys):
    assert main(
        ["experiments", "run", "table1", "fig6", "--out-dir", str(tmp_path)]
    ) == 0
    output = capsys.readouterr().out
    assert "Table I" in output and "crossover" in output
    for name in ("table1", "fig6"):
        assert (tmp_path / "spmv" / name / "data.csv").exists()
        assert (tmp_path / "spmv" / name / "manifest.json").exists()


def test_cli_experiments_run_rejects_unsupported_domain():
    with pytest.raises(SystemExit, match="does not support"):
        main(["experiments", "run", "fig7", "--domain", "spmm"])


def test_cli_experiments_run_requires_names_or_all():
    with pytest.raises(SystemExit, match="--all"):
        main(["experiments", "run"])
    with pytest.raises(SystemExit, match="not both"):
        main(["experiments", "run", "fig1", "--all"])


def test_cli_experiments_run_suggests_close_matches():
    with pytest.raises(SystemExit, match="did you mean"):
        main(["experiments", "run", "fig11"])
