"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_every_experiment():
    parser = build_parser()
    for command in ["sweep", "fig1", "fig5", "fig6", "fig7", "table1", "table3", "accuracy"]:
        args = parser.parse_args([command] if command in ("table1", "fig6") else [command, "--profile", "tiny"])
        assert callable(args.func)


def test_cli_requires_a_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_rejects_unknown_profile():
    with pytest.raises(SystemExit):
        main(["fig1", "--profile", "gigantic"])


def test_cli_table1_runs(capsys):
    assert main(["table1"]) == 0
    output = capsys.readouterr().out
    assert "Table I" in output


def test_cli_fig6_runs(capsys):
    assert main(["fig6"]) == 0
    output = capsys.readouterr().out
    assert "crossover" in output


def test_cli_sweep_exports_artifacts(tmp_path, capsys):
    assert main(["sweep", "--profile", "tiny", "--output-dir", str(tmp_path)]) == 0
    output = capsys.readouterr().out
    assert "selector slowdown vs Oracle" in output
    assert (tmp_path / "runtime.csv").exists()
    assert (tmp_path / "seer_models.h").exists()
    assert (tmp_path / "seer_models.py").exists()


def test_cli_fig1_on_tiny_profile(capsys):
    assert main(["fig1", "--profile", "tiny"]) == 0
    assert "fastest kernel per matrix" in capsys.readouterr().out


def test_parser_accepts_engine_options():
    parser = build_parser()
    args = parser.parse_args(
        ["sweep", "--profile", "tiny", "--jobs", "4", "--cache-dir", "/tmp/c"]
    )
    assert args.jobs == 4
    assert args.cache_dir == "/tmp/c"
    defaults = parser.parse_args(["sweep"])
    assert defaults.jobs is None
    assert defaults.cache_dir is None


def test_parser_accepts_scenario_profiles():
    parser = build_parser()
    for profile in ("wide", "banded"):
        args = parser.parse_args(["sweep", "--profile", profile])
        assert args.profile == profile


def test_experiment_commands_accept_engine_options():
    parser = build_parser()
    args = parser.parse_args(["fig1", "--profile", "tiny", "--jobs", "2"])
    assert args.jobs == 2


def test_cli_sweep_uses_cache_between_runs(tmp_path, capsys):
    argv = ["sweep", "--profile", "tiny", "--jobs", "2", "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "sweep-cache=miss" in cold
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "sweep-cache=hit" in warm


# ----------------------------------------------------------------------
# The experiment suite subcommand
# ----------------------------------------------------------------------
def test_parser_knows_experiments_subcommands():
    parser = build_parser()
    args = parser.parse_args(["experiments", "list"])
    assert callable(args.func)
    args = parser.parse_args(
        ["experiments", "run", "fig1", "table3", "--domain", "spmm",
         "--profile", "tiny", "--jobs", "2", "--out-dir", "/tmp/x"]
    )
    assert args.names == ["fig1", "table3"]
    assert args.domain == "spmm" and args.profile == "tiny"
    assert args.jobs == 2 and args.out_dir == "/tmp/x"
    args = parser.parse_args(["experiments", "run", "--all"])
    assert args.all and args.names == []


def test_cli_experiments_list(capsys):
    assert main(["experiments", "list"]) == 0
    output = capsys.readouterr().out
    for name in ("fig1", "fig7", "table3", "spmm_amortization"):
        assert name in output
    assert "[spmv]" in output  # fig7 is SpMV-only
    assert "[spmm]" in output  # the amortization study is SpMM-only


def test_cli_experiments_run_writes_artifacts(tmp_path, capsys):
    assert main(
        ["experiments", "run", "table1", "fig6", "--out-dir", str(tmp_path)]
    ) == 0
    output = capsys.readouterr().out
    assert "Table I" in output and "crossover" in output
    for name in ("table1", "fig6"):
        assert (tmp_path / "spmv" / name / "data.csv").exists()
        assert (tmp_path / "spmv" / name / "manifest.json").exists()


def test_cli_experiments_run_rejects_unsupported_domain():
    with pytest.raises(SystemExit, match="does not support"):
        main(["experiments", "run", "fig7", "--domain", "spmm"])


def test_cli_experiments_run_requires_names_or_all():
    with pytest.raises(SystemExit, match="--all"):
        main(["experiments", "run"])
    with pytest.raises(SystemExit, match="not both"):
        main(["experiments", "run", "fig1", "--all"])


def test_cli_experiments_run_suggests_close_matches():
    with pytest.raises(SystemExit, match="did you mean"):
        main(["experiments", "run", "fig11"])


# ----------------------------------------------------------------------
# The serving verbs: train --save / predict
# ----------------------------------------------------------------------
def _train_tiny(tmp_path, capsys) -> str:
    """Run ``repro train`` into a tmp registry and return the model path."""
    assert main(
        ["train", "--profile", "tiny", "--save", str(tmp_path / "models")]
    ) == 0
    output = capsys.readouterr().out
    assert "registered model:" in output
    return output.rsplit("registered model:", 1)[1].strip()


def test_cli_train_registers_a_model(tmp_path, capsys):
    model_path = _train_tiny(tmp_path, capsys)
    assert model_path.endswith("model.json")
    parts = model_path.split("/")
    assert parts[-4:-2] == ["spmv", "tiny"]


def test_cli_predict_prints_the_model_summary(tmp_path, capsys):
    model_path = _train_tiny(tmp_path, capsys)
    assert main(["predict", "--model", model_path]) == 0
    output = capsys.readouterr().out
    assert "domain: spmv" in output
    assert "known features: rows, cols, nnz, iterations" in output
    assert "selector tree:" in output


def test_cli_predict_serves_a_feature_batch(tmp_path, capsys):
    model_path = _train_tiny(tmp_path, capsys)
    batch = tmp_path / "batch.csv"
    batch.write_text(
        "name,rows,cols,nnz,iterations,max_row_density,min_row_density,"
        "mean_row_density,var_row_density\n"
        "small,512,512,4096,1,0.05,0.001,0.015,0.0001\n"
        "large,200000,200000,2400000,19,0.4,0.0,0.00006,0.0005\n"
    )
    assert main(["predict", "--model", model_path, "--batch", str(batch)]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines[0] == "name,selector_choice,kernel"
    assert len(lines) == 3
    assert lines[1].startswith("small,")
    assert lines[2].startswith("large,")


def test_cli_predict_rejects_missing_feature_columns(tmp_path, capsys):
    model_path = _train_tiny(tmp_path, capsys)
    batch = tmp_path / "batch.csv"
    batch.write_text("rows,cols\n1,2\n")
    with pytest.raises(SystemExit, match="missing known feature column"):
        main(["predict", "--model", model_path, "--batch", str(batch)])


def test_cli_predict_rejects_non_numeric_cells(tmp_path, capsys):
    model_path = _train_tiny(tmp_path, capsys)
    batch = tmp_path / "batch.csv"
    batch.write_text("rows,cols,nnz,iterations\n10,10,banana,1\n")
    with pytest.raises(SystemExit, match="non-numeric value"):
        main(["predict", "--model", model_path, "--batch", str(batch)])


def test_cli_predict_demands_gathered_columns_when_routed(tmp_path):
    """A known-only CSV cannot serve rows the selector routes to gathered."""
    from repro.core.training import SeerModels
    from repro.ml.decision_tree import DecisionTreeClassifier
    from repro.serving.artifacts import save_models

    known_X = [[0.0], [1.0]]
    full_X = [[0.0, 0.0], [1.0, 1.0]]
    models = SeerModels(
        known_model=DecisionTreeClassifier().fit(known_X, ["k1", "k1"]),
        gathered_model=DecisionTreeClassifier().fit(full_X, ["k1", "k1"]),
        selector_model=DecisionTreeClassifier().fit(
            known_X, ["gathered", "gathered"]
        ),
        kernel_names=["k1"],
        known_feature_names=("f0",),
        gathered_feature_names=("g0",),
        training_size=2,
    )
    model_path = save_models(models, tmp_path / "model.json")
    batch = tmp_path / "batch.csv"
    batch.write_text("f0\n0.5\n")
    with pytest.raises(SystemExit, match="routed to the gathered classifier"):
        main(["predict", "--model", str(model_path), "--batch", str(batch)])


def test_cli_predict_rejects_corrupt_artifacts(tmp_path):
    bogus = tmp_path / "model.json"
    bogus.write_text("{ definitely not a model")
    with pytest.raises(SystemExit, match="not valid JSON"):
        main(["predict", "--model", str(bogus)])


# ----------------------------------------------------------------------
# Raw-matrix serving: repro serve
# ----------------------------------------------------------------------
def _write_corpus(tmp_path):
    from repro.sparse.generators import banded_matrix, power_law_matrix
    from repro.sparse.io import save_npz, write_matrix_market

    corpus = tmp_path / "corpus"
    corpus.mkdir()
    write_matrix_market(power_law_matrix(180, 180, 4.0, rng=3), corpus / "pl.mtx")
    save_npz(banded_matrix(128, 7, rng=1), corpus / "band.npz")
    return corpus


def test_cli_serve_writes_decisions(tmp_path, capsys):
    model_path = _train_tiny(tmp_path, capsys)
    corpus = _write_corpus(tmp_path)
    out_dir = tmp_path / "out"
    assert main(
        ["serve", "--model", model_path, str(corpus), "--out-dir", str(out_dir)]
    ) == 0
    output = capsys.readouterr().out
    assert "served 2 workloads" in output
    assert "wrote" in output
    decisions = (out_dir / "decisions.csv").read_text().splitlines()
    assert decisions[0].startswith("name,source,kind,rows,cols,nnz,iterations")
    assert len(decisions) == 3
    assert decisions[1].startswith("band,")
    assert decisions[2].startswith("pl,")
    assert (out_dir / "manifest.json").exists()


def test_cli_serve_parallel_output_is_bit_identical(tmp_path, capsys):
    model_path = _train_tiny(tmp_path, capsys)
    corpus = _write_corpus(tmp_path)
    serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
    cache = tmp_path / "cache"
    base = ["serve", "--model", model_path, str(corpus), "--cache-dir", str(cache)]
    assert main(base + ["--out-dir", str(serial_dir)]) == 0
    assert "cache-hits=0" in capsys.readouterr().out
    assert main(base + ["--out-dir", str(parallel_dir), "--jobs", "2"]) == 0
    assert "cache-hits=2" in capsys.readouterr().out
    for name in ("decisions.csv", "manifest.json"):
        assert (serial_dir / name).read_bytes() == (parallel_dir / name).read_bytes()


def test_cli_serve_accepts_workload_options_for_spmm(tmp_path, capsys):
    assert main(
        ["train", "--profile", "tiny", "--domain", "spmm",
         "--save", str(tmp_path / "models")]
    ) == 0
    model_path = capsys.readouterr().out.rsplit("registered model:", 1)[1].strip()
    corpus = _write_corpus(tmp_path)
    out_dir = tmp_path / "out"
    assert main(
        ["serve", "--model", model_path, str(corpus), "--out-dir", str(out_dir),
         "--workload-option", "num_vectors=16"]
    ) == 0
    header, first, *_ = (out_dir / "decisions.csv").read_text().splitlines()
    columns = header.split(",")
    assert "num_vectors" in columns
    assert first.split(",")[columns.index("num_vectors")] == "16"


def test_cli_serve_rejects_empty_corpus(tmp_path, capsys):
    model_path = _train_tiny(tmp_path, capsys)
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(SystemExit, match="no matrix files"):
        main(["serve", "--model", model_path, str(empty)])


def test_cli_serve_rejects_bad_workload_option(tmp_path, capsys):
    model_path = _train_tiny(tmp_path, capsys)
    corpus = _write_corpus(tmp_path)
    with pytest.raises(SystemExit, match="malformed"):
        main(["serve", "--model", model_path, str(corpus),
              "--workload-option", "oops"])
    with pytest.raises(SystemExit, match="workload option"):
        main(["serve", "--model", model_path, str(corpus),
              "--workload-option", "num_vectors=8"])  # spmv accepts none


def test_cli_serve_reports_malformed_matrix_files(tmp_path, capsys):
    model_path = _train_tiny(tmp_path, capsys)
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    (corpus / "broken.mtx").write_text(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1.0\n"
    )
    with pytest.raises(SystemExit, match="out of range"):
        main(["serve", "--model", model_path, str(corpus)])


def test_cli_serve_rejects_corrupt_model(tmp_path):
    bogus = tmp_path / "model.json"
    bogus.write_text("{ nope")
    with pytest.raises(SystemExit, match="not valid JSON"):
        main(["serve", "--model", str(bogus), str(tmp_path)])


def test_cli_experiments_run_accepts_model_dir(tmp_path, capsys):
    assert main(
        ["experiments", "run", "accuracy", "--profile", "tiny",
         "--model-dir", str(tmp_path / "models")]
    ) == 0
    registry_files = list((tmp_path / "models").rglob("model.json"))
    assert len(registry_files) == 1


# ----------------------------------------------------------------------
# The persistent daemon and its load generator
# ----------------------------------------------------------------------
def test_parser_accepts_daemon_flags():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--daemon", "--model", "m.json", "--host", "0.0.0.0",
         "--port", "8091", "--max-batch-size", "32", "--max-wait-ms", "2.5",
         "--log-dir", "logs"]
    )
    assert args.daemon and args.corpus is None
    assert args.port == 8091 and args.max_batch_size == 32
    assert args.max_wait_ms == 2.5 and args.log_dir == "logs"


def test_cli_daemon_requires_a_model_origin():
    with pytest.raises(SystemExit, match="daemon mode needs --model"):
        main(["serve", "--daemon"])


def test_cli_daemon_rejects_bad_config(tmp_path):
    config = tmp_path / "service.toml"
    config.write_text("[service]\nmodel = \"m.json\"\nwindow = 4\n")
    with pytest.raises(SystemExit, match=r"unknown setting\(s\) 'window'"):
        main(["serve", "--daemon", "--config", str(config)])


def test_cli_one_shot_serve_requires_a_corpus(tmp_path, capsys):
    model_path = _train_tiny(tmp_path, capsys)
    with pytest.raises(SystemExit, match="needs a corpus PATH"):
        main(["serve", "--model", model_path])


def test_cli_bench_serve_json_report(tmp_path, capsys):
    model_path = _train_tiny(tmp_path, capsys)
    assert main(
        ["bench", "serve", "--model", model_path, "--requests", "24",
         "--clients", "4", "--max-batch-size", "8", "--max-wait-ms", "2",
         "--json"]
    ) == 0
    import json

    report = json.loads(capsys.readouterr().out)
    assert report["transport"] == "inproc"
    assert report["batched"]["requests"] == 24
    assert report["batched"]["errors"] == 0
    assert report["per_request"]["batch_occupancy_mean"] == 1.0
    assert report["speedup"] > 0.0


def test_cli_bench_serve_table(tmp_path, capsys):
    model_path = _train_tiny(tmp_path, capsys)
    assert main(
        ["bench", "serve", "--model", model_path, "--requests", "8",
         "--clients", "2", "--no-compare"]
    ) == 0
    output = capsys.readouterr().out
    assert "transport: inproc" in output
    assert "batched(window=8)" in output
    assert "speedup" not in output  # --no-compare skips the baseline run


def test_cli_predict_and_daemon_share_error_strings(tmp_path, capsys):
    """Satellite contract: one formatter, byte-identical messages."""
    from repro.serving.requests import IngestError, ServeRequest, feature_vector
    from repro.serving.artifacts import load_artifact

    model_path = _train_tiny(tmp_path, capsys)
    models = load_artifact(model_path).models
    batch = tmp_path / "batch.csv"
    batch.write_text("rows,cols\n1,2\n")
    with pytest.raises(SystemExit) as cli_error:
        main(["predict", "--model", model_path, "--batch", str(batch)])
    with pytest.raises(IngestError) as api_error:
        feature_vector(
            {"rows": "1", "cols": "2"},
            models.known_feature_names,
            str(batch),
            2,
            "known",
        )
    assert str(cli_error.value) == f"repro: error: {api_error.value}"
    # The daemon rejects the same defect with the same formatter, relabelled
    # to the request that carried it.
    with pytest.raises(IngestError, match="missing known feature column 'nnz'"):
        from repro.serving.requests import evaluate_requests

        evaluate_requests(
            models,
            [ServeRequest(name="w", known={"rows": 1.0, "cols": 2.0})],
            execute=False,
        )


def test_cli_lint_clean_tree(capsys):
    assert main(["lint"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_lint_reports_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import json\nx = json.dumps({})\n", encoding="utf-8")
    assert main(["lint", "--no-baseline", str(bad)]) == 1
    output = capsys.readouterr().out
    assert "DET004" in output
    assert f"{bad}:2:" in output


def test_cli_lint_json_format_and_select(tmp_path, capsys):
    import json as json_module

    bad = tmp_path / "bad.py"
    bad.write_text(
        "import json, os\nx = json.dumps({})\ny = os.listdir('.')\n",
        encoding="utf-8",
    )
    assert main(["lint", "--format", "json", "--select", "DET004", str(bad)]) == 1
    payload = json_module.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload["findings"]] == ["DET004"]
    assert payload["rules"] == ["DET004"]


def test_cli_lint_baseline_roundtrip(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import json\nx = json.dumps({})\n", encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    assert main(
        ["lint", "--baseline", str(baseline), "--write-baseline", str(bad)]
    ) == 0
    assert main(["lint", "--baseline", str(baseline), str(bad)]) == 0
    assert "1 baselined" in capsys.readouterr().out
    assert main(
        ["lint", "--baseline", str(baseline), "--no-baseline", str(bad)]
    ) == 1


def test_cli_lint_rejects_unknown_rule_and_missing_baseline(tmp_path):
    with pytest.raises(SystemExit, match="matches no registered rule"):
        main(["lint", "--select", "NOPE"])
    with pytest.raises(SystemExit, match="no such baseline file"):
        main(["lint", "--baseline", str(tmp_path / "missing.json")])


def test_cli_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    output = capsys.readouterr().out
    for rule in ("DET001", "DET004", "CONC001", "CONC003", "DOM001", "API001"):
        assert rule in output


# ----------------------------------------------------------------------
# Selector code generation: repro codegen
# ----------------------------------------------------------------------
def _tiny_saved_model(tmp_path):
    from repro.core.training import SeerModels
    from repro.ml.decision_tree import DecisionTreeClassifier
    from repro.serving.artifacts import save_models

    known_X = [[0.0], [1.0]]
    full_X = [[0.0, 0.0], [1.0, 1.0]]
    models = SeerModels(
        known_model=DecisionTreeClassifier().fit(known_X, ["k1", "k2"]),
        gathered_model=DecisionTreeClassifier().fit(full_X, ["k1", "k2"]),
        selector_model=DecisionTreeClassifier().fit(known_X, ["known", "known"]),
        kernel_names=["k1", "k2"],
        known_feature_names=("f0",),
        gathered_feature_names=("g0",),
        training_size=2,
    )
    return models, save_models(models, tmp_path / "model.json")


def test_cli_codegen_writes_a_python_module(tmp_path, capsys):
    _, model_path = _tiny_saved_model(tmp_path)
    output = tmp_path / "selector_out.py"
    assert main(
        ["codegen", "--model", str(model_path), "--output", str(output)]
    ) == 0
    assert "wrote py selector" in capsys.readouterr().out
    assert "def known_classifier" in output.read_text()


def test_cli_codegen_install_caches_next_to_the_model(tmp_path, capsys):
    models, model_path = _tiny_saved_model(tmp_path)
    assert main(["codegen", "--model", str(model_path), "--install"]) == 0
    out = capsys.readouterr().out
    assert "installed codegen selector" in out
    selector = model_path.parent / "selector.py"
    from repro.serving.backends import render_selector_module

    assert selector.read_text(encoding="utf-8") == render_selector_module(models)


def test_cli_codegen_install_requires_python(tmp_path):
    _, model_path = _tiny_saved_model(tmp_path)
    with pytest.raises(SystemExit, match="use --language py"):
        main(
            ["codegen", "--model", str(model_path), "--language", "cpp",
             "--install"]
        )


def test_parser_accepts_backend_and_measurement_mode_flags():
    parser = build_parser()
    args = parser.parse_args(
        ["serve", "--daemon", "--model", "m.json", "--backend", "codegen",
         "--precision", "fast", "--timing-mode", "batched"]
    )
    assert args.backend == "codegen"
    assert args.precision == "fast" and args.timing_mode == "batched"
    args = parser.parse_args(["sweep", "--profile", "tiny", "--precision", "fast"])
    assert args.precision == "fast"
    with pytest.raises(SystemExit):
        parser.parse_args(["serve", "--model", "m.json", "--backend", "bogus"])
    with pytest.raises(SystemExit):
        parser.parse_args(["sweep", "--precision", "approximate"])
