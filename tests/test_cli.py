"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_every_experiment():
    parser = build_parser()
    for command in ["sweep", "fig1", "fig5", "fig6", "fig7", "table1", "table3", "accuracy"]:
        args = parser.parse_args([command] if command in ("table1", "fig6") else [command, "--profile", "tiny"])
        assert callable(args.func)


def test_cli_requires_a_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_rejects_unknown_profile():
    with pytest.raises(SystemExit):
        main(["fig1", "--profile", "gigantic"])


def test_cli_table1_runs(capsys):
    assert main(["table1"]) == 0
    output = capsys.readouterr().out
    assert "Table I" in output


def test_cli_fig6_runs(capsys):
    assert main(["fig6"]) == 0
    output = capsys.readouterr().out
    assert "crossover" in output


def test_cli_sweep_exports_artifacts(tmp_path, capsys):
    assert main(["sweep", "--profile", "tiny", "--output-dir", str(tmp_path)]) == 0
    output = capsys.readouterr().out
    assert "selector slowdown vs Oracle" in output
    assert (tmp_path / "runtime.csv").exists()
    assert (tmp_path / "seer_models.h").exists()
    assert (tmp_path / "seer_models.py").exists()


def test_cli_fig1_on_tiny_profile(capsys):
    assert main(["fig1", "--profile", "tiny"]) == 0
    assert "fastest kernel per matrix" in capsys.readouterr().out
