"""Tests for the kernel-launch timing model."""

import numpy as np
import pytest

from repro.gpu.device import MI100, SMALL_GPU
from repro.gpu.memory import memory_time_ms
from repro.gpu.occupancy import wavefront_slots
from repro.gpu.simulator import (
    GPUSimulator,
    group_reduce_max,
    group_reduce_sum,
    simulate_launch,
)


def test_launch_overhead_floor():
    result = simulate_launch(MI100, [1.0], bytes_moved=64.0)
    assert result.total_ms == pytest.approx(MI100.launch_overhead_ms, rel=1e-3)
    assert result.bound == "overhead"


def test_memory_bound_launch():
    gigabyte = 1e9
    result = simulate_launch(MI100, np.ones(1000), bytes_moved=gigabyte)
    assert result.bound == "memory"
    assert result.total_ms == pytest.approx(
        MI100.launch_overhead_ms + memory_time_ms(MI100, gigabyte), rel=1e-6
    )


def test_compute_bound_launch_uses_makespan():
    slots = wavefront_slots(MI100)
    cycles = np.full(10 * slots, 1e6)
    result = simulate_launch(MI100, cycles, bytes_moved=0.0)
    expected_cycles = cycles.sum() / slots
    assert result.compute_ms == pytest.approx(
        expected_cycles * MI100.cycle_time_ns * 1e-6, rel=1e-6
    )
    assert result.bound == "compute"


def test_single_huge_wavefront_dominates():
    cycles = np.ones(1000)
    cycles[0] = 1e9
    result = simulate_launch(MI100, cycles, bytes_moved=0.0)
    assert result.compute_ms == pytest.approx(1e9 * MI100.cycle_time_ns * 1e-6, rel=1e-6)


def test_bandwidth_utilization_scales_memory_time():
    full = simulate_launch(MI100, [1.0], bytes_moved=1e9, bandwidth_utilization=1.0)
    half = simulate_launch(MI100, [1.0], bytes_moved=1e9, bandwidth_utilization=0.5)
    assert half.memory_ms == pytest.approx(2.0 * full.memory_ms, rel=1e-9)


def test_serial_cycles_are_an_independent_roofline():
    result = simulate_launch(MI100, [1.0], bytes_moved=0.0, serial_cycles=1e9)
    assert result.total_ms == pytest.approx(
        MI100.launch_overhead_ms + 1e9 * MI100.cycle_time_ns * 1e-6, rel=1e-6
    )


def test_extra_launches_add_overhead():
    one = simulate_launch(MI100, [1.0], bytes_moved=0.0)
    two = simulate_launch(MI100, [1.0], bytes_moved=0.0, extra_launches=1)
    assert two.total_ms == pytest.approx(one.total_ms + MI100.launch_overhead_ms)


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        simulate_launch(MI100, [-1.0], bytes_moved=0.0)
    with pytest.raises(ValueError):
        simulate_launch(MI100, [1.0], bytes_moved=-5.0)
    with pytest.raises(ValueError):
        simulate_launch(MI100, [1.0], bytes_moved=0.0, serial_cycles=-1.0)


def test_empty_launch_costs_only_overhead():
    result = simulate_launch(MI100, np.array([]), bytes_moved=0.0)
    assert result.total_ms == pytest.approx(MI100.launch_overhead_ms)
    assert result.num_wavefronts == 0


def test_more_parallelism_is_never_slower():
    cycles = np.full(100_000, 200.0)
    small = simulate_launch(SMALL_GPU, cycles, bytes_moved=0.0)
    large = simulate_launch(MI100, cycles, bytes_moved=0.0)
    assert large.compute_ms < small.compute_ms


def test_gpu_simulator_accumulates_history():
    simulator = GPUSimulator(device=MI100)
    simulator.launch([10.0], bytes_moved=100.0, label="a")
    simulator.launch([10.0], bytes_moved=100.0, label="b")
    assert len(simulator.history) == 2
    assert simulator.total_time_ms() == pytest.approx(
        sum(r.total_ms for r in simulator.history)
    )
    simulator.reset()
    assert simulator.history == []


def test_group_reduce_helpers():
    values = np.array([1.0, 5.0, 2.0, 7.0, 3.0])
    np.testing.assert_allclose(group_reduce_max(values, 2), [5.0, 7.0, 3.0])
    np.testing.assert_allclose(group_reduce_sum(values, 2), [6.0, 9.0, 3.0])
    assert group_reduce_max(np.array([]), 4).size == 0
    with pytest.raises(ValueError):
        group_reduce_max(values, 0)


# ----------------------------------------------------------------------
# Serial (atomic-throughput) attribution and batched simulation
# ----------------------------------------------------------------------
def test_serial_bound_launch_reports_serial():
    # COO-style segmented reduction over millions of short rows: cheap
    # wavefronts, little traffic, but every row's carry-out funnels through
    # the global atomic unit.  The roofline must attribute the time to that
    # serial term, not mislabel it compute- or memory-bound.
    result = simulate_launch(
        MI100,
        np.full(64, 50.0),
        bytes_moved=1e5,
        serial_cycles=5e9,
        label="COO,WM",
    )
    assert result.serial_ms == pytest.approx(5e9 * MI100.cycle_time_ns * 1e-6)
    assert result.serial_ms > max(result.compute_ms, result.memory_ms)
    assert result.bound == "serial"
    assert result.total_ms == pytest.approx(
        MI100.launch_overhead_ms + result.serial_ms
    )


def test_serial_ms_recorded_even_when_not_dominant():
    result = simulate_launch(
        MI100, np.full(1000, 1e6), bytes_moved=0.0, serial_cycles=100.0
    )
    assert result.serial_ms == pytest.approx(100.0 * MI100.cycle_time_ns * 1e-6)
    assert result.bound == "compute"


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
def test_non_finite_cycles_rejected(bad):
    with pytest.raises(ValueError, match="finite"):
        simulate_launch(MI100, [1.0, bad, 2.0], bytes_moved=0.0)


@pytest.mark.parametrize("bad", [float("nan"), float("inf")])
def test_non_finite_bytes_rejected(bad):
    with pytest.raises(ValueError, match="finite"):
        simulate_launch(MI100, [1.0], bytes_moved=bad)


@pytest.mark.parametrize("bad", [float("nan"), float("inf")])
def test_non_finite_serial_cycles_rejected(bad):
    with pytest.raises(ValueError, match="finite"):
        simulate_launch(MI100, [1.0], bytes_moved=0.0, serial_cycles=bad)


def test_batch_matches_scalar_simulation():
    from repro.gpu.simulator import LaunchSpec, simulate_launch_batch, simulate_spec

    rng = np.random.default_rng(7)
    specs = [
        LaunchSpec(
            wavefront_cycles=rng.uniform(1.0, 1e6, size=rng.integers(1, 500)),
            bytes_moved=float(rng.uniform(0.0, 1e9)),
            label=f"kernel-{i}",
            occupancy_factor=float(rng.uniform(0.1, 1.0)),
            extra_launches=int(rng.integers(0, 3)),
            bandwidth_utilization=float(rng.uniform(0.5, 1.0)),
            serial_cycles=float(rng.uniform(0.0, 1e7)),
        )
        for i in range(20)
    ]
    batched = simulate_launch_batch(MI100, specs)
    for spec, launch in zip(specs, batched):
        assert launch == simulate_spec(MI100, spec)


def test_batch_rejects_any_invalid_spec():
    from repro.gpu.simulator import LaunchSpec, simulate_launch_batch

    good = LaunchSpec(wavefront_cycles=np.array([1.0]), bytes_moved=0.0)
    bad = LaunchSpec(
        wavefront_cycles=np.array([np.nan]), bytes_moved=0.0, label="broken"
    )
    with pytest.raises(ValueError, match="broken"):
        simulate_launch_batch(MI100, [good, bad])


def test_batch_of_empty_launches():
    from repro.gpu.simulator import LaunchSpec, simulate_launch_batch

    specs = [LaunchSpec(wavefront_cycles=np.array([]), bytes_moved=0.0)]
    (launch,) = simulate_launch_batch(MI100, specs)
    assert launch.total_ms == pytest.approx(MI100.launch_overhead_ms)
    assert launch.num_wavefronts == 0


def test_group_reduce_divisible_fast_path():
    values = np.array([1.0, 5.0, 2.0, 7.0, 3.0, 4.0])
    np.testing.assert_array_equal(group_reduce_max(values, 3), [5.0, 7.0])
    np.testing.assert_array_equal(group_reduce_sum(values, 3), [8.0, 14.0])
