"""Tests for device descriptions."""

import pytest

from repro.gpu.device import MI100, SMALL_GPU, get_device


def test_builtin_devices_lookup():
    assert get_device("mi100") is MI100
    assert get_device("MI100") is MI100
    assert get_device("small") is SMALL_GPU
    with pytest.raises(KeyError):
        get_device("h100")


def test_derived_quantities():
    assert MI100.lane_count == MI100.num_cus * MI100.simd_width
    assert MI100.cycle_time_ns == pytest.approx(1.0 / MI100.clock_ghz)
    assert MI100.launch_overhead_ms == pytest.approx(MI100.launch_overhead_us * 1e-3)
    assert MI100.host_transfer_ms == pytest.approx(MI100.host_transfer_us * 1e-3)


def test_mi100_resembles_the_real_part():
    # Sanity bounds: the model only needs plausible ratios, but the headline
    # characteristics should be in the right ballpark for an MI100.
    assert 100 <= MI100.num_cus <= 128
    assert MI100.simd_width == 64
    assert 800.0 <= MI100.mem_bandwidth_gb_s <= 1300.0
