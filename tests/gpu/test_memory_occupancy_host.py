"""Tests for the memory, occupancy and host cost models."""

import pytest

from repro.gpu.device import MI100
from repro.gpu.host import HOST_CALL_OVERHEAD_MS, HostModel
from repro.gpu.memory import (
    CACHED_GATHER_BYTES,
    UNCACHED_GATHER_BYTES,
    effective_bandwidth_gb_s,
    gather_bytes_per_access,
    memory_time_ms,
)
from repro.gpu.occupancy import wavefront_slots, workgroup_slots


def test_gather_bytes_depend_on_cache_fit():
    small_vector = MI100.l2_cache_bytes // 2
    huge_vector = MI100.l2_cache_bytes * 4
    assert gather_bytes_per_access(MI100, small_vector) == CACHED_GATHER_BYTES
    assert gather_bytes_per_access(MI100, huge_vector) == UNCACHED_GATHER_BYTES


def test_memory_time_scales_linearly():
    one = memory_time_ms(MI100, 1e9)
    two = memory_time_ms(MI100, 2e9)
    assert two == pytest.approx(2.0 * one)


def test_effective_bandwidth_clamps_utilization():
    assert effective_bandwidth_gb_s(MI100, 2.0) == MI100.mem_bandwidth_gb_s
    assert effective_bandwidth_gb_s(MI100, 0.5) == pytest.approx(
        0.5 * MI100.mem_bandwidth_gb_s
    )


def test_wavefront_slots():
    assert wavefront_slots(MI100) == MI100.num_cus * MI100.max_waves_per_cu
    assert wavefront_slots(MI100, 0.5) == MI100.num_cus * max(
        1, round(MI100.max_waves_per_cu * 0.5)
    )
    with pytest.raises(ValueError):
        wavefront_slots(MI100, 0.0)
    with pytest.raises(ValueError):
        wavefront_slots(MI100, 1.5)


def test_workgroup_slots():
    assert workgroup_slots(MI100, 4) == wavefront_slots(MI100) // 4
    assert workgroup_slots(MI100, 10_000) == 1
    with pytest.raises(ValueError):
        workgroup_slots(MI100, 0)


def test_host_sequential_time_grows_linearly():
    host = HostModel(MI100)
    base = host.sequential_time_ms(0)
    assert base == pytest.approx(HOST_CALL_OVERHEAD_MS)
    one = host.sequential_time_ms(1_000_000)
    two = host.sequential_time_ms(2_000_000)
    assert (two - base) == pytest.approx(2.0 * (one - base), rel=1e-9)
    with pytest.raises(ValueError):
        host.sequential_time_ms(-1)


def test_host_transfer_time():
    host = HostModel(MI100)
    small = host.transfer_time_ms(0)
    assert small == pytest.approx(MI100.host_transfer_ms)
    assert host.transfer_time_ms(16_000_000_000) > 900.0  # ~1 s at 16 GB/s
    with pytest.raises(ValueError):
        host.transfer_time_ms(-1)
