"""Differential tests: the fast fused measurement path vs. the references.

``precision="fast"`` trades the exact path's bit-identity for fused
per-device launch tables, shared prefix-sum reductions and symbolic
``repeat`` expansions.  The contract is a *documented* tolerance:
every fast-mode timing agrees with the scalar ground truth to within
:data:`~repro.gpu.simulator.FAST_MODE_RELATIVE_TOLERANCE`, while
``precision="exact"`` — the default — remains bit-identical to the scalar
loop on every input (so the golden artifacts cannot move).  Both domains
are driven through hypothesis-generated adversarial matrices.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benchmarking import check_timing_mode, measure_matrix, timing_mode_from_env
from repro.domains import get_domain
from repro.domains.spmm import SpmmWorkload
from repro.gpu.simulator import FAST_MODE_RELATIVE_TOLERANCE, check_precision
from repro.kernels.base import LaunchContext, batch_timings
from repro.sparse.generators import matrix_from_row_lengths


@st.composite
def csr_matrices(draw):
    """Small matrices with adversarial row-length mixes (empty/short/long)."""
    lengths = draw(
        st.lists(st.integers(min_value=0, max_value=24), min_size=1, max_size=50)
    )
    cols = draw(st.integers(min_value=max(lengths + [1]), max_value=96))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return matrix_from_row_lengths(np.array(lengths, dtype=np.int64), cols, rng=seed)


def _scalar_timings(kernels, workload):
    """The pre-batching ground truth: each kernel timed in isolation."""
    return {
        kernel.name: kernel.timing(workload)
        for kernel in kernels
        if kernel.supports(workload)
    }


def _relative_error(value: float, reference: float) -> float:
    if value == reference:
        return 0.0
    return abs(value - reference) / max(abs(reference), 1e-300)


def _assert_fast_within_tolerance(fast, scalar):
    assert set(fast) == set(scalar)
    for name, timing in fast.items():
        reference = scalar[name]
        # Preprocessing never goes through the launch tables: exact always.
        assert timing.preprocessing_ms == reference.preprocessing_ms
        error = _relative_error(timing.iteration_ms, reference.iteration_ms)
        assert error <= FAST_MODE_RELATIVE_TOLERANCE, (
            f"{name}: fast-mode relative error {error:.3e} exceeds the "
            f"documented tolerance {FAST_MODE_RELATIVE_TOLERANCE:.1e}"
        )
        # The symbolic repeat expansion must preserve the launch geometry.
        assert (
            timing.iteration_detail.num_wavefronts
            == reference.iteration_detail.num_wavefronts
        )


@given(csr_matrices())
@settings(max_examples=40, deadline=None)
def test_spmv_fast_timings_within_tolerance(matrix):
    kernels = get_domain("spmv").default_kernels()
    _assert_fast_within_tolerance(
        batch_timings(kernels, matrix, precision="fast"),
        _scalar_timings(kernels, matrix),
    )


@given(csr_matrices(), st.sampled_from([1, 4, 32, 128]))
@settings(max_examples=40, deadline=None)
def test_spmm_fast_timings_within_tolerance(matrix, num_vectors):
    workload = SpmmWorkload(matrix=matrix, num_vectors=num_vectors)
    kernels = get_domain("spmm").default_kernels()
    _assert_fast_within_tolerance(
        batch_timings(kernels, workload, precision="fast"),
        _scalar_timings(kernels, workload),
    )


@given(csr_matrices())
@settings(max_examples=20, deadline=None)
def test_spmv_exact_precision_stays_bit_identical(matrix):
    """``precision="exact"`` is the golden-pinned default: never a tolerance."""
    kernels = get_domain("spmv").default_kernels()
    exact = batch_timings(kernels, matrix, precision="exact")
    scalar = _scalar_timings(kernels, matrix)
    assert set(exact) == set(scalar)
    for name, timing in exact.items():
        assert timing.iteration_ms == scalar[name].iteration_ms
        assert timing.iteration_detail == scalar[name].iteration_detail


@given(csr_matrices())
@settings(max_examples=10, deadline=None)
def test_measure_matrix_fast_spmv(matrix):
    """The full measurement (features included) honors the tolerance."""
    domain = get_domain("spmv")
    kernels = domain.default_kernels()
    pipeline = domain.make_pipeline()
    fast = measure_matrix(
        "m", matrix, kernels, pipeline, domain=domain, precision="fast"
    )
    exact = measure_matrix("m", matrix, kernels, pipeline, domain=domain)
    assert set(fast.kernel_runtime_ms) == set(exact.kernel_runtime_ms)
    for name, value in fast.kernel_runtime_ms.items():
        assert (
            _relative_error(value, exact.kernel_runtime_ms[name])
            <= FAST_MODE_RELATIVE_TOLERANCE
        )
    # Features never run through the fused tables: identical in both modes.
    assert fast.known == exact.known
    assert fast.gathered == exact.gathered
    assert fast.kernel_preprocessing_ms == exact.kernel_preprocessing_ms


@given(csr_matrices(), st.sampled_from([4, 32]))
@settings(max_examples=10, deadline=None)
def test_measure_matrix_fast_spmm(matrix, num_vectors):
    domain = get_domain("spmm")
    workload = SpmmWorkload(matrix=matrix, num_vectors=num_vectors)
    kernels = domain.default_kernels()
    pipeline = domain.make_pipeline()
    fast = measure_matrix(
        "m", workload, kernels, pipeline, domain=domain, precision="fast"
    )
    exact = measure_matrix("m", workload, kernels, pipeline, domain=domain)
    assert set(fast.kernel_runtime_ms) == set(exact.kernel_runtime_ms)
    for name, value in fast.kernel_runtime_ms.items():
        assert (
            _relative_error(value, exact.kernel_runtime_ms[name])
            <= FAST_MODE_RELATIVE_TOLERANCE
        )
    assert fast.gathered == exact.gathered


# ----------------------------------------------------------------------
# Mode plumbing: explicit timing_mode / precision arguments
# ----------------------------------------------------------------------
def _measurement_fixture():
    matrix = matrix_from_row_lengths(np.array([3, 0, 17, 5]), 32, rng=11)
    domain = get_domain("spmv")
    return matrix, domain, domain.default_kernels(), domain.make_pipeline()


def test_explicit_timing_mode_matches_batched():
    matrix, domain, kernels, pipeline = _measurement_fixture()
    scalar = measure_matrix(
        "m", matrix, kernels, pipeline, domain=domain, timing_mode="scalar"
    )
    batched = measure_matrix(
        "m", matrix, kernels, pipeline, domain=domain, timing_mode="batched"
    )
    assert scalar.kernel_runtime_ms == batched.kernel_runtime_ms


def test_scalar_timing_rejects_fast_precision():
    matrix, domain, kernels, pipeline = _measurement_fixture()
    with pytest.raises(ValueError, match="ground-truth"):
        measure_matrix(
            "m",
            matrix,
            kernels,
            pipeline,
            domain=domain,
            timing_mode="scalar",
            precision="fast",
        )


def test_timing_mode_and_vectorized_are_exclusive():
    matrix, domain, kernels, pipeline = _measurement_fixture()
    with pytest.raises(ValueError, match="not both"):
        measure_matrix(
            "m",
            matrix,
            kernels,
            pipeline,
            domain=domain,
            timing_mode="batched",
            vectorized=True,
        )


def test_mode_validators():
    assert check_timing_mode("batched") == "batched"
    assert check_precision("fast") == "fast"
    with pytest.raises(ValueError):
        check_timing_mode("turbo")
    with pytest.raises(ValueError):
        check_precision("approximate")
    assert timing_mode_from_env({"SEER_SCALAR_TIMING": "1"}) == "scalar"
    assert timing_mode_from_env({}) == "batched"


def test_fast_context_governs_spec_builders():
    """An explicit fast context drives the fused builders even without the
    precision argument — the context's own mode wins."""
    matrix, domain, kernels, _ = _measurement_fixture()
    context = LaunchContext(matrix, precision="fast")
    fast = batch_timings(kernels, matrix, context=context)
    scalar = _scalar_timings(kernels, matrix)
    _assert_fast_within_tolerance(fast, scalar)
