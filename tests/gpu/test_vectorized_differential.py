"""Differential tests: batched measurement paths vs. their scalar references.

The vectorized sweep hot path (shared :class:`~repro.kernels.base.LaunchContext`
plus :func:`~repro.gpu.simulator.simulate_launch_batch`) must be *bit-identical*
to timing every kernel independently — the golden artifacts and every
downstream model depend on it.  These properties drive both domains through
hypothesis-generated matrices and compare the two paths with exact equality,
never tolerances.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benchmarking import measure_matrix
from repro.domains import get_domain
from repro.domains.spmm import SpmmWorkload, spmm_gathered_features
from repro.kernels.base import LaunchContext, batch_timings
from repro.sparse.features import gathered_features
from repro.sparse.generators import matrix_from_row_lengths


@st.composite
def csr_matrices(draw):
    """Small matrices with adversarial row-length mixes (empty/short/long)."""
    lengths = draw(
        st.lists(st.integers(min_value=0, max_value=24), min_size=1, max_size=50)
    )
    cols = draw(st.integers(min_value=max(lengths + [1]), max_value=96))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return matrix_from_row_lengths(np.array(lengths, dtype=np.int64), cols, rng=seed)


def _scalar_timings(kernels, workload):
    """The pre-batching reference: each kernel timed in isolation."""
    timings = {}
    for kernel in kernels:
        if not kernel.supports(workload):
            continue
        timings[kernel.name] = kernel.timing(workload)
    return timings


def _assert_timings_identical(batched, scalar):
    assert set(batched) == set(scalar)
    for name, timing in batched.items():
        reference = scalar[name]
        assert timing.preprocessing_ms == reference.preprocessing_ms
        assert timing.iteration_ms == reference.iteration_ms
        assert timing.iteration_detail == reference.iteration_detail


@given(csr_matrices())
@settings(max_examples=40, deadline=None)
def test_spmv_batch_timings_match_scalar(matrix):
    kernels = get_domain("spmv").default_kernels()
    _assert_timings_identical(
        batch_timings(kernels, matrix), _scalar_timings(kernels, matrix)
    )


@given(csr_matrices(), st.sampled_from([1, 4, 32, 128]))
@settings(max_examples=40, deadline=None)
def test_spmm_batch_timings_match_scalar(matrix, num_vectors):
    workload = SpmmWorkload(matrix=matrix, num_vectors=num_vectors)
    kernels = get_domain("spmm").default_kernels()
    _assert_timings_identical(
        batch_timings(kernels, workload), _scalar_timings(kernels, workload)
    )


@given(csr_matrices())
@settings(max_examples=40, deadline=None)
def test_gathered_features_with_shared_row_lengths(matrix):
    context = LaunchContext(matrix)
    assert gathered_features(matrix, row_lengths=context.row_lengths_f64) == (
        gathered_features(matrix)
    )


@given(csr_matrices(), st.sampled_from([2, 16]))
@settings(max_examples=40, deadline=None)
def test_spmm_gathered_features_with_shared_context(matrix, num_vectors):
    workload = SpmmWorkload(matrix=matrix, num_vectors=num_vectors)
    shared = spmm_gathered_features(workload, context=LaunchContext(matrix))
    assert shared == spmm_gathered_features(workload)


@given(csr_matrices())
@settings(max_examples=15, deadline=None)
def test_measure_matrix_vectorized_matches_scalar_spmv(matrix):
    domain = get_domain("spmv")
    kernels = domain.default_kernels()
    pipeline = domain.make_pipeline()
    fast = measure_matrix("m", matrix, kernels, pipeline, domain=domain, vectorized=True)
    slow = measure_matrix("m", matrix, kernels, pipeline, domain=domain, vectorized=False)
    assert fast.kernel_runtime_ms == slow.kernel_runtime_ms
    assert fast.kernel_preprocessing_ms == slow.kernel_preprocessing_ms
    assert fast.known == slow.known
    assert fast.gathered == slow.gathered
    assert fast.collection_time_ms == slow.collection_time_ms


@given(csr_matrices(), st.sampled_from([4, 32]))
@settings(max_examples=15, deadline=None)
def test_measure_matrix_vectorized_matches_scalar_spmm(matrix, num_vectors):
    domain = get_domain("spmm")
    workload = SpmmWorkload(matrix=matrix, num_vectors=num_vectors)
    kernels = domain.default_kernels()
    pipeline = domain.make_pipeline()
    fast = measure_matrix("m", workload, kernels, pipeline, domain=domain, vectorized=True)
    slow = measure_matrix("m", workload, kernels, pipeline, domain=domain, vectorized=False)
    assert fast.kernel_runtime_ms == slow.kernel_runtime_ms
    assert fast.kernel_preprocessing_ms == slow.kernel_preprocessing_ms
    assert fast.gathered == slow.gathered


def test_scalar_timing_env_switch(monkeypatch):
    """``SEER_SCALAR_TIMING=1`` forces the per-kernel loop; both agree."""
    matrix = matrix_from_row_lengths(np.array([3, 0, 17, 5]), 32, rng=11)
    domain = get_domain("spmv")
    kernels = domain.default_kernels()
    pipeline = domain.make_pipeline()
    monkeypatch.setenv("SEER_SCALAR_TIMING", "1")
    scalar = measure_matrix("m", matrix, kernels, pipeline, domain=domain)
    monkeypatch.delenv("SEER_SCALAR_TIMING")
    fast = measure_matrix("m", matrix, kernels, pipeline, domain=domain)
    assert fast.kernel_runtime_ms == scalar.kernel_runtime_ms
