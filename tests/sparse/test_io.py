"""Tests for Matrix-Market I/O."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix
from repro.sparse.generators import power_law_matrix
from repro.sparse.io import MatrixMarketError, read_matrix_market, write_matrix_market


def test_write_read_round_trip(tmp_path):
    matrix = power_law_matrix(50, 40, 4.0, rng=1)
    path = tmp_path / "matrix.mtx"
    write_matrix_market(matrix, path)
    loaded = read_matrix_market(path)
    np.testing.assert_allclose(loaded.to_dense(), matrix.to_dense())


def test_read_pattern_matrix(tmp_path):
    path = tmp_path / "pattern.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "% comment line\n"
        "3 3 2\n"
        "1 1\n"
        "3 2\n"
    )
    matrix = read_matrix_market(path)
    dense = np.zeros((3, 3))
    dense[0, 0] = 1.0
    dense[2, 1] = 1.0
    np.testing.assert_allclose(matrix.to_dense(), dense)


def test_read_symmetric_matrix_mirrors_entries(tmp_path):
    path = tmp_path / "symmetric.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 3\n"
        "1 1 2.0\n"
        "2 1 3.0\n"
        "3 2 4.0\n"
    )
    dense = read_matrix_market(path).to_dense()
    expected = np.array([[2.0, 3.0, 0.0], [3.0, 0.0, 4.0], [0.0, 4.0, 0.0]])
    np.testing.assert_allclose(dense, expected)


def test_read_skew_symmetric_matrix(tmp_path):
    path = tmp_path / "skew.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "2 2 1\n"
        "2 1 5.0\n"
    )
    dense = read_matrix_market(path).to_dense()
    np.testing.assert_allclose(dense, [[0.0, -5.0], [5.0, 0.0]])


def test_read_as_coo(tmp_path):
    matrix = power_law_matrix(20, 20, 3.0, rng=2)
    path = tmp_path / "coo.mtx"
    write_matrix_market(matrix, path)
    coo = read_matrix_market(path, as_csr=False)
    assert not isinstance(coo, CSRMatrix)
    np.testing.assert_allclose(coo.to_dense(), matrix.to_dense())


def test_bad_header_rejected(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
    with pytest.raises(MatrixMarketError):
        read_matrix_market(path)


def test_truncated_file_rejected(tmp_path):
    path = tmp_path / "short.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n"
    )
    with pytest.raises(MatrixMarketError):
        read_matrix_market(path)


def test_write_rejects_unknown_type(tmp_path):
    with pytest.raises(TypeError):
        write_matrix_market(np.eye(3), tmp_path / "dense.mtx")


# ----------------------------------------------------------------------
# Hardened error reporting
# ----------------------------------------------------------------------
def test_out_of_range_row_index_rejected(tmp_path):
    path = tmp_path / "oob_row.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n4 1 1.0\n"
    )
    with pytest.raises(MatrixMarketError, match=r"row index 4 out of range 1\.\.3"):
        read_matrix_market(path)


def test_out_of_range_column_index_rejected(tmp_path):
    path = tmp_path / "oob_col.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n2 5 2.0\n"
    )
    with pytest.raises(MatrixMarketError, match=r"column index 5 out of range"):
        read_matrix_market(path)


def test_zero_based_index_rejected(tmp_path):
    path = tmp_path / "zero.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n0 1 1.0\n"
    )
    with pytest.raises(MatrixMarketError, match="out of range"):
        read_matrix_market(path)


def test_duplicate_coordinates_rejected(tmp_path):
    path = tmp_path / "dup.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 3\n1 1 1.0\n2 3 2.0\n1 1 5.0\n"
    )
    with pytest.raises(MatrixMarketError, match=r"duplicate entry .*\(1, 1\)"):
        read_matrix_market(path)


def test_malformed_entry_line_rejected(tmp_path):
    path = tmp_path / "bad_entry.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 one 1.0\n"
    )
    with pytest.raises(MatrixMarketError, match="bad entry line"):
        read_matrix_market(path)


def test_entry_line_missing_value_rejected(tmp_path):
    path = tmp_path / "short_entry.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n"
    )
    with pytest.raises(MatrixMarketError, match="bad entry line"):
        read_matrix_market(path)


def test_gzip_round_trip(tmp_path):
    import gzip

    matrix = power_law_matrix(30, 25, 3.0, rng=4)
    plain = tmp_path / "m.mtx"
    write_matrix_market(matrix, plain)
    compressed = tmp_path / "m.mtx.gz"
    compressed.write_bytes(gzip.compress(plain.read_bytes()))
    loaded = read_matrix_market(compressed)
    np.testing.assert_allclose(loaded.to_dense(), matrix.to_dense())


def test_corrupt_gzip_rejected(tmp_path):
    path = tmp_path / "junk.mtx.gz"
    path.write_bytes(b"\x1f\x8b but definitely not gzip data")
    with pytest.raises(MatrixMarketError, match="unreadable"):
        read_matrix_market(path)


def test_corrupt_deflate_body_rejected(tmp_path):
    """Bit-flipped gzip bodies (bad downloads) always fail cleanly.

    Depending on where the corruption lands, decompression raises
    ``zlib.error`` / CRC errors, or the stream decodes into garbage text
    that fails entry parsing — every outcome must be a ``MatrixMarketError``
    (never a raw traceback), which is the hardening contract ``repro
    serve`` relies on.
    """
    import gzip

    matrix = power_law_matrix(40, 40, 4.0, rng=5)
    plain = tmp_path / "m.mtx"
    write_matrix_market(matrix, plain)
    compressed = gzip.compress(plain.read_bytes())
    for index, fraction in enumerate((0.3, 0.5, 0.7, 0.9, 0.99)):
        data = bytearray(compressed)
        offset = int(len(data) * fraction)
        for position in range(offset, min(offset + 8, len(data))):
            data[position] ^= 0xFF
        path = tmp_path / f"flipped{index}.mtx.gz"
        path.write_bytes(bytes(data))
        with pytest.raises(MatrixMarketError):
            read_matrix_market(path)


def test_uppercase_gz_suffix_decompresses(tmp_path):
    import gzip

    matrix = power_law_matrix(20, 20, 3.0, rng=6)
    plain = tmp_path / "m.mtx"
    write_matrix_market(matrix, plain)
    upper = tmp_path / "M.MTX.GZ"
    upper.write_bytes(gzip.compress(plain.read_bytes()))
    np.testing.assert_allclose(read_matrix_market(upper).to_dense(), matrix.to_dense())


def test_symmetric_file_storing_both_triangles_rejected(tmp_path):
    """Both triangles present would silently double off-diagonal values."""
    path = tmp_path / "both.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "2 2 2\n2 1 5.0\n1 2 5.0\n"
    )
    with pytest.raises(MatrixMarketError, match="both triangles"):
        read_matrix_market(path)


# ----------------------------------------------------------------------
# CSR .npz round trip (the ingest-cache layout)
# ----------------------------------------------------------------------
def test_save_load_npz_round_trip(tmp_path):
    from repro.sparse.io import load_npz, save_npz

    matrix = power_law_matrix(60, 45, 4.0, rng=6)
    path = tmp_path / "m.npz"
    save_npz(matrix, path)
    loaded = load_npz(path)
    np.testing.assert_array_equal(loaded.row_offsets, matrix.row_offsets)
    np.testing.assert_array_equal(loaded.col_indices, matrix.col_indices)
    np.testing.assert_array_equal(loaded.values, matrix.values)
    assert loaded.shape == matrix.shape


def test_npz_matches_engine_matrix_artifacts(tmp_path):
    """One .npz reader serves both the engine tier and the ingest cache."""
    from repro.bench.engine import matrix_to_bytes
    from repro.sparse.io import load_npz

    matrix = power_law_matrix(20, 20, 3.0, rng=8)
    path = tmp_path / "artifact.npz"
    path.write_bytes(matrix_to_bytes(matrix))
    loaded = load_npz(path)
    np.testing.assert_array_equal(loaded.values, matrix.values)


def test_load_npz_clear_errors(tmp_path):
    from repro.sparse.coo import SparseFormatError
    from repro.sparse.io import load_npz

    with pytest.raises(SparseFormatError, match="absent.npz"):
        load_npz(tmp_path / "absent.npz")
    corrupt = tmp_path / "corrupt.npz"
    corrupt.write_bytes(b"not an archive")
    with pytest.raises(SparseFormatError, match="corrupt.npz"):
        load_npz(corrupt)
