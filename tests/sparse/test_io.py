"""Tests for Matrix-Market I/O."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix
from repro.sparse.generators import power_law_matrix
from repro.sparse.io import MatrixMarketError, read_matrix_market, write_matrix_market


def test_write_read_round_trip(tmp_path):
    matrix = power_law_matrix(50, 40, 4.0, rng=1)
    path = tmp_path / "matrix.mtx"
    write_matrix_market(matrix, path)
    loaded = read_matrix_market(path)
    np.testing.assert_allclose(loaded.to_dense(), matrix.to_dense())


def test_read_pattern_matrix(tmp_path):
    path = tmp_path / "pattern.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "% comment line\n"
        "3 3 2\n"
        "1 1\n"
        "3 2\n"
    )
    matrix = read_matrix_market(path)
    dense = np.zeros((3, 3))
    dense[0, 0] = 1.0
    dense[2, 1] = 1.0
    np.testing.assert_allclose(matrix.to_dense(), dense)


def test_read_symmetric_matrix_mirrors_entries(tmp_path):
    path = tmp_path / "symmetric.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 3\n"
        "1 1 2.0\n"
        "2 1 3.0\n"
        "3 2 4.0\n"
    )
    dense = read_matrix_market(path).to_dense()
    expected = np.array([[2.0, 3.0, 0.0], [3.0, 0.0, 4.0], [0.0, 4.0, 0.0]])
    np.testing.assert_allclose(dense, expected)


def test_read_skew_symmetric_matrix(tmp_path):
    path = tmp_path / "skew.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "2 2 1\n"
        "2 1 5.0\n"
    )
    dense = read_matrix_market(path).to_dense()
    np.testing.assert_allclose(dense, [[0.0, -5.0], [5.0, 0.0]])


def test_read_as_coo(tmp_path):
    matrix = power_law_matrix(20, 20, 3.0, rng=2)
    path = tmp_path / "coo.mtx"
    write_matrix_market(matrix, path)
    coo = read_matrix_market(path, as_csr=False)
    assert not isinstance(coo, CSRMatrix)
    np.testing.assert_allclose(coo.to_dense(), matrix.to_dense())


def test_bad_header_rejected(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
    with pytest.raises(MatrixMarketError):
        read_matrix_market(path)


def test_truncated_file_rejected(tmp_path):
    path = tmp_path / "short.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n"
    )
    with pytest.raises(MatrixMarketError):
        read_matrix_market(path)


def test_write_rejects_unknown_type(tmp_path):
    with pytest.raises(TypeError):
        write_matrix_market(np.eye(3), tmp_path / "dense.mtx")
