"""Tests for the COO format."""

import numpy as np
import pytest

from repro.sparse.coo import COOMatrix, SparseFormatError


def _example():
    dense = np.array(
        [
            [1.0, 0.0, 2.0],
            [0.0, 0.0, 0.0],
            [3.0, 4.0, 0.0],
            [0.0, 0.0, 5.0],
        ]
    )
    return dense, COOMatrix.from_dense(dense)


def test_from_dense_round_trip():
    dense, coo = _example()
    assert coo.shape == (4, 3)
    assert coo.nnz == 5
    np.testing.assert_allclose(coo.to_dense(), dense)


def test_spmv_matches_dense():
    dense, coo = _example()
    x = np.array([1.0, 2.0, 3.0])
    np.testing.assert_allclose(coo.spmv(x), dense @ x)


def test_spmv_rejects_wrong_vector_shape():
    _, coo = _example()
    with pytest.raises(ValueError):
        coo.spmv(np.ones(5))


def test_row_lengths_counts_entries_per_row():
    _, coo = _example()
    np.testing.assert_array_equal(coo.row_lengths(), [2, 0, 2, 1])


def test_sorted_by_row_orders_entries():
    coo = COOMatrix(
        num_rows=3,
        num_cols=3,
        rows=[2, 0, 1, 0],
        cols=[1, 2, 0, 0],
        values=[1.0, 2.0, 3.0, 4.0],
    )
    ordered = coo.sorted_by_row()
    assert list(ordered.rows) == [0, 0, 1, 2]
    assert list(ordered.cols) == [0, 2, 0, 1]


def test_deduplicated_sums_duplicates():
    coo = COOMatrix(
        num_rows=2,
        num_cols=2,
        rows=[0, 0, 1],
        cols=[1, 1, 0],
        values=[1.5, 2.5, 1.0],
    )
    deduped = coo.deduplicated()
    assert deduped.nnz == 2
    np.testing.assert_allclose(deduped.to_dense(), [[0.0, 4.0], [1.0, 0.0]])


def test_out_of_bounds_indices_rejected():
    with pytest.raises(SparseFormatError):
        COOMatrix(num_rows=2, num_cols=2, rows=[0, 2], cols=[0, 1], values=[1.0, 1.0])
    with pytest.raises(SparseFormatError):
        COOMatrix(num_rows=2, num_cols=2, rows=[0, 1], cols=[0, -1], values=[1.0, 1.0])


def test_mismatched_array_lengths_rejected():
    with pytest.raises(SparseFormatError):
        COOMatrix(num_rows=2, num_cols=2, rows=[0], cols=[0, 1], values=[1.0, 1.0])


def test_empty_matrix_is_valid():
    coo = COOMatrix(num_rows=3, num_cols=4, rows=[], cols=[], values=[])
    assert coo.nnz == 0
    np.testing.assert_allclose(coo.spmv(np.ones(4)), np.zeros(3))
