"""Tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.sparse import generators as gen


def test_regular_matrix_has_uniform_rows():
    matrix = gen.regular_matrix(100, 120, 6, rng=1)
    assert matrix.shape == (100, 120)
    assert set(matrix.row_lengths().tolist()) == {6}


def test_diagonal_matrix_structure():
    matrix = gen.diagonal_matrix(50, rng=2)
    assert matrix.nnz == 50
    np.testing.assert_array_equal(matrix.col_indices, np.arange(50))


def test_banded_matrix_band_structure():
    matrix = gen.banded_matrix(100, 7, rng=3)
    rows = np.repeat(np.arange(100), matrix.row_lengths())
    assert np.all(np.abs(matrix.col_indices - rows) <= 3)
    # interior rows have the full bandwidth
    assert matrix.row_lengths()[50] == 7


def test_power_law_matrix_has_heavy_tail():
    matrix = gen.power_law_matrix(2000, 2000, 8.0, exponent=1.9, rng=4)
    lengths = matrix.row_lengths()
    assert lengths.max() > 4 * lengths.mean()
    assert abs(lengths.mean() - 8.0) / 8.0 < 0.5


def test_power_law_matrix_respects_row_cap():
    matrix = gen.power_law_matrix(2000, 2000, 8.0, exponent=1.8, rng=5, max_row_length=32)
    assert matrix.row_lengths().max() <= 32


def test_skewed_matrix_has_requested_heavy_rows():
    matrix = gen.skewed_matrix(500, 500, 3, heavy_rows=5, heavy_row_length=200, rng=6)
    lengths = matrix.row_lengths()
    assert np.count_nonzero(lengths == 200) == 5
    assert np.count_nonzero(lengths == 3) == 495


def test_uniform_random_matrix_density():
    matrix = gen.uniform_random_matrix(500, 400, 0.02, rng=7)
    expected = 500 * 400 * 0.02
    assert abs(matrix.nnz - expected) / expected < 0.25


def test_block_diagonal_matrix_blocks():
    matrix = gen.block_diagonal_matrix(4, 8, rng=8)
    assert matrix.shape == (32, 32)
    assert set(matrix.row_lengths().tolist()) == {8}
    # every entry stays within its block
    rows = np.repeat(np.arange(32), matrix.row_lengths())
    assert np.all((matrix.col_indices // 8) == (rows // 8))


def test_variable_block_matrix_covers_all_rows():
    matrix = gen.variable_block_matrix(301, 4, 24, rng=9)
    assert matrix.num_rows == 301
    lengths = matrix.row_lengths()
    assert lengths.min() >= 1
    assert lengths.max() <= 24
    assert len(set(lengths.tolist())) > 1


def test_variable_block_matrix_rejects_bad_bounds():
    with pytest.raises(ValueError):
        gen.variable_block_matrix(10, 5, 2, rng=0)


def test_empty_row_heavy_matrix_fraction():
    matrix = gen.empty_row_heavy_matrix(400, 400, 0.5, 10, rng=10)
    lengths = matrix.row_lengths()
    assert np.count_nonzero(lengths == 0) == 200
    assert np.count_nonzero(lengths == 10) == 200


def test_road_network_matrix_degree_range():
    matrix = gen.road_network_matrix(1000, rng=11)
    lengths = matrix.row_lengths()
    assert lengths.min() >= 1
    assert lengths.max() <= 4
    assert matrix.num_cols == 1000


def test_matrix_from_row_lengths_clamps_to_columns():
    matrix = gen.matrix_from_row_lengths(np.array([10, 2]), num_cols=4, rng=12)
    assert matrix.row_lengths().tolist() == [4, 2]


def test_generators_are_deterministic_given_seed():
    a = gen.power_law_matrix(200, 200, 5.0, rng=42)
    b = gen.power_law_matrix(200, 200, 5.0, rng=42)
    np.testing.assert_array_equal(a.col_indices, b.col_indices)
    np.testing.assert_allclose(a.values, b.values)


def test_columns_unique_within_rows(small_matrices):
    for name, matrix in small_matrices.items():
        for row in range(matrix.num_rows):
            cols, _ = matrix.row_slice(row)
            assert len(set(cols.tolist())) == len(cols), f"family {name}, row {row}"


def test_stencil_matrix_interior_rows_have_full_neighbourhood():
    width = 32  # round(sqrt(1024))
    centre = (width // 2) * width + width // 2
    for points in (5, 9):
        matrix = gen.stencil_matrix(1024, points=points, rng=11)
        assert matrix.shape == (1024, 1024)
        lengths = matrix.row_lengths()
        assert lengths[centre] == points
        assert lengths.max() == points
        # boundary rows lose the neighbours that fall off the grid
        assert lengths[0] < points
        # a left-edge point has no left neighbour: the neighbourhood must
        # not wrap around to the previous grid row's right edge
        left_edge = (width // 2) * width
        assert lengths[left_edge] < points


def test_stencil_matrix_neighbours_stay_within_the_grid_neighbourhood():
    width = 32
    matrix = gen.stencil_matrix(1024, points=9, rng=14)
    for row in (0, 31, 32, 495, 496, 527, 1023):
        start, stop = matrix.row_offsets[row], matrix.row_offsets[row + 1]
        for col in matrix.col_indices[start:stop]:
            assert abs(col // width - row // width) <= 1
            assert abs(col % width - row % width) <= 1


def test_stencil_matrix_columns_sorted_and_unique_per_row():
    matrix = gen.stencil_matrix(400, points=9, rng=12)
    for row in range(matrix.num_rows):
        start, stop = matrix.row_offsets[row], matrix.row_offsets[row + 1]
        cols = matrix.col_indices[start:stop]
        assert np.all(np.diff(cols) > 0)


def test_stencil_matrix_rejects_unknown_neighbourhood():
    with pytest.raises(ValueError):
        gen.stencil_matrix(100, points=7)


def test_stencil_matrix_tiny_grid_stays_valid():
    matrix = gen.stencil_matrix(4, points=9, rng=13)
    for row in range(matrix.num_rows):
        start, stop = matrix.row_offsets[row], matrix.row_offsets[row + 1]
        cols = matrix.col_indices[start:stop]
        assert np.all(np.diff(cols) > 0)
        assert np.all((cols >= 0) & (cols < 4))
