"""Tests for the synthetic SuiteSparse-like collection."""

import numpy as np
import pytest

from repro.sparse.collection import (
    ARCHETYPE_BUILDERS,
    CollectionProfile,
    archetype,
    build_collection,
    collection_specs,
    iter_collection,
)


def test_profile_lookup_and_validation():
    profile = CollectionProfile.from_name("tiny")
    assert profile.sizes
    with pytest.raises(ValueError):
        CollectionProfile.from_name("enormous")


def test_collection_specs_have_unique_names():
    specs = collection_specs("small")
    names = [spec.name for spec in specs]
    assert len(names) == len(set(names))


def test_build_collection_tiny_profile():
    collection = build_collection("tiny")
    assert len(collection) == len(collection_specs("tiny"))
    assert len(collection.families()) >= 8
    # names resolve back to records
    first = collection.records[0]
    assert collection.get(first.name) is first
    with pytest.raises(KeyError):
        collection.get("no_such_matrix")


def test_iter_collection_matches_build_collection():
    streamed = {record.name: record.matrix.nnz for record in iter_collection("tiny")}
    built = {record.name: record.matrix.nnz for record in build_collection("tiny")}
    assert streamed == built


def test_collection_is_reproducible():
    first = build_collection("tiny", base_seed=3)
    second = build_collection("tiny", base_seed=3)
    for a, b in zip(first, second):
        assert a.name == b.name
        np.testing.assert_array_equal(a.matrix.row_offsets, b.matrix.row_offsets)
        np.testing.assert_allclose(a.matrix.values, b.matrix.values)


def test_collection_changes_with_seed():
    first = build_collection("tiny", base_seed=3)
    second = build_collection("tiny", base_seed=4)
    different = any(
        a.matrix.nnz != b.matrix.nnz
        or not np.array_equal(a.matrix.col_indices, b.matrix.col_indices)
        for a, b in zip(first, second)
    )
    assert different


def test_collection_covers_diverse_structures():
    collection = build_collection("tiny")
    variances = {}
    for record in collection:
        lengths = record.matrix.row_lengths()
        variances[record.family] = float(lengths.var())
    # at least one essentially uniform family and one strongly irregular one
    assert min(variances.values()) == pytest.approx(0.0)
    assert max(variances.values()) > 10.0


@pytest.mark.parametrize("name", sorted(ARCHETYPE_BUILDERS))
def test_archetypes_build_at_small_scale(name):
    record = archetype(name, scale=64)
    assert record.matrix.nnz > 0
    assert record.name == name


def test_archetype_unknown_name():
    with pytest.raises(KeyError):
        archetype("not_a_matrix")


def test_archetype_structures_match_their_stories():
    uniform = archetype("G3_Circuit_like", scale=64).matrix
    assert uniform.row_lengths().var() == pytest.approx(0.0)
    skewed = archetype("matrix_new_3_like", scale=256).matrix
    assert skewed.row_lengths().max() > 10 * skewed.row_lengths().mean()


def test_classic_profiles_exclude_scenario_families():
    for profile in ("tiny", "small", "medium", "full"):
        families = {spec.family for spec in collection_specs(profile)}
        assert "wide_hub" not in families
        assert "stencil" not in families


def test_wide_profile_is_power_law_heavy():
    profile = CollectionProfile.from_name("wide")
    specs = collection_specs("wide")
    assert {spec.family for spec in specs} == set(profile.families)
    assert "wide_hub" in profile.families
    assert "banded" not in profile.families
    # every (size, variant) point yields one spec per family
    assert len(specs) == len(profile.sizes) * profile.variants * len(profile.families)


def test_banded_profile_is_stencil_heavy():
    profile = CollectionProfile.from_name("banded")
    specs = collection_specs("banded")
    assert "stencil" in profile.families
    assert "power_law" not in profile.families
    names = [spec.name for spec in specs]
    assert len(names) == len(set(names))


def test_wide_hub_matrices_are_wider_than_tall():
    spec = next(
        spec for spec in collection_specs("wide") if spec.family == "wide_hub"
    )
    matrix = spec.build()
    assert matrix.num_cols == 4 * matrix.num_rows


def test_scenario_profiles_build_and_stay_reproducible():
    for profile in ("wide", "banded"):
        specs = [s for s in collection_specs(profile) if s.params[0][1] <= 1024]
        assert specs, "expected small grid points in the profile"
        for spec in specs:
            first = spec.build()
            second = spec.build()
            assert first.nnz > 0
            np.testing.assert_array_equal(first.col_indices, second.col_indices)
