"""Tests for known/gathered feature computation."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix
from repro.sparse.features import (
    ALL_FEATURE_NAMES,
    GATHERED_FEATURE_NAMES,
    KNOWN_FEATURE_NAMES,
    GatheredFeatures,
    KnownFeatures,
    feature_vector,
    gathered_features,
    known_features,
)
from repro.sparse.generators import regular_matrix, skewed_matrix


def test_known_features_match_matrix_metadata():
    matrix = regular_matrix(128, 96, 4, rng=1)
    known = known_features(matrix, iterations=7)
    assert known.rows == 128
    assert known.cols == 96
    assert known.nnz == matrix.nnz
    assert known.iterations == 7


def test_known_feature_vector_order_matches_names():
    known = KnownFeatures(rows=3, cols=4, nnz=5, iterations=2)
    vector = known.as_vector()
    assert vector.shape == (len(KNOWN_FEATURE_NAMES),)
    assert list(vector) == [3.0, 4.0, 5.0, 2.0]
    assert known.as_dict() == {"rows": 3, "cols": 4, "nnz": 5, "iterations": 2}


def test_with_iterations_returns_new_object():
    known = KnownFeatures(rows=3, cols=4, nnz=5)
    other = known.with_iterations(19)
    assert known.iterations == 1
    assert other.iterations == 19
    assert other.rows == known.rows


def test_gathered_features_of_uniform_matrix():
    matrix = regular_matrix(64, 128, 8, rng=2)
    gathered = gathered_features(matrix)
    expected_density = 8 / 128
    assert gathered.max_row_density == pytest.approx(expected_density)
    assert gathered.min_row_density == pytest.approx(expected_density)
    assert gathered.mean_row_density == pytest.approx(expected_density)
    assert gathered.var_row_density == pytest.approx(0.0)


def test_gathered_features_of_skewed_matrix_have_variance():
    matrix = skewed_matrix(256, 256, 2, 4, 200, rng=3)
    gathered = gathered_features(matrix)
    assert gathered.max_row_density > gathered.mean_row_density
    assert gathered.var_row_density > 0.0
    assert gathered.min_row_density <= gathered.mean_row_density


def test_gathered_features_match_manual_computation():
    matrix = skewed_matrix(100, 50, 3, 2, 40, rng=4)
    densities = matrix.row_lengths() / 50.0
    gathered = gathered_features(matrix)
    assert gathered.max_row_density == pytest.approx(densities.max())
    assert gathered.min_row_density == pytest.approx(densities.min())
    assert gathered.mean_row_density == pytest.approx(densities.mean())
    assert gathered.var_row_density == pytest.approx(densities.var())


def test_gathered_features_of_degenerate_matrix_are_zero():
    empty = CSRMatrix(
        num_rows=0,
        num_cols=0,
        row_offsets=np.zeros(1, dtype=np.int64),
        col_indices=np.array([], dtype=np.int64),
        values=np.array([]),
    )
    gathered = gathered_features(empty)
    assert gathered.as_vector().tolist() == [0.0, 0.0, 0.0, 0.0]


def test_with_collection_time_preserves_values():
    gathered = GatheredFeatures(0.5, 0.1, 0.2, 0.05)
    timed = gathered.with_collection_time(1.25)
    assert timed.collection_time_ms == pytest.approx(1.25)
    assert timed.as_vector().tolist() == gathered.as_vector().tolist()
    # collection time does not participate in equality
    assert timed == gathered


def test_feature_vector_concatenates_known_and_gathered():
    known = KnownFeatures(rows=3, cols=4, nnz=5, iterations=1)
    gathered = GatheredFeatures(0.5, 0.1, 0.2, 0.05)
    full = feature_vector(known, gathered)
    assert full.shape == (len(ALL_FEATURE_NAMES),)
    assert list(full[:4]) == list(known.as_vector())
    assert list(full[4:]) == list(gathered.as_vector())
    assert ALL_FEATURE_NAMES == KNOWN_FEATURE_NAMES + GATHERED_FEATURE_NAMES
