"""Tests for the ELL format."""

import numpy as np
import pytest

from repro.sparse.coo import SparseFormatError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import PADDING_COLUMN, ELLMatrix
from repro.sparse.generators import regular_matrix, skewed_matrix


def test_from_csr_round_trip():
    dense = np.array(
        [
            [1.0, 0.0, 2.0, 0.0],
            [0.0, 3.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0],
            [4.0, 5.0, 6.0, 0.0],
        ]
    )
    csr = CSRMatrix.from_dense(dense)
    ell = ELLMatrix.from_csr(csr)
    assert ell.max_row_length == 3
    assert ell.nnz == csr.nnz
    np.testing.assert_allclose(ell.to_dense(), dense)
    np.testing.assert_allclose(ell.to_csr().to_dense(), dense)


def test_spmv_matches_csr():
    csr = regular_matrix(64, 64, 5, rng=1)
    ell = ELLMatrix.from_csr(csr)
    x = np.random.default_rng(0).uniform(-1, 1, 64)
    np.testing.assert_allclose(ell.spmv(x), csr.spmv(x), rtol=1e-12)


def test_padding_slots_marked():
    dense = np.array([[1.0, 2.0], [3.0, 0.0]])
    ell = ELLMatrix.from_csr(CSRMatrix.from_dense(dense))
    assert ell.col_indices[1, 1] == PADDING_COLUMN
    assert ell.values[1, 1] == 0.0


def test_padding_ratio_uniform_matrix_is_one():
    csr = regular_matrix(32, 32, 4, rng=2)
    ell = ELLMatrix.from_csr(csr)
    assert ell.padding_ratio == pytest.approx(1.0)


def test_padding_ratio_skewed_matrix_is_large():
    csr = skewed_matrix(200, 200, 2, 2, 150, rng=3)
    ell = ELLMatrix.from_csr(csr, max_padding_ratio=float("inf"))
    assert ell.padding_ratio > 10.0


def test_conversion_refused_when_padding_excessive():
    csr = skewed_matrix(400, 400, 1, 1, 400, rng=4)
    with pytest.raises(SparseFormatError):
        ELLMatrix.from_csr(csr, max_padding_ratio=2.0)


def test_empty_matrix_conversion():
    csr = CSRMatrix(
        num_rows=3,
        num_cols=3,
        row_offsets=np.zeros(4, dtype=np.int64),
        col_indices=np.array([], dtype=np.int64),
        values=np.array([]),
    )
    ell = ELLMatrix.from_csr(csr)
    assert ell.max_row_length == 0
    np.testing.assert_allclose(ell.spmv(np.ones(3)), np.zeros(3))
