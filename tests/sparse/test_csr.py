"""Tests for the CSR format."""

import numpy as np
import pytest

from repro.sparse.coo import SparseFormatError
from repro.sparse.csr import CSRMatrix


def _dense_example():
    return np.array(
        [
            [0.0, 1.0, 0.0, 2.0],
            [0.0, 0.0, 0.0, 0.0],
            [3.0, 0.0, 4.0, 0.0],
            [0.0, 5.0, 6.0, 7.0],
            [0.0, 0.0, 0.0, 0.0],
        ]
    )


def test_dense_round_trip():
    dense = _dense_example()
    csr = CSRMatrix.from_dense(dense)
    assert csr.shape == dense.shape
    assert csr.nnz == 7
    np.testing.assert_allclose(csr.to_dense(), dense)


def test_coo_round_trip_preserves_values():
    dense = _dense_example()
    csr = CSRMatrix.from_dense(dense)
    back = CSRMatrix.from_coo(csr.to_coo())
    np.testing.assert_allclose(back.to_dense(), dense)


def test_spmv_matches_dense_product():
    dense = _dense_example()
    csr = CSRMatrix.from_dense(dense)
    x = np.array([1.0, -1.0, 2.0, 0.5])
    np.testing.assert_allclose(csr.spmv(x), dense @ x)


def test_spmv_handles_empty_rows_and_trailing_empty_rows():
    dense = np.zeros((4, 3))
    dense[1, 2] = 5.0
    csr = CSRMatrix.from_dense(dense)
    result = csr.spmv(np.array([1.0, 1.0, 2.0]))
    np.testing.assert_allclose(result, [0.0, 10.0, 0.0, 0.0])


def test_spmv_empty_matrix():
    csr = CSRMatrix(
        num_rows=3,
        num_cols=3,
        row_offsets=np.zeros(4, dtype=np.int64),
        col_indices=np.array([], dtype=np.int64),
        values=np.array([]),
    )
    np.testing.assert_allclose(csr.spmv(np.ones(3)), np.zeros(3))


def test_row_lengths_and_row_slice():
    csr = CSRMatrix.from_dense(_dense_example())
    np.testing.assert_array_equal(csr.row_lengths(), [2, 0, 2, 3, 0])
    cols, values = csr.row_slice(3)
    np.testing.assert_array_equal(cols, [1, 2, 3])
    np.testing.assert_allclose(values, [5.0, 6.0, 7.0])


def test_transpose_matches_dense_transpose():
    dense = _dense_example()
    csr = CSRMatrix.from_dense(dense)
    np.testing.assert_allclose(csr.transpose().to_dense(), dense.T)


def test_from_row_lengths_produces_requested_structure():
    rng = np.random.default_rng(3)
    lengths = np.array([0, 3, 1, 5, 2])
    csr = CSRMatrix.from_row_lengths(lengths, num_cols=16, rng=rng)
    np.testing.assert_array_equal(csr.row_lengths(), lengths)
    # Columns within each row are unique.
    for row in range(csr.num_rows):
        cols, _ = csr.row_slice(row)
        assert len(set(cols.tolist())) == len(cols)


def test_validation_rejects_bad_offsets():
    with pytest.raises(SparseFormatError):
        CSRMatrix(
            num_rows=2,
            num_cols=2,
            row_offsets=np.array([0, 2]),  # wrong length
            col_indices=np.array([0, 1]),
            values=np.array([1.0, 2.0]),
        )
    with pytest.raises(SparseFormatError):
        CSRMatrix(
            num_rows=2,
            num_cols=2,
            row_offsets=np.array([0, 2, 1]),  # decreasing
            col_indices=np.array([0, 1]),
            values=np.array([1.0, 2.0]),
        )


def test_validation_rejects_out_of_range_columns():
    with pytest.raises(SparseFormatError):
        CSRMatrix(
            num_rows=1,
            num_cols=2,
            row_offsets=np.array([0, 1]),
            col_indices=np.array([5]),
            values=np.array([1.0]),
        )


def test_csr_and_coo_spmv_agree(small_matrices):
    for name, matrix in small_matrices.items():
        x = np.random.default_rng(7).uniform(-1, 1, matrix.num_cols)
        np.testing.assert_allclose(
            matrix.spmv(x), matrix.to_coo().spmv(x), rtol=1e-10, atol=1e-12,
            err_msg=f"family {name}"
        )
