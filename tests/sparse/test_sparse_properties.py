"""Property-based tests for the sparse formats (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.features import gathered_features
from repro.sparse.generators import matrix_from_row_lengths


@st.composite
def dense_matrices(draw):
    """Small random dense matrices with controlled sparsity."""
    rows = draw(st.integers(min_value=1, max_value=12))
    cols = draw(st.integers(min_value=1, max_value=12))
    density = draw(st.floats(min_value=0.0, max_value=0.7))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    dense = rng.uniform(-2.0, 2.0, size=(rows, cols))
    mask = rng.uniform(size=(rows, cols)) < density
    return dense * mask


@st.composite
def row_length_specs(draw):
    """Row-length vectors plus a column count that can accommodate them."""
    lengths = draw(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=40)
    )
    cols = draw(st.integers(min_value=max(lengths + [1]), max_value=64))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return np.array(lengths, dtype=np.int64), cols, seed


@given(dense_matrices())
@settings(max_examples=60, deadline=None)
def test_csr_round_trip_preserves_dense(dense):
    csr = CSRMatrix.from_dense(dense)
    np.testing.assert_allclose(csr.to_dense(), dense)
    assert csr.nnz == int(np.count_nonzero(dense))


@given(dense_matrices())
@settings(max_examples=60, deadline=None)
def test_spmv_agrees_across_formats(dense):
    csr = CSRMatrix.from_dense(dense)
    coo = csr.to_coo()
    ell = ELLMatrix.from_csr(csr, max_padding_ratio=float("inf"))
    x = np.linspace(-1.0, 1.0, dense.shape[1])
    expected = dense @ x
    np.testing.assert_allclose(csr.spmv(x), expected, atol=1e-9)
    np.testing.assert_allclose(coo.spmv(x), expected, atol=1e-9)
    np.testing.assert_allclose(ell.spmv(x), expected, atol=1e-9)


@given(dense_matrices())
@settings(max_examples=60, deadline=None)
def test_transpose_is_involution(dense):
    csr = CSRMatrix.from_dense(dense)
    np.testing.assert_allclose(csr.transpose().transpose().to_dense(), dense)


@given(row_length_specs())
@settings(max_examples=60, deadline=None)
def test_generated_matrices_respect_row_lengths(spec):
    lengths, cols, seed = spec
    matrix = matrix_from_row_lengths(lengths, cols, rng=seed)
    np.testing.assert_array_equal(matrix.row_lengths(), np.minimum(lengths, cols))
    matrix.validate()


@given(row_length_specs())
@settings(max_examples=60, deadline=None)
def test_gathered_feature_invariants(spec):
    lengths, cols, seed = spec
    matrix = matrix_from_row_lengths(lengths, cols, rng=seed)
    gathered = gathered_features(matrix)
    assert 0.0 <= gathered.min_row_density <= gathered.mean_row_density
    assert gathered.mean_row_density <= gathered.max_row_density <= 1.0
    assert gathered.var_row_density >= 0.0
    # variance is zero exactly when all row lengths are equal
    if len(set(np.minimum(lengths, cols).tolist())) == 1:
        assert gathered.var_row_density == 0.0
