"""Property-based tests for the sparse formats (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.features import gathered_features
from repro.sparse.generators import (
    matrix_from_row_lengths,
    power_law_matrix,
    stencil_matrix,
)


@st.composite
def dense_matrices(draw):
    """Small random dense matrices with controlled sparsity."""
    rows = draw(st.integers(min_value=1, max_value=12))
    cols = draw(st.integers(min_value=1, max_value=12))
    density = draw(st.floats(min_value=0.0, max_value=0.7))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    dense = rng.uniform(-2.0, 2.0, size=(rows, cols))
    mask = rng.uniform(size=(rows, cols)) < density
    return dense * mask


@st.composite
def row_length_specs(draw):
    """Row-length vectors plus a column count that can accommodate them."""
    lengths = draw(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=40)
    )
    cols = draw(st.integers(min_value=max(lengths + [1]), max_value=64))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return np.array(lengths, dtype=np.int64), cols, seed


@given(dense_matrices())
@settings(max_examples=60, deadline=None)
def test_csr_round_trip_preserves_dense(dense):
    csr = CSRMatrix.from_dense(dense)
    np.testing.assert_allclose(csr.to_dense(), dense)
    assert csr.nnz == int(np.count_nonzero(dense))


@given(dense_matrices())
@settings(max_examples=60, deadline=None)
def test_spmv_agrees_across_formats(dense):
    csr = CSRMatrix.from_dense(dense)
    coo = csr.to_coo()
    ell = ELLMatrix.from_csr(csr, max_padding_ratio=float("inf"))
    x = np.linspace(-1.0, 1.0, dense.shape[1])
    expected = dense @ x
    np.testing.assert_allclose(csr.spmv(x), expected, atol=1e-9)
    np.testing.assert_allclose(coo.spmv(x), expected, atol=1e-9)
    np.testing.assert_allclose(ell.spmv(x), expected, atol=1e-9)


@given(dense_matrices())
@settings(max_examples=60, deadline=None)
def test_transpose_is_involution(dense):
    csr = CSRMatrix.from_dense(dense)
    np.testing.assert_allclose(csr.transpose().transpose().to_dense(), dense)


@given(row_length_specs())
@settings(max_examples=60, deadline=None)
def test_generated_matrices_respect_row_lengths(spec):
    lengths, cols, seed = spec
    matrix = matrix_from_row_lengths(lengths, cols, rng=seed)
    np.testing.assert_array_equal(matrix.row_lengths(), np.minimum(lengths, cols))
    matrix.validate()


@st.composite
def stencil_specs(draw):
    """Grid sizes, neighbourhood selection and seed for stencil matrices."""
    num_rows = draw(st.integers(min_value=1, max_value=400))
    points = draw(st.sampled_from([5, 9]))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return num_rows, points, seed


@given(stencil_specs())
@settings(max_examples=40, deadline=None)
def test_stencil_matrix_bandwidth_and_symmetry(spec):
    num_rows, points, seed = spec
    matrix = stencil_matrix(num_rows, points=points, rng=seed)
    matrix.validate()
    assert matrix.shape == (num_rows, num_rows)
    # Every row contains at least its own grid point and at most the full
    # neighbourhood.
    lengths = matrix.row_lengths()
    assert lengths.min() >= 1
    assert lengths.max() <= points
    # Banded: a neighbour is at most one grid row (plus one column) away.
    width = max(int(round(num_rows**0.5)), 3)
    bandwidth = width if points == 5 else width + 1
    rows = np.repeat(np.arange(num_rows, dtype=np.int64), lengths)
    assert np.abs(matrix.col_indices - rows).max() <= bandwidth
    # Stencil coupling is mutual: the sparsity pattern is symmetric.
    pattern = matrix.to_dense() != 0.0
    assert (pattern == pattern.T).all()


@st.composite
def power_law_specs(draw):
    """Matrix size, two ordered average row lengths, and a seed."""
    num_rows = draw(st.integers(min_value=8, max_value=200))
    avg_low = draw(st.floats(min_value=0.5, max_value=4.0))
    factor = draw(st.floats(min_value=1.0, max_value=4.0))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return num_rows, avg_low, avg_low * factor, seed


@given(power_law_specs())
@settings(max_examples=40, deadline=None)
def test_power_law_hub_degree_is_monotone_in_average(spec):
    """A heavier average row length never shrinks any row — hubs included.

    For a fixed seed the underlying Pareto draw is identical, so scaling the
    target average scales every row length monotonically; the hub (max) row
    degree must therefore be monotone too.
    """
    num_rows, avg_low, avg_high, seed = spec
    light = power_law_matrix(num_rows, num_rows, avg_low, rng=seed)
    heavy = power_law_matrix(num_rows, num_rows, avg_high, rng=seed)
    light.validate()
    heavy.validate()
    assert (heavy.row_lengths() >= light.row_lengths()).all()
    assert heavy.row_lengths().max() >= light.row_lengths().max()
    assert heavy.nnz >= light.nnz
    # Row lengths are capped at the matrix width (hub rows saturate).
    assert heavy.row_lengths().max() <= num_rows


@given(row_length_specs())
@settings(max_examples=60, deadline=None)
def test_gathered_feature_invariants(spec):
    lengths, cols, seed = spec
    matrix = matrix_from_row_lengths(lengths, cols, rng=seed)
    gathered = gathered_features(matrix)
    assert 0.0 <= gathered.min_row_density <= gathered.mean_row_density
    assert gathered.mean_row_density <= gathered.max_row_density <= 1.0
    assert gathered.var_row_density >= 0.0
    # variance is zero exactly when all row lengths are equal
    if len(set(np.minimum(lengths, cols).tolist())) == 1:
        assert gathered.var_row_density == 0.0
