"""Tier-1 guard: the shipped tree must satisfy its own invariants.

This is the test the whole subsystem exists for — every determinism,
concurrency and conformance rule runs over ``src/repro`` itself, and any
non-baselined finding fails the suite with the same ``file:line`` output
``repro lint`` prints.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Baseline, lint_package, package_dir, render_text

REPO_BASELINE = Path(__file__).resolve().parents[2] / "analysis" / "baseline.json"


def load_baseline():
    return Baseline.from_file(REPO_BASELINE) if REPO_BASELINE.is_file() else None


def test_package_tree_is_lint_clean():
    report = lint_package(baseline=load_baseline())
    assert report.clean, "\n" + render_text(report)


def test_lint_run_covers_the_whole_package():
    report = lint_package(baseline=load_baseline())
    python_files = len(list(package_dir().rglob("*.py")))
    assert report.files_scanned == python_files
    assert report.files_scanned > 50
    assert len(report.rules) >= 8


def test_committed_baseline_is_empty():
    # Real violations get fixed, not grandfathered; keep the baseline a
    # mechanism for emergencies, not a dumping ground.
    baseline = load_baseline()
    assert baseline is not None
    assert baseline.entries == ()
