"""Engine-level tests for ``repro.analysis``: selection, suppression, baseline.

Rule-specific behaviour lives in ``test_lint_rules.py``; this file covers the
machinery every rule rides on, plus a hypothesis fuzzer asserting the engine
never crashes on arbitrary (grammar-generated) valid Python.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    AnalysisError,
    Baseline,
    BaselineEntry,
    Finding,
    lint_paths,
    lint_source,
    rule_ids,
    select_rules,
)
from repro.analysis.engine import BASELINE_FORMAT_VERSION, register_rule

UNSORTED_JSON = "import json\n\ndef f(obj):\n    return json.dumps(obj)\n"


def found_rules(text: str, module: str = "snippet.py") -> set:
    return {finding.rule for finding in lint_source(text, module=module)}


# ----------------------------------------------------------------------
# Rule selection
# ----------------------------------------------------------------------
def test_rule_ids_are_stable_and_sorted():
    ids = rule_ids()
    assert len(ids) >= 8
    assert list(ids) == sorted(ids)
    assert {"DET001", "DET002", "DET003", "DET004", "CONC001", "CONC002",
            "CONC003", "DOM001", "API001"} <= set(ids)


def test_select_by_exact_id_and_prefix():
    assert {spec.id for spec in select_rules(select=["DET004"])} == {"DET004"}
    det = {spec.id for spec in select_rules(select=["DET"])}
    assert det == {"DET001", "DET002", "DET003", "DET004"}


def test_ignore_removes_rules():
    remaining = {spec.id for spec in select_rules(ignore=["CONC", "DOM001"])}
    assert "CONC001" not in remaining
    assert "DOM001" not in remaining
    assert "DET001" in remaining


def test_unknown_select_raises_instead_of_passing_silently():
    with pytest.raises(AnalysisError, match="matches no registered rule"):
        select_rules(select=["NOPE999"])
    with pytest.raises(AnalysisError, match="--ignore"):
        select_rules(ignore=["XX001"])


def test_register_rule_rejects_malformed_and_duplicate_ids():
    with pytest.raises(AnalysisError, match="must look like"):
        register_rule("det-1", "bad id")
    with pytest.raises(AnalysisError, match="already registered"):
        @register_rule("DET001", "duplicate")
        def _dup(module):  # pragma: no cover - never invoked
            return iter(())


# ----------------------------------------------------------------------
# Findings and suppression
# ----------------------------------------------------------------------
def test_findings_carry_location_and_rule():
    findings = lint_source(UNSORTED_JSON, module="pkg/mod.py")
    assert [f.rule for f in findings] == ["DET004"]
    finding = findings[0]
    assert finding.module == "pkg/mod.py"
    assert finding.line == 4
    assert finding.location == f"pkg/mod.py:{finding.line}:{finding.col}"
    assert "DET004" in finding.render()


def test_inline_suppression_silences_matching_rule():
    text = UNSORTED_JSON.replace(
        "json.dumps(obj)", "json.dumps(obj)  # repro-lint: disable=DET004"
    )
    assert found_rules(text) == set()


def test_inline_suppression_disable_all():
    text = UNSORTED_JSON.replace(
        "json.dumps(obj)", "json.dumps(obj)  # repro-lint: disable=all"
    )
    assert found_rules(text) == set()


def test_suppression_for_other_rule_does_not_apply():
    text = UNSORTED_JSON.replace(
        "json.dumps(obj)", "json.dumps(obj)  # repro-lint: disable=DET001"
    )
    assert found_rules(text) == {"DET004"}


def test_suppression_is_per_line():
    text = (
        "import json\n"
        "a = json.dumps({})  # repro-lint: disable=DET004\n"
        "b = json.dumps({})\n"
    )
    findings = lint_source(text)
    assert [(f.rule, f.line) for f in findings] == [("DET004", 3)]


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def test_baseline_roundtrip_and_matching():
    findings = lint_source(UNSORTED_JSON, module="bench/x.py")
    baseline = Baseline.from_findings(findings)
    payload = json.loads(baseline.dumps())
    assert payload["version"] == BASELINE_FORMAT_VERSION
    reloaded = Baseline.from_payload(payload)
    assert all(reloaded.matches(f) for f in findings)
    other = Finding(
        rule="DET001", path="x", module="bench/x.py", line=1, col=1, message="m"
    )
    assert not reloaded.matches(other)


def test_baseline_module_globs_and_symbols():
    entry = BaselineEntry(rule="CONC001", module="serving/*.py", symbol="Hub.cache")
    hit = Finding(
        rule="CONC001", path="p", module="serving/service.py",
        line=3, col=1, message="m", symbol="Hub.cache",
    )
    assert entry.matches(hit)
    assert not entry.matches(
        Finding(rule="CONC001", path="p", module="serving/service.py",
                line=3, col=1, message="m", symbol="Hub.other")
    )
    assert not entry.matches(
        Finding(rule="CONC001", path="p", module="core/service.py",
                line=3, col=1, message="m", symbol="Hub.cache")
    )


def test_baseline_rejects_wrong_version_and_shape():
    with pytest.raises(AnalysisError, match="unsupported baseline version"):
        Baseline.from_payload({"version": 99, "findings": []})
    with pytest.raises(AnalysisError, match="JSON object"):
        Baseline.from_payload([1, 2])
    with pytest.raises(AnalysisError, match="needs 'rule' and 'module'"):
        Baseline.from_payload(
            {"version": BASELINE_FORMAT_VERSION, "findings": [{"rule": "X"}]}
        )


def test_lint_paths_applies_baseline(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(UNSORTED_JSON, encoding="utf-8")
    dirty = lint_paths([bad])
    assert [f.rule for f in dirty.findings] == ["DET004"]
    baseline = Baseline.from_findings(dirty.findings)
    clean = lint_paths([bad], baseline=baseline)
    assert clean.clean
    assert [f.rule for f in clean.baselined] == ["DET004"]
    assert clean.files_scanned == 1


def test_lint_paths_rejects_missing_target(tmp_path):
    with pytest.raises(AnalysisError, match="no such file"):
        lint_paths([tmp_path / "nope.py"])


# ----------------------------------------------------------------------
# Fuzz: the engine must never crash on valid Python
# ----------------------------------------------------------------------
_NAMES = st.sampled_from(["x", "data", "rows", "self", "payload", "items"])
_EXPRS = st.sampled_from(
    [
        "{0}",
        "{0}.read_text()",
        "json.dumps({0})",
        "sorted({0})",
        "set({0})",
        "{{1, 2, 3}}",
        "os.listdir({0})",
        "time.time()",
        "{0}.get('name')",
        "{0}['family']",
        "self._cond.wait()",
        "self._decide({0})",
        "[v for v in {{'a', 'b'}}]",
    ]
)


@st.composite
def _statements(draw):
    name = draw(_NAMES)
    expr = draw(_EXPRS).format(name)
    shape = draw(
        st.sampled_from(
            [
                "{expr}",
                "{name} = {expr}",
                "for item in {expr}:\n        pass",
                "with self._lock:\n        {name} = {expr}",
                "while not {name}:\n        {expr}",
                "if {name}:\n        return {expr}",
            ]
        )
    )
    return shape.format(name=name, expr=expr)


@st.composite
def _modules(draw):
    body = draw(st.lists(_statements(), min_size=1, max_size=6))
    lines = ["import json, os, time", "", "def fn(self, x, data, rows, payload, items):"]
    lines.extend("    " + stmt for stmt in body)
    lines.append("    return x")
    return "\n".join(lines) + "\n"


@settings(max_examples=60, deadline=None)
@given(text=_modules(), module=st.sampled_from(
    ["snippet.py", "bench/engine.py", "domains/spmv.py", "serving/service.py"]
))
def test_lint_source_never_crashes_on_valid_python(text, module):
    compile(text, "<fuzz>", "exec")  # the grammar must emit valid Python
    for finding in lint_source(text, module=module):
        assert finding.rule
        assert finding.line >= 1
