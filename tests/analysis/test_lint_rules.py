"""Per-rule positive/negative tests for the invariant checker.

Each rule gets at least one snippet that must fire and one nearby variant
that must stay silent — the negatives encode the idioms the real codebase
uses (sorted() wrapping, lock-guarded mutation, predicate loops) so the
rules cannot regress into false positives on the tree they guard.
"""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source


def rules_at(text: str, module: str = "snippet.py") -> list:
    return [(f.rule, f.line) for f in lint_source(textwrap.dedent(text), module=module)]


def fired(text: str, module: str = "snippet.py") -> set:
    return {rule for rule, _ in rules_at(text, module=module)}


# ----------------------------------------------------------------------
# DET001 — unsorted filesystem iteration
# ----------------------------------------------------------------------
def test_det001_flags_bare_iterdir_and_listdir():
    assert "DET001" in fired(
        """
        import os
        def walk(path):
            for entry in path.iterdir():
                print(entry)
            return os.listdir(path)
        """
    )


def test_det001_accepts_sorted_wrapping_even_through_a_genexp():
    assert "DET001" not in fired(
        """
        def walk(path):
            direct = sorted(path.iterdir())
            filtered = sorted(p for p in path.glob("*.mtx") if p.is_file())
            return direct, filtered
        """
    )


# ----------------------------------------------------------------------
# DET002 — set iteration order leakage
# ----------------------------------------------------------------------
def test_det002_flags_loops_and_comprehensions_over_sets():
    findings = rules_at(
        """
        def names(cases):
            for name in {case.name for case in cases}:
                print(name)
            return [k for k in set(cases)]
        """
    )
    assert [rule for rule, _ in findings] == ["DET002", "DET002"]


def test_det002_accepts_sorted_sets_and_plain_sequences():
    assert "DET002" not in fired(
        """
        def names(cases):
            for name in sorted({case.name for case in cases}):
                print(name)
            membership = {c.name for c in cases}
            return [c for c in cases if c.name in membership]
        """
    )


# ----------------------------------------------------------------------
# DET003 — ambient entropy in cache-keyed/artifact modules
# ----------------------------------------------------------------------
def test_det003_flags_wall_clock_and_global_rng_in_scoped_modules():
    text = """
    import time, uuid, random
    import numpy as np
    def stamp():
        return time.time(), uuid.uuid4(), random.random(), np.random.rand(3)
    """
    assert fired(text, module="bench/engine.py") == {"DET003"}
    # ...but the same code is fine outside the artifact/cache scope.
    assert fired(text, module="kernels/base.py") == set()


def test_det003_accepts_seeded_generators():
    assert "DET003" not in fired(
        """
        import numpy as np
        def seeded(seed):
            rng = np.random.default_rng(seed)
            legacy = np.random.RandomState(seed)
            return rng, legacy
        """,
        module="bench/engine.py",
    )


def test_det003_flags_unseeded_generator_construction():
    assert "DET003" in fired(
        """
        import numpy as np
        def unseeded():
            return np.random.default_rng()
        """,
        module="experiments/fig1.py",
    )


# ----------------------------------------------------------------------
# DET004 — non-canonical JSON serialization
# ----------------------------------------------------------------------
def test_det004_flags_missing_and_false_sort_keys():
    findings = rules_at(
        """
        import json
        def save(obj, fh):
            json.dump(obj, fh)
            return json.dumps(obj, sort_keys=False)
        """
    )
    assert [rule for rule, _ in findings] == ["DET004", "DET004"]


def test_det004_accepts_canonical_serialization():
    assert "DET004" not in fired(
        """
        import json
        def save(obj, fh):
            json.dump(obj, fh, sort_keys=True)
            return json.dumps(obj, indent=2, sort_keys=True)
        """
    )


# ----------------------------------------------------------------------
# CONC001 — inconsistent lock discipline on shared attributes
# ----------------------------------------------------------------------
#: A DynamicBatcher-shaped class with one mutation outside the lock.
UNLOCKED_BATCHER = """
import threading

class DynamicBatcher:
    def __init__(self):
        self._lock = threading.Lock()
        self._queue = []
        self._batches = 0

    def submit(self, request):
        with self._lock:
            self._queue.append(request)
            self._batches += 1

    def drain(self):
        flushed = list(self._queue)
        self._queue.clear()
        return flushed
"""


def test_conc001_flags_mutation_outside_the_lock():
    findings = lint_source(UNLOCKED_BATCHER)
    assert {(f.rule, f.symbol) for f in findings} == {
        ("CONC001", "DynamicBatcher._queue")
    }
    # the finding points at the unlocked site, not the guarded one
    assert all("drain" not in f.message or f.line > 14 for f in findings)


def test_conc001_accepts_consistent_locking_and_init_setup():
    assert "CONC001" not in fired(
        """
        import threading

        class DynamicBatcher:
            def __init__(self):
                self._lock = threading.Lock()
                self._queue = []

            def submit(self, request):
                with self._lock:
                    self._queue.append(request)

            def drain(self):
                with self._lock:
                    flushed = list(self._queue)
                    self._queue.clear()
                return flushed
        """
    )


def test_conc001_ignores_attributes_only_touched_unlocked():
    assert "CONC001" not in fired(
        """
        class Counter:
            def __init__(self):
                self.total = 0

            def bump(self):
                self.total += 1
        """
    )


# ----------------------------------------------------------------------
# CONC002 — blocking calls under a lock
# ----------------------------------------------------------------------
def test_conc002_flags_io_and_sleep_under_lock():
    findings = rules_at(
        """
        import time

        class Hub:
            def load(self, path):
                with self._lock:
                    text = path.read_text()
                    time.sleep(0.1)
                return text
        """
    )
    assert [rule for rule, _ in findings] == ["CONC002", "CONC002"]


def test_conc002_accepts_io_outside_and_log_writes_inside():
    assert "CONC002" not in fired(
        """
        class Hub:
            def load(self, path):
                text = path.read_text()
                with self._lock:
                    self._cache = text
                    self._log.write(text)
                    self._log.flush()
                return text
        """
    )


def test_conc002_scope_ends_at_nested_function_boundaries():
    assert "CONC002" not in fired(
        """
        class Hub:
            def loader(self, path):
                with self._lock:
                    def later():
                        return path.read_text()
                return later
        """
    )


# ----------------------------------------------------------------------
# CONC003 — Condition.wait outside a predicate loop
# ----------------------------------------------------------------------
def test_conc003_flags_bare_and_while_true_waits():
    findings = rules_at(
        """
        class Batcher:
            def take(self):
                with self._cond:
                    self._cond.wait()
                    while True:
                        self._cond.wait(0.1)
        """
    )
    assert [rule for rule, _ in findings] == ["CONC003", "CONC003"]


def test_conc003_accepts_predicate_loops_and_event_waits():
    assert "CONC003" not in fired(
        """
        class Batcher:
            def take(self):
                with self._cond:
                    while not self._queue:
                        self._cond.wait()
                self._stopped_event.wait()
        """
    )


# ----------------------------------------------------------------------
# DOM001 — feature references outside the declared schema
# ----------------------------------------------------------------------
DOMAIN_MODULE = """
from repro.domains.base import FeatureField

KNOWN = ("rows", "cols")

FIELDS = [FeatureField(name) for name in KNOWN] + [FeatureField("nnz")]

def featurize(row):
    return row["rows"], row.get("nnz"), row["density"]
"""


def test_dom001_flags_undeclared_columns_only_in_domain_modules():
    findings = lint_source(DOMAIN_MODULE, module="domains/spmv.py")
    assert [(f.rule, f.symbol) for f in findings] == [("DOM001", "density")]
    assert lint_source(DOMAIN_MODULE, module="core/spmv.py") == []


def test_dom001_allows_protocol_keys_and_undeclared_modules():
    assert "DOM001" not in fired(
        """
        from repro.domains.base import FeatureField
        FIELDS = [FeatureField("rows")]
        def featurize(row):
            return row["rows"], row.get("iterations"), row.get("name")
        """,
        module="domains/spmm.py",
    )
    # no FeatureField declarations at all -> nothing to check against
    assert "DOM001" not in fired(
        """
        def featurize(row):
            return row["anything"]
        """,
        module="domains/raw.py",
    )


# ----------------------------------------------------------------------
# API001 — deprecated positional _decide entry point
# ----------------------------------------------------------------------
def test_api001_flags_calls_to_the_deprecated_shim():
    assert "API001" in fired(
        """
        def choose(predictor, matrix):
            return predictor._decide(matrix, 1)
        """
    )


def test_api001_ignores_the_replacement_api():
    assert "API001" not in fired(
        """
        def choose(predictor, matrix):
            return predictor.predict(matrix, iterations=1)
        """
    )


# ----------------------------------------------------------------------
# ENV001 — SEER_* environment reads outside entry-point modules
# ----------------------------------------------------------------------
def test_env001_flags_every_read_spelling():
    text = """
        import os
        from os import environ
        def configure():
            a = os.environ.get("SEER_JOBS")
            b = os.getenv("SEER_CACHE_DIR", "")
            c = environ["SEER_SCALAR_TIMING"]
            d = "SEER_JOBS" in os.environ
            return a, b, c, d
        """
    assert [rule for rule, _ in rules_at(text, module="core/benchmarking.py")] == [
        "ENV001"
    ] * 4
    assert fired(text, module="serving/service.py") == {"ENV001"}


def test_env001_ignores_foreign_variables_and_entry_points():
    text = """
        import os
        def configure(environ):
            home = os.environ.get("HOME")
            jobs = environ.get("SEER_JOBS")
            return home, jobs
        """
    # Non-SEER variables are not this rule's business ...
    assert "ENV001" not in fired(
        """
        import os
        def configure():
            return os.environ.get("PATH"), os.getenv("HOME")
        """
    )
    # ... and the designated entry-point module may read SEER_*.
    assert "ENV001" not in fired(text, module="bench/engine.py")
    assert "ENV001" in fired(text, module="serving/ingest.py")


def test_env001_accepts_threaded_parameters():
    assert "ENV001" not in fired(
        """
        def measure(timing_mode=None, precision="exact"):
            return timing_mode or "batched", precision
        """
    )


def test_env001_respects_the_deprecated_fallbacks_inline_disable():
    assert "ENV001" not in fired(
        """
        def timing_mode_from_env(environ=None):
            value = environ.get("SEER_SCALAR_TIMING")  # repro-lint: disable=ENV001
            return "scalar" if value else "batched"
        """,
        module="core/benchmarking.py",
    )


def test_env001_guards_the_real_tree():
    """The package itself must be ENV001-clean (only sanctioned reads)."""
    from repro.analysis import lint_package

    report = lint_package(select=["ENV001"])
    assert report.clean, [f.render() for f in report.findings]
