"""Tests for the parallel, cached sweep engine."""

import json
import math
import shutil

import pytest

from repro.bench import engine as engine_module
from repro.bench.engine import (
    SweepEngine,
    code_version,
    engine_from_env,
    measurement_from_dict,
    measurement_key,
    measurement_to_dict,
    sweep_config_key,
)
from repro.bench.runner import run_sweep
from repro.core.benchmarking import MatrixMeasurement
from repro.core.dataset import DEFAULT_ITERATION_COUNTS
from repro.core.training import TrainingConfig
from repro.gpu.device import MI100, SMALL_GPU
from repro.kernels.registry import kernel_names
from repro.sparse.collection import collection_specs
from repro.sparse.features import GatheredFeatures, KnownFeatures

KERNELS = kernel_names()


def _forbid_benchmarking(monkeypatch):
    """Make any actual matrix measurement fail the test."""

    def _fail(*args, **kwargs):
        raise AssertionError("benchmarking ran although the cache should serve")

    monkeypatch.setattr(engine_module, "measure_matrix", _fail)


# ----------------------------------------------------------------------
# Parallel == serial equivalence
# ----------------------------------------------------------------------
def test_parallel_sweep_is_bit_identical_to_serial(tiny_sweep):
    engine = SweepEngine(jobs=2)
    parallel = run_sweep(profile="tiny", iteration_counts=(1, 19), engine=engine)
    assert engine.stats.matrices_measured == len(tiny_sweep.suite)
    assert parallel.suite.names() == tiny_sweep.suite.names()
    for serial_m, parallel_m in zip(tiny_sweep.suite, parallel.suite):
        assert serial_m.kernel_runtime_ms == parallel_m.kernel_runtime_ms
        assert serial_m.kernel_preprocessing_ms == parallel_m.kernel_preprocessing_ms
        assert serial_m.known == parallel_m.known
        assert serial_m.gathered == parallel_m.gathered
    assert parallel.train_report.aggregate_table() == tiny_sweep.train_report.aggregate_table()
    assert parallel.test_report.aggregate_table() == tiny_sweep.test_report.aggregate_table()
    assert [row.name for row in parallel.test_report.rows] == [
        row.name for row in tiny_sweep.test_report.rows
    ]


def test_measure_specs_preserves_spec_order():
    specs = collection_specs("tiny")
    engine = SweepEngine(jobs=3, chunks_per_job=2)
    measurements = engine.measure_specs(specs, KERNELS)
    assert [m.name for m in measurements] == [spec.name for spec in specs]


# ----------------------------------------------------------------------
# Cache behaviour
# ----------------------------------------------------------------------
def test_second_sweep_served_from_cache_without_benchmarking(tmp_path, monkeypatch):
    first_engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    first = run_sweep(profile="tiny", iteration_counts=(1,), engine=first_engine)
    assert first_engine.stats.sweep_cache_misses == 1
    assert first_engine.stats.matrices_measured > 0

    _forbid_benchmarking(monkeypatch)
    second_engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    second = run_sweep(profile="tiny", iteration_counts=(1,), engine=second_engine)
    assert second_engine.stats.sweep_cache_hits == 1
    assert second_engine.stats.matrices_measured == 0
    assert second.test_report.aggregate_table() == first.test_report.aggregate_table()
    assert second.suite.names() == first.suite.names()


def test_measurement_tier_survives_sweep_tier_loss(tmp_path, monkeypatch):
    populate = SweepEngine(jobs=1, cache_dir=tmp_path)
    first = run_sweep(profile="tiny", iteration_counts=(1,), engine=populate)
    shutil.rmtree(tmp_path / "sweeps")

    _forbid_benchmarking(monkeypatch)
    rebuild = SweepEngine(jobs=1, cache_dir=tmp_path)
    second = run_sweep(profile="tiny", iteration_counts=(1,), engine=rebuild)
    assert rebuild.stats.sweep_cache_hits == 0
    assert rebuild.stats.matrices_measured == 0
    assert rebuild.stats.measurement_cache_hits == len(first.suite)
    assert second.test_report.aggregate_table() == first.test_report.aggregate_table()


def test_corrupt_sweep_artifact_is_recomputed(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    first = run_sweep(profile="tiny", iteration_counts=(1,), engine=engine)
    [artifact] = (tmp_path / "sweeps").glob("*.pkl")
    artifact.write_bytes(b"not a pickle")

    retry = SweepEngine(jobs=1, cache_dir=tmp_path)
    second = run_sweep(profile="tiny", iteration_counts=(1,), engine=retry)
    assert retry.stats.sweep_cache_misses == 1
    assert second.test_report.aggregate_table() == first.test_report.aggregate_table()


def test_truncated_sweep_pickle_is_recomputed(tmp_path):
    """A half-written pickle (e.g. a killed process) is a miss, not a crash."""
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    first = run_sweep(profile="tiny", iteration_counts=(1,), engine=engine)
    [artifact] = (tmp_path / "sweeps").glob("*.pkl")
    artifact.write_bytes(artifact.read_bytes()[: artifact.stat().st_size // 2])

    retry = SweepEngine(jobs=1, cache_dir=tmp_path)
    second = run_sweep(profile="tiny", iteration_counts=(1,), engine=retry)
    assert retry.stats.sweep_cache_misses == 1
    assert second.test_report.aggregate_table() == first.test_report.aggregate_table()


@pytest.mark.parametrize(
    "corruption",
    [b"{ not json at all", b"", b'{"valid": "json", "wrong": "shape"}'],
    ids=["garbage", "empty", "wrong-shape"],
)
def test_corrupt_measurement_artifact_is_remeasured(tmp_path, corruption):
    """Unreadable measurement JSONs — including *valid* JSON with the wrong
    shape — are re-measured and overwritten, never fatal."""
    populate = SweepEngine(jobs=1, cache_dir=tmp_path)
    first = run_sweep(profile="tiny", iteration_counts=(1,), engine=populate)
    measurement_paths = sorted((tmp_path / "measurements").glob("*.json"))
    assert measurement_paths
    for path in measurement_paths:
        path.write_bytes(corruption)
    shutil.rmtree(tmp_path / "sweeps")

    retry = SweepEngine(jobs=1, cache_dir=tmp_path)
    second = run_sweep(profile="tiny", iteration_counts=(1,), engine=retry)
    assert retry.stats.measurement_cache_hits == 0
    assert retry.stats.matrices_measured == len(first.suite)
    assert second.test_report.aggregate_table() == first.test_report.aggregate_table()
    # The corrupted slots were overwritten with readable artifacts.
    for path in measurement_paths:
        measurement_from_dict(json.loads(path.read_text()))


def test_cacheless_engine_writes_nothing(tmp_path):
    engine = SweepEngine(jobs=1)
    run_sweep(profile="tiny", iteration_counts=(1,), engine=engine)
    assert engine.cache_dir is None
    assert list(tmp_path.iterdir()) == []


def test_cached_sweep_artifact_has_readable_metadata(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    run_sweep(profile="tiny", iteration_counts=(1,), engine=engine)
    [meta_path] = (tmp_path / "sweeps").glob("*.json")
    meta = json.loads(meta_path.read_text())
    assert meta["profile"]["name"] == "tiny"
    assert meta["profile"]["families"]
    assert meta["code"] == code_version()
    assert meta["kernels"] == list(KERNELS)


# ----------------------------------------------------------------------
# Config hashing
# ----------------------------------------------------------------------
def test_sweep_config_key_is_stable_and_sensitive():
    base = {
        "profile": "tiny",
        "seed": 7,
        "split_seed": 13,
        "iteration_counts": DEFAULT_ITERATION_COUNTS,
        "device": MI100,
        "kernel_labels": KERNELS,
    }
    key = sweep_config_key(**base)
    assert key == sweep_config_key(**base)
    assert key == sweep_config_key(**base, config=TrainingConfig())

    assert key != sweep_config_key(**{**base, "profile": "small"})
    assert key != sweep_config_key(**{**base, "seed": 8})
    assert key != sweep_config_key(**{**base, "split_seed": 14})
    assert key != sweep_config_key(**{**base, "iteration_counts": (1,)})
    assert key != sweep_config_key(**{**base, "device": SMALL_GPU})
    assert key != sweep_config_key(**{**base, "kernel_labels": KERNELS[:-1]})
    assert key != sweep_config_key(**base, config=TrainingConfig(known_depth=2))


def test_measurement_key_is_sensitive_to_spec_and_device():
    spec_a, spec_b = collection_specs("tiny")[:2]
    key = measurement_key(spec_a, KERNELS, MI100)
    assert key == measurement_key(spec_a, KERNELS, MI100)
    assert key != measurement_key(spec_b, KERNELS, MI100)
    assert key != measurement_key(spec_a, KERNELS[:-1], MI100)
    assert key != measurement_key(spec_a, KERNELS, SMALL_GPU)


# ----------------------------------------------------------------------
# Measurement JSON round trip
# ----------------------------------------------------------------------
def test_measurement_roundtrips_through_json_with_infinities():
    measurement = MatrixMeasurement(
        name="m",
        known=KnownFeatures(rows=10, cols=20, nnz=30),
        gathered=GatheredFeatures(0.5, 0.1, 0.3, 0.01, collection_time_ms=1.5),
        kernel_runtime_ms={"CSR,A": 1.0, "ELL,TM": math.inf},
        kernel_preprocessing_ms={"CSR,A": 0.25, "ELL,TM": 0.0},
    )
    payload = json.loads(json.dumps(measurement_to_dict(measurement)))
    restored = measurement_from_dict(payload)
    assert restored == measurement
    assert restored.gathered.collection_time_ms == 1.5
    assert math.isinf(restored.kernel_runtime_ms["ELL,TM"])


# ----------------------------------------------------------------------
# Construction and environment plumbing
# ----------------------------------------------------------------------
def test_engine_rejects_negative_jobs():
    with pytest.raises(ValueError):
        SweepEngine(jobs=-1)


def test_jobs_zero_uses_cpu_count():
    engine = SweepEngine(jobs=0)
    assert engine.jobs >= 1


def test_run_sweep_rejects_engine_with_prebuilt_collection():
    with pytest.raises(ValueError):
        run_sweep(collection=[], engine=SweepEngine())


def test_engine_from_env():
    assert engine_from_env({}) is None
    engine = engine_from_env({"SEER_JOBS": "3"})
    assert engine.jobs == 3 and engine.cache_dir is None
    engine = engine_from_env({"SEER_CACHE_DIR": "/tmp/seer-cache"})
    assert engine.jobs == 1 and str(engine.cache_dir) == "/tmp/seer-cache"


def test_engine_from_env_validates_jobs():
    assert engine_from_env({"SEER_JOBS": ""}) is None
    assert engine_from_env({"SEER_JOBS": "1"}) is None  # serial, cacheless
    with pytest.raises(ValueError, match="SEER_JOBS"):
        engine_from_env({"SEER_JOBS": "abc"})
    with pytest.raises(ValueError, match="SEER_JOBS"):
        engine_from_env({"SEER_JOBS": "-1"})


def test_engine_from_env_explicit_overrides_win_per_setting():
    environ = {"SEER_JOBS": "8", "SEER_CACHE_DIR": "/tmp/seer-cache"}
    # --jobs 1 forces the serial stage but keeps the configured cache
    engine = engine_from_env(environ, jobs=1)
    assert engine.jobs == 1 and str(engine.cache_dir) == "/tmp/seer-cache"
    # --jobs 4 does not discard the environment's cache dir
    engine = engine_from_env(environ, jobs=4)
    assert engine.jobs == 4 and str(engine.cache_dir) == "/tmp/seer-cache"
    # an explicit cache dir keeps the environment's jobs
    engine = engine_from_env(environ, cache_dir="/tmp/other")
    assert engine.jobs == 8 and str(engine.cache_dir) == "/tmp/other"
    # explicit serial + no cache -> no engine at all
    assert engine_from_env({"SEER_JOBS": "8"}, jobs=1) is None


def test_engine_accepts_collection_profile_objects(tmp_path):
    from repro.sparse.collection import CollectionProfile

    profile = CollectionProfile.from_name("tiny")
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    by_object = run_sweep(profile=profile, iteration_counts=(1,), engine=engine)
    reload_engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    by_name = run_sweep(profile="tiny", iteration_counts=(1,), engine=reload_engine)
    # the object and its name describe the same collection -> same cache key
    assert reload_engine.stats.sweep_cache_hits == 1
    assert by_name.suite.names() == by_object.suite.names()
    # a custom profile sharing the name must NOT collide with the built-in
    custom = CollectionProfile(
        name="tiny", sizes=(256,), variants=1, families=("regular",)
    )
    assert sweep_config_key(
        custom, 7, 13, (1,), MI100, KERNELS
    ) != sweep_config_key("tiny", 7, 13, (1,), MI100, KERNELS)


# ----------------------------------------------------------------------
# Generated-matrix artifact tier
# ----------------------------------------------------------------------
def test_matrix_artifacts_survive_measurement_tier_loss(tmp_path):
    populate = SweepEngine(jobs=1, cache_dir=tmp_path)
    first = run_sweep(profile="tiny", iteration_counts=(1,), engine=populate)
    assert populate.stats.matrices_generated == len(first.suite)
    assert populate.stats.matrix_cache_hits == 0
    assert list((tmp_path / "matrices").glob("*.npz"))

    # Losing the measurement and sweep tiers (e.g. a code edit bumped the
    # code version) must not force matrix regeneration.
    shutil.rmtree(tmp_path / "measurements")
    shutil.rmtree(tmp_path / "sweeps")
    rebuild = SweepEngine(jobs=1, cache_dir=tmp_path)
    second = run_sweep(profile="tiny", iteration_counts=(1,), engine=rebuild)
    assert rebuild.stats.matrices_generated == 0
    assert rebuild.stats.matrix_cache_hits == len(first.suite)
    assert second.test_report.aggregate_table() == first.test_report.aggregate_table()


def test_corrupt_matrix_artifact_is_regenerated(tmp_path):
    populate = SweepEngine(jobs=1, cache_dir=tmp_path)
    first = run_sweep(profile="tiny", iteration_counts=(1,), engine=populate)
    for artifact in (tmp_path / "matrices").glob("*.npz"):
        artifact.write_bytes(b"not an npz")
    shutil.rmtree(tmp_path / "measurements")
    shutil.rmtree(tmp_path / "sweeps")

    retry = SweepEngine(jobs=1, cache_dir=tmp_path)
    second = run_sweep(profile="tiny", iteration_counts=(1,), engine=retry)
    assert retry.stats.matrix_cache_hits == 0
    assert retry.stats.matrices_generated == len(first.suite)
    assert second.test_report.aggregate_table() == first.test_report.aggregate_table()


def test_matrix_roundtrips_through_npz():
    from repro.bench.engine import matrix_from_bytes, matrix_to_bytes
    from repro.sparse import generators as gen

    matrix = gen.power_law_matrix(50, 40, 4.0, rng=3)
    restored = matrix_from_bytes(matrix_to_bytes(matrix))
    assert restored.shape == matrix.shape
    assert (restored.row_offsets == matrix.row_offsets).all()
    assert (restored.col_indices == matrix.col_indices).all()
    assert (restored.values == matrix.values).all()


def test_matrix_key_ignores_name_but_not_recipe():
    from repro.bench.engine import matrix_key

    spec_a, spec_b = collection_specs("tiny")[:2]
    renamed = type(spec_a)(
        name="renamed",
        family=spec_a.family,
        builder=spec_a.builder,
        params=spec_a.params,
        seed=spec_a.seed,
    )
    assert matrix_key(spec_a) == matrix_key(renamed)
    assert matrix_key(spec_a) != matrix_key(spec_b)


def test_measurement_keys_differ_across_domains():
    spec = collection_specs("tiny")[0]
    assert measurement_key(spec, KERNELS, MI100, "spmv") != measurement_key(
        spec, KERNELS, MI100, "spmm"
    )


def test_sweep_config_key_differs_across_domains():
    base = {
        "profile": "tiny",
        "seed": 7,
        "split_seed": 13,
        "iteration_counts": DEFAULT_ITERATION_COUNTS,
        "device": MI100,
        "kernel_labels": KERNELS,
    }
    assert sweep_config_key(**base, domain="spmv") != sweep_config_key(**base, domain="spmm")


def test_experiment_suite_warm_cache_equals_cold_run(tmp_path):
    """Parity at the experiment layer: a warm engine reproduces a cold run.

    Every registered experiment is run twice per domain — once against a
    cold cache (benchmarking happens) and once against the now-warm cache
    (the sweep is served from disk) — and the persisted artifacts must be
    byte-identical.
    """
    from repro.experiments.registry import (
        ExperimentContext,
        experiments_for,
        run_experiment,
        write_artifact,
    )

    cache = tmp_path / "cache"
    for domain in ("spmv", "spmm"):
        cold = ExperimentContext(
            domain=domain, profile="tiny", engine=SweepEngine(jobs=1, cache_dir=cache)
        )
        warm = ExperimentContext(
            domain=domain, profile="tiny", engine=SweepEngine(jobs=1, cache_dir=cache)
        )
        for spec in experiments_for(domain):
            cold_result = run_experiment(spec, cold)
            warm_result = run_experiment(spec, warm)
            cold_paths = write_artifact(spec, cold, cold_result, tmp_path / "cold")
            warm_paths = write_artifact(spec, warm, warm_result, tmp_path / "warm")
            for key in ("data", "manifest"):
                label = (domain, spec.name, key)
                assert cold_paths[key].read_bytes() == warm_paths[key].read_bytes(), label
        # The warm context really was served from the sweep artifact tier.
        assert cold.engine.stats.sweep_cache_misses == 1
        assert warm.engine.stats.sweep_cache_hits == 1
        assert warm.engine.stats.matrices_measured == 0


def test_truncated_zip_matrix_artifact_is_regenerated(tmp_path):
    from repro.bench.engine import _load_matrix_artifact

    # Keeps the zip magic but is truncated: np.load raises BadZipFile, which
    # must read as a cache miss, never a crash.
    artifact = tmp_path / "bad.npz"
    artifact.write_bytes(b"PK\x03\x04" + b"\x00" * 16)
    assert _load_matrix_artifact(artifact) is None


# ----------------------------------------------------------------------
# Precision and timing-mode threading
# ----------------------------------------------------------------------
def test_fast_engine_sweep_stays_within_tolerance(tiny_sweep):
    from repro.gpu.simulator import FAST_MODE_RELATIVE_TOLERANCE

    engine = SweepEngine(precision="fast")
    assert engine.describe()["precision"] == "fast"
    fast = run_sweep(profile="tiny", iteration_counts=(1, 19), engine=engine)
    assert fast.suite.names() == tiny_sweep.suite.names()
    for exact_m, fast_m in zip(tiny_sweep.suite, fast.suite):
        # Features and preprocessing never run through the fused tables.
        assert fast_m.known == exact_m.known
        assert fast_m.gathered == exact_m.gathered
        assert fast_m.kernel_preprocessing_ms == exact_m.kernel_preprocessing_ms
        for kernel, reference in exact_m.kernel_runtime_ms.items():
            value = fast_m.kernel_runtime_ms[kernel]
            if value != reference:  # covers inf == inf for unsupported kernels
                error = abs(value - reference) / abs(reference)
                assert error <= FAST_MODE_RELATIVE_TOLERANCE, (kernel, error)


def test_precision_participates_in_cache_keys_timing_mode_does_not():
    """Fast artifacts are only tolerance-close, so they get their own keys;
    scalar and batched exact timings are bit-identical, so they share."""
    spec = collection_specs("tiny")[0]
    exact = measurement_key(spec, KERNELS, MI100)
    assert measurement_key(spec, KERNELS, MI100, precision="exact") == exact
    assert measurement_key(spec, KERNELS, MI100, precision="fast") != exact
    base = sweep_config_key("tiny", 0, 1, (1,), MI100, KERNELS, None, None)
    assert (
        sweep_config_key(
            "tiny", 0, 1, (1,), MI100, KERNELS, None, None, precision="fast"
        )
        != base
    )
    assert (
        sweep_config_key(
            "tiny", 0, 1, (1,), MI100, KERNELS, None, None, precision="exact"
        )
        == base
    )


def test_fast_and_exact_cache_tiers_do_not_collide(tmp_path, monkeypatch):
    exact_engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    run_sweep(profile="tiny", iteration_counts=(1,), engine=exact_engine)
    fast_engine = SweepEngine(jobs=1, cache_dir=tmp_path, precision="fast")
    run_sweep(profile="tiny", iteration_counts=(1,), engine=fast_engine)
    # The fast run never served the exact artifacts (or vice versa) ...
    assert fast_engine.stats.sweep_cache_misses == 1
    assert fast_engine.stats.measurement_cache_hits == 0
    assert fast_engine.stats.matrices_measured > 0
    # ... but a second fast engine is served entirely from its own tier.
    _forbid_benchmarking(monkeypatch)
    warm = SweepEngine(jobs=1, cache_dir=tmp_path, precision="fast")
    run_sweep(profile="tiny", iteration_counts=(1,), engine=warm)
    assert warm.stats.sweep_cache_hits == 1
    assert warm.stats.matrices_measured == 0


def test_engine_validates_timing_mode_and_precision():
    engine = SweepEngine(timing_mode="scalar")  # scalar + exact is fine
    assert engine.describe()["timing_mode"] == "scalar"
    with pytest.raises(ValueError, match="ground-truth"):
        SweepEngine(timing_mode="scalar", precision="fast")
    with pytest.raises(ValueError, match="timing_mode"):
        SweepEngine(timing_mode="turbo")
    with pytest.raises(ValueError, match="precision"):
        SweepEngine(precision="approximate")


def test_engine_from_env_threads_timing_and_precision():
    engine = engine_from_env({}, precision="fast")
    assert engine is not None and engine.precision == "fast"
    assert engine_from_env({}, precision="exact") is None
    engine = engine_from_env({}, timing_mode="scalar")
    assert engine is not None and engine.timing_mode == "scalar"
    # The deprecated env switch resolves once, at engine construction ...
    engine = engine_from_env({"SEER_SCALAR_TIMING": "1"}, jobs=2)
    assert engine.timing_mode == "scalar"
    # ... but alone it still selects the serial reference path, whose
    # measure_matrix fallback honors it per call.
    assert engine_from_env({"SEER_SCALAR_TIMING": "1"}) is None


def test_scalar_engine_matches_batched_engine():
    scalar = SweepEngine(jobs=1, timing_mode="scalar")
    batched = SweepEngine(jobs=1, timing_mode="batched")
    specs = collection_specs("tiny")[:3]
    scalar_ms = scalar.measure_specs(specs, KERNELS)
    batched_ms = batched.measure_specs(specs, KERNELS)
    for s, b in zip(scalar_ms, batched_ms):
        assert s.kernel_runtime_ms == b.kernel_runtime_ms
        assert s.kernel_preprocessing_ms == b.kernel_preprocessing_ms
