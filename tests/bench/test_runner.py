"""Tests for the end-to-end sweep runner."""

import pytest

from repro.bench.runner import TEST_FRACTION, run_sweep
from repro.core.training import TrainingConfig
from repro.sparse.collection import build_collection


def test_sweep_result_structure(tiny_sweep):
    sweep = tiny_sweep
    assert len(sweep.dataset) == len(sweep.train_set) + len(sweep.test_set)
    expected_test = round(TEST_FRACTION * len(sweep.dataset))
    # stratification may shift the boundary by a few samples
    assert abs(len(sweep.test_set) - expected_test) <= 0.1 * len(sweep.dataset) + 2
    assert sweep.kernel_names == sweep.suite.kernel_names
    assert len(sweep.train_report.rows) == len(sweep.train_set)
    assert len(sweep.test_report.rows) == len(sweep.test_set)


def test_sweep_accepts_prebuilt_collection():
    collection = build_collection("tiny")
    sweep = run_sweep(
        collection=collection,
        iteration_counts=(1,),
        config=TrainingConfig(selector_cross_fit=0),
    )
    assert len(sweep.suite) == len(collection)
    assert {sample.iterations for sample in sweep.dataset} == {1}


def test_sweep_without_rocsparse_kernel():
    sweep = run_sweep(profile="tiny", include_rocsparse=False, iteration_counts=(1,))
    assert "rocSPARSE" not in sweep.kernel_names
    assert len(sweep.kernel_names) == 8


def test_sweep_split_changes_with_seed():
    first = run_sweep(profile="tiny", iteration_counts=(1,), split_seed=1)
    second = run_sweep(profile="tiny", iteration_counts=(1,), split_seed=2)
    first_names = {(row.name, row.iterations) for row in first.test_report.rows}
    second_names = {(row.name, row.iterations) for row in second.test_report.rows}
    assert first_names != second_names


def test_sweep_is_reproducible():
    first = run_sweep(profile="tiny", iteration_counts=(1,))
    second = run_sweep(profile="tiny", iteration_counts=(1,))
    assert first.test_report.aggregate_table() == pytest.approx(
        second.test_report.aggregate_table()
    )
