"""Tests for the Oracle predictor and the evaluation harness."""

import math

import pytest

from repro.bench.evaluation import (
    PREDICTOR_ORDER,
    evaluate_dataset,
    predictor_path_time_ms,
)
from repro.bench.oracle import OraclePredictor


def test_oracle_selects_minimum_total(tiny_sweep):
    oracle = OraclePredictor()
    for sample in tiny_sweep.dataset:
        pick = oracle.select(sample)
        time_ms = oracle.time_ms(sample)
        finite = [t for t in sample.kernel_total_ms.values() if math.isfinite(t)]
        assert time_ms == min(finite)
        assert sample.kernel_total_ms[pick] == time_ms


def test_predictor_path_time_adds_overhead(tiny_sweep):
    sample = tiny_sweep.dataset.samples[0]
    kernel = sample.best_kernel
    base = predictor_path_time_ms(sample, kernel)
    assert predictor_path_time_ms(sample, kernel, overhead_ms=0.5) == pytest.approx(
        base + 0.5
    )


def test_predictor_path_time_falls_back_for_unsupported_kernel(tiny_sweep):
    sample = tiny_sweep.dataset.samples[0]
    kernel = sample.best_kernel
    saved = sample.kernel_total_ms[kernel]
    sample.kernel_total_ms[kernel] = math.inf
    try:
        fallback = predictor_path_time_ms(sample, kernel)
        assert math.isfinite(fallback)
        assert fallback == max(
            t for t in sample.kernel_total_ms.values() if math.isfinite(t)
        )
    finally:
        sample.kernel_total_ms[kernel] = saved


def test_evaluation_report_structure(tiny_sweep):
    report = tiny_sweep.test_report
    assert len(report.rows) == len(tiny_sweep.test_set)
    table = report.aggregate_table()
    for approach in PREDICTOR_ORDER:
        assert approach in table
        assert math.isfinite(table[approach])
    for kernel in report.kernel_names:
        assert kernel in table


def test_oracle_is_a_lower_bound(tiny_sweep):
    report = tiny_sweep.test_report
    oracle_total = report.aggregate_ms("Oracle")
    for approach in ("Selector", "Gathered", "Known", *report.kernel_names):
        assert report.aggregate_ms(approach) >= oracle_total * (1 - 1e-9)
    assert report.slowdown_vs_oracle("Selector") >= 1.0
    assert report.slowdown_vs_oracle("Oracle") == pytest.approx(1.0)


def test_per_row_consistency(tiny_sweep):
    for row in tiny_sweep.test_report.rows:
        assert row.oracle_ms <= row.selector_ms + 1e-12
        assert row.oracle_ms <= row.known_ms + 1e-12
        assert row.oracle_ms <= row.gathered_ms + 1e-12
        assert row.selector_kernel in tiny_sweep.suite.kernel_names
        assert row.approach_time("Oracle") == row.oracle_ms
        assert row.approach_time(row.oracle_kernel) >= row.oracle_ms * (1 - 1e-12)


def test_accuracy_and_speedup_metrics_are_consistent(tiny_sweep):
    report = tiny_sweep.test_report
    for approach in ("Known", "Gathered", "Selector"):
        accuracy = report.accuracy(approach)
        assert 0.0 <= accuracy <= 1.0
    assert 0.0 <= report.selector_choice_accuracy() <= 1.0
    assert report.geomean_speedup_vs_kernels("Oracle") >= 1.0
    assert report.speedup_vs_best_single_kernel("Oracle") > 0.0
    with pytest.raises(ValueError):
        report.accuracy("Oracle")


def test_evaluate_dataset_on_training_split_matches_report(tiny_sweep):
    rebuilt = evaluate_dataset(tiny_sweep.train_set, tiny_sweep.models, tiny_sweep.predictor)
    assert len(rebuilt.rows) == len(tiny_sweep.train_set)
    assert rebuilt.kernel_names == tiny_sweep.train_report.kernel_names
    assert rebuilt.aggregate_ms("Selector") == pytest.approx(
        tiny_sweep.train_report.aggregate_ms("Selector")
    )
