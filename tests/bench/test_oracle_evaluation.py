"""Tests for the Oracle predictor and the evaluation harness."""

import math

import numpy as np
import pytest

from repro.bench.evaluation import (
    PREDICTOR_ORDER,
    ApproachTimes,
    EvaluationReport,
    evaluate_dataset,
    predictor_path_time_ms,
)
from repro.bench.oracle import OraclePredictor
from repro.core.dataset import TrainingSample


def test_oracle_selects_minimum_total(tiny_sweep):
    oracle = OraclePredictor()
    for sample in tiny_sweep.dataset:
        pick = oracle.select(sample)
        time_ms = oracle.time_ms(sample)
        finite = [t for t in sample.kernel_total_ms.values() if math.isfinite(t)]
        assert time_ms == min(finite)
        assert sample.kernel_total_ms[pick] == time_ms


def test_predictor_path_time_adds_overhead(tiny_sweep):
    sample = tiny_sweep.dataset.samples[0]
    kernel = sample.best_kernel
    base = predictor_path_time_ms(sample, kernel)
    assert predictor_path_time_ms(sample, kernel, overhead_ms=0.5) == pytest.approx(
        base + 0.5
    )


def test_predictor_path_time_falls_back_for_unsupported_kernel(tiny_sweep):
    sample = tiny_sweep.dataset.samples[0]
    kernel = sample.best_kernel
    saved = sample.kernel_total_ms[kernel]
    sample.kernel_total_ms[kernel] = math.inf
    try:
        fallback = predictor_path_time_ms(sample, kernel)
        assert math.isfinite(fallback)
        assert fallback == max(
            t for t in sample.kernel_total_ms.values() if math.isfinite(t)
        )
    finally:
        sample.kernel_total_ms[kernel] = saved


def test_evaluation_report_structure(tiny_sweep):
    report = tiny_sweep.test_report
    assert len(report.rows) == len(tiny_sweep.test_set)
    table = report.aggregate_table()
    for approach in PREDICTOR_ORDER:
        assert approach in table
        assert math.isfinite(table[approach])
    for kernel in report.kernel_names:
        assert kernel in table


def test_oracle_is_a_lower_bound(tiny_sweep):
    report = tiny_sweep.test_report
    oracle_total = report.aggregate_ms("Oracle")
    for approach in ("Selector", "Gathered", "Known", *report.kernel_names):
        assert report.aggregate_ms(approach) >= oracle_total * (1 - 1e-9)
    assert report.slowdown_vs_oracle("Selector") >= 1.0
    assert report.slowdown_vs_oracle("Oracle") == pytest.approx(1.0)


def test_per_row_consistency(tiny_sweep):
    for row in tiny_sweep.test_report.rows:
        assert row.oracle_ms <= row.selector_ms + 1e-12
        assert row.oracle_ms <= row.known_ms + 1e-12
        assert row.oracle_ms <= row.gathered_ms + 1e-12
        assert row.selector_kernel in tiny_sweep.suite.kernel_names
        assert row.approach_time("Oracle") == row.oracle_ms
        assert row.approach_time(row.oracle_kernel) >= row.oracle_ms * (1 - 1e-12)


def test_accuracy_and_speedup_metrics_are_consistent(tiny_sweep):
    report = tiny_sweep.test_report
    for approach in ("Known", "Gathered", "Selector"):
        accuracy = report.accuracy(approach)
        assert 0.0 <= accuracy <= 1.0
    assert 0.0 <= report.selector_choice_accuracy() <= 1.0
    assert report.geomean_speedup_vs_kernels("Oracle") >= 1.0
    assert report.speedup_vs_best_single_kernel("Oracle") > 0.0
    with pytest.raises(ValueError):
        report.accuracy("Oracle")


def test_evaluate_dataset_on_training_split_matches_report(tiny_sweep):
    rebuilt = evaluate_dataset(tiny_sweep.train_set, tiny_sweep.models, tiny_sweep.predictor)
    assert len(rebuilt.rows) == len(tiny_sweep.train_set)
    assert rebuilt.kernel_names == tiny_sweep.train_report.kernel_names
    assert rebuilt.aggregate_ms("Selector") == pytest.approx(
        tiny_sweep.train_report.aggregate_ms("Selector")
    )


def test_report_summary_matches_individual_metrics(tiny_sweep):
    report = tiny_sweep.test_report
    summary = report.summary()
    assert summary["samples"] == len(report.rows)
    assert summary["known_accuracy"] == report.accuracy("Known")
    assert summary["gathered_accuracy"] == report.accuracy("Gathered")
    assert summary["selector_choice_accuracy"] == report.selector_choice_accuracy()
    assert summary["selector_slowdown_vs_oracle"] == report.slowdown_vs_oracle()
    assert summary["selector_geomean_speedup_vs_kernels"] == (
        report.geomean_speedup_vs_kernels()
    )


# ----------------------------------------------------------------------
# Edge cases: ties, unsupported kernels, empty selections
# ----------------------------------------------------------------------
def _sample(totals, name="edge", iterations=1, collection_time_ms=0.1, best=None):
    """Hand-built training sample with explicit per-kernel totals."""
    if best is None:
        finite = {k: v for k, v in totals.items() if math.isfinite(v)}
        best = min(finite, key=lambda kernel: (finite[kernel], kernel))
    return TrainingSample(
        name=name,
        iterations=iterations,
        known_vector=np.zeros(4),
        gathered_vector=np.zeros(4),
        collection_time_ms=collection_time_ms,
        kernel_total_ms=dict(totals),
        best_kernel=best,
    )


def _row(
    gathered_ms,
    known_ms,
    selector_choice,
    kernel_totals,
    oracle_kernel=None,
    name="edge-row",
):
    """Hand-built evaluation row exercising selector/aggregate edge cases."""
    finite = {k: v for k, v in kernel_totals.items() if math.isfinite(v)}
    if oracle_kernel is None:
        oracle_kernel = min(finite, key=lambda kernel: (finite[kernel], kernel))
    return ApproachTimes(
        name=name,
        iterations=1,
        oracle_kernel=oracle_kernel,
        oracle_ms=finite[oracle_kernel],
        selector_choice=selector_choice,
        selector_kernel=oracle_kernel,
        selector_ms=finite[oracle_kernel],
        selector_overhead_ms=0.0,
        gathered_kernel=oracle_kernel,
        gathered_ms=gathered_ms,
        gathered_overhead_ms=0.0,
        known_kernel=oracle_kernel,
        known_ms=known_ms,
        kernel_totals_ms=dict(kernel_totals),
    )


def test_oracle_breaks_exact_ties_by_kernel_name():
    sample = _sample({"B": 1.0, "A": 1.0, "C": 2.0})
    oracle = OraclePredictor()
    assert oracle.select(sample) == "A"
    assert oracle.time_ms(sample) == 1.0


def test_oracle_ignores_unsupported_kernels_in_ties():
    sample = _sample({"A": math.inf, "B": 3.0, "C": 3.0})
    assert OraclePredictor().select(sample) == "B"


def test_oracle_raises_when_no_kernel_is_runnable():
    sample = _sample({"A": math.inf, "B": math.inf}, best="A")
    with pytest.raises(ValueError, match="no runnable kernel"):
        OraclePredictor().select(sample)


def test_aggregate_ms_substitutes_worst_finite_for_missing_kernel():
    # Kernel "B" cannot process the first matrix: its aggregate charges the
    # worst finite time of that matrix instead of going infinite.
    rows = [
        _row(1.0, 1.0, "known", {"A": 2.0, "B": math.inf, "C": 5.0}),
        _row(1.0, 1.0, "known", {"A": 2.0, "B": 3.0, "C": 4.0}),
    ]
    report = EvaluationReport(kernel_names=["A", "B", "C"], rows=rows)
    assert report.aggregate_ms("B") == 5.0 + 3.0
    assert report.aggregate_ms("A") == 4.0
    assert math.isfinite(report.speedup_vs_best_single_kernel("Oracle"))


def test_geomean_skips_unsupported_kernels():
    rows = [_row(1.0, 1.0, "known", {"A": 2.0, "B": math.inf})]
    report = EvaluationReport(kernel_names=["A", "B"], rows=rows)
    # Only the finite kernel contributes a ratio.
    assert report.geomean_speedup_vs_kernels("Oracle") == pytest.approx(1.0)


def test_selector_choice_tie_counts_either_path_as_correct():
    tie = _row(2.5, 2.5, "gathered", {"A": 1.0, "B": 2.0})
    report = EvaluationReport(kernel_names=["A", "B"], rows=[tie])
    assert report.selector_choice_accuracy() == 1.0
    tie_known = _row(2.5, 2.5, "known", {"A": 1.0, "B": 2.0})
    report = EvaluationReport(kernel_names=["A", "B"], rows=[tie_known])
    assert report.selector_choice_accuracy() == 1.0


def test_empty_report_edge_behaviour():
    report = EvaluationReport(kernel_names=["A"])
    assert math.isnan(report.selector_choice_accuracy())
    assert report.aggregate_ms("Oracle") == 0.0
    with pytest.raises(ValueError):
        report.accuracy("Known")
    with pytest.raises(ValueError):
        report.geomean_speedup_vs_kernels("Selector")


def test_predictor_path_time_raises_for_unknown_kernel():
    sample = _sample({"A": 1.0})
    with pytest.raises(KeyError):
        predictor_path_time_ms(sample, "definitely-not-a-kernel")
