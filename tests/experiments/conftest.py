"""Fixtures shared by the experiment-suite tests."""

from __future__ import annotations

import pytest

from repro.experiments.registry import ExperimentContext


@pytest.fixture(scope="package")
def spmv_tiny_context():
    """One SpMV tiny-profile suite context shared across experiment tests."""
    return ExperimentContext(domain="spmv", profile="tiny")


@pytest.fixture(scope="package")
def spmm_tiny_context():
    """One SpMM tiny-profile suite context shared across experiment tests."""
    return ExperimentContext(domain="spmm", profile="tiny")
