"""Tests for the per-figure/table experiment drivers.

The heavy profiles are exercised by the benchmark harness; these tests run
the drivers on the small/tiny sweeps and assert the *structural* properties
each figure is meant to demonstrate.
"""

import math

import pytest

from repro.experiments.accuracy_table import run_accuracy_table
from repro.experiments.fig1_best_kernel import run_fig1
from repro.experiments.fig5_single_iteration import run_fig5
from repro.experiments.fig6_feature_cost import run_fig6
from repro.experiments.fig7_multi_iteration import FIG7_ITERATIONS, run_fig7
from repro.experiments.table1_features import PRIOR_WORK_COLUMNS, run_table1
from repro.experiments.table3_kendall import TABLE3_FEATURES, run_table3


# ----------------------------------------------------------------------
# Fig. 1
# ----------------------------------------------------------------------
def test_fig1_multiple_winners(small_sweep):
    result = run_fig1(sweep=small_sweep)
    assert len(result.points) == len(small_sweep.suite)
    assert result.distinct_winners >= 3
    assert sum(result.winner_counts.values()) == len(result.points)
    rows = result.to_rows()
    assert rows == sorted(rows, key=lambda row: row[1])
    assert "Fig. 1" in result.render()


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def test_table1_capabilities_are_implemented():
    result = run_table1()
    assert result.seer_supports_all()
    rows = result.to_rows()
    assert len(rows) == 7
    for row in rows:
        assert len(row) == 2 + len(PRIOR_WORK_COLUMNS)
        assert row[1] == "yes"
    rendered = result.render()
    assert "Explainability" in rendered


# ----------------------------------------------------------------------
# Table III
# ----------------------------------------------------------------------
def test_table3_correlations(small_sweep):
    result = run_table3(sweep=small_sweep)
    assert set(result.correlations) == set(small_sweep.kernel_names)
    for row in result.correlations.values():
        for feature in TABLE3_FEATURES:
            value = row[feature]
            assert math.isnan(value) or 0.0 <= value <= 1.0
    # Work-oriented kernels track total work (nnz) at least as strongly as
    # the padded ELL kernel does.
    assert result.row_for("CSR,WO")["nnz"] >= result.row_for("ELL,TM")["nnz"] - 1e-9
    assert "Kendall" in result.render()


# ----------------------------------------------------------------------
# Accuracy (Section IV-C)
# ----------------------------------------------------------------------
def test_accuracy_table(small_sweep):
    result = run_accuracy_table(sweep=small_sweep)
    for value in (
        result.known_accuracy,
        result.gathered_accuracy,
        result.selector_accuracy,
        result.selector_kernel_accuracy,
    ):
        assert 0.0 <= value <= 1.0
    assert result.gathered_accuracy >= result.known_accuracy - 0.05
    assert result.test_samples == len(small_sweep.test_set)
    assert "paper" in result.render()


# ----------------------------------------------------------------------
# Fig. 5
# ----------------------------------------------------------------------
def test_fig5_aggregate_without_studies(small_sweep):
    result = run_fig5(sweep=small_sweep, include_studies=False)
    assert result.studies == []
    assert result.aggregate["Oracle"] <= result.aggregate["Selector"]
    assert result.aggregate["Oracle"] <= result.aggregate["Known"]
    assert result.geomean_speedup_vs_kernels >= 1.0
    assert result.slowdown_vs_oracle >= 1.0
    assert "Fig. 5d" in result.render()


def test_fig5_per_matrix_studies(small_sweep):
    result = run_fig5(sweep=small_sweep, include_studies=True)
    assert len(result.studies) == 3
    for study in result.studies:
        labels = [bar.label for bar in study.bars]
        assert labels[:4] == ["Oracle", "Selector", "Gathered", "Known"]
        assert len(labels) == 4 + 8  # predictors + the Fig. 5 kernel set
        oracle = study.bar("Oracle").total_ms
        for bar in study.bars:
            if math.isfinite(bar.total_ms):
                assert bar.total_ms >= oracle * (1 - 1e-9)
                assert bar.overhead_ms <= bar.total_ms + 1e-12
        # the gathered path always pays a collection overhead
        assert study.bar("Gathered").overhead_ms > 0.0


# ----------------------------------------------------------------------
# Fig. 6
# ----------------------------------------------------------------------
def test_fig6_crossover_behaviour():
    result = run_fig6(row_counts=(100, 1_000, 10_000, 100_000, 1_000_000))
    assert len(result.points) == 5
    small = result.points[0]
    large = result.points[-1]
    assert small.collection_dominates
    assert not large.collection_dominates
    crossover = result.crossover_rows()
    assert 1_000 < crossover <= 1_000_000
    assert "crossover" in result.render()


# ----------------------------------------------------------------------
# Fig. 7
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig7_result(small_sweep):
    scales = {
        "CurlCurl_3_like": 8192,
        "G3_Circuit_like": 8192,
        "PWTK_like": 8192,
    }
    return run_fig7(sweep=small_sweep, scales=scales)


def test_fig7_panels_cover_both_iteration_counts(fig7_result):
    assert len(fig7_result.cases) == 6
    assert {case.iterations for case in fig7_result.cases} == set(FIG7_ITERATIONS)
    for case in fig7_result.cases:
        assert case.oracle_ms <= case.selector_ms + 1e-9
        assert case.oracle_kernel in case.kernel_totals_ms


def test_fig7_adaptive_never_wins_single_iteration(fig7_result):
    for case in fig7_result.cases:
        if case.iterations == 1:
            assert not case.oracle_uses_preprocessing_kernel


def test_fig7_amortization_flips_for_some_matrix(fig7_result):
    flips = fig7_result.amortization_flips()
    assert "G3_Circuit_like" not in flips
    assert len(flips) >= 1
    assert "Fig. 7" in fig7_result.render()
