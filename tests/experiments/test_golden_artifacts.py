"""Golden-artifact regression tests for the SpMV experiment suite.

Every SpMV experiment's tiny-profile artifact CSV is checked in under
``goldens/``; these tests assert byte-stable reproduction through the
registry, catching silent numeric or formatting drift the structural smoke
tests cannot see.  They also assert the registry path produces exactly what
a direct call of the legacy driver functions produces — the port changed
the plumbing, not the numbers.

Regenerate the goldens after an *intentional* change with::

    SEER_UPDATE_GOLDENS=1 python -m pytest tests/experiments/test_golden_artifacts.py
"""

import os
from pathlib import Path

import pytest

from repro.experiments import (
    run_accuracy_table,
    run_fig1,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table1,
    run_table3,
)
from repro.experiments.registry import experiments_for, get_experiment, run_experiment

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Every experiment the SpMV domain supports, i.e. all ported drivers.
SPMV_EXPERIMENTS = ("fig1", "fig5", "fig6", "fig7", "table1", "table3", "accuracy")


def test_every_spmv_experiment_has_a_golden():
    """A new SpMV-capable experiment must check in a golden alongside."""
    registered = {spec.name for spec in experiments_for("spmv")}
    assert registered == set(SPMV_EXPERIMENTS)


def _registry_csv(name: str, context) -> str:
    result = run_experiment(get_experiment(name), context)
    return result.to_artifact().to_csv()


@pytest.mark.parametrize("name", SPMV_EXPERIMENTS)
def test_spmv_artifact_matches_golden(name, spmv_tiny_context):
    csv_text = _registry_csv(name, spmv_tiny_context)
    golden = GOLDEN_DIR / f"{name}.csv"
    if os.environ.get("SEER_UPDATE_GOLDENS"):
        golden.parent.mkdir(parents=True, exist_ok=True)
        golden.write_bytes(csv_text.encode("utf-8"))
        pytest.skip(f"regenerated golden {golden.name}")
    assert golden.exists(), (
        f"missing golden {golden}; regenerate with SEER_UPDATE_GOLDENS=1"
    )
    assert csv_text.encode("utf-8") == golden.read_bytes(), (
        f"artifact of {name!r} drifted from its golden; if the change is "
        "intentional, regenerate with SEER_UPDATE_GOLDENS=1"
    )


def test_registry_is_bit_identical_to_legacy_drivers(spmv_tiny_context):
    """The registry wrappers reproduce the pre-refactor driver outputs."""
    context = spmv_tiny_context
    sweep = context.sweep()

    from repro.experiments.fig6_feature_cost import row_counts_for_profile

    legacy = {
        "fig1": run_fig1(sweep=sweep),
        "fig5": run_fig5(sweep=sweep),
        "fig7": run_fig7(sweep=sweep),
        "table1": run_table1(),
        "table3": run_table3(sweep=sweep),
        "accuracy": run_accuracy_table(sweep=sweep),
        # The suite scales the fig6 row grid to the profile; the driver
        # itself is unchanged, so the same grid must give the same result.
        "fig6": run_fig6(row_counts=row_counts_for_profile(context.profile)),
    }
    for name, legacy_result in legacy.items():
        registry_result = run_experiment(get_experiment(name), context)
        assert registry_result.render() == legacy_result.render(), name
        assert (
            registry_result.to_artifact().to_csv()
            == legacy_result.to_artifact().to_csv()
        ), name
