"""Tests for the experiment registry, context and artifact machinery."""

import json
import math

import pytest

from repro.domains import get_domain
from repro.experiments import registry as registry_module
from repro.experiments.registry import (
    ExperimentArtifact,
    ExperimentContext,
    experiment_names,
    experiments_for,
    format_cell,
    get_experiment,
    register_experiment,
    run_experiment,
    unregister_experiment,
    write_artifact,
)

#: Paper order the suite registers in.
EXPECTED_ORDER = (
    "fig1",
    "fig5",
    "fig6",
    "fig7",
    "table1",
    "table3",
    "accuracy",
    "spmm_amortization",
)


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
def test_registry_knows_every_experiment_in_paper_order():
    assert experiment_names() == EXPECTED_ORDER


def test_spec_metadata():
    fig1 = get_experiment("fig1")
    assert fig1.needs_sweep and fig1.domains is None
    fig6 = get_experiment("fig6")
    assert not fig6.needs_sweep
    fig7 = get_experiment("fig7")
    assert fig7.domains == ("spmv",)
    amortization = get_experiment("spmm_amortization")
    assert amortization.domains == ("spmm",) and not amortization.needs_sweep


def test_unknown_experiment_suggests_close_matches():
    with pytest.raises(KeyError, match="fig1"):
        get_experiment("fig11")


def test_duplicate_registration_is_an_error():
    @register_experiment("registry_test_experiment", title="t", needs_sweep=False)
    def _runner(context):
        return None

    try:
        with pytest.raises(ValueError, match="already registered"):
            register_experiment("registry_test_experiment", title="t")(_runner)
    finally:
        unregister_experiment("registry_test_experiment")
    assert "registry_test_experiment" not in experiment_names()


def test_experiments_for_filters_by_domain():
    spmv_names = [spec.name for spec in experiments_for("spmv")]
    spmm_names = [spec.name for spec in experiments_for("spmm")]
    assert "fig7" in spmv_names and "fig7" not in spmm_names
    assert "spmm_amortization" in spmm_names and "spmm_amortization" not in spmv_names
    for name in ("fig1", "fig5", "fig6", "table1", "table3", "accuracy"):
        assert name in spmv_names and name in spmm_names


def test_run_experiment_rejects_unsupported_domain():
    context = ExperimentContext(domain="spmm", profile="tiny")
    with pytest.raises(ValueError, match="does not support"):
        run_experiment("fig7", context)


def test_capability_predicate_filters_incapable_domains():
    """fig6 is only offered to domains that declare a reference kernel."""
    from repro.domains import ProblemDomain, register_domain, unregister_domain

    class _NoCostKernelDomain(ProblemDomain):
        name = "registry-test-nocost"

    domain = _NoCostKernelDomain()
    register_domain(domain)
    try:
        assert domain.feature_cost_kernel is None
        names = [spec.name for spec in experiments_for(domain)]
        assert "fig6" not in names  # filtered, not crashed mid-suite
        assert "fig1" in names
        with pytest.raises(ValueError, match="does not support"):
            run_experiment("fig6", ExperimentContext(domain=domain))
    finally:
        unregister_domain(domain.name)


# ----------------------------------------------------------------------
# Context
# ----------------------------------------------------------------------
def test_context_resolves_domain_and_caches_sweep(spmv_tiny_context):
    assert spmv_tiny_context.domain is get_domain("spmv")
    assert spmv_tiny_context.sweep() is spmv_tiny_context.sweep()
    assert spmv_tiny_context.sweep().domain_name == "spmv"


def test_context_defaults():
    context = ExperimentContext()
    assert context.domain.name == "spmv"
    assert context.engine is None
    assert "spmv" in repr(context)


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------
def test_artifact_rejects_ragged_rows():
    with pytest.raises(ValueError, match="cells"):
        ExperimentArtifact(columns=("a", "b"), rows=[(1, 2), (3,)])


def test_format_cell_is_deterministic():
    assert format_cell("x") == "x"
    assert format_cell(3) == "3"
    assert format_cell(True) == "yes" and format_cell(False) == "no"
    assert format_cell(1.5) == "1.5"
    assert format_cell(float("inf")) == "inf"
    assert format_cell(float("nan")) == "nan"
    # repr round-trips, so parsing the cell recovers the exact value
    value = 0.1 + 0.2
    assert float(format_cell(value)) == value


def test_artifact_csv_layout():
    artifact = ExperimentArtifact(
        columns=("name", "value"), rows=[("a", 1.25), ("b", math.inf)]
    )
    assert artifact.to_csv() == "name,value\na,1.25\nb,inf\n"
    assert artifact.to_csv() == artifact.to_csv()


def test_write_artifact_emits_csv_and_manifest(tmp_path):
    context = ExperimentContext(domain="spmv", profile="tiny")
    spec = get_experiment("table1")  # no sweep needed: cheap
    result = run_experiment(spec, context)
    paths = write_artifact(spec, context, result, tmp_path)
    assert paths["data"] == tmp_path / "spmv" / "table1" / "data.csv"
    header = paths["data"].read_text().splitlines()[0]
    assert header.split(",")[0] == "feature"
    manifest = json.loads(paths["manifest"].read_text())
    assert manifest["experiment"] == "table1"
    assert manifest["domain"]["name"] == "spmv"
    assert manifest["profile"] is None  # table1 never runs a sweep
    assert manifest["row_count"] == 7
    assert manifest["summary"]["seer_supports_all"] is True
    assert manifest["engine"] is None  # context ran without an engine
    assert "sweep_summary" not in manifest


def test_write_artifact_records_engine_config_without_stats(tmp_path):
    from repro.bench.engine import SweepEngine

    engine = SweepEngine(jobs=2, cache_dir=tmp_path / "cache")
    context = ExperimentContext(domain="spmv", profile="tiny", engine=engine)
    spec = get_experiment("table1")
    paths = write_artifact(spec, context, run_experiment(spec, context), tmp_path)
    manifest = json.loads(paths["manifest"].read_text())
    assert manifest["engine"]["jobs"] == 2
    assert manifest["engine"]["cache_dir"] == str(tmp_path / "cache")
    # Activity counters vary between cold and warm runs and must stay out.
    assert "stats" not in manifest["engine"]


def test_write_artifact_includes_sweep_summary_for_sweep_experiments(
    tmp_path, spmv_tiny_context
):
    spec = get_experiment("accuracy")
    result = run_experiment(spec, spmv_tiny_context)
    paths = write_artifact(spec, spmv_tiny_context, result, tmp_path)
    manifest = json.loads(paths["manifest"].read_text())
    assert manifest["profile"] == "tiny"
    summary = manifest["sweep_summary"]
    assert summary["samples"] == len(spmv_tiny_context.sweep().test_report.rows)
    assert 0.0 <= summary["known_accuracy"] <= 1.0
    assert summary["selector_slowdown_vs_oracle"] >= 1.0


def test_registry_module_exposes_format_version():
    assert isinstance(registry_module.ARTIFACT_FORMAT_VERSION, int)
