"""The experiment suite run against a non-SpMV domain (SpMM).

These tests are what the refactor bought: the same figures/tables the paper
reports for SpMV, regenerated for another registered domain through exactly
the same registry path.
"""

import math

from repro.domains import get_domain
from repro.experiments.registry import experiments_for, get_experiment, run_experiment
from repro.experiments.spmm_amortization import run_spmm_amortization
from repro.experiments.table3_kendall import TABLE3_FEATURES, table3_feature_names


def test_every_supported_experiment_completes_on_spmm(spmm_tiny_context):
    for spec in experiments_for("spmm"):
        result = run_experiment(spec, spmm_tiny_context)
        artifact = result.to_artifact()
        assert artifact.rows, spec.name
        assert isinstance(result.render(), str)


def test_fig1_on_spmm_covers_every_workload(spmm_tiny_context):
    result = run_experiment(get_experiment("fig1"), spmm_tiny_context)
    sweep = spmm_tiny_context.sweep()
    assert len(result.points) == len(sweep.suite)
    assert set(result.winner_counts) <= set(sweep.kernel_names)
    assert result.distinct_winners >= 2


def test_fig5_on_spmm_skips_archetype_studies(spmm_tiny_context):
    result = run_experiment(get_experiment("fig5"), spmm_tiny_context)
    assert result.studies == []  # archetypes are SpMV-specific
    assert result.aggregate["Oracle"] <= result.aggregate["Selector"]
    assert result.slowdown_vs_oracle >= 1.0


def test_table3_on_spmm_uses_the_domain_schema(spmm_tiny_context):
    sweep = spmm_tiny_context.sweep()
    names = table3_feature_names(sweep)
    domain = get_domain("spmm")
    assert names != TABLE3_FEATURES
    assert "iterations" not in names
    assert "num_vectors" in names
    assert set(domain.gathered_feature_names) <= set(names)
    result = run_experiment(get_experiment("table3"), spmm_tiny_context)
    assert result.feature_names == names
    for row in result.correlations.values():
        for feature in names:
            value = row[feature]
            assert math.isnan(value) or 0.0 <= value <= 1.0


def test_fig6_on_spmm_uses_the_domain_reference_kernel(spmm_tiny_context):
    from repro.experiments.fig6_feature_cost import run_fig6

    result = run_fig6(row_counts=(100, 10_000, 100_000), domain="spmm")
    assert result.kernel_name == get_domain("spmm").feature_cost_kernel
    assert len(result.points) == 3
    for point in result.points:
        assert point.collection_ms > 0.0 and point.kernel_ms > 0.0


def test_spmm_amortization_study_structure():
    # The default matrix size is deliberately outside the launch-overhead
    # regime; the amortization trend only exists there.
    result = run_spmm_amortization()
    assert result.rows == 32768 and result.nnz > 0
    points = sorted(result.points, key=lambda p: p.num_vectors)
    assert [p.num_vectors for p in points] == [1, 2, 4, 8, 16, 32, 64]
    # The collector scans the sparse matrix only: its cost must not depend
    # on the dense block width.
    costs = {p.collection_ms for p in points}
    assert len(costs) == 1
    # Kernel runtime grows with num_vectors ...
    assert points[-1].best_kernel_ms > points[0].best_kernel_ms
    # ... so collection amortizes faster for wide dense blocks.
    assert points[-1].amortize_iterations < points[0].amortize_iterations
    rendered = result.render()
    assert "num_vectors" in rendered and "amortize" in rendered
