"""End-to-end integration tests of the paper's qualitative claims.

These run the whole pipeline (synthetic collection -> benchmarking ->
training -> evaluation) on the ``small`` profile and assert the directional
results the paper reports.  The headline magnitudes are reproduced by the
benchmark harness on the larger profiles; here the point is that the pieces
compose and the dynamics point the right way.
"""

import numpy as np

from repro.bench.evaluation import evaluate_dataset
from repro.core.training import USE_GATHERED, USE_KNOWN


def test_selector_tracks_oracle_and_beats_fixed_choices(small_sweep):
    """The deployed selector must stay close to the Oracle and never lose to
    always-known / always-gathered by a large margin."""
    report = evaluate_dataset(small_sweep.dataset, small_sweep.models, small_sweep.predictor)
    selector = report.aggregate_ms("Selector")
    assert report.aggregate_ms("Oracle") <= selector
    assert selector <= 1.6 * report.aggregate_ms("Oracle")
    assert selector <= 1.1 * report.aggregate_ms("Gathered")
    assert selector <= 1.1 * report.aggregate_ms("Known")


def test_selector_avoids_every_kernels_worst_case(small_sweep):
    """No individual kernel's aggregate should beat the selector by much,
    and the worst kernels should lose to it decisively (the Fig. 5d story)."""
    report = evaluate_dataset(small_sweep.dataset, small_sweep.models, small_sweep.predictor)
    selector = report.aggregate_ms("Selector")
    kernel_totals = {k: report.aggregate_ms(k) for k in report.kernel_names}
    assert min(kernel_totals.values()) >= 0.85 * selector
    assert max(kernel_totals.values()) >= 3.0 * selector
    assert report.geomean_speedup_vs_kernels("Selector") > 1.0


def test_gathered_features_matter_somewhere(small_sweep):
    """The gathered model must pick better kernels than the known model —
    otherwise feature collection would be pointless (Section IV-C).  The
    comparison excludes the collection overhead: on the small profile the
    matrices are tiny and the overhead rightly dominates (that is Fig. 6's
    point); what must improve is the quality of the selection itself."""
    report = small_sweep.test_report
    assert report.accuracy("Gathered") >= report.accuracy("Known")

    def pick_cost(row, kernel):
        value = row.kernel_totals_ms[kernel]
        if not np.isfinite(value):
            value = max(v for v in row.kernel_totals_ms.values() if np.isfinite(v))
        return value

    known_total = sum(pick_cost(row, row.known_kernel) for row in report.rows)
    gathered_total = sum(pick_cost(row, row.gathered_kernel) for row in report.rows)
    assert gathered_total <= known_total * 1.001


def test_selector_uses_both_paths(small_sweep):
    """The classifier-selection model must actually route some inputs to each
    of its two sub-models (otherwise it degenerates)."""
    report = evaluate_dataset(small_sweep.dataset, small_sweep.models, small_sweep.predictor)
    choices = {row.selector_choice for row in report.rows}
    assert choices == {USE_KNOWN, USE_GATHERED}


def test_known_path_skips_collection_cost(small_sweep):
    report = evaluate_dataset(small_sweep.dataset, small_sweep.models, small_sweep.predictor)
    for row in report.rows:
        if row.selector_choice == USE_KNOWN:
            assert row.selector_overhead_ms < 0.01
        else:
            assert row.selector_overhead_ms >= row.gathered_overhead_ms * 0.99


def test_multi_iteration_labels_shift_towards_preprocessing_kernels(small_sweep):
    """Across the corpus, preprocessing kernels win more often at higher
    iteration counts (the amortization effect of Fig. 7)."""
    by_iterations = {}
    for sample in small_sweep.dataset:
        wins = by_iterations.setdefault(sample.iterations, [0, 0])
        wins[1] += 1
        if sample.best_kernel in ("CSR,A", "rocSPARSE"):
            wins[0] += 1
    fractions = {
        iterations: wins / total for iterations, (wins, total) in by_iterations.items()
    }
    assert fractions[max(fractions)] >= fractions[min(fractions)]


def test_end_to_end_execute_produces_correct_numerics(small_sweep, rng):
    """Selecting and executing through the deployed predictor returns the
    mathematically correct SpMV result."""
    from repro.sparse.generators import power_law_matrix

    matrix = power_law_matrix(3_000, 3_000, 10.0, rng=2)
    x = rng.uniform(-1.0, 1.0, 3_000)
    result = small_sweep.predictor.execute(matrix, x, iterations=1)
    np.testing.assert_allclose(result.run.y, matrix.spmv(x), rtol=1e-9)


def test_generated_code_matches_deployed_models(small_sweep):
    """The exported C++/Python artifacts encode the same trees the runtime uses."""
    from repro.core.codegen import models_to_python_module

    namespace = {}
    exec(models_to_python_module(small_sweep.models), namespace)  # noqa: S102
    for sample in list(small_sweep.test_set)[:20]:
        expected = small_sweep.models.predict_known(sample.known_vector)
        produced = namespace["KERNEL_CLASSES"][
            namespace["known_classifier"](sample.known_vector)
        ]
        assert produced == expected
