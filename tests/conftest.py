"""Shared fixtures for the Seer reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import run_sweep
from repro.gpu.device import MI100, SMALL_GPU
from repro.sparse import generators as gen


@pytest.fixture(scope="session")
def mi100():
    """The default simulated device."""
    return MI100


@pytest.fixture(scope="session")
def small_device():
    """A small simulated device that saturates early (useful for edge cases)."""
    return SMALL_GPU


@pytest.fixture(scope="session")
def rng():
    """Deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_matrices():
    """A dictionary of small matrices covering the structural families."""
    return {
        "regular": gen.regular_matrix(256, 256, 8, rng=1),
        "banded": gen.banded_matrix(300, 9, rng=2),
        "power_law": gen.power_law_matrix(400, 400, 6.0, rng=3),
        "skewed": gen.skewed_matrix(300, 300, 3, 4, 120, rng=4),
        "uniform": gen.uniform_random_matrix(200, 300, 0.03, rng=5),
        "block": gen.block_diagonal_matrix(16, 16, rng=6),
        "variable_block": gen.variable_block_matrix(257, 4, 24, rng=7),
        "empty_heavy": gen.empty_row_heavy_matrix(256, 256, 0.5, 10, rng=8),
        "diagonal": gen.diagonal_matrix(128, rng=9),
        "road": gen.road_network_matrix(512, rng=10),
    }


@pytest.fixture(scope="session")
def tiny_sweep():
    """One end-to-end pipeline run on the tiny profile, shared by tests."""
    return run_sweep(profile="tiny", iteration_counts=(1, 19))


@pytest.fixture(scope="session")
def small_sweep():
    """One end-to-end pipeline run on the small profile, shared by tests."""
    return run_sweep(profile="small")


@pytest.fixture(scope="session")
def tiny_sweep_spmm():
    """One end-to-end SpMM pipeline run on the tiny profile."""
    return run_sweep(profile="tiny", domain="spmm", iteration_counts=(1, 19))
