"""Tests for raw matrix sources: files, recipes, discovery and digests."""

import numpy as np
import pytest

from repro.pipeline.sources import (
    MatrixSource,
    MatrixSourceError,
    build_recipe,
    discover_sources,
    load_source,
    parse_recipe,
    recipe_builders,
    source_digest,
    source_from_path,
)
from repro.sparse.generators import banded_matrix, power_law_matrix
from repro.sparse.io import save_npz, write_matrix_market


# ----------------------------------------------------------------------
# Recipes
# ----------------------------------------------------------------------
def test_parse_recipe_splits_reserved_keys():
    builder, params, seed, name = parse_recipe(
        "recipe:power_law_matrix?num_rows=64&num_cols=32&avg_row_length=3.5"
        "&seed=9&name=web"
    )
    assert builder == "power_law_matrix"
    assert params == {"num_rows": 64, "num_cols": 32, "avg_row_length": 3.5}
    assert seed == 9 and name == "web"


def test_recipe_builders_cover_the_generator_module():
    builders = recipe_builders()
    assert "power_law_matrix" in builders
    assert "stencil_matrix" in builders
    assert all(name.endswith("_matrix") for name in builders)


def test_build_recipe_matches_direct_generator_call():
    spec = "recipe:banded_matrix?num_rows=50&bandwidth=5&seed=3"
    expected = banded_matrix(num_rows=50, bandwidth=5, rng=np.random.default_rng(3))
    np.testing.assert_allclose(build_recipe(spec).to_dense(), expected.to_dense())


@pytest.mark.parametrize(
    "spec",
    [
        "recipe:not_a_builder?num_rows=4",
        "recipe:power_law_matrix?num_rows",
        "recipe:power_law_matrix?num_rows=abc",
        "not-a-recipe",
    ],
)
def test_bad_recipes_rejected(spec):
    with pytest.raises(MatrixSourceError):
        parse_recipe(spec)


def test_build_recipe_rejects_unknown_builder_kwargs():
    with pytest.raises(MatrixSourceError, match="recipe"):
        build_recipe("recipe:diagonal_matrix?bogus_param=3")


def test_recipe_digest_is_order_insensitive():
    a = source_digest("recipe:regular_matrix?num_rows=8&num_cols=8&row_length=2")
    b = source_digest("recipe:regular_matrix?row_length=2&num_cols=8&num_rows=8")
    assert a == b


# ----------------------------------------------------------------------
# File sources
# ----------------------------------------------------------------------
def test_load_source_round_trips_all_file_kinds(tmp_path):
    matrix = power_law_matrix(40, 30, 4.0, rng=2)
    write_matrix_market(matrix, tmp_path / "m.mtx")
    save_npz(matrix, tmp_path / "m.npz")

    import gzip

    raw = (tmp_path / "m.mtx").read_bytes()
    (tmp_path / "mgz.mtx.gz").write_bytes(gzip.compress(raw))

    for name in ("m.mtx", "m.npz", "mgz.mtx.gz"):
        loaded = load_source(tmp_path / name)
        np.testing.assert_allclose(loaded.to_dense(), matrix.to_dense())


def test_source_names_strip_matrix_suffixes(tmp_path):
    assert source_from_path(tmp_path / "a.mtx").name == "a"
    assert source_from_path(tmp_path / "b.mtx.gz").name == "b"
    assert source_from_path(tmp_path / "c.npz").name == "c"


def test_file_digest_tracks_content(tmp_path):
    matrix = power_law_matrix(10, 10, 2.0, rng=1)
    write_matrix_market(matrix, tmp_path / "a.mtx")
    write_matrix_market(matrix, tmp_path / "b.mtx")
    assert source_digest(tmp_path / "a.mtx") == source_digest(tmp_path / "b.mtx")
    write_matrix_market(power_law_matrix(10, 10, 2.0, rng=2), tmp_path / "b.mtx")
    assert source_digest(tmp_path / "a.mtx") != source_digest(tmp_path / "b.mtx")


def test_missing_file_raises_source_error(tmp_path):
    with pytest.raises(MatrixSourceError, match="no such matrix file"):
        load_source(tmp_path / "absent.mtx")


def test_unrecognised_suffix_rejected(tmp_path):
    with pytest.raises(MatrixSourceError, match="unrecognised"):
        source_from_path(tmp_path / "matrix.csv")


# ----------------------------------------------------------------------
# Discovery
# ----------------------------------------------------------------------
def test_discover_directory_sorts_by_name(tmp_path):
    matrix = power_law_matrix(12, 12, 2.0, rng=4)
    for name in ("zeta.mtx", "alpha.npz", "mid.mtx"):
        if name.endswith(".npz"):
            save_npz(matrix, tmp_path / name)
        else:
            write_matrix_market(matrix, tmp_path / name)
    (tmp_path / "notes.txt").write_text("ignored\n")
    sources = discover_sources(tmp_path)
    assert [s.name for s in sources] == ["alpha", "mid", "zeta"]
    assert all(isinstance(s, MatrixSource) for s in sources)


def test_discover_manifest_preserves_order_and_resolves_relative(tmp_path):
    matrix = power_law_matrix(12, 12, 2.0, rng=4)
    (tmp_path / "sub").mkdir()
    write_matrix_market(matrix, tmp_path / "sub" / "real.mtx")
    manifest = tmp_path / "corpus.txt"
    manifest.write_text(
        "# comment\n"
        "\n"
        "recipe:diagonal_matrix?num_rows=16&name=diag\n"
        "sub/real.mtx\n"
    )
    sources = discover_sources(manifest)
    assert [s.name for s in sources] == ["diag", "real"]
    assert [s.kind for s in sources] == ["recipe", "mtx"]
    np.testing.assert_allclose(sources[1].load().to_dense(), matrix.to_dense())


def test_discover_single_file_and_recipe(tmp_path):
    write_matrix_market(power_law_matrix(8, 8, 2.0, rng=0), tmp_path / "one.mtx")
    assert [s.name for s in discover_sources(tmp_path / "one.mtx")] == ["one"]
    [recipe] = discover_sources("recipe:diagonal_matrix?num_rows=4&name=d")
    assert recipe.kind == "recipe" and recipe.name == "d"


def test_discover_empty_directory_rejected(tmp_path):
    with pytest.raises(MatrixSourceError, match="no matrix files"):
        discover_sources(tmp_path)


def test_discover_missing_target_rejected(tmp_path):
    with pytest.raises(MatrixSourceError, match="no such file or directory"):
        discover_sources(tmp_path / "nope")


def test_duplicate_names_rejected(tmp_path):
    manifest = tmp_path / "corpus.txt"
    manifest.write_text(
        "recipe:diagonal_matrix?num_rows=4&name=dup\n"
        "recipe:diagonal_matrix?num_rows=8&name=dup\n"
    )
    with pytest.raises(MatrixSourceError, match="duplicate source name"):
        discover_sources(manifest)


def test_manifest_errors_name_the_line(tmp_path):
    manifest = tmp_path / "corpus.txt"
    manifest.write_text("recipe:bogus_builder?x=1\n")
    with pytest.raises(MatrixSourceError, match="corpus.txt:1"):
        discover_sources(manifest)
