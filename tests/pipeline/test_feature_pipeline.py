"""Parity tests for the shared FeaturePipeline.

The pipeline is the single featurization path of the reproduction; these
tests pin that its output is element-wise identical to the legacy
*sweep-side* extraction (``domain.known_features`` + the domain collector,
what ``run_benchmark_suite`` used to inline) and the legacy *inference-side*
extraction (what ``SeerPredictor`` used to inline) — for both registered
domains, over hypothesis-generated workloads.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domains import get_domain
from repro.pipeline import FeatureBundle, FeaturePipeline
from repro.sparse.generators import power_law_matrix


@st.composite
def workload_params(draw):
    """Size/degree/seed triples for small power-law matrices."""
    rows = draw(st.integers(min_value=1, max_value=96))
    cols = draw(st.integers(min_value=1, max_value=96))
    degree = draw(st.floats(min_value=0.5, max_value=8.0))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    iterations = draw(st.sampled_from([1, 4, 19]))
    return rows, cols, degree, seed, iterations


def _workload(domain, rows, cols, degree, seed):
    matrix = power_law_matrix(rows, cols, degree, rng=seed)
    options = (
        {"num_vectors": 8} if "num_vectors" in domain.serving_option_names else {}
    )
    return domain.serving_workload(matrix, options)


@pytest.mark.parametrize("domain_name", ["spmv", "spmm"])
@given(params=workload_params())
@settings(max_examples=25, deadline=None)
def test_pipeline_matches_legacy_sweep_side_extraction(domain_name, params):
    """pipeline.extract == domain.known_features + collector.collect."""
    rows, cols, degree, seed, _ = params
    domain = get_domain(domain_name)
    workload = _workload(domain, rows, cols, degree, seed)
    bundle = domain.make_pipeline().extract(workload)

    legacy_known = domain.known_features(workload)
    legacy_collection = domain.make_collector().collect(workload)
    np.testing.assert_array_equal(bundle.known.as_vector(), legacy_known.as_vector())
    np.testing.assert_array_equal(
        bundle.gathered.as_vector(), legacy_collection.features.as_vector()
    )
    assert bundle.collected
    assert bundle.collection_time_ms == legacy_collection.features.collection_time_ms


@pytest.mark.parametrize("domain_name", ["spmv", "spmm"])
@given(params=workload_params())
@settings(max_examples=25, deadline=None)
def test_pipeline_matches_legacy_inference_side_extraction(domain_name, params):
    """Known features at arbitrary iteration counts match the runtime flow."""
    rows, cols, degree, seed, iterations = params
    domain = get_domain(domain_name)
    workload = _workload(domain, rows, cols, degree, seed)
    pipeline = domain.make_pipeline()

    known = pipeline.known_features(workload, iterations)
    legacy = domain.known_features(workload, iterations)
    np.testing.assert_array_equal(known.as_vector(), legacy.as_vector())
    assert known.iterations == iterations

    gathered = pipeline.gather(workload)
    legacy_gathered = domain.make_collector().collect(workload).features
    np.testing.assert_array_equal(gathered.as_vector(), legacy_gathered.as_vector())
    assert gathered.collection_time_ms == legacy_gathered.collection_time_ms


def test_extract_without_gather_uses_empty_row():
    domain = get_domain("spmv")
    workload = power_law_matrix(40, 40, 3.0, rng=7)
    bundle = domain.make_pipeline().extract(workload, gather=False)
    assert isinstance(bundle, FeatureBundle)
    assert not bundle.collected
    assert bundle.collection_time_ms == 0.0
    np.testing.assert_array_equal(bundle.gathered.as_vector(), np.zeros(4))


def test_pipeline_reuses_one_collector():
    pipeline = get_domain("spmv").make_pipeline()
    assert pipeline.collector is pipeline.collector


def test_pipeline_accepts_injected_collector():
    domain = get_domain("spmv")
    collector = domain.make_collector()
    pipeline = FeaturePipeline(domain=domain, collector=collector)
    assert pipeline.collector is collector


def test_load_workload_from_source(tmp_path):
    from repro.sparse.io import write_matrix_market

    matrix = power_law_matrix(30, 30, 3.0, rng=5)
    path = tmp_path / "m.mtx"
    write_matrix_market(matrix, path)

    spmv_workload = get_domain("spmv").make_pipeline().load_workload(path)
    np.testing.assert_allclose(spmv_workload.to_dense(), matrix.to_dense())

    spmm_workload = (
        get_domain("spmm").make_pipeline().load_workload(path, {"num_vectors": 4})
    )
    assert spmm_workload.num_vectors == 4
    np.testing.assert_allclose(spmm_workload.matrix.to_dense(), matrix.to_dense())


def test_extract_from_source_matches_in_memory(tmp_path):
    from repro.sparse.io import write_matrix_market

    domain = get_domain("spmv")
    matrix = power_law_matrix(50, 50, 4.0, rng=11)
    path = tmp_path / "m.mtx"
    write_matrix_market(matrix, path)
    pipeline = domain.make_pipeline()
    from_file = pipeline.extract_from_source(path, iterations=4)
    in_memory = pipeline.extract(pipeline.load_workload(path), iterations=4)
    np.testing.assert_array_equal(
        from_file.known.as_vector(), in_memory.known.as_vector()
    )
    np.testing.assert_array_equal(
        from_file.gathered.as_vector(), in_memory.gathered.as_vector()
    )


def test_sweep_and_predictor_share_the_pipeline_path():
    """The two consumers produce identical features for one workload."""
    from repro.core.benchmarking import measure_matrix
    from repro.core.inference import SeerPredictor

    domain = get_domain("spmv")
    workload = power_law_matrix(64, 64, 4.0, rng=3)
    pipeline = domain.make_pipeline()
    measurement = measure_matrix(
        "w", workload, domain.default_kernels(), pipeline, domain=domain
    )

    # The predictor's pipeline is the same implementation; its gathered
    # features (when the selector routes there) must equal the sweep's.
    np.testing.assert_array_equal(
        pipeline.gather(workload).as_vector(), measurement.gathered.as_vector()
    )
    np.testing.assert_array_equal(
        pipeline.known_features(workload).as_vector(), measurement.known.as_vector()
    )

    from repro.bench.runner import run_sweep

    sweep = run_sweep(profile="tiny")
    predictor = SeerPredictor(sweep.models, domain=domain, pipeline=pipeline)
    assert predictor.pipeline is pipeline
    decision = predictor.predict(workload, iterations=1, name="w")
    if decision.collected_features:
        np.testing.assert_array_equal(
            decision.gathered.as_vector(), measurement.gathered.as_vector()
        )
