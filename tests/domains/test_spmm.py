"""Tests for the SpMM domain: kernels, features, and the end-to-end sweep."""

import math

import numpy as np
import pytest

from repro.bench.engine import SweepEngine, matrix_key
from repro.bench.runner import run_sweep
from repro.domains import get_domain
from repro.domains.spmm import (
    COLUMN_BLOCK,
    NUM_VECTORS_GRID,
    SpmmEllBlockMapped,
    SpmmWorkload,
    spmm_gathered_features,
)
from repro.kernels.base import UnsupportedKernelError
from repro.sparse import generators as gen

SPMM = get_domain("spmm")


@pytest.fixture(scope="module")
def spmm_sweep():
    """One end-to-end SpMM pipeline run on the tiny profile."""
    return run_sweep(profile="tiny", domain="spmm")


def _workload(matrix, num_vectors=4):
    return SpmmWorkload(matrix=matrix, num_vectors=num_vectors)


# ----------------------------------------------------------------------
# Workload and numeric correctness
# ----------------------------------------------------------------------
def test_workload_spmm_matches_dense_reference(rng):
    matrix = gen.power_law_matrix(60, 50, 5.0, rng=3)
    workload = _workload(matrix, num_vectors=7)
    b = rng.standard_normal((50, 7))
    np.testing.assert_allclose(
        workload.spmm(b), matrix.to_dense() @ b, rtol=1e-12, atol=1e-12
    )


def test_workload_rejects_bad_shapes_and_counts(rng):
    matrix = gen.regular_matrix(8, 8, 2, rng=1)
    with pytest.raises(ValueError):
        SpmmWorkload(matrix=matrix, num_vectors=0)
    with pytest.raises(ValueError):
        _workload(matrix, 4).spmm(rng.standard_normal((8, 3)))


@pytest.mark.parametrize("label", SPMM.kernel_names())
def test_kernel_run_matches_dense_reference(label, rng):
    matrix = gen.regular_matrix(64, 64, 6, rng=2)
    workload = _workload(matrix, num_vectors=4)
    kernel = SPMM.make_kernel(label)
    b = rng.standard_normal((64, 4))
    result = kernel.run(workload, b)
    np.testing.assert_allclose(result.y, matrix.to_dense() @ b, rtol=1e-12, atol=1e-12)
    assert result.timing.iteration_ms > 0.0


def test_kernel_timings_are_finite_and_positive(small_matrices):
    for num_vectors in NUM_VECTORS_GRID:
        workload = _workload(small_matrices["uniform"], num_vectors)
        for kernel in SPMM.default_kernels():
            timing = kernel.timing(workload)
            assert math.isfinite(timing.iteration_ms) and timing.iteration_ms > 0
            assert timing.preprocessing_ms >= 0.0


def test_ell_refuses_extreme_padding():
    matrix = gen.skewed_matrix(2048, 2048, 1, 1, 2000, rng=5)
    kernel = SpmmEllBlockMapped()
    workload = _workload(matrix)
    assert not kernel.supports(workload)
    with pytest.raises(UnsupportedKernelError):
        kernel.timing(workload)


# ----------------------------------------------------------------------
# Gathered features (column-block occupancy)
# ----------------------------------------------------------------------
def test_occupancy_of_dense_rows_is_one():
    dense = gen.regular_matrix(32, COLUMN_BLOCK, COLUMN_BLOCK, rng=1)
    features = spmm_gathered_features(_workload(dense))
    assert features.max_block_occupancy == pytest.approx(1.0)
    assert features.mean_block_occupancy == pytest.approx(1.0)


def test_occupancy_bounds_and_ordering(small_matrices):
    for matrix in small_matrices.values():
        features = spmm_gathered_features(_workload(matrix))
        assert 0.0 <= features.mean_block_occupancy <= features.max_block_occupancy
        assert features.max_block_occupancy <= 1.0
        assert features.var_row_density >= 0.0


def test_empty_matrix_features_are_zero():
    empty = gen.diagonal_matrix(0, rng=1)
    features = spmm_gathered_features(_workload(empty))
    assert list(features.as_vector()) == [0.0, 0.0, 0.0, 0.0]


def test_collector_cost_grows_with_nnz():
    collector = SPMM.make_collector()
    small = collector.collect(_workload(gen.regular_matrix(256, 256, 4, rng=1)))
    large = collector.collect(_workload(gen.regular_matrix(65536, 256, 4, rng=1)))
    assert small.collection_time_ms > 0.0
    assert large.collection_time_ms > small.collection_time_ms
    assert small.features.collection_time_ms == small.collection_time_ms


# ----------------------------------------------------------------------
# End-to-end sweep
# ----------------------------------------------------------------------
def test_spmm_sweep_completes_end_to_end(spmm_sweep):
    assert spmm_sweep.domain_name == "spmm"
    assert len(spmm_sweep.suite) > 0
    assert spmm_sweep.kernel_names == list(SPMM.kernel_names())
    # Multiple kernels genuinely win somewhere: the domain is non-degenerate.
    assert len(set(spmm_sweep.dataset.labels())) >= 2
    report = spmm_sweep.test_report
    for approach in ("Known", "Gathered", "Selector"):
        assert 0.0 <= report.accuracy(approach) <= 1.0
    assert report.slowdown_vs_oracle() >= 1.0
    table = report.aggregate_table()
    assert all(math.isfinite(value) for value in table.values())


def test_spmm_dataset_uses_domain_schemas(spmm_sweep):
    dataset = spmm_sweep.dataset
    assert dataset.known_feature_names == SPMM.known_feature_names
    assert dataset.gathered_feature_names == SPMM.gathered_feature_names
    assert dataset.full_feature_names == SPMM.all_feature_names
    sample = dataset.samples[0]
    assert len(sample.known_vector) == len(SPMM.known_feature_names)
    assert len(sample.gathered_vector) == len(SPMM.gathered_feature_names)


def test_spmm_predictor_round_trip(spmm_sweep):
    matrix = gen.regular_matrix(512, 512, 8, rng=11)
    workload = _workload(matrix, num_vectors=8)
    decision = spmm_sweep.predictor.predict(workload, iterations=4, name="probe")
    assert decision.kernel_name in SPMM.kernel_names()
    assert decision.iterations == 4
    assert decision.known.num_vectors == 8


def test_spmm_engine_matches_serial(spmm_sweep, tmp_path):
    engine = SweepEngine(jobs=2, cache_dir=tmp_path)
    parallel = run_sweep(profile="tiny", domain="spmm", engine=engine)
    assert parallel.suite.names() == spmm_sweep.suite.names()
    for serial_m, parallel_m in zip(spmm_sweep.suite, parallel.suite):
        assert serial_m.kernel_runtime_ms == parallel_m.kernel_runtime_ms
        assert serial_m.known == parallel_m.known
        assert serial_m.gathered == parallel_m.gathered
    assert (
        parallel.test_report.aggregate_table()
        == spmm_sweep.test_report.aggregate_table()
    )

    warm = SweepEngine(jobs=2, cache_dir=tmp_path)
    again = run_sweep(profile="tiny", domain="spmm", engine=warm)
    assert warm.stats.sweep_cache_hits == 1
    assert again.test_report.aggregate_table() == parallel.test_report.aggregate_table()


def test_spmm_matrix_artifacts_shared_across_num_vectors():
    specs = SPMM.collection_specs("tiny")
    assert len(specs) == len({spec.name for spec in specs})
    by_matrix = {}
    for spec in specs:
        by_matrix.setdefault(matrix_key(spec, SPMM), set()).add(spec.num_vectors)
    # Every matrix recipe is shared by all B widths in the grid.
    assert all(widths == set(NUM_VECTORS_GRID) for widths in by_matrix.values())
    assert len(by_matrix) == len(specs) // len(NUM_VECTORS_GRID)
