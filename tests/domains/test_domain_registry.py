"""Tests for the domain plugin registry and the legacy registry shim."""

import pickle

import pytest

from repro.domains import (
    SPMV,
    FeatureField,
    GatheredFeatureRow,
    KnownFeatureRow,
    ProblemDomain,
    domain_names,
    get_domain,
    register_domain,
    unregister_domain,
)
from repro.gpu.device import SMALL_GPU
from repro.kernels import registry as legacy_registry
from repro.kernels.csr_vector import CsrWarpMapped


# ----------------------------------------------------------------------
# Domain registry
# ----------------------------------------------------------------------
def test_builtin_domains_are_registered():
    assert "spmv" in domain_names()
    assert "spmm" in domain_names()
    assert get_domain("spmv") is SPMV
    assert get_domain(SPMV) is SPMV


def test_unknown_domain_raises_with_suggestion():
    with pytest.raises(KeyError) as excinfo:
        get_domain("spvm")
    assert "spvm" in str(excinfo.value)
    assert "spmv" in str(excinfo.value)  # close-match suggestion


def test_duplicate_domain_registration_raises():
    class Duplicate(ProblemDomain):
        name = "spmv"

    with pytest.raises(ValueError):
        register_domain(Duplicate())


def test_register_and_unregister_custom_domain():
    class Custom(ProblemDomain):
        name = "custom-test-domain"

    domain = Custom()
    try:
        assert register_domain(domain) is domain
        assert get_domain("custom-test-domain") is domain
        with pytest.raises(ValueError):
            register_domain(Custom())
    finally:
        unregister_domain("custom-test-domain")
    with pytest.raises(KeyError):
        get_domain("custom-test-domain")


def test_registering_non_domain_raises():
    with pytest.raises(TypeError):
        register_domain(object())


def test_domains_pickle_to_registered_singletons():
    restored = pickle.loads(pickle.dumps(SPMV))
    assert restored is SPMV
    restored_spmm = pickle.loads(pickle.dumps(get_domain("spmm")))
    assert restored_spmm is get_domain("spmm")


# ----------------------------------------------------------------------
# Kernel registration
# ----------------------------------------------------------------------
def test_duplicate_kernel_registration_raises():
    class Toy(ProblemDomain):
        name = "toy-kernels"

    domain = Toy()

    @domain.register_kernel
    class ToyKernel:
        name = "TOY"

        def timing(self, workload):
            raise NotImplementedError

    assert domain.kernel_names() == ("TOY",)
    with pytest.raises(ValueError):
        domain.register_kernel(ToyKernel)


def test_kernel_without_label_is_rejected():
    class Toy(ProblemDomain):
        name = "toy-nameless"

    with pytest.raises(ValueError):
        Toy().register_kernel(object)


def test_make_kernel_accepts_already_instantiated_kernels():
    kernel = CsrWarpMapped(SMALL_GPU)
    assert SPMV.make_kernel(kernel) is kernel
    assert legacy_registry.make_kernel(kernel) is kernel
    with pytest.raises(TypeError):
        SPMV.make_kernel(12345)


def test_make_kernel_suggests_close_matches():
    with pytest.raises(KeyError) as excinfo:
        SPMV.make_kernel("CSR,VM")
    message = str(excinfo.value)
    assert "CSR,VM" in message
    assert "did you mean" in message


# ----------------------------------------------------------------------
# Legacy shim equivalence
# ----------------------------------------------------------------------
def test_shim_constants_match_domain_registry():
    assert legacy_registry.KERNEL_CLASSES == SPMV.kernel_classes
    assert legacy_registry.ALL_KERNEL_NAMES == SPMV.kernel_names()
    assert legacy_registry.FIG5_KERNEL_NAMES == SPMV.kernel_names(include_aux=False)
    assert legacy_registry.kernel_names(False) == SPMV.kernel_names(False)


def test_shim_make_kernel_matches_domain():
    via_shim = legacy_registry.make_kernel("CSR,TM", SMALL_GPU)
    via_domain = SPMV.make_kernel("CSR,TM", SMALL_GPU)
    assert type(via_shim) is type(via_domain)
    assert via_shim.device is SMALL_GPU


def test_shim_default_kernels_match_domain():
    shim = [type(k) for k in legacy_registry.default_kernels()]
    domain = [type(k) for k in SPMV.default_kernels()]
    assert shim == domain


# ----------------------------------------------------------------------
# Generic feature rows
# ----------------------------------------------------------------------
def test_known_feature_row_protocol():
    row = KnownFeatureRow(names=("rows", "nnz", "iterations"), values=(4, 9, 1))
    assert row.rows == 4 and row.nnz == 9 and row.iterations == 1
    assert list(row.as_vector()) == [4.0, 9.0, 1.0]
    assert row.as_dict() == {"rows": 4, "nnz": 9, "iterations": 1}
    bumped = row.with_iterations(19)
    assert bumped.iterations == 19 and row.iterations == 1
    with pytest.raises(AttributeError):
        _ = row.missing_feature


def test_known_feature_row_requires_iterations_field_to_bump():
    row = KnownFeatureRow(names=("rows",), values=(4,))
    with pytest.raises(ValueError):
        row.with_iterations(2)


def test_gathered_feature_row_protocol():
    row = GatheredFeatureRow(names=("a", "b"), values=(0.5, 0.25))
    assert row.collection_time_ms == 0.0
    timed = row.with_collection_time(1.5)
    assert timed.collection_time_ms == 1.5
    assert timed == row  # collection time does not participate in equality
    assert timed.as_dict() == {"a": 0.5, "b": 0.25}


def test_feature_schema_names_and_describe():
    spmm = get_domain("spmm")
    assert "num_vectors" in spmm.known_feature_names
    assert spmm.all_feature_names == (
        spmm.known_feature_names + spmm.gathered_feature_names
    )
    description = spmm.describe()
    assert description["name"] == "spmm"
    assert description["kernels"] == list(spmm.kernel_names())


def test_known_features_requires_extractor():
    class Toy(ProblemDomain):
        name = "toy-schema"
        known_fields = (FeatureField("mystery"),)

    with pytest.raises(ValueError):
        Toy().known_features(object())


def test_unregistered_domain_pickles_by_state():
    # Module-level classes pickle by reference; the instance must round-trip
    # by state (not by registry lookup) so custom domains can cross into
    # spawn-start-method engine workers before/without registration.
    domain = _UnregisteredModuleLevel()
    restored = pickle.loads(pickle.dumps(domain))
    assert restored is not domain
    assert restored.name == domain.name


class _UnregisteredModuleLevel(ProblemDomain):
    name = "unregistered-module-level"


def test_instance_resolution_registers_by_name():
    # Pipeline stages only carry the domain's *name* (suites, cache keys);
    # passing an instance anywhere must make that name resolvable.
    class InstanceOnly(ProblemDomain):
        name = "instance-only-domain"

    domain = InstanceOnly()
    try:
        assert get_domain(domain) is domain
        assert get_domain(domain.name) is domain
        with pytest.raises(ValueError):
            get_domain(InstanceOnly())  # a *different* instance cannot shadow
    finally:
        unregister_domain(domain.name)


def test_registered_custom_domain_unpickles_in_fresh_registry():
    # Simulates a spawn-start-method worker: the custom domain was
    # registered in the parent, but the unpickling process has a registry
    # containing only the built-ins.
    domain = _SpawnSimDomain()
    register_domain(domain)
    try:
        payload = pickle.dumps(domain)
    finally:
        unregister_domain(domain.name)
    restored = pickle.loads(payload)
    try:
        assert restored is not domain
        assert restored.name == domain.name
        # ...and the rebuilt instance re-registered itself, so name-only
        # references (cache keys, suites) resolve in the worker too.
        assert get_domain(domain.name) is restored
    finally:
        unregister_domain(domain.name)


class _SpawnSimDomain(ProblemDomain):
    name = "spawn-sim-domain"
