"""Tests for the CSV schemas of Section III-D."""

import pytest

from repro.core import csv_schemas


def test_kernel_benchmark_csv_round_trip(tmp_path):
    path = tmp_path / "kernel_CSR_TM.csv"
    rows = [("matrix_a", 0.5, 0.0), ("matrix_b", 1.25, 0.75)]
    csv_schemas.write_kernel_benchmark_csv(path, "CSR,TM", rows)
    loaded = csv_schemas.read_kernel_benchmark_csv(path)
    assert loaded == [("matrix_a", 0.5, 0.0), ("matrix_b", 1.25, 0.75)]
    header = path.read_text().splitlines()[0]
    assert header == "name,runtime_ms,preprocessing_ms"


def test_kernel_benchmark_csv_rejects_bad_header(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("foo,bar\n1,2\n")
    with pytest.raises(ValueError):
        csv_schemas.read_kernel_benchmark_csv(path)


def test_aggregate_csv_round_trip(tmp_path):
    path = tmp_path / "runtime.csv"
    table = {
        "m1": {"CSR,TM": 1.0, "ELL,TM": 2.0},
        "m2": {"CSR,TM": 3.0, "ELL,TM": 4.0},
    }
    csv_schemas.write_aggregate_csv(path, ["CSR,TM", "ELL,TM"], table)
    kernels, loaded = csv_schemas.read_aggregate_csv(path)
    assert kernels == ["CSR,TM", "ELL,TM"]
    assert loaded == table
    # one column per kernel plus the name column, as the paper describes
    import csv

    with path.open(newline="") as handle:
        header = next(csv.reader(handle))
    assert len(header) == 3 and header[0] == "name"


def test_aggregate_csv_rejects_ragged_rows(tmp_path):
    path = tmp_path / "ragged.csv"
    path.write_text("name,CSR,TM\nm1,1.0\n")
    with pytest.raises(ValueError):
        csv_schemas.read_aggregate_csv(path)


def test_feature_csv_round_trip(tmp_path):
    path = tmp_path / "features.csv"
    rows = {
        "m1": ({"max_row_density": 0.5, "var_row_density": 0.1}, 0.02),
        "m2": ({"max_row_density": 0.25, "var_row_density": 0.0}, 0.03),
    }
    csv_schemas.write_feature_csv(path, ["max_row_density", "var_row_density"], rows)
    names, loaded = csv_schemas.read_feature_csv(path)
    assert names == ["max_row_density", "var_row_density"]
    assert loaded == rows
    header = path.read_text().splitlines()[0]
    assert header.endswith(csv_schemas.COLLECTION_TIME_COLUMN)


def test_feature_csv_rejects_bad_header(tmp_path):
    path = tmp_path / "bad_features.csv"
    path.write_text("name,foo\nm1,1.0\n")
    with pytest.raises(ValueError):
        csv_schemas.read_feature_csv(path)
