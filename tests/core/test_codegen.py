"""Tests for decision-tree code generation (C++ header and Python module)."""

import numpy as np
import pytest

from repro.core.codegen import (
    models_to_cpp_header,
    models_to_python_module,
    tree_to_cpp,
    tree_to_python,
    write_cpp_header,
    write_python_module,
)
from repro.ml.decision_tree import DecisionTreeClassifier


@pytest.fixture(scope="module")
def fitted_tree():
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(200, 3))
    y = np.where(X[:, 0] > 0.5, "ELL,TM", np.where(X[:, 1] > 0.5, "CSR,WM", "COO,WM"))
    return DecisionTreeClassifier(max_depth=4).fit(
        X, y, feature_names=["rows", "cols", "nnz"]
    )


def test_generated_python_agrees_with_model(fitted_tree):
    source = tree_to_python(fitted_tree, "kernel_classifier")
    namespace = {}
    exec(source, namespace)  # noqa: S102 - exercising generated code is the point
    classifier = namespace["kernel_classifier"]
    rng = np.random.default_rng(1)
    X = rng.uniform(size=(100, 3))
    for sample in X:
        expected = fitted_tree.predict_one(sample)
        produced = fitted_tree.classes_[classifier(sample)]
        assert produced == expected


def test_cpp_header_structure(fitted_tree):
    code = tree_to_cpp(fitted_tree, "kernel classifier!")  # name gets sanitized
    assert "inline int kernel_classifier_(const double* features)" in code
    assert code.count("return") >= 2
    assert "if (features[" in code


def test_models_codegen_round_trip(tiny_sweep, tmp_path):
    models = tiny_sweep.models
    header = models_to_cpp_header(models)
    assert "#ifndef SEER_MODELS_H" in header
    assert "seer_known_classifier" in header
    assert "seer_gathered_classifier" in header
    assert "seer_classifier_selector" in header
    for kernel in models.known_model.classes_:
        assert f'"{kernel}"' in header

    module_source = models_to_python_module(models)
    namespace = {}
    exec(module_source, namespace)  # noqa: S102
    known = namespace["known_classifier"]
    selector = namespace["classifier_selector"]
    for sample in tiny_sweep.test_set:
        expected = models.predict_known(sample.known_vector)
        assert namespace["KERNEL_CLASSES"][known(sample.known_vector)] == expected
        expected_choice = models.predict_selector(sample.known_vector)
        assert (
            namespace["SELECTOR_CLASSES"][selector(sample.known_vector)]
            == expected_choice
        )

    header_path = write_cpp_header(models, tmp_path / "generated" / "seer.h")
    module_path = write_python_module(models, tmp_path / "generated" / "seer.py")
    assert header_path.exists() and header_path.read_text() == header
    assert module_path.exists()
