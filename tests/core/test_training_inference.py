"""Tests for Seer model training and runtime inference."""

import numpy as np
import pytest

from repro.core.training import (
    USE_GATHERED,
    USE_KNOWN,
    TrainingConfig,
    train_seer_models,
)
from repro.sparse.collection import archetype
from repro.sparse.features import GatheredFeatures, KnownFeatures


def test_models_are_trained_and_shaped(tiny_sweep):
    models = tiny_sweep.models
    assert set(models.known_model.classes_) <= set(models.kernel_names)
    assert set(models.gathered_model.classes_) <= set(models.kernel_names)
    assert set(models.selector_model.classes_) <= {USE_KNOWN, USE_GATHERED}
    assert models.known_model.num_features_ == 4
    assert models.gathered_model.num_features_ == 8
    assert models.selector_model.num_features_ == 4
    assert models.training_size == len(tiny_sweep.train_set)


def test_depth_limits_respected(tiny_sweep):
    config = TrainingConfig(known_depth=3, gathered_depth=4, selector_depth=2)
    models = train_seer_models(tiny_sweep.train_set, config)
    assert models.known_model.depth() <= 3
    assert models.gathered_model.depth() <= 4
    assert models.selector_model.depth() <= 2


def test_training_rejects_empty_dataset(tiny_sweep):
    empty = tiny_sweep.dataset.subset([])
    with pytest.raises(ValueError):
        train_seer_models(empty)


def test_model_predictions_are_valid_kernels(tiny_sweep):
    models = tiny_sweep.models
    for sample in tiny_sweep.test_set:
        known_pick = models.predict_known(sample.known_vector)
        gathered_pick = models.predict_gathered(
            sample.known_vector, sample.gathered_vector
        )
        choice = models.predict_selector(sample.known_vector)
        assert known_pick in models.kernel_names
        assert gathered_pick in models.kernel_names
        assert choice in (USE_KNOWN, USE_GATHERED)


def test_gathered_model_fits_training_labels_better_than_known(small_sweep):
    """More features => at least as good a fit on the training corpus."""
    models = small_sweep.models
    train = small_sweep.train_set
    labels = train.labels()
    known_hits = sum(
        1
        for sample, label in zip(train, labels)
        if models.predict_known(sample.known_vector) == label
    )
    gathered_hits = sum(
        1
        for sample, label in zip(train, labels)
        if models.predict_gathered(sample.known_vector, sample.gathered_vector) == label
    )
    assert gathered_hits >= known_hits


def test_predictor_decision_structure(tiny_sweep):
    predictor = tiny_sweep.predictor
    record = archetype("G3_Circuit_like", scale=64)
    decision = predictor.predict(record.matrix, iterations=1, name=record.name)
    assert decision.kernel_name in tiny_sweep.models.kernel_names
    assert decision.selector_choice in (USE_KNOWN, USE_GATHERED)
    assert decision.inference_time_ms > 0.0
    if decision.collected_features:
        assert decision.collection_time_ms > 0.0
        assert decision.gathered.max_row_density > 0.0
    else:
        assert decision.collection_time_ms == 0.0
    assert decision.overhead_ms == pytest.approx(
        decision.inference_time_ms + decision.collection_time_ms
    )


def test_predictor_execute_runs_selected_kernel(tiny_sweep, rng):
    predictor = tiny_sweep.predictor
    record = archetype("matrix_new_3_like", scale=128)
    x = rng.uniform(-1, 1, record.matrix.num_cols)
    result = predictor.execute(record.matrix, x, iterations=2, name=record.name)
    expected = record.matrix.spmv(record.matrix.spmv(x))
    np.testing.assert_allclose(result.run.y, expected, rtol=1e-9)
    assert result.run.kernel == result.decision.kernel_name
    assert result.total_ms >= result.run.total_ms


def test_predictor_rejects_bad_iterations(tiny_sweep):
    record = archetype("G3_Circuit_like", scale=64)
    with pytest.raises(ValueError):
        tiny_sweep.predictor.predict(record.matrix, iterations=0)


def test_predict_from_features_uses_precomputed_cost(tiny_sweep):
    predictor = tiny_sweep.predictor
    known = KnownFeatures(rows=100_000, cols=100_000, nnz=1_000_000, iterations=1)
    gathered = GatheredFeatures(0.2, 0.0, 0.01, 0.001)
    decision = predictor.predict_from_features(
        known, gathered, collection_time_ms=0.5, name="synthetic"
    )
    if decision.collected_features:
        assert decision.collection_time_ms == pytest.approx(0.5)
    else:
        assert decision.collection_time_ms == 0.0


def test_cost_aware_selector_avoids_collection_on_tiny_inputs(small_sweep):
    """For launch-bound matrices the selector should skip feature collection."""
    predictor = small_sweep.predictor
    from repro.sparse.generators import regular_matrix

    tiny = regular_matrix(128, 128, 4, rng=0)
    decision = predictor.predict(tiny, iterations=1)
    assert decision.selector_choice == USE_KNOWN


def test_non_cost_aware_selector_differs_in_config(tiny_sweep):
    config = TrainingConfig(cost_aware_selector=False)
    models = train_seer_models(tiny_sweep.train_set, config)
    # Without cost-awareness the selector optimizes pure path time with unit
    # weights; it must still produce valid routing decisions.
    for sample in tiny_sweep.test_set:
        assert models.predict_selector(sample.known_vector) in (USE_KNOWN, USE_GATHERED)
