"""Tests for the paper's ``seer(runtime, preprocessing_data, features)`` API."""

import pytest

from repro.core.seer import SeerResult, seer, suite_from_tables
from repro.core.training import TrainingConfig
from repro.sparse.features import GATHERED_FEATURE_NAMES, KNOWN_FEATURE_NAMES


def _tables_from_suite(suite):
    runtime = {m.name: dict(m.kernel_runtime_ms) for m in suite}
    preprocessing = {m.name: dict(m.kernel_preprocessing_ms) for m in suite}
    features = {
        m.name: (m.gathered.as_dict(), m.collection_time_ms) for m in suite
    }
    known = {m.name: (m.known.as_dict(), 0.0) for m in suite}
    return runtime, preprocessing, features, known


def test_seer_from_in_memory_tables(tiny_sweep):
    runtime, preprocessing, features, known = _tables_from_suite(tiny_sweep.suite)
    result = seer(runtime, preprocessing, features, known, iteration_counts=(1, 19))
    assert isinstance(result, SeerResult)
    assert set(result.models.kernel_names) == set(tiny_sweep.suite.kernel_names)
    assert "seer_classifier_selector" in result.cpp_header
    assert "classifier_selector" in result.python_module
    sample = tiny_sweep.dataset.samples[0]
    assert result.models.predict_known(sample.known_vector) in result.models.kernel_names


def test_seer_from_csv_files(tiny_sweep, tmp_path):
    tiny_sweep.suite.save(tmp_path)
    result = seer(
        tmp_path / "runtime.csv",
        tmp_path / "preprocessing.csv",
        tmp_path / "features.csv",
        tmp_path / "known.csv",
        header_path=tmp_path / "seer_models.h",
    )
    assert (tmp_path / "seer_models.h").exists()
    assert result.header_path == tmp_path / "seer_models.h"


def test_seer_accepts_benchmark_suite_directly(tiny_sweep):
    result = seer(
        tiny_sweep.suite,
        None,
        None,
        iteration_counts=(1, 19),
        config=TrainingConfig(selector_cross_fit=0),
    )
    assert result.models.training_size == 2 * len(tiny_sweep.suite)
    assert result.predictor is not None


def test_seer_requires_known_table_with_raw_tables(tiny_sweep):
    runtime, preprocessing, features, _ = _tables_from_suite(tiny_sweep.suite)
    with pytest.raises(ValueError):
        seer(runtime, preprocessing, features)


def test_suite_from_tables_validates_membership(tiny_sweep):
    runtime, preprocessing, features, known = _tables_from_suite(tiny_sweep.suite)
    del preprocessing[next(iter(preprocessing))]
    with pytest.raises(KeyError):
        suite_from_tables(runtime, preprocessing, features, known)


def test_suite_from_tables_rejects_missing_kernel_column(tiny_sweep):
    """A matrix silently missing one kernel must raise, naming the matrix."""
    runtime, preprocessing, features, known = _tables_from_suite(tiny_sweep.suite)
    victim = sorted(runtime)[1]  # not the first: its kernels set the standard
    dropped = sorted(runtime[victim])[0]
    del runtime[victim][dropped]
    with pytest.raises(ValueError) as excinfo:
        suite_from_tables(runtime, preprocessing, features, known)
    message = str(excinfo.value)
    assert victim in message and dropped in message
    assert "runtime" in message and "missing" in message


def test_suite_from_tables_rejects_extra_kernel_column(tiny_sweep):
    """A matrix with an unknown extra kernel must raise, naming both."""
    runtime, preprocessing, features, known = _tables_from_suite(tiny_sweep.suite)
    victim = sorted(runtime)[-1]
    runtime[victim]["mystery_kernel"] = 1.0
    with pytest.raises(ValueError) as excinfo:
        suite_from_tables(runtime, preprocessing, features, known)
    message = str(excinfo.value)
    assert victim in message and "mystery_kernel" in message
    assert "unexpected" in message


def test_suite_from_tables_rejects_preprocessing_kernel_mismatch(tiny_sweep):
    """The preprocessing table is validated too, not just runtime."""
    runtime, preprocessing, features, known = _tables_from_suite(tiny_sweep.suite)
    victim = sorted(preprocessing)[1]
    dropped = sorted(preprocessing[victim])[-1]
    del preprocessing[victim][dropped]
    with pytest.raises(ValueError) as excinfo:
        suite_from_tables(runtime, preprocessing, features, known)
    message = str(excinfo.value)
    assert victim in message and dropped in message
    assert "preprocessing" in message


def test_suite_from_tables_reconstructs_features(tiny_sweep):
    runtime, preprocessing, features, known = _tables_from_suite(tiny_sweep.suite)
    suite = suite_from_tables(runtime, preprocessing, features, known)
    original = tiny_sweep.suite.get(suite.measurements[0].name)
    rebuilt = suite.measurements[0]
    assert rebuilt.known == original.known
    for name in GATHERED_FEATURE_NAMES:
        assert getattr(rebuilt.gathered, name) == pytest.approx(
            getattr(original.gathered, name)
        )
    assert list(KNOWN_FEATURE_NAMES) == ["rows", "cols", "nnz", "iterations"]
