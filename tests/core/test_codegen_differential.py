"""Differential tests for the selector emitters.

Four implementations of the same fitted trees must agree on every input:
the recursive reference walk, the flattened :class:`CompiledTree`, the
generated Python module (exec'd) and — when a C++ compiler is available —
the generated C++ header (compiled and run).  The emitters must also use
one shared threshold literal, so the compiled and interpreted selectors
branch on bit-identical constants.
"""

import re
import shutil
import subprocess
import sys

import numpy as np
import pytest

from repro.core.codegen import (
    _float_literal,
    models_to_cpp_header,
    models_to_python_module,
    tree_to_cpp,
    tree_to_python,
)
from repro.ml.decision_tree import DecisionTreeClassifier

THRESHOLD_PATTERN = re.compile(r"features\[\d+\] <= ([^)\s:]+)")


@pytest.fixture(scope="module")
def fitted_tree():
    rng = np.random.default_rng(42)
    X = rng.uniform(size=(300, 4))
    # Thresholds land on arbitrary float midpoints, exercising literals with
    # long decimal expansions.
    y = np.where(
        X[:, 0] * 0.1 + X[:, 3] > 0.47,
        "CSR,AD",
        np.where(X[:, 1] < 0.333, "ELL,TM", "CSR,VR"),
    )
    return DecisionTreeClassifier(max_depth=6).fit(
        X, y, feature_names=["rows", "cols", "nnz", "iterations"]
    )


def _thresholds(code: str) -> list:
    return THRESHOLD_PATTERN.findall(code)


def test_float_literal_round_trips():
    for value in (0.1, 1 / 3, 1e-300, 2**-1074, 123456789.123456789, 0.0):
        assert float(_float_literal(value)) == value


def test_emitters_share_threshold_literals(fitted_tree):
    cpp = _thresholds(tree_to_cpp(fitted_tree, "f"))
    py = _thresholds(tree_to_python(fitted_tree, "f"))
    assert cpp == py
    assert len(cpp) > 0
    node_thresholds = [
        node.threshold for node in fitted_tree.nodes() if not node.is_leaf
    ]
    assert [float(text) for text in cpp] == node_thresholds


def test_generated_python_matches_reference_and_compiled(fitted_tree):
    namespace = {}
    exec(tree_to_python(fitted_tree, "select"), namespace)  # noqa: S102
    generated = namespace["select"]
    compiled = fitted_tree.compiled()
    rng = np.random.default_rng(7)
    X = rng.uniform(size=(500, 4))
    codes = compiled.predict_codes(X)
    for sample, compiled_code in zip(X, codes):
        expected = fitted_tree.predict_one(sample)
        assert fitted_tree.classes_[generated(sample)] == expected
        assert fitted_tree.classes_[compiled_code] == expected


def test_all_three_model_emitters_agree(tiny_sweep):
    models = tiny_sweep.models
    namespace = {}
    exec(models_to_python_module(models), namespace)  # noqa: S102
    cases = (
        ("known_classifier", "KERNEL_CLASSES", models.known_model),
        ("gathered_classifier", "GATHERED_CLASSES", models.gathered_model),
        ("classifier_selector", "SELECTOR_CLASSES", models.selector_model),
    )
    rng = np.random.default_rng(3)
    for function_name, classes_name, model in cases:
        generated = namespace[function_name]
        classes = namespace[classes_name]
        X = rng.uniform(0.0, 1e5, size=(200, model.num_features_))
        for sample in X:
            assert classes[generated(sample)] == model.predict_one(sample)


@pytest.mark.skipif(shutil.which("g++") is None, reason="no C++ compiler")
def test_generated_cpp_matches_python(tiny_sweep, tmp_path):
    models = tiny_sweep.models
    (tmp_path / "seer_models.h").write_text(models_to_cpp_header(models))
    harness = """
#include <cstdio>
#include <cstdlib>
#include "seer_models.h"

int main(int argc, char** argv) {
    int n = argc - 1;
    double* features = (double*)malloc(sizeof(double) * n);
    for (int i = 0; i < n; ++i) features[i] = strtod(argv[i + 1], nullptr);
    printf("%d\\n", seer_known_classifier(features));
    printf("%d\\n", seer_classifier_selector(features));
    free(features);
    return 0;
}
"""
    (tmp_path / "main.cpp").write_text(harness)
    binary = tmp_path / "selector"
    subprocess.run(
        ["g++", "-O2", "-o", str(binary), str(tmp_path / "main.cpp")],
        check=True,
        cwd=tmp_path,
    )
    namespace = {}
    exec(models_to_python_module(models), namespace)  # noqa: S102
    rng = np.random.default_rng(11)
    X = rng.uniform(0.0, 1e6, size=(50, models.known_model.num_features_))
    for sample in X:
        # The shortest round-trip literal reconstructs the double exactly on
        # the C++ side, so both binaries take identical branches.
        argv = [str(binary)] + [_float_literal(v) for v in sample]
        out = subprocess.run(argv, check=True, capture_output=True, text=True)
        known_code, selector_code = (int(line) for line in out.stdout.split())
        assert known_code == namespace["known_classifier"](sample)
        assert selector_code == namespace["classifier_selector"](sample)


def test_codegen_cli_emits_importable_module(tiny_sweep, tmp_path, capsys):
    from repro.cli import main
    from repro.serving.registry import ModelRegistry

    registry_root = tmp_path / "registry"
    model_path = ModelRegistry(registry_root).save(
        tiny_sweep.models, domain="spmv", profile="tiny"
    )
    output = tmp_path / "generated" / "seer_selector.py"
    assert main(
        ["codegen", "--model", str(model_path), "--output", str(output)]
    ) == 0
    namespace = {}
    exec(output.read_text(), namespace)  # noqa: S102
    sample = np.array([100.0, 100.0, 500.0, 1.0])
    expected = tiny_sweep.models.predict_known(sample)
    assert namespace["KERNEL_CLASSES"][namespace["known_classifier"](sample)] == expected

    assert main(["codegen", "--model", str(model_path), "--language", "cpp"]) == 0
    header = capsys.readouterr().out
    assert "#ifndef SEER_MODELS_H" in header
    assert "seer_known_classifier" in header


def test_codegen_cli_rejects_missing_artifact(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit, match="repro: error"):
        main(["codegen", "--model", str(tmp_path / "nope")])
