"""Round-trip tests: benchmark CSVs on disk -> ``seer()`` -> trained models.

The paper's tooling communicates between stages exclusively through CSV
files (Section III-D); these tests pin down that the reproduction's
file-driven path is equivalent to the in-memory one, for the default SpMV
domain and for a second domain's artifacts.
"""

import numpy as np
import pytest

from repro.bench.runner import run_sweep
from repro.core.benchmarking import BenchmarkSuite
from repro.core.seer import seer
from repro.core import csv_schemas


@pytest.fixture(scope="module")
def spmm_tiny_sweep():
    return run_sweep(profile="tiny", domain="spmm")


def _csv_paths(directory):
    return (
        directory / "runtime.csv",
        directory / "preprocessing.csv",
        directory / "features.csv",
        directory / "known.csv",
    )


# ----------------------------------------------------------------------
# SpMV (default domain)
# ----------------------------------------------------------------------
def test_seer_from_disk_equals_seer_from_loaded_suite(tiny_sweep, tmp_path):
    tiny_sweep.suite.save(tmp_path)
    runtime, preprocessing, features, known = _csv_paths(tmp_path)
    from_disk = seer(runtime, preprocessing, features, known=known)
    # Training from the raw CSV paths and from the loaded suite must agree
    # exactly: both see the same (9-significant-digit quantized) inputs.
    from_suite = seer(BenchmarkSuite.load(tmp_path), None, None)
    # The generated artifacts are a complete, deterministic serialization of
    # the trained trees: equality means the models are identical.
    assert from_disk.cpp_header == from_suite.cpp_header
    assert from_disk.python_module == from_suite.python_module
    # suite_from_tables orders kernels alphabetically, load keeps CSV order.
    assert set(from_disk.models.kernel_names) == set(from_suite.models.kernel_names)


def test_seer_from_disk_matches_in_memory_predictions(tiny_sweep, tmp_path):
    tiny_sweep.suite.save(tmp_path)
    runtime, preprocessing, features, known = _csv_paths(tmp_path)
    from_disk = seer(runtime, preprocessing, features, known=known)
    in_memory = seer(tiny_sweep.suite, None, None)
    # CSV emission quantizes floats to 9 significant digits, so tree
    # thresholds may differ in the last ulps — but the behaviour must match.
    agree = sum(
        from_disk.models.predict_known(s.known_vector)
        == in_memory.models.predict_known(s.known_vector)
        for s in tiny_sweep.dataset.samples
    )
    assert agree == len(tiny_sweep.dataset.samples)


def test_csv_trained_predictor_agrees_with_in_memory(tiny_sweep, tmp_path):
    tiny_sweep.suite.save(tmp_path)
    runtime, preprocessing, features, known = _csv_paths(tmp_path)
    result = seer(runtime, preprocessing, features, known=known)
    for sample in tiny_sweep.dataset.samples[:10]:
        decision = result.predictor.predict_from_features(
            tiny_sweep.suite.get(sample.name).known,
            tiny_sweep.suite.get(sample.name).gathered,
            sample.collection_time_ms,
            name=sample.name,
        )
        assert decision.kernel_name in result.models.kernel_names


def test_suite_save_load_round_trip_preserves_measurements(tiny_sweep, tmp_path):
    tiny_sweep.suite.save(tmp_path)
    restored = BenchmarkSuite.load(tmp_path)
    assert restored.domain_name == "spmv"
    assert restored.kernel_names == tiny_sweep.suite.kernel_names
    assert sorted(restored.names()) == sorted(tiny_sweep.suite.names())
    original = tiny_sweep.suite.get(restored.measurements[0].name)
    rebuilt = restored.measurements[0]
    assert rebuilt.known == original.known
    np.testing.assert_allclose(
        rebuilt.gathered.as_vector(), original.gathered.as_vector()
    )


def test_manifest_written_and_parsed(tiny_sweep, tmp_path):
    tiny_sweep.suite.save(tmp_path)
    manifest = csv_schemas.read_manifest(tmp_path / "manifest.json")
    assert manifest["domain"] == "spmv"
    assert manifest["kernels"] == list(tiny_sweep.suite.kernel_names)
    assert manifest["known_features"] == ["rows", "cols", "nnz", "iterations"]
    assert csv_schemas.read_manifest(tmp_path / "absent.json") is None


# ----------------------------------------------------------------------
# SpMM (second domain through the same CSV layouts)
# ----------------------------------------------------------------------
def test_spmm_suite_round_trips_through_csvs(spmm_tiny_sweep, tmp_path):
    spmm_tiny_sweep.suite.save(tmp_path)
    restored = BenchmarkSuite.load(tmp_path)  # domain read from the manifest
    assert restored.domain_name == "spmm"
    original = spmm_tiny_sweep.suite.get(restored.measurements[0].name)
    rebuilt = restored.measurements[0]
    assert rebuilt.known.as_dict() == original.known.as_dict()
    np.testing.assert_allclose(
        rebuilt.gathered.as_vector(), original.gathered.as_vector()
    )


def test_seer_trains_spmm_models_from_disk(spmm_tiny_sweep, tmp_path):
    spmm_tiny_sweep.suite.save(tmp_path)
    runtime, preprocessing, features, known = _csv_paths(tmp_path)
    result = seer(runtime, preprocessing, features, known=known, domain="spmm")
    assert set(result.models.kernel_names) == set(spmm_tiny_sweep.kernel_names)
    assert result.models.known_feature_names == (
        "rows",
        "cols",
        "nnz",
        "num_vectors",
        "iterations",
    )
    reference = seer(BenchmarkSuite.load(tmp_path), None, None)
    assert result.cpp_header == reference.cpp_header
