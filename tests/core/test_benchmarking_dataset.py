"""Tests for the benchmarking stage and training-set assembly."""

import math

import numpy as np
import pytest

from repro.core.benchmarking import (
    BenchmarkSuite,
    measure_matrix,
    run_benchmark_suite,
)
from repro.core.dataset import build_training_dataset, sample_from_measurement
from repro.kernels.feature_kernels import FeatureCollector
from repro.kernels.registry import default_kernels
from repro.sparse.collection import build_collection
from repro.sparse.features import gathered_features


@pytest.fixture(scope="module")
def suite():
    collection = build_collection("tiny")
    return run_benchmark_suite(collection)


def test_suite_covers_every_matrix_and_kernel(suite):
    collection = build_collection("tiny")
    assert len(suite) == len(collection)
    assert set(suite.names()) == set(collection.names())
    for measurement in suite:
        assert set(measurement.kernel_runtime_ms) == set(suite.kernel_names)
        assert set(measurement.kernel_preprocessing_ms) == set(suite.kernel_names)


def test_measurement_features_match_direct_computation(suite):
    collection = build_collection("tiny")
    for record in list(collection)[:5]:
        measurement = suite.get(record.name)
        direct = gathered_features(record.matrix)
        np.testing.assert_allclose(
            measurement.gathered.as_vector(), direct.as_vector()
        )
        assert measurement.known.rows == record.matrix.num_rows
        assert measurement.known.nnz == record.matrix.nnz
        assert measurement.collection_time_ms > 0.0


def test_fastest_kernel_and_oracle(suite):
    for measurement in suite:
        best = measurement.fastest_kernel(1)
        oracle = measurement.oracle_time_ms(1)
        assert oracle == measurement.kernel_total_ms(best, 1)
        for kernel in suite.kernel_names:
            total = measurement.kernel_total_ms(kernel, 1)
            if math.isfinite(total):
                assert total >= oracle


def test_kernel_total_includes_preprocessing_amortization(suite):
    measurement = suite.measurements[0]
    one = measurement.kernel_total_ms("CSR,A", 1)
    many = measurement.kernel_total_ms("CSR,A", 10)
    runtime = measurement.kernel_runtime_ms["CSR,A"]
    assert many == pytest.approx(one + 9 * runtime)
    with pytest.raises(ValueError):
        measurement.kernel_total_ms("CSR,A", 0)


def test_suite_csv_round_trip(tmp_path, suite):
    suite.save(tmp_path)
    loaded = BenchmarkSuite.load(tmp_path)
    assert loaded.kernel_names == suite.kernel_names
    assert loaded.names() == sorted(suite.names())
    original = suite.get(suite.names()[0])
    restored = loaded.get(original.name)
    assert restored.kernel_runtime_ms == pytest.approx(original.kernel_runtime_ms)
    assert restored.known == original.known
    # per-kernel CSVs exist too (one per kernel, as in the paper's pipeline)
    assert len(list(tmp_path.glob("kernel_*.csv"))) == len(suite.kernel_names)


def test_measure_matrix_records_unsupported_kernels():
    from repro.sparse.generators import skewed_matrix

    matrix = skewed_matrix(300_000, 300_000, 1, 1, 300_000, rng=1)
    measurement = measure_matrix("extreme", matrix, default_kernels(), FeatureCollector())
    assert math.isinf(measurement.kernel_runtime_ms["ELL,TM"])
    assert math.isfinite(measurement.kernel_runtime_ms["CSR,WO"])
    assert measurement.fastest_kernel(1) != "ELL,TM"


def test_build_training_dataset_expands_iterations(suite):
    dataset = build_training_dataset(suite, iteration_counts=(1, 19))
    assert len(dataset) == 2 * len(suite)
    iterations = {sample.iterations for sample in dataset}
    assert iterations == {1, 19}
    sample = dataset.samples[0]
    assert sample.known_vector.shape == (4,)
    assert sample.full_vector.shape == (8,)
    assert sample.best_kernel in suite.kernel_names
    assert dataset.known_matrix().shape == (len(dataset), 4)
    assert dataset.full_matrix().shape == (len(dataset), 8)


def test_training_dataset_subset(suite):
    dataset = build_training_dataset(suite, iteration_counts=(1,))
    subset = dataset.subset([0, 2, 4])
    assert len(subset) == 3
    assert subset.samples[1] is dataset.samples[2]


def test_sample_best_kernel_is_truly_best(suite):
    dataset = build_training_dataset(suite, iteration_counts=(1, 4))
    for sample in dataset:
        best_total = sample.kernel_total_ms[sample.best_kernel]
        finite = [t for t in sample.kernel_total_ms.values() if math.isfinite(t)]
        assert best_total == min(finite)
        assert sample.oracle_ms == best_total


def test_build_training_dataset_validation(suite):
    with pytest.raises(ValueError):
        build_training_dataset(suite, iteration_counts=())
    with pytest.raises(ValueError):
        build_training_dataset(suite, iteration_counts=(0,))


def test_sample_from_measurement_requires_runnable_kernel(suite):
    measurement = suite.measurements[0]
    broken = type(measurement)(
        name="broken",
        known=measurement.known,
        gathered=measurement.gathered,
        kernel_runtime_ms={k: math.inf for k in suite.kernel_names},
        kernel_preprocessing_ms={k: 0.0 for k in suite.kernel_names},
    )
    with pytest.raises(ValueError):
        sample_from_measurement(broken, 1, suite.kernel_names)
