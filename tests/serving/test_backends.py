"""Backend differential tests: compiled vs. codegen vs. recursive.

The serving core decides kernels through one ``predict_batch`` interface
with three implementations; since the code generator emits thresholds with
``repr`` (the shortest exactly-round-tripping float literal), all three
must agree *element-wise* on every input — no tolerance.  These tests pin
that contract on real trained models, then exercise the ``selector.py``
cache discipline (emission on save, stale re-emission, read-only
degradation) and the daemon-facing plumbing: config validation,
request-level overrides, ``/healthz``/``/metrics`` exposure, and the
promotion hot-reload that swaps the served generated code without a
restart.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.training import TrainingConfig, train_seer_models
from repro.serving.artifacts import save_models
from repro.serving.backends import (
    BACKEND_MODES,
    SELECTOR_MODULE_NAME,
    BackendError,
    CodegenBackend,
    CompiledBackend,
    check_backend,
    emit_selector_module,
    ensure_selector_module,
    load_selector_namespace,
    make_backend,
    render_selector_module,
    selector_module_path,
)
from repro.serving.ingest import IngestError
from repro.serving.registry import ModelRegistry
from repro.serving.requests import ServeRequest, evaluate_requests
from repro.serving.service import ServiceConfig, ServiceConfigError, ServingService

#: Cheap deliberately-different retrain config for the hot-reload test.
STUMP_CONFIG = TrainingConfig(
    known_depth=1, gathered_depth=1, selector_depth=1, selector_cross_fit=0
)


@pytest.fixture(scope="module")
def saved_model(tiny_sweep, tmp_path_factory):
    """The tiny-sweep models persisted as a registry-style artifact."""
    directory = tmp_path_factory.mktemp("backend-model")
    path = save_models(tiny_sweep.models, directory / "model.json", domain="spmv")
    return tiny_sweep.models, path


def _feature_batches(sweep):
    """The sweep's full dataset as (known, gathered) feature matrices."""
    samples = sweep.dataset.samples
    known = np.stack([s.known_vector for s in samples])
    gathered = np.stack([s.gathered_vector for s in samples])
    return known, gathered


def _get(url: str) -> tuple:
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _post(url: str, payload: dict) -> tuple:
    data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


# ----------------------------------------------------------------------
# Element-wise parity
# ----------------------------------------------------------------------
def test_all_backends_agree_elementwise(tiny_sweep, saved_model):
    models, path = saved_model
    known, gathered = _feature_batches(tiny_sweep)
    reference = CompiledBackend(models).predict_batch(known, gathered)
    assert reference == models.predict_batch(known, gathered)
    for name in BACKEND_MODES:
        backend = make_backend(name, models, model_path=path)
        assert backend.name == name
        assert backend.predict_batch(known, gathered) == reference
        # Known-only batches (no gathered features offered) agree too.
        assert backend.predict_batch(known) == CompiledBackend(
            models
        ).predict_batch(known)


def test_codegen_backend_works_without_a_model_path(tiny_sweep):
    """No artifact directory → purely in-memory generated-code inference."""
    models = tiny_sweep.models
    known, gathered = _feature_batches(tiny_sweep)
    backend = CodegenBackend(models)
    assert backend.predict_batch(known, gathered) == models.predict_batch(
        known, gathered
    )


def test_backends_reject_mismatched_batches(tiny_sweep, saved_model):
    models, path = saved_model
    known, gathered = _feature_batches(tiny_sweep)
    for name in BACKEND_MODES:
        backend = make_backend(name, models, model_path=path)
        with pytest.raises(ValueError, match="disagree on the sample count"):
            backend.predict_batch(known, gathered[:-1])


def test_check_backend_names():
    for name in BACKEND_MODES:
        assert check_backend(name) == name
    with pytest.raises(BackendError, match="backend must be one of"):
        check_backend("interpreted")


# ----------------------------------------------------------------------
# The selector.py cache
# ----------------------------------------------------------------------
def test_registry_save_emits_the_selector_module(tiny_sweep, tmp_path):
    registry = ModelRegistry(tmp_path)
    model_path = registry.save(tiny_sweep.models, domain="spmv", profile="tiny")
    selector = selector_module_path(model_path)
    assert selector.name == SELECTOR_MODULE_NAME
    assert selector.read_text(encoding="utf-8") == render_selector_module(
        tiny_sweep.models
    )
    manifest = registry.manifest_for("spmv", "tiny", model_path.parent.name)
    assert manifest["selector_module"] == SELECTOR_MODULE_NAME


def test_stale_selector_module_is_reemitted(tiny_sweep, saved_model, tmp_path):
    models, _ = saved_model
    path = save_models(models, tmp_path / "model.json", domain="spmv")
    selector = emit_selector_module(models, path)
    canonical = selector.read_text(encoding="utf-8")
    selector.write_text("# stale leftover from an older code generator\n")
    known, gathered = _feature_batches(tiny_sweep)
    backend = CodegenBackend(models, model_path=path)
    assert selector.read_text(encoding="utf-8") == canonical
    assert backend.predict_batch(known, gathered) == models.predict_batch(
        known, gathered
    )
    # A missing cache is re-created the same way.
    selector.unlink()
    CodegenBackend(models, model_path=path)
    assert selector.read_text(encoding="utf-8") == canonical


def test_readonly_artifact_degrades_to_in_memory(
    tiny_sweep, tmp_path, monkeypatch
):
    """An unwritable artifact directory must not break codegen serving."""
    import repro.bench.engine as engine

    models = tiny_sweep.models
    path = save_models(models, tmp_path / "model.json", domain="spmv")

    def refuse(*args, **kwargs):
        raise OSError("read-only registry")

    monkeypatch.setattr(engine, "atomic_write_bytes", refuse)
    backend = CodegenBackend(models, model_path=path)  # no crash
    assert not selector_module_path(path).exists()
    known, gathered = _feature_batches(tiny_sweep)
    assert backend.predict_batch(known, gathered) == models.predict_batch(
        known, gathered
    )
    # ensure_selector_module still hands back the full source.
    assert ensure_selector_module(models, path) == render_selector_module(models)


def test_selector_namespace_validation():
    with pytest.raises(BackendError, match="not valid generated code"):
        load_selector_namespace("def known_classifier(:\n")
    with pytest.raises(BackendError, match="missing generated name"):
        load_selector_namespace("KERNEL_CLASSES = ()\n")


# ----------------------------------------------------------------------
# The serving core and request plumbing
# ----------------------------------------------------------------------
def _inline_requests(sweep):
    models = sweep.models
    requests = []
    for sample in sweep.dataset.samples:
        requests.append(
            ServeRequest(
                name=sample.name,
                known=dict(
                    zip(models.known_feature_names, map(float, sample.known_vector))
                ),
                gathered=dict(
                    zip(
                        models.gathered_feature_names,
                        map(float, sample.gathered_vector),
                    )
                ),
            )
        )
    return requests


def test_evaluate_requests_backend_parity(tiny_sweep, saved_model):
    """Every decision out of ``evaluate_requests`` is identical across the
    three backends, gathered-routed second pass included."""
    models, path = saved_model
    requests = _inline_requests(tiny_sweep)
    reference, _ = evaluate_requests(models, requests, execute=False)
    routed = {r.selector_choice for r in reference}
    assert routed == {"known", "gathered"}  # both passes exercised
    for name in BACKEND_MODES:
        backend = make_backend(name, models, model_path=path)
        results, _ = evaluate_requests(
            models, requests, execute=False, backend=backend
        )
        for got, expected in zip(results, reference):
            assert got.kernel == expected.kernel
            assert got.selector_choice == expected.selector_choice


def test_serve_request_validates_and_roundtrips_backend():
    request = ServeRequest(name="w", known={"f": 1.0}, backend="codegen")
    assert request.to_payload()["backend"] == "codegen"
    assert ServeRequest.from_payload(request.to_payload()).backend == "codegen"
    assert "backend" not in ServeRequest(name="w", known={"f": 1.0}).to_payload()
    with pytest.raises(IngestError, match="backend must be one of"):
        ServeRequest(name="w", known={"f": 1.0}, backend="interpreted")


def test_service_config_validates_backend_and_precision(saved_model):
    _, path = saved_model
    assert ServiceConfig(model=str(path)).backend == "compiled"
    assert ServiceConfig(model=str(path)).precision == "exact"
    with pytest.raises(ServiceConfigError, match="backend must be one of"):
        ServiceConfig(model=str(path), backend="interpreted")
    with pytest.raises(ServiceConfigError, match="precision must be one of"):
        ServiceConfig(model=str(path), precision="approximate")


# ----------------------------------------------------------------------
# The daemon: exposure, overrides, hot reload
# ----------------------------------------------------------------------
def test_daemon_exposes_backend_and_precision(tiny_sweep, saved_model):
    models, path = saved_model
    config = ServiceConfig(
        model=str(path), port=0, execute=False, backend="codegen", precision="fast"
    )
    known = {name: 1.0 for name in models.known_feature_names}
    gathered = {name: 0.5 for name in models.gathered_feature_names}
    with ServingService(config) as service:
        status, health = _get(service.url + "/healthz")
        assert status == 200
        assert health["backend"] == "codegen"
        assert health["precision"] == "fast"

        status, body = _post(
            service.url + "/v1/serve",
            {"name": "w", "known": known, "gathered": gathered},
        )
        assert status == 200
        codegen_kernel = body["kernel"]

        # Request-level override: the recursive reference must agree.
        status, body = _post(
            service.url + "/v1/serve",
            {"name": "w", "known": known, "gathered": gathered,
             "backend": "recursive"},
        )
        assert status == 200
        assert body["kernel"] == codegen_kernel

        # An unknown backend fails that request only, not the daemon.
        status, body = _post(
            service.url + "/v1/serve",
            {"name": "w", "known": known, "backend": "interpreted"},
        )
        assert status == 400
        assert "backend must be one of" in body["error"]

        status, metrics = _get(service.url + "/metrics")
        assert metrics["backend"] == "codegen"
        assert metrics["precision"] == "fast"
        assert metrics["loaded_backends"] == [
            "default:codegen",
            "default:recursive",
        ]
        summary = service.summary()
    assert summary["service"]["backend"] == "codegen"
    assert summary["service"]["precision"] == "fast"
    assert summary["service"]["loaded_backends"] == [
        "default:codegen",
        "default:recursive",
    ]


def test_promotion_hot_reload_swaps_the_codegen_module(tiny_sweep, tmp_path):
    """Flipping ``current.json`` swaps the served generated code: the next
    request rebuilds the codegen backend against the promoted artifact and
    re-emits ``selector.py`` next to it — no restart."""
    registry = ModelRegistry(tmp_path / "registry")
    incumbent = tiny_sweep.models
    registry.save(incumbent, domain="spmv", profile="tiny", key="incumbent")
    registry.promote("spmv", "tiny", key="incumbent")

    promoted_models = train_seer_models(tiny_sweep.train_set, STUMP_CONFIG)
    promoted_path = registry.save(
        promoted_models, domain="spmv", profile="tiny", key="promoted"
    )
    promoted_selector = selector_module_path(promoted_path)
    promoted_selector.unlink()  # force the hot reload to re-emit it

    config = ServiceConfig(
        registry=str(tmp_path / "registry"),
        domain="spmv",
        profile="tiny",
        port=0,
        execute=False,
        backend="codegen",
    )
    known = {name: 1.0 for name in incumbent.known_feature_names}
    with ServingService(config) as service:
        status, before = _post(
            service.url + "/v1/serve", {"name": "w", "known": known}
        )
        assert status == 200
        _, health = _get(service.url + "/healthz")
        assert health["loaded_backends"] == ["spmv/tiny:codegen"]

        registry.promote("spmv", "tiny", key="promoted")

        status, after = _post(
            service.url + "/v1/serve", {"name": "w", "known": known}
        )
        assert status == 200
        # The re-emitted module is the promoted model's generated code...
        assert promoted_selector.read_text(
            encoding="utf-8"
        ) == render_selector_module(promoted_models)
        # ... and the decision now comes from the promoted model.
        row = np.array(
            [known[name] for name in incumbent.known_feature_names]
        )
        expected = promoted_models.predict_batch(np.atleast_2d(row))
        assert after["kernel"] == (
            expected.known_kernels[0]
            if expected.selector_choices[0] == "known"
            else after["kernel"]
        )
        assert after["selector_choice"] == expected.selector_choices[0]
        _, health = _get(service.url + "/healthz")
        assert health["loaded_backends"] == ["spmv/tiny:codegen"]
        assert before["selector_choice"] in ("known", "gathered")
