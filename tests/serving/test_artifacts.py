"""Model artifact tests: golden stability, validation and the registry.

The golden ``goldens/model.json`` pins the serialized form of the tiny
SpMV profile's trained models byte for byte; regenerate after an
*intentional* change with::

    SEER_UPDATE_GOLDENS=1 python -m pytest tests/serving/test_artifacts.py
"""

import copy
import json
import os
from pathlib import Path

import pytest

from repro.core.training import TrainingConfig
from repro.bench.engine import sweep_config_key
from repro.serving.artifacts import (
    MODEL_FORMAT_VERSION,
    ModelArtifactError,
    dump_model_document,
    load_artifact,
    load_models,
    models_from_payload,
    models_to_payload,
    save_models,
)
from repro.serving.registry import MANIFEST_FILE_NAME, ModelRegistry

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_MODEL = GOLDEN_DIR / "model.json"


def _tiny_document(models) -> str:
    return dump_model_document(
        models_to_payload(models, domain="spmv", training_config=TrainingConfig())
    )


# ----------------------------------------------------------------------
# Golden artifact
# ----------------------------------------------------------------------
def test_tiny_spmv_model_matches_golden(tiny_sweep):
    document = _tiny_document(tiny_sweep.models)
    if os.environ.get("SEER_UPDATE_GOLDENS"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        GOLDEN_MODEL.write_bytes(document.encode("utf-8"))
        pytest.skip("regenerated golden model.json")
    assert GOLDEN_MODEL.exists(), (
        f"missing golden {GOLDEN_MODEL}; regenerate with SEER_UPDATE_GOLDENS=1"
    )
    assert document.encode("utf-8") == GOLDEN_MODEL.read_bytes(), (
        "serialized model drifted from its golden; if the change is "
        "intentional, regenerate with SEER_UPDATE_GOLDENS=1"
    )


def test_save_load_save_is_byte_stable(tiny_sweep, tmp_path):
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    save_models(
        tiny_sweep.models, first, domain="spmv", training_config=TrainingConfig()
    )
    reloaded = load_models(first, domain="spmv")
    save_models(reloaded, second, domain="spmv", training_config=TrainingConfig())
    assert first.read_bytes() == second.read_bytes()


def test_golden_model_loads_and_validates():
    if not GOLDEN_MODEL.exists():
        pytest.skip("golden not generated yet")
    models = load_models(GOLDEN_MODEL, domain="spmv")
    assert models.known_feature_names == ("rows", "cols", "nnz", "iterations")
    assert models.training_size > 0


# ----------------------------------------------------------------------
# Robustness: corrupted / incompatible artifacts
# ----------------------------------------------------------------------
def _payload(tiny_sweep) -> dict:
    return models_to_payload(tiny_sweep.models, domain="spmv")


def test_missing_artifact_raises_clear_error(tmp_path):
    with pytest.raises(ModelArtifactError, match="cannot read"):
        load_artifact(tmp_path / "nope" / "model.json")


def test_garbage_artifact_raises_clear_error(tmp_path):
    path = tmp_path / "model.json"
    path.write_bytes(b"\x00\x01 this is not json")
    with pytest.raises(ModelArtifactError, match="not valid JSON"):
        load_artifact(path)


def test_truncated_artifact_raises_clear_error(tiny_sweep, tmp_path):
    path = save_models(tiny_sweep.models, tmp_path / "model.json", domain="spmv")
    path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
    with pytest.raises(ModelArtifactError, match="not valid JSON"):
        load_artifact(path)


def test_wrong_format_marker_is_rejected(tmp_path):
    path = tmp_path / "model.json"
    path.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ModelArtifactError, match="not a Seer model artifact"):
        load_artifact(path)


def test_future_format_version_is_rejected(tiny_sweep):
    payload = _payload(tiny_sweep)
    payload["format_version"] = MODEL_FORMAT_VERSION + 1
    with pytest.raises(ModelArtifactError, match="unsupported model format version"):
        models_from_payload(payload)


def test_missing_tree_is_rejected(tiny_sweep):
    payload = _payload(tiny_sweep)
    del payload["trees"]["selector"]
    with pytest.raises(ModelArtifactError, match="missing the 'selector' tree"):
        models_from_payload(payload)


def test_out_of_range_child_index_is_rejected(tiny_sweep):
    payload = copy.deepcopy(_payload(tiny_sweep))
    nodes = payload["trees"]["known"]["nodes"]
    nodes[0]["left"] = len(nodes) + 5
    with pytest.raises(ModelArtifactError, match="out of range"):
        models_from_payload(payload)


def test_out_of_range_feature_index_is_rejected(tiny_sweep):
    payload = copy.deepcopy(_payload(tiny_sweep))
    payload["trees"]["known"]["nodes"][0]["feature"] = 99
    with pytest.raises(ModelArtifactError, match="splits on feature 99"):
        models_from_payload(payload)


def test_non_finite_threshold_is_rejected(tiny_sweep):
    payload = copy.deepcopy(_payload(tiny_sweep))
    payload["trees"]["known"]["nodes"][0]["threshold"] = float("nan")
    with pytest.raises(ModelArtifactError, match="non-finite threshold"):
        models_from_payload(payload)


def test_foreign_selector_class_is_rejected(tiny_sweep):
    payload = copy.deepcopy(_payload(tiny_sweep))
    classes = payload["trees"]["selector"]["classes"]
    payload["trees"]["selector"]["classes"] = ["bogus"] + classes[1:]
    with pytest.raises(ModelArtifactError, match="unknown classes"):
        models_from_payload(payload)


def test_duplicate_tree_classes_are_rejected(tiny_sweep):
    payload = copy.deepcopy(_payload(tiny_sweep))
    classes = payload["trees"]["known"]["classes"]
    payload["trees"]["known"]["classes"] = [classes[0]] * len(classes)
    with pytest.raises(ModelArtifactError, match="invalid classes"):
        models_from_payload(payload)


def test_non_list_schema_names_are_rejected(tiny_sweep):
    payload = copy.deepcopy(_payload(tiny_sweep))
    payload["known_feature_names"] = 5
    with pytest.raises(ModelArtifactError, match="list of strings"):
        models_from_payload(payload)


def test_registry_treats_wrong_shape_entry_as_miss(tiny_sweep, tmp_path):
    """Valid JSON with broken content is a miss too, not a crash."""
    registry = ModelRegistry(tmp_path)
    path = registry.save(tiny_sweep.models, domain="spmv", profile="tiny")
    payload = json.loads(path.read_text())
    payload["trees"]["known"]["classes"] = [["unhashable"]]
    path.write_text(json.dumps(payload))
    assert registry.load_or_none(domain="spmv", profile="tiny") is None


def test_domain_name_mismatch_is_rejected(tiny_sweep):
    payload = _payload(tiny_sweep)
    with pytest.raises(ModelArtifactError, match="trained for domain 'spmv'"):
        models_from_payload(payload, domain="spmm")


def test_schema_mismatch_is_rejected(tiny_sweep):
    payload = copy.deepcopy(_payload(tiny_sweep))
    payload["domain"] = None  # defeat the name check, keep the schema check
    payload["known_feature_names"] = ["a", "b", "c", "iterations"]
    payload["trees"]["known"]["feature_names"] = ["a", "b", "c", "iterations"]
    payload["trees"]["selector"]["feature_names"] = ["a", "b", "c", "iterations"]
    with pytest.raises(ModelArtifactError, match="known-feature schema mismatch"):
        models_from_payload(payload, domain="spmv")


def test_unregistered_kernel_is_rejected(tiny_sweep):
    payload = copy.deepcopy(_payload(tiny_sweep))
    index = payload["kernel_names"].index("rocSPARSE")
    payload["kernel_names"][index] = "madeUpKernel"
    for tree in payload["trees"].values():
        tree["classes"] = [
            "madeUpKernel" if label == "rocSPARSE" else label
            for label in tree["classes"]
        ]
    with pytest.raises(ModelArtifactError, match="does not register"):
        models_from_payload(payload, domain="spmv")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_save_find_load_roundtrip(tiny_sweep, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    path = registry.save(tiny_sweep.models, domain="spmv", profile="tiny")
    assert path.name == "model.json"
    assert path.parent.parent.name == "tiny"
    assert path.parent.parent.parent.name == "spmv"
    assert (path.parent / MANIFEST_FILE_NAME).is_file()

    found = registry.find(domain="spmv", profile="tiny")
    assert found == path
    loaded = registry.load(domain="spmv", profile="tiny")
    known = tiny_sweep.test_set.known_matrix()
    gathered = tiny_sweep.test_set.gathered_matrix()
    assert loaded.predict_batch(known, gathered) == tiny_sweep.models.predict_batch(
        known, gathered
    )


def test_registry_key_matches_engine_sweep_key(tmp_path):
    from repro.core.dataset import DEFAULT_ITERATION_COUNTS
    from repro.domains import get_domain
    from repro.gpu.device import MI100

    registry = ModelRegistry(tmp_path)
    domain = get_domain("spmv")
    assert registry.key_for(domain="spmv", profile="tiny") == sweep_config_key(
        "tiny",
        7,
        13,
        DEFAULT_ITERATION_COUNTS,
        MI100,
        domain.kernel_names(include_aux=True),
        None,
        domain,
    )


def test_registry_manifest_records_the_configuration(tiny_sweep, tmp_path):
    registry = ModelRegistry(tmp_path)
    path = registry.save(tiny_sweep.models, domain="spmv", profile="tiny")
    manifest = json.loads((path.parent / MANIFEST_FILE_NAME).read_text())
    assert manifest["domain"] == "spmv"
    assert manifest["profile"] == "tiny"
    assert manifest["key"] == path.parent.name
    assert manifest["kernels"] == list(tiny_sweep.models.kernel_names)


def test_registry_miss_returns_none_and_load_raises(tmp_path):
    registry = ModelRegistry(tmp_path)
    assert registry.find(domain="spmv", profile="tiny") is None
    assert registry.load_or_none(domain="spmv", profile="tiny") is None
    with pytest.raises(ModelArtifactError, match="no model registered"):
        registry.load(domain="spmv", profile="tiny")


def test_registry_treats_corrupt_entry_as_miss(tiny_sweep, tmp_path):
    registry = ModelRegistry(tmp_path)
    path = registry.save(tiny_sweep.models, domain="spmv", profile="tiny")
    path.write_bytes(b"corrupted beyond repair")
    assert registry.load_or_none(domain="spmv", profile="tiny") is None
    with pytest.raises(ModelArtifactError):
        registry.load(domain="spmv", profile="tiny")


def test_registry_resave_is_byte_identical(tiny_sweep, tmp_path):
    registry = ModelRegistry(tmp_path)
    path = registry.save(tiny_sweep.models, domain="spmv", profile="tiny")
    first = path.read_bytes()
    manifest_first = (path.parent / MANIFEST_FILE_NAME).read_bytes()
    registry.save(tiny_sweep.models, domain="spmv", profile="tiny")
    assert path.read_bytes() == first
    assert (path.parent / MANIFEST_FILE_NAME).read_bytes() == manifest_first


def test_unreadable_artifact_raises_clear_error(tiny_sweep, tmp_path):
    """Bytes that are not even UTF-8 (a torn write) must raise the
    artifact error, not leak a UnicodeDecodeError."""
    registry = ModelRegistry(tmp_path)
    path = registry.save(tiny_sweep.models, domain="spmv", profile="tiny")
    path.write_bytes(b"\xff\xfe\x00 definitely not utf-8 json \x80")
    with pytest.raises(ModelArtifactError, match="cannot read model artifact"):
        load_artifact(path)


def test_registry_treats_unreadable_entry_as_miss(tiny_sweep, tmp_path):
    """load_or_none must swallow a torn/unreadable model.json as a miss."""
    registry = ModelRegistry(tmp_path)
    path = registry.save(tiny_sweep.models, domain="spmv", profile="tiny")
    path.write_bytes(b"\xff\xfe\x00 torn write \x80")
    assert registry.load_or_none(domain="spmv", profile="tiny") is None


def test_registry_treats_read_oserror_as_miss(
    tiny_sweep, tmp_path, monkeypatch
):
    """An OSError surfacing mid-read (file vanished, I/O error) is a miss."""
    registry = ModelRegistry(tmp_path)
    registry.save(tiny_sweep.models, domain="spmv", profile="tiny")

    def explode(self, *args, **kwargs):
        raise OSError("simulated I/O error")

    monkeypatch.setattr(Path, "read_text", explode)
    assert registry.load_or_none(domain="spmv", profile="tiny") is None
