"""Differential tests: vectorized serving vs. the recursive reference.

The compiled batch path and the artifact round-trip must be *exact*: for
any fitted tree and any feature batch, ``predict_batch`` agrees element-wise
with the recursive ``predict``, and a serialize/deserialize round trip
changes no prediction.  Hypothesis drives random trees and random batches
through both paths.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.training import USE_GATHERED, USE_KNOWN, SeerModels
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.encoders import LabelEncoder
from repro.serving.artifacts import (
    models_from_payload,
    models_to_payload,
    tree_from_payload,
    tree_to_payload,
)

KERNEL_POOL = ("CSR,A", "CSR,TM", "COO,WM", "ELL,TM", "rocSPARSE")


@st.composite
def fitted_trees(draw):
    """A randomly fitted tree plus a feature batch it was not fitted on.

    Training features are rounded to one decimal so duplicate values (and
    therefore shared thresholds) are common; the probe batch mixes training
    rows (which sit exactly on threshold boundaries) with fresh draws.
    """
    num_samples = draw(st.integers(min_value=4, max_value=50))
    num_features = draw(st.integers(min_value=1, max_value=4))
    num_classes = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    max_depth = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=6)))
    min_samples_leaf = draw(st.integers(min_value=1, max_value=3))
    rng = np.random.default_rng(seed)
    X = np.round(rng.normal(size=(num_samples, num_features)) * 3, 1)
    y = [KERNEL_POOL[code] for code in rng.integers(0, num_classes, num_samples)]
    weights = rng.uniform(0.1, 5.0, size=num_samples)
    tree = DecisionTreeClassifier(
        max_depth=max_depth, min_samples_leaf=min_samples_leaf
    ).fit(X, y, sample_weight=weights)
    num_probes = draw(st.integers(min_value=1, max_value=40))
    probes = np.vstack(
        [X, np.round(rng.normal(size=(num_probes, num_features)) * 3, 1)]
    )
    return tree, probes


@given(fitted_trees())
@settings(max_examples=60, deadline=None)
def test_predict_batch_agrees_with_recursive_predict(case):
    tree, probes = case
    assert tree.predict_batch(probes) == tree.predict(probes)


@given(fitted_trees())
@settings(max_examples=40, deadline=None)
def test_payload_roundtrip_preserves_every_prediction(case):
    tree, probes = case
    payload = tree_to_payload(tree)
    rebuilt = tree_from_payload(payload)
    assert rebuilt.classes_ == tree.classes_
    assert rebuilt.num_nodes_ == tree.num_nodes_
    assert rebuilt.depth() == tree.depth()
    assert rebuilt.predict(probes) == tree.predict(probes)
    assert rebuilt.predict_batch(probes) == tree.predict_batch(probes)
    assert tree_to_payload(rebuilt) == payload


@given(fitted_trees())
@settings(max_examples=30, deadline=None)
def test_compiled_probabilities_reach_the_same_leaves(case):
    tree, probes = case
    codes = tree.compiled().predict_codes(probes)
    for sample, code in zip(probes, codes):
        assert tree._leaf_for(sample).prediction == code


@st.composite
def seer_model_bundles(draw):
    """A randomly fitted three-tree bundle plus matching feature batches."""
    num_samples = draw(st.integers(min_value=6, max_value=40))
    num_known = draw(st.integers(min_value=2, max_value=4))
    num_gathered = draw(st.integers(min_value=1, max_value=3))
    num_kernels = draw(st.integers(min_value=2, max_value=len(KERNEL_POOL)))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    known_X = np.round(rng.normal(size=(num_samples, num_known)) * 3, 1)
    gathered_X = np.round(rng.normal(size=(num_samples, num_gathered)) * 3, 1)
    labels = [KERNEL_POOL[code] for code in rng.integers(0, num_kernels, num_samples)]
    selector_labels = [
        (USE_GATHERED, USE_KNOWN)[code] for code in rng.integers(0, 2, num_samples)
    ]
    known_names = tuple(f"k{i}" for i in range(num_known))
    gathered_names = tuple(f"g{i}" for i in range(num_gathered))
    models = SeerModels(
        known_model=DecisionTreeClassifier(max_depth=4).fit(known_X, labels),
        gathered_model=DecisionTreeClassifier(max_depth=5).fit(
            np.hstack([known_X, gathered_X]), labels
        ),
        selector_model=DecisionTreeClassifier(max_depth=3).fit(
            known_X, selector_labels
        ),
        kernel_names=sorted(set(labels)),
        known_feature_names=known_names,
        gathered_feature_names=gathered_names,
        training_size=num_samples,
    )
    return models, known_X, gathered_X


@given(seer_model_bundles())
@settings(max_examples=40, deadline=None)
def test_models_predict_batch_agrees_with_scalar_predicts(bundle):
    models, known_X, gathered_X = bundle
    batch = models.predict_batch(known_X, gathered_X)
    assert list(batch.selector_choices) == [
        models.predict_selector(row) for row in known_X
    ]
    assert list(batch.known_kernels) == [
        models.predict_known(row) for row in known_X
    ]
    assert list(batch.gathered_kernels) == [
        models.predict_gathered(known, gathered)
        for known, gathered in zip(known_X, gathered_X)
    ]
    # The deployed choice follows the selector row by row.
    for choice, known, gathered, kernel in zip(
        batch.selector_choices,
        batch.known_kernels,
        batch.gathered_kernels,
        batch.kernels,
    ):
        assert kernel == (gathered if choice == USE_GATHERED else known)


@given(seer_model_bundles())
@settings(max_examples=25, deadline=None)
def test_models_payload_roundtrip_preserves_batch_predictions(bundle):
    models, known_X, gathered_X = bundle
    payload = models_to_payload(models)
    rebuilt = models_from_payload(payload)
    assert rebuilt.predict_batch(known_X, gathered_X) == models.predict_batch(
        known_X, gathered_X
    )
    assert models_to_payload(rebuilt) == payload


@given(st.lists(st.sampled_from(KERNEL_POOL), min_size=1, max_size=5, unique=True))
def test_encoder_from_classes_preserves_order(classes):
    encoder = LabelEncoder.from_classes(classes)
    assert encoder.classes_ == list(classes)
    assert encoder.inverse_transform(encoder.transform(classes)) == list(classes)
