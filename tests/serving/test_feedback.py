"""Measured-feedback tests: scoring, artifact stability, loading, drift.

The golden ``goldens/feedback.csv`` pins the feedback artifact of a fixed
synthetic corpus served by the tiny SpMV models byte for byte; regenerate
after an *intentional* change with::

    SEER_UPDATE_GOLDENS=1 python -m pytest tests/serving/test_feedback.py
"""

import json
import math
import os
from pathlib import Path

import numpy as np
import pytest

from repro.serving.feedback import (
    FEEDBACK_FILE_NAME,
    FEEDBACK_MANIFEST_FILE_NAME,
    DriftMonitor,
    feedback_from_corpus,
    load_feedback_dataset,
    measure_feedback,
    write_feedback_artifact,
)
from repro.sparse.generators import (
    banded_matrix,
    power_law_matrix,
    regular_matrix,
)
from repro.sparse.io import write_matrix_market

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_FEEDBACK = GOLDEN_DIR / "feedback.csv"


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    directory = tmp_path_factory.mktemp("feedback-corpus")
    write_matrix_market(
        power_law_matrix(200, 200, 5.0, rng=3), directory / "pl.mtx"
    )
    write_matrix_market(banded_matrix(128, 7, rng=1), directory / "band.mtx")
    write_matrix_market(regular_matrix(96, 96, 4, rng=2), directory / "reg.mtx")
    return directory


@pytest.fixture(scope="module")
def feedback(tiny_sweep, corpus):
    return feedback_from_corpus(
        tiny_sweep.models, corpus, domain="spmv", iterations=3
    )


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------
def test_feedback_scores_every_served_workload(tiny_sweep, feedback):
    assert len(feedback) == 3
    assert [s.name for s in feedback.dataset.samples] == [
        r.name for r in feedback.report.rows
    ]
    kernel_names = set(tiny_sweep.models.kernel_names)
    for row in feedback.report.rows:
        assert row.oracle_kernel in kernel_names
        assert row.selector_kernel in kernel_names
        assert row.selector_ms >= row.oracle_ms  # oracle is the floor


def test_feedback_summary_has_the_drift_and_promotion_keys(feedback):
    summary = feedback.summary()
    assert summary["samples"] == 3
    assert summary["iterations"] == 3
    assert 0.0 <= summary["selector_kernel_accuracy"] <= 1.0
    assert summary["selector_slowdown_vs_oracle"] >= 1.0
    assert summary["regret"] >= 0.0  # selector can only lose time vs oracle
    record = summary["kernel_record"]
    assert set(record) == {"wins", "losses"}
    assert sum(record["wins"].values()) + sum(record["losses"].values()) == 3
    wins = sum(
        1
        for row in feedback.report.rows
        if row.selector_kernel == row.oracle_kernel
    )
    assert sum(record["wins"].values()) == wins


def test_measure_feedback_rejects_degenerate_inputs(tiny_sweep, corpus):
    with pytest.raises(ValueError, match="iterations"):
        feedback_from_corpus(
            tiny_sweep.models, corpus, domain="spmv", iterations=0
        )
    from repro.core.benchmarking import BenchmarkSuite

    empty = BenchmarkSuite(
        kernel_names=list(tiny_sweep.suite.kernel_names), measurements=[]
    )
    with pytest.raises(ValueError, match="empty corpus"):
        measure_feedback(tiny_sweep.models, empty)


def test_render_names_every_workload(feedback):
    text = feedback.render()
    for row in feedback.report.rows:
        assert row.name in text
    assert "regret" in text


# ----------------------------------------------------------------------
# The artifact: byte stability and the golden
# ----------------------------------------------------------------------
def test_feedback_artifact_is_byte_stable(feedback, tiny_sweep, corpus, tmp_path):
    first = write_feedback_artifact(feedback, tmp_path / "a")
    again = feedback_from_corpus(
        tiny_sweep.models, corpus, domain="spmv", iterations=3
    )
    second = write_feedback_artifact(again, tmp_path / "b")
    assert first["data"].read_bytes() == second["data"].read_bytes()
    assert first["manifest"].read_bytes() == second["manifest"].read_bytes()


def test_feedback_artifact_matches_golden(feedback, tmp_path):
    paths = write_feedback_artifact(feedback, tmp_path)
    csv_bytes = paths["data"].read_bytes()
    if os.environ.get("SEER_UPDATE_GOLDENS"):
        GOLDEN_FEEDBACK.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_FEEDBACK.write_bytes(csv_bytes)
        pytest.skip(f"regenerated golden {GOLDEN_FEEDBACK.name}")
    assert GOLDEN_FEEDBACK.exists(), (
        f"missing golden {GOLDEN_FEEDBACK}; regenerate with "
        "SEER_UPDATE_GOLDENS=1"
    )
    assert csv_bytes == GOLDEN_FEEDBACK.read_bytes(), (
        "feedback artifact drifted from its golden; if the change is "
        "intentional, regenerate with SEER_UPDATE_GOLDENS=1"
    )


def test_feedback_manifest_records_summary_and_model(feedback, tmp_path):
    paths = write_feedback_artifact(
        feedback, tmp_path, model_info={"kernels": ["a", "b"]}
    )
    manifest = json.loads(paths["manifest"].read_text())
    assert manifest["experiment"] == "feedback"
    assert manifest["row_count"] == 3
    assert manifest["iterations"] == 3
    assert manifest["domain"]["name"] == "spmv"
    assert manifest["model"] == {"kernels": ["a", "b"]}
    assert (
        manifest["summary"]["selector_kernel_accuracy"]
        == feedback.summary()["selector_kernel_accuracy"]
    )


# ----------------------------------------------------------------------
# Loading feedback back as training data
# ----------------------------------------------------------------------
def test_loaded_feedback_round_trips_exactly(feedback, tmp_path):
    write_feedback_artifact(feedback, tmp_path)
    loaded = load_feedback_dataset(tmp_path)  # domain from the manifest
    original = feedback.dataset
    assert list(loaded.kernel_names) == list(original.kernel_names)
    assert len(loaded) == len(original)
    for ours, theirs in zip(original.samples, loaded.samples):
        assert ours.name == theirs.name
        assert ours.iterations == theirs.iterations
        assert ours.best_kernel == theirs.best_kernel
        assert ours.collection_time_ms == theirs.collection_time_ms
        np.testing.assert_array_equal(ours.known_vector, theirs.known_vector)
        np.testing.assert_array_equal(
            ours.gathered_vector, theirs.gathered_vector
        )
        assert ours.kernel_total_ms == theirs.kernel_total_ms  # inf included


def test_load_feedback_requires_domain_or_manifest(feedback, tmp_path):
    paths = write_feedback_artifact(feedback, tmp_path)
    (tmp_path / FEEDBACK_MANIFEST_FILE_NAME).unlink()
    with pytest.raises(ValueError, match="pass domain= explicitly"):
        load_feedback_dataset(tmp_path)
    loaded = load_feedback_dataset(paths["data"], domain="spmv")
    assert len(loaded) == 3


def test_load_feedback_rejects_foreign_tables(tmp_path):
    path = tmp_path / FEEDBACK_FILE_NAME
    path.write_text("name,rows\nw,1.0\n")
    with pytest.raises(ValueError, match="not a spmv feedback table"):
        load_feedback_dataset(path, domain="spmv")


def test_load_feedback_rejects_malformed_rows(feedback, tmp_path):
    paths = write_feedback_artifact(feedback, tmp_path)
    text = paths["data"].read_text().splitlines()
    text[1] = text[1].replace(text[1].split(",")[1], "not-a-number", 1)
    paths["data"].write_text("\n".join(text) + "\n")
    with pytest.raises(ValueError, match="malformed feedback row"):
        load_feedback_dataset(tmp_path)


# ----------------------------------------------------------------------
# Drift monitoring
# ----------------------------------------------------------------------
_BASELINE = {
    "selector_kernel_accuracy": 0.9,
    "selector_slowdown_vs_oracle": 1.1,
}


def test_drift_monitor_without_baseline_or_observations():
    monitor = DriftMonitor(baseline=None)
    monitor.observe({"selector_kernel_accuracy": 0.1})
    status = monitor.status()
    assert not status["baseline_available"] and not status["drifted"]
    fresh = DriftMonitor(baseline=dict(_BASELINE))
    status = fresh.status()
    assert status["baseline_available"] and not status["drifted"]
    assert status["observations"] == 0


def test_drift_monitor_flags_accuracy_drop():
    monitor = DriftMonitor(baseline=dict(_BASELINE), threshold=0.1)
    monitor.observe(
        {"selector_kernel_accuracy": 0.5, "selector_slowdown_vs_oracle": 1.1}
    )
    status = monitor.status()
    assert status["drifted"]
    assert status["accuracy_drop"] == pytest.approx(0.4)
    assert any("accuracy" in reason for reason in status["reasons"])


def test_drift_monitor_flags_slowdown_growth():
    monitor = DriftMonitor(baseline=dict(_BASELINE), threshold=0.1)
    monitor.observe(
        {"selector_kernel_accuracy": 0.9, "selector_slowdown_vs_oracle": 2.2}
    )
    status = monitor.status()
    assert status["drifted"]
    assert status["slowdown_increase"] == pytest.approx(1.0)
    assert any("slowdown" in reason for reason in status["reasons"])


def test_drift_monitor_window_forgets_old_degradation():
    monitor = DriftMonitor(baseline=dict(_BASELINE), threshold=0.1, window=2)
    monitor.observe(
        {"selector_kernel_accuracy": 0.1, "selector_slowdown_vs_oracle": 9.0}
    )
    assert monitor.status()["drifted"]
    for _ in range(2):  # healthy traffic pushes the bad run out of the window
        monitor.observe(
            {
                "selector_kernel_accuracy": 0.9,
                "selector_slowdown_vs_oracle": 1.1,
            }
        )
    status = monitor.status()
    assert status["observations"] == 2
    assert not status["drifted"]


def test_drift_monitor_ignores_non_finite_observations():
    monitor = DriftMonitor(baseline=dict(_BASELINE), threshold=0.1)
    monitor.observe(
        {
            "selector_kernel_accuracy": 0.9,
            "selector_slowdown_vs_oracle": math.inf,
        }
    )
    status = monitor.status()
    assert not status["drifted"]
    assert "observed_slowdown_vs_oracle" not in status
