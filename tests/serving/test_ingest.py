"""Tests for raw-matrix ingestion and batch serving (``repro serve``)."""

import math

import numpy as np
import pytest

from repro.pipeline.sources import discover_sources, source_from_path
from repro.serving.ingest import (
    DECISIONS_FILE_NAME,
    SERVE_MANIFEST_FILE_NAME,
    IngestCache,
    IngestError,
    ServeResult,
    feature_matrix,
    ingest_matrix,
    ingest_records,
    parse_workload_options,
    serve_sources,
    write_serve_artifact,
)
from repro.sparse.generators import banded_matrix, power_law_matrix, regular_matrix
from repro.sparse.io import save_npz, write_matrix_market


@pytest.fixture()
def corpus(tmp_path):
    """A small mixed corpus: .mtx, .npz and a recipe via manifest."""
    directory = tmp_path / "corpus"
    directory.mkdir()
    write_matrix_market(power_law_matrix(200, 200, 5.0, rng=3), directory / "pl.mtx")
    save_npz(banded_matrix(128, 7, rng=1), directory / "band.npz")
    write_matrix_market(regular_matrix(96, 96, 4, rng=2), directory / "reg.mtx")
    return directory


# ----------------------------------------------------------------------
# The ingest cache tier
# ----------------------------------------------------------------------
def test_ingest_cache_roundtrip_and_hit(tmp_path, corpus):
    cache = IngestCache(tmp_path / "cache")
    source = source_from_path(corpus / "pl.mtx")
    matrix, hit = ingest_matrix(source, cache)
    assert not hit
    again, hit = ingest_matrix(source, cache)
    assert hit
    np.testing.assert_allclose(again.to_dense(), matrix.to_dense())
    assert cache.path(source).is_file()


def test_ingest_cache_key_tracks_file_content(tmp_path, corpus):
    cache = IngestCache(tmp_path / "cache")
    source = source_from_path(corpus / "pl.mtx")
    first_key = cache.key(source)
    write_matrix_market(power_law_matrix(200, 200, 5.0, rng=99), corpus / "pl.mtx")
    assert cache.key(source) != first_key


def test_corrupt_cache_entry_is_a_miss(tmp_path, corpus):
    cache = IngestCache(tmp_path / "cache")
    source = source_from_path(corpus / "band.npz")
    ingest_matrix(source, cache)
    cache.path(source).write_bytes(b"definitely not an npz archive")
    matrix, hit = ingest_matrix(source, cache)
    assert not hit  # corrupt artifact reparsed, never fatal
    np.testing.assert_allclose(
        matrix.to_dense(), banded_matrix(128, 7, rng=1).to_dense()
    )


def test_ingest_records_builds_domain_workloads(corpus):
    records = ingest_records(corpus, domain="spmm", options={"num_vectors": 4})
    assert [r.name for r in records] == ["band", "pl", "reg"]
    assert all(r.matrix.num_vectors == 4 for r in records)
    assert {r.family for r in records} == {"mtx", "npz"}


# ----------------------------------------------------------------------
# Serving
# ----------------------------------------------------------------------
def test_serve_sources_decides_for_every_source(tiny_sweep, corpus):
    result = serve_sources(corpus, tiny_sweep.models, domain="spmv")
    assert isinstance(result, ServeResult)
    assert [d.name for d in result.decisions] == ["band", "pl", "reg"]
    kernel_names = set(tiny_sweep.models.kernel_names)
    for decision in result.decisions:
        assert decision.kernel in kernel_names
        assert decision.selector_choice in ("known", "gathered")
        assert decision.inference_time_ms > 0.0
        if decision.selector_choice == "known":
            assert decision.collection_time_ms == 0.0
        else:
            assert decision.collection_time_ms > 0.0
        assert math.isfinite(decision.total_ms) or not decision.supported


def test_parallel_serve_is_bit_identical_to_serial(tiny_sweep, tmp_path, corpus):
    serial = serve_sources(
        corpus, tiny_sweep.models, domain="spmv", cache_dir=tmp_path / "c1"
    )
    parallel = serve_sources(
        corpus, tiny_sweep.models, domain="spmv", jobs=2, cache_dir=tmp_path / "c2"
    )
    assert serial.decisions == parallel.decisions
    out_a = write_serve_artifact(serial, tmp_path / "a")
    out_b = write_serve_artifact(parallel, tmp_path / "b")
    assert out_a["data"].read_bytes() == out_b["data"].read_bytes()
    assert out_a["manifest"].read_bytes() == out_b["manifest"].read_bytes()


def test_warm_cache_serve_is_bit_identical(tiny_sweep, tmp_path, corpus):
    cache_dir = tmp_path / "cache"
    cold = serve_sources(corpus, tiny_sweep.models, domain="spmv", cache_dir=cache_dir)
    warm = serve_sources(corpus, tiny_sweep.models, domain="spmv", cache_dir=cache_dir)
    assert cold.stats.matrices_ingested == 3 and cold.stats.ingest_cache_hits == 0
    assert warm.stats.matrices_ingested == 0 and warm.stats.ingest_cache_hits == 3
    assert cold.decisions == warm.decisions
    a = write_serve_artifact(cold, tmp_path / "a")
    b = write_serve_artifact(warm, tmp_path / "b")
    assert a["data"].read_bytes() == b["data"].read_bytes()
    assert a["manifest"].read_bytes() == b["manifest"].read_bytes()


def test_serve_respects_iterations(tiny_sweep, corpus):
    once = serve_sources(corpus, tiny_sweep.models, domain="spmv", iterations=1)
    many = serve_sources(corpus, tiny_sweep.models, domain="spmv", iterations=19)
    for one, nineteen in zip(once.decisions, many.decisions):
        assert nineteen.known.iterations == 19
        if one.supported and nineteen.supported and one.kernel == nineteen.kernel:
            assert nineteen.kernel_total_ms > one.kernel_total_ms


def test_serve_rejects_bad_iterations(tiny_sweep, corpus):
    with pytest.raises(ValueError, match="iterations"):
        serve_sources(corpus, tiny_sweep.models, domain="spmv", iterations=0)


def test_serve_artifact_format(tiny_sweep, tmp_path, corpus):
    import csv
    import json

    result = serve_sources(corpus, tiny_sweep.models, domain="spmv")
    paths = write_serve_artifact(
        result, tmp_path / "out", model_info={"domain": "spmv"}
    )
    assert paths["data"].name == DECISIONS_FILE_NAME
    assert paths["manifest"].name == SERVE_MANIFEST_FILE_NAME
    with open(paths["data"], newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 3
    assert {"name", "rows", "cols", "nnz", "selector_choice", "kernel"} <= set(rows[0])
    manifest = json.loads(paths["manifest"].read_text())
    assert manifest["experiment"] == "serve"
    assert manifest["domain"]["name"] == "spmv"
    assert manifest["row_count"] == 3
    assert manifest["summary"]["workloads"] == 3
    assert manifest["model"] == {"domain": "spmv"}
    assert manifest["sources"]["kinds"] == {"mtx": 2, "npz": 1}


def test_serve_spmm_corpus_with_workload_options(tiny_sweep_spmm, corpus):
    result = serve_sources(
        corpus,
        tiny_sweep_spmm.models,
        domain="spmm",
        options={"num_vectors": 16},
    )
    for decision in result.decisions:
        assert decision.known.num_vectors == 16
        assert decision.kernel in tiny_sweep_spmm.models.kernel_names


def test_serve_a_recipe_spec_directly(tiny_sweep):
    result = serve_sources(
        "recipe:power_law_matrix?num_rows=256&num_cols=256&avg_row_length=4&seed=5",
        tiny_sweep.models,
        domain="spmv",
    )
    assert len(result.decisions) == 1
    assert result.decisions[0].known.rows == 256


def test_experiment_context_consumes_ingested_corpora(corpus):
    from repro.experiments.registry import ExperimentContext

    context = ExperimentContext(domain="spmv", corpus=corpus)
    records = context.corpus_records()
    assert [r.name for r in records] == ["band", "pl", "reg"]
    assert context.corpus_records() is records  # ingested once per suite run
    suite = context.corpus_suite()
    assert suite.names() == ["band", "pl", "reg"]
    assert suite.domain_name == "spmv"
    measurement = suite.get("pl")
    assert measurement.known.rows == 200
    assert measurement.gathered.collection_time_ms > 0.0


def test_experiment_context_memoizes_per_option_set(corpus, monkeypatch):
    from repro.experiments.registry import ExperimentContext

    import repro.serving.ingest as ingest_module

    calls = []
    real = ingest_module.load_source
    monkeypatch.setattr(
        ingest_module, "load_source", lambda s: calls.append(1) or real(s)
    )
    context = ExperimentContext(domain="spmm", corpus=corpus)
    options = {"num_vectors": 8}
    first = context.corpus_records(options=options)
    assert context.corpus_records(options=options) is first  # no re-ingest
    assert len(calls) == 3
    context.corpus_records(options={"num_vectors": 16})  # distinct option set
    assert len(calls) == 6


def test_fractional_num_vectors_rejected(tiny_sweep_spmm, corpus):
    # The unified request core labels the failing request instead of letting
    # the domain's raw ValueError escape.
    with pytest.raises(IngestError, match="whole number"):
        serve_sources(
            corpus,
            tiny_sweep_spmm.models,
            domain="spmm",
            options={"num_vectors": 2.5},
        )


def test_serve_jobs_zero_means_one_worker_per_cpu(tiny_sweep, corpus):
    all_cpus = serve_sources(corpus, tiny_sweep.models, domain="spmv", jobs=0)
    serial = serve_sources(corpus, tiny_sweep.models, domain="spmv", jobs=1)
    assert all_cpus.decisions == serial.decisions
    with pytest.raises(ValueError, match="jobs"):
        serve_sources(corpus, tiny_sweep.models, domain="spmv", jobs=-2)


def test_ingest_cache_expands_user_home(monkeypatch, tmp_path):
    monkeypatch.setenv("HOME", str(tmp_path))
    cache = IngestCache("~/.cache/seer")
    assert str(cache.root).startswith(str(tmp_path))


def test_corpus_suite_forwards_workload_options(corpus):
    from repro.experiments.registry import ExperimentContext

    context = ExperimentContext(domain="spmm", corpus=corpus)
    suite = context.corpus_suite(options={"num_vectors": 16})
    assert all(m.known.num_vectors == 16 for m in suite)


def test_binary_manifest_rejected(tmp_path):
    from repro.pipeline.sources import MatrixSourceError, discover_sources

    binary = tmp_path / "corpus.bin"
    binary.write_bytes(b"\xff\xfe\x00garbage")
    with pytest.raises(MatrixSourceError, match="not a readable manifest"):
        discover_sources(binary)


def test_experiment_context_without_corpus_raises():
    from repro.experiments.registry import ExperimentContext

    with pytest.raises(ValueError, match="no corpus"):
        ExperimentContext(domain="spmv").corpus_records()


# ----------------------------------------------------------------------
# The shared column-validation helper
# ----------------------------------------------------------------------
def test_feature_matrix_parses_floats():
    rows = [{"a": "1", "b": "2.5"}, {"a": "3", "b": "4"}]
    assert feature_matrix(rows, ["a", "b"], "f.csv", "known") == [
        [1.0, 2.5],
        [3.0, 4.0],
    ]


def test_feature_matrix_one_line_errors():
    with pytest.raises(IngestError, match=r"f.csv:2 is missing known feature"):
        feature_matrix([{"a": "1"}], ["a", "missing"], "f.csv", "known")
    with pytest.raises(IngestError, match=r"f.csv:3 has a non-numeric value"):
        feature_matrix(
            [{"a": "1"}, {"a": "banana"}], ["a"], "f.csv", "known"
        )
    with pytest.raises(IngestError, match="missing"):
        feature_matrix([{"a": None}], ["a"], "f.csv", "known")


def test_parse_workload_options():
    assert parse_workload_options(["num_vectors=8", "scale=1.5"]) == {
        "num_vectors": 8,
        "scale": 1.5,
    }
    assert parse_workload_options([]) == {}
    with pytest.raises(IngestError, match="malformed"):
        parse_workload_options(["oops"])
    with pytest.raises(IngestError, match="non-numeric"):
        parse_workload_options(["k=v"])


def test_discover_sources_used_by_serve_matches_direct_list(tiny_sweep, corpus):
    sources = discover_sources(corpus)
    by_target = serve_sources(corpus, tiny_sweep.models, domain="spmv")
    by_list = serve_sources(sources, tiny_sweep.models, domain="spmv")
    assert by_target.decisions == by_list.decisions


def test_unknown_workload_options_rejected_loudly(tiny_sweep, corpus):
    """A typo must not silently serve the corpus with default parameters."""
    with pytest.raises(ValueError, match="num_vector.*did you mean"):
        serve_sources(
            corpus, tiny_sweep.models, domain="spmm", options={"num_vector": 16}
        )
    with pytest.raises(ValueError, match="accepts none"):
        serve_sources(
            corpus, tiny_sweep.models, domain="spmv", options={"num_vectors": 16}
        )
    with pytest.raises(ValueError, match="workload option"):
        ingest_records(corpus, domain="spmv", options={"bogus": 1})


def test_list_targets_reject_duplicate_names(tiny_sweep, tmp_path, corpus):
    from repro.pipeline.sources import MatrixSourceError

    other = tmp_path / "other"
    other.mkdir()
    write_matrix_market(power_law_matrix(10, 10, 2.0, rng=9), other / "pl.mtx")
    with pytest.raises(MatrixSourceError, match="duplicate source name"):
        serve_sources(
            [corpus / "pl.mtx", other / "pl.mtx"], tiny_sweep.models, domain="spmv"
        )


def test_ingest_miss_digests_the_file_once(tmp_path, corpus, monkeypatch):
    import repro.serving.ingest as ingest_module

    calls = []
    real = ingest_module.source_digest
    monkeypatch.setattr(
        ingest_module, "source_digest", lambda s: calls.append(1) or real(s)
    )
    cache = IngestCache(tmp_path / "cache")
    ingest_matrix(source_from_path(corpus / "pl.mtx"), cache)
    assert len(calls) == 1  # one digest per miss, not one per load+store


def test_serve_accepts_a_mixed_list_of_paths_and_specs(tiny_sweep, corpus):
    """Explicit lists may mix MatrixSource objects, paths and recipe specs."""
    mixed = [
        source_from_path(corpus / "band.npz"),
        str(corpus / "pl.mtx"),
        "recipe:diagonal_matrix?num_rows=64&name=diag",
    ]
    result = serve_sources(mixed, tiny_sweep.models, domain="spmv")
    assert [d.name for d in result.decisions] == ["band", "pl", "diag"]
    records = ingest_records(mixed, domain="spmv")
    assert [r.name for r in records] == ["band", "pl", "diag"]
