"""Tests for the unified serving request/response API.

Every serving entry point — the daemon, one-shot ``repro serve``,
``repro predict --batch`` and ``SeerPredictor.serve`` — goes through
:class:`ServeRequest`/:class:`ServeResponse` and the admission-batched
:func:`evaluate_requests` core.  These tests pin the payload contract, the
validation error strings (exact-match across entry points) and the
element-wise parity between the batched core and the serial Fig. 3 flow.
"""

import math
import warnings

import pytest

from repro.core.inference import SeerPredictor
from repro.pipeline.sources import discover_sources
from repro.serving.ingest import IngestCache, serve_sources
from repro.serving.requests import (
    IngestError,
    ServeFailure,
    ServeRequest,
    ServeResponse,
    evaluate_requests,
    feature_vector,
    requests_from_rows,
    requests_from_sources,
)
from repro.sparse.generators import banded_matrix, power_law_matrix
from repro.sparse.io import save_npz, write_matrix_market


@pytest.fixture()
def corpus(tmp_path):
    directory = tmp_path / "corpus"
    directory.mkdir()
    write_matrix_market(
        power_law_matrix(200, 200, 5.0, rng=3), directory / "pl.mtx"
    )
    save_npz(banded_matrix(128, 7, rng=1), directory / "band.npz")
    return directory


def _inline_known(models, **overrides):
    """A plausible known-feature mapping for the tiny SpMV model."""
    row = {name: 1.0 for name in models.known_feature_names}
    row.update(rows=512, cols=512, nnz=4096, iterations=1)
    row.update(overrides)
    return row


# ----------------------------------------------------------------------
# The request payload contract
# ----------------------------------------------------------------------
def test_payload_roundtrip_inline(tiny_sweep):
    models = tiny_sweep.models
    request = ServeRequest(
        name="w",
        known=_inline_known(models),
        gathered={n: 0.5 for n in models.gathered_feature_names},
        iterations=3,
        options={"num_vectors": 8},
        model="spmv/tiny",
    )
    assert ServeRequest.from_payload(request.to_payload()) == request


def test_payload_roundtrip_source():
    request = ServeRequest(name="m", source="recipe:diagonal_matrix?num_rows=8")
    payload = request.to_payload()
    assert payload == {
        "name": "m",
        "source": "recipe:diagonal_matrix?num_rows=8",
    }
    assert ServeRequest.from_payload(payload) == request


def test_request_needs_exactly_one_input_form():
    with pytest.raises(IngestError, match="exactly one of 'source'"):
        ServeRequest(name="neither")
    with pytest.raises(IngestError, match="exactly one of 'source'"):
        ServeRequest(source="a.mtx", known={"rows": 1})
    with pytest.raises(IngestError, match="require inline 'known'"):
        ServeRequest(source="a.mtx", gathered={"g": 1.0})
    with pytest.raises(IngestError, match="iterations must be >= 1"):
        ServeRequest(known={"rows": 1}, iterations=0)


def test_from_payload_rejects_unknown_fields():
    with pytest.raises(
        IngestError, match=r"request:1 has unknown request field\(s\) 'nonsense'"
    ):
        ServeRequest.from_payload({"known": {"rows": 1}, "nonsense": True})


def test_from_payload_rejects_bad_shapes():
    with pytest.raises(IngestError, match="request:4 must be a JSON object"):
        ServeRequest.from_payload([1, 2], line=4)
    with pytest.raises(IngestError, match="field 'known' must be an object"):
        ServeRequest.from_payload({"known": [1, 2]})
    with pytest.raises(IngestError, match="'iterations' must be an integer"):
        ServeRequest.from_payload({"known": {"rows": 1}, "iterations": "3"})
    with pytest.raises(IngestError, match="'iterations' must be an integer"):
        ServeRequest.from_payload({"known": {"rows": 1}, "iterations": True})
    with pytest.raises(IngestError, match="request:7 a ServeRequest needs"):
        ServeRequest.from_payload({"name": "empty"}, line=7)


def test_requests_from_sources_names_follow_discovery(corpus):
    sources = discover_sources(corpus)
    requests = requests_from_sources(sources, iterations=5)
    assert [r.name for r in requests] == [s.name for s in sources]
    assert all(r.source == s.location for r, s in zip(requests, sources))
    assert all(r.iterations == 5 and not r.is_inline for r in requests)


def test_requests_from_rows_honours_the_iterations_column(tiny_sweep):
    models = tiny_sweep.models
    row = {k: str(v) for k, v in _inline_known(models, iterations=19).items()}
    (request,) = requests_from_rows([row], models, "b.csv")
    assert request.iterations == 19
    assert request.known["iterations"] == 19.0
    assert request.gathered is None


# ----------------------------------------------------------------------
# Satellite: one error formatter for every entry point (exact match)
# ----------------------------------------------------------------------
def test_missing_column_error_is_identical_across_entry_points(tiny_sweep):
    """CSV batch rows and daemon payloads must produce the same string."""
    models = tiny_sweep.models
    row = _inline_known(models)
    del row["nnz"]

    with pytest.raises(IngestError) as from_rows:
        requests_from_rows([row], models, "batch.csv")
    with pytest.raises(IngestError) as from_vector:
        feature_vector(row, models.known_feature_names, "batch.csv", 2, "known")
    assert str(from_rows.value) == str(from_vector.value)
    assert str(from_rows.value) == (
        "batch.csv:2 is missing known feature column 'nnz'"
    )

    # The daemon path validates the same way, differing only in the origin
    # label — which is exactly the point of the shared formatter.
    request = ServeRequest.from_payload({"name": "w", "known": dict(row)})
    with pytest.raises(IngestError) as from_payload:
        evaluate_requests(models, [request], execute=False)
    assert str(from_payload.value) == (
        "w:1 is missing known feature column 'nnz'"
    )


def test_non_numeric_error_is_identical_across_entry_points(tiny_sweep):
    models = tiny_sweep.models
    row = {k: str(v) for k, v in _inline_known(models).items()}
    row["nnz"] = "banana"
    with pytest.raises(IngestError) as from_rows:
        requests_from_rows([row], models, "batch.csv")
    with pytest.raises(IngestError) as from_vector:
        feature_vector(row, models.known_feature_names, "batch.csv", 2, "known")
    assert str(from_rows.value) == str(from_vector.value)
    assert "batch.csv:2 has a non-numeric value" in str(from_rows.value)


def test_strict_false_converts_errors_to_in_slot_failures(tiny_sweep):
    models = tiny_sweep.models
    good = ServeRequest(name="good", known=_inline_known(models))
    bad = ServeRequest(name="bad", known={"rows": 1.0})
    results, stats = evaluate_requests(
        models, [bad, good, bad], execute=False, strict=False
    )
    assert isinstance(results[0], ServeFailure)
    assert isinstance(results[1], ServeResponse)
    assert isinstance(results[2], ServeFailure)
    assert "missing known feature column" in results[0].error
    assert stats.failures == 2 and stats.requests == 3


# ----------------------------------------------------------------------
# Parity: the batched core vs. the serial Fig. 3 flow
# ----------------------------------------------------------------------
def test_evaluate_requests_matches_serve_sources(tiny_sweep, tmp_path, corpus):
    """The unified core and the one-shot corpus loop agree element-wise."""
    sources = discover_sources(corpus)
    requests = requests_from_sources(sources, iterations=3)
    responses, stats = evaluate_requests(
        tiny_sweep.models,
        requests,
        domain="spmv",
        cache=IngestCache(tmp_path / "cache"),
        execute=True,
    )
    result = serve_sources(
        corpus, tiny_sweep.models, domain="spmv", iterations=3
    )
    assert stats.matrices_ingested == len(sources)
    for response, decision in zip(responses, result.decisions):
        assert response.name == decision.name
        assert response.selector_choice == decision.selector_choice
        assert response.kernel == decision.kernel
        assert response.known == decision.known
        assert response.gathered == decision.gathered
        assert response.collection_time_ms == decision.collection_time_ms
        assert response.inference_time_ms == decision.inference_time_ms
        assert response.runtime_ms == decision.runtime_ms


def test_evaluate_requests_matches_serial_predict(tiny_sweep, corpus):
    """Batched admission window == one serial predict per workload."""
    from repro.serving.ingest import ingest_records

    records = ingest_records(corpus, domain="spmv")
    predictor = SeerPredictor(tiny_sweep.models, domain="spmv")
    requests = requests_from_sources(discover_sources(corpus), iterations=7)
    responses, _ = evaluate_requests(
        tiny_sweep.models, requests, domain="spmv", execute=False
    )
    for record, response in zip(records, responses):
        serial = predictor.predict(record.matrix, iterations=7, name=record.name)
        assert response.selector_choice == serial.selector_choice
        assert response.kernel == serial.kernel_name
        assert response.known == serial.known
        assert response.gathered == serial.gathered
        assert response.collection_time_ms == serial.collection_time_ms
        assert response.inference_time_ms == serial.inference_time_ms


def test_inline_requests_match_source_requests(tiny_sweep, corpus):
    """Inline features replayed from a source decision give the same answer."""
    predictor = SeerPredictor(tiny_sweep.models, domain="spmv")
    (source_request,) = requests_from_sources(
        discover_sources(corpus / "pl.mtx")
    )
    from_source = predictor.serve(source_request)
    inline = ServeRequest(
        name="pl-inline",
        known=from_source.known.as_dict(),
        gathered=(
            from_source.gathered.as_dict()
            if from_source.selector_choice == "gathered"
            else None
        ),
        iterations=from_source.iterations,
    )
    from_inline = predictor.serve(inline)
    assert from_inline.selector_choice == from_source.selector_choice
    assert from_inline.kernel == from_source.kernel
    assert from_inline.kind == "inline" and from_source.kind != "inline"


def test_inline_gathered_routing_without_features_is_an_error(tmp_path):
    from repro.core.training import SeerModels
    from repro.ml.decision_tree import DecisionTreeClassifier

    known_X = [[0.0], [1.0]]
    full_X = [[0.0, 0.0], [1.0, 1.0]]
    models = SeerModels(
        known_model=DecisionTreeClassifier().fit(known_X, ["k1", "k1"]),
        gathered_model=DecisionTreeClassifier().fit(full_X, ["k1", "k1"]),
        selector_model=DecisionTreeClassifier().fit(
            known_X, ["gathered", "gathered"]
        ),
        kernel_names=["k1"],
        known_feature_names=("f0",),
        gathered_feature_names=("g0",),
        training_size=2,
    )
    request = ServeRequest(name="w", known={"f0": 0.5})
    with pytest.raises(IngestError, match="routed to the gathered classifier"):
        evaluate_requests(models, [request], execute=False)
    results, stats = evaluate_requests(
        models, [request], execute=False, strict=False
    )
    assert isinstance(results[0], ServeFailure)
    assert "supply the g0 feature(s) or a matrix source" in results[0].error
    assert stats.failures == 1


def test_response_payload_shape(tiny_sweep):
    models = tiny_sweep.models
    request = ServeRequest(name="w", known=_inline_known(models))
    (response,), _ = evaluate_requests(models, [request], execute=False)
    payload = response.to_payload()
    assert payload["name"] == "w"
    assert payload["selector_choice"] in ("known", "gathered")
    assert payload["kernel"] in models.kernel_names
    assert payload["inference_time_ms"] > 0.0
    assert "runtime_ms" not in payload  # kernel timings only when executed
    assert "total_ms" not in payload
    assert math.isfinite(response.total_ms)


# ----------------------------------------------------------------------
# Satellite: the deprecated positional _decide entry point
# ----------------------------------------------------------------------
def test_decide_shim_warns_and_stays_bit_identical(tiny_sweep, corpus):
    from repro.serving.ingest import ingest_records

    (record, _) = ingest_records(corpus, domain="spmv")
    predictor = SeerPredictor(tiny_sweep.models, domain="spmv")
    known = predictor.pipeline.known_features(record.matrix, 1)
    gather = lambda: predictor.pipeline.gather(record.matrix)  # noqa: E731

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # the supported flow must not warn
        via_flow = predictor._decide_flow(known, record.name, gather)
        predictor.predict(record.matrix, name=record.name)

    with pytest.deprecated_call(match=r"_decide\(known, name, gather\)"):
        via_shim = predictor._decide(known, record.name, gather)
    assert via_shim == via_flow
