"""Promotion tests: the pointer, the shadow gate, and the closed loop.

The end-to-end test drives the whole feedback → retrain → shadow-score →
promote cycle twice in one run: a strong candidate must beat a crippled
incumbent and flip the pointer, then a crippled candidate must be refused
against the newly promoted incumbent — and the serving :class:`ModelHub`
must follow the flip without a restart.
"""

import json
import math
from dataclasses import replace

import pytest

from repro.core.dataset import TrainingDataset
from repro.core.training import TrainingConfig, train_seer_models
from repro.serving.artifacts import ModelArtifactError
from repro.serving.feedback import feedback_from_corpus
from repro.serving.promotion import (
    PROMOTION_FILE_NAME,
    candidate_key_for,
    promote_from_feedback,
    split_feedback,
)
from repro.serving.registry import CURRENT_POINTER_FILE_NAME, ModelRegistry
from repro.serving.service import ModelHub, ServiceConfig
from repro.sparse.generators import (
    banded_matrix,
    diagonal_matrix,
    empty_row_heavy_matrix,
    power_law_matrix,
    regular_matrix,
    road_network_matrix,
    skewed_matrix,
    uniform_random_matrix,
)
from repro.sparse.io import write_matrix_market

#: Deliberately crippled training configuration: depth-1 stumps make a
#: predictably bad selector for the refusal half of the end-to-end test.
WEAK_CONFIG = TrainingConfig(
    known_depth=1,
    gathered_depth=1,
    selector_depth=1,
    selector_cross_fit=0,
)


def _sabotaged_models(dataset: TrainingDataset):
    """Models trained to pick each sample's *worst* kernel — a guaranteed-
    bad incumbent for the acceptance half of the end-to-end test."""
    samples = []
    for sample in dataset.samples:
        finite = {
            kernel: ms
            for kernel, ms in sample.kernel_total_ms.items()
            if math.isfinite(ms)
        }
        samples.append(
            replace(sample, best_kernel=max(finite, key=finite.get))
        )
    sabotaged = TrainingDataset(
        kernel_names=dataset.kernel_names,
        samples=samples,
        known_feature_names=dataset.known_feature_names,
        gathered_feature_names=dataset.gathered_feature_names,
    )
    return train_seer_models(sabotaged, None)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """Eight structurally diverse matrices, so the feedback split leaves a
    held-out slice no single-kernel stump can ace."""
    directory = tmp_path_factory.mktemp("promotion-corpus")
    matrices = {
        "band": banded_matrix(128, 7, rng=1),
        "diag": diagonal_matrix(128, rng=9),
        "empty": empty_row_heavy_matrix(192, 192, 0.5, 10, rng=8),
        "pl": power_law_matrix(200, 200, 5.0, rng=3),
        "reg": regular_matrix(96, 96, 4, rng=2),
        "road": road_network_matrix(256, rng=10),
        "skew": skewed_matrix(180, 180, 3, 4, 80, rng=4),
        "unif": uniform_random_matrix(150, 150, 0.03, rng=5),
    }
    for name, matrix in matrices.items():
        write_matrix_market(matrix, directory / f"{name}.mtx")
    return directory


# ----------------------------------------------------------------------
# The current pointer
# ----------------------------------------------------------------------
def test_promote_requires_a_registered_artifact(tmp_path):
    registry = ModelRegistry(tmp_path)
    with pytest.raises(ValueError, match="needs the key"):
        registry.promote("spmv", "tiny", key="")
    with pytest.raises(ModelArtifactError, match="no model.json"):
        registry.promote("spmv", "tiny", key="nonexistent")


def test_promote_resolve_roundtrip(tiny_sweep, tmp_path):
    registry = ModelRegistry(tmp_path)
    path = registry.save(tiny_sweep.models, domain="spmv", profile="tiny")
    key = path.parent.name
    assert registry.resolve_current("spmv", "tiny") is None  # no pointer yet
    pointer = registry.promote("spmv", "tiny", key=key, extra={"parent": "x"})
    assert pointer.name == CURRENT_POINTER_FILE_NAME
    assert registry.resolve_current("spmv", "tiny") == key
    assert registry.current_model_path("spmv", "tiny") == path
    payload = json.loads(pointer.read_text())
    assert payload["key"] == key and payload["parent"] == "x"


def test_corrupt_or_dangling_pointer_resolves_to_none(tiny_sweep, tmp_path):
    registry = ModelRegistry(tmp_path)
    path = registry.save(tiny_sweep.models, domain="spmv", profile="tiny")
    key = path.parent.name
    pointer = registry.promote("spmv", "tiny", key=key)
    pointer.write_text("{ torn json")
    assert registry.resolve_current("spmv", "tiny") is None
    registry.promote("spmv", "tiny", key=key)
    path.unlink()  # now the pointer dangles
    assert registry.resolve_current("spmv", "tiny") is None
    assert registry.current_model_path("spmv", "tiny") is None


# ----------------------------------------------------------------------
# Split and key derivation
# ----------------------------------------------------------------------
def test_split_feedback_interleaves_deterministically(
    tiny_sweep, corpus
):
    feedback = feedback_from_corpus(tiny_sweep.models, corpus, domain="spmv")
    append_rows, holdout = split_feedback(feedback.dataset)
    assert len(append_rows) == 4 and len(holdout) == 4
    names = [s.name for s in feedback.dataset.samples]
    assert [s.name for s in append_rows.samples] == names[0::2]
    assert [s.name for s in holdout.samples] == names[1::2]
    again_a, again_h = split_feedback(feedback.dataset)
    assert [s.name for s in again_a.samples] == [s.name for s in append_rows.samples]
    assert [s.name for s in again_h.samples] == [s.name for s in holdout.samples]


def test_split_feedback_needs_two_rows(tiny_sweep, corpus):
    feedback = feedback_from_corpus(tiny_sweep.models, corpus, domain="spmv")
    with pytest.raises(ValueError, match="at least 2 feedback rows"):
        split_feedback(feedback.dataset.subset([0]))


def test_candidate_key_is_stable_and_config_sensitive(tiny_sweep, corpus):
    feedback = feedback_from_corpus(tiny_sweep.models, corpus, domain="spmv")
    key = candidate_key_for("parent-key", feedback.dataset, None)
    assert key == candidate_key_for("parent-key", feedback.dataset, None)
    assert key != candidate_key_for("other-parent", feedback.dataset, None)
    assert key != candidate_key_for("parent-key", feedback.dataset, WEAK_CONFIG)


# ----------------------------------------------------------------------
# The closed loop, end to end
# ----------------------------------------------------------------------
def test_promotion_accepts_better_and_refuses_worse(tiny_sweep, corpus, tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    weak_models = _sabotaged_models(tiny_sweep.train_set)
    registry.save(
        weak_models,
        domain="spmv",
        profile="tiny",
        key="weak-incumbent",
    )
    registry.promote("spmv", "tiny", key="weak-incumbent")

    # Live traffic served by the weak incumbent, measured against the oracle.
    feedback = feedback_from_corpus(
        weak_models, corpus, domain="spmv", iterations=3
    )

    # A hub resolving through the registry, kept alive across the flip.
    hub = ModelHub(
        ServiceConfig(
            registry=str(tmp_path / "registry"), domain="spmv", profile="tiny"
        )
    )
    _, artifact_before = hub.resolve(None)
    assert "weak-incumbent" in str(artifact_before.path)

    # Round 1: a full-strength candidate must win and flip the pointer.
    accepted = promote_from_feedback(
        registry,
        feedback,
        domain="spmv",
        profile="tiny",
        iteration_counts=(1, 19),
        out_dir=tmp_path / "accepted",
    )
    assert accepted.candidate_wins and accepted.promoted
    assert accepted.candidate.slowdown < accepted.incumbent.slowdown
    assert registry.resolve_current("spmv", "tiny") == accepted.candidate.key
    manifest = json.loads(
        (tmp_path / "accepted" / PROMOTION_FILE_NAME).read_text()
    )
    assert manifest["promoted"] is True
    assert (
        manifest["candidate"]["shadow"]["selector_slowdown_vs_oracle"]
        < manifest["incumbent"]["shadow"]["selector_slowdown_vs_oracle"]
    )
    # The candidate's registry manifest records its provenance and shadow.
    candidate_manifest = registry.manifest_for(
        "spmv", "tiny", accepted.candidate.key
    )
    assert candidate_manifest["parent"] == "weak-incumbent"
    assert candidate_manifest["promotion_candidate"] is True
    assert "evaluation" in candidate_manifest

    # The live hub hot-reloads the promoted model — no restart, no rebuild.
    _, artifact_after = hub.resolve(None)
    assert artifact_after.path != artifact_before.path
    assert accepted.candidate.key in str(artifact_after.path)

    # Round 2: a crippled candidate must be refused; nothing may move.
    refused = promote_from_feedback(
        registry,
        feedback,
        domain="spmv",
        profile="tiny",
        iteration_counts=(1, 19),
        config=WEAK_CONFIG,
        out_dir=tmp_path / "refused",
    )
    assert not refused.candidate_wins and not refused.promoted
    assert "refused" in refused.reason
    assert registry.resolve_current("spmv", "tiny") == accepted.candidate.key
    manifest = json.loads(
        (tmp_path / "refused" / PROMOTION_FILE_NAME).read_text()
    )
    assert manifest["candidate_wins"] is False and manifest["promoted"] is False
    # The refused candidate is still registered for audit, unpromoted.
    assert registry.manifest_for("spmv", "tiny", refused.candidate.key)
    _, artifact_still = hub.resolve(None)
    assert artifact_still.path == artifact_after.path


def test_dry_run_writes_nothing_to_the_registry(tiny_sweep, corpus, tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    weak_models = _sabotaged_models(tiny_sweep.train_set)
    registry.save(
        weak_models,
        domain="spmv",
        profile="tiny",
        key="weak-incumbent",
    )
    registry.promote("spmv", "tiny", key="weak-incumbent")
    feedback = feedback_from_corpus(weak_models, corpus, domain="spmv")
    result = promote_from_feedback(
        registry,
        feedback,
        domain="spmv",
        profile="tiny",
        iteration_counts=(1, 19),
        dry_run=True,
        out_dir=tmp_path / "dry",
    )
    assert result.candidate_wins and not result.promoted and result.dry_run
    assert registry.resolve_current("spmv", "tiny") == "weak-incumbent"
    assert registry.manifest_for("spmv", "tiny", result.candidate.key) is None
    manifest = json.loads((tmp_path / "dry" / PROMOTION_FILE_NAME).read_text())
    assert manifest["dry_run"] is True and manifest["promoted"] is False


def test_promotion_without_incumbent_points_at_train(tmp_path, tiny_sweep, corpus):
    registry = ModelRegistry(tmp_path / "registry")
    feedback = feedback_from_corpus(tiny_sweep.models, corpus, domain="spmv")
    with pytest.raises(ModelArtifactError, match="repro train"):
        promote_from_feedback(
            registry, feedback, domain="spmv", profile="tiny",
            iteration_counts=(1, 19),
        )


# ----------------------------------------------------------------------
# PROM001: pointer writes must be atomic
# ----------------------------------------------------------------------
def test_prom001_flags_direct_writes_in_the_registry_module():
    from repro.analysis import lint_source

    text = "from pathlib import Path\nPath('current.json').write_text('{}')\n"
    findings = lint_source(text, module="serving/registry.py")
    assert any(f.rule == "PROM001" for f in findings)
    findings = lint_source(
        "handle = open('current.json', 'w')\n", module="serving/registry.py"
    )
    assert any(f.rule == "PROM001" for f in findings)


def test_prom001_allows_reads_and_atomic_writes():
    from repro.analysis import lint_source

    clean = (
        "from repro.bench.engine import atomic_write_bytes\n"
        "from pathlib import Path\n"
        "text = Path('current.json').read_text()\n"
        "handle = open('current.json')\n"
        "atomic_write_bytes(Path('current.json'), b'{}')\n"
    )
    findings = lint_source(clean, module="serving/registry.py")
    assert not [f for f in findings if f.rule == "PROM001"]


def test_prom001_is_scoped_to_the_registry_module():
    from repro.analysis import lint_source

    text = "from pathlib import Path\nPath('x.json').write_text('{}')\n"
    findings = lint_source(text, module="serving/ingest.py")
    assert not [f for f in findings if f.rule == "PROM001"]
