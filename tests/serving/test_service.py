"""Daemon lifecycle tests: config, readiness, batching, drain, shutdown.

The :class:`ServingService` is exercised in-process (context manager +
real HTTP over an ephemeral port) for readiness, concurrent-vs-one-shot
parity and the flush triggers, and as a subprocess for the SIGTERM drain
contract ``repro serve --daemon`` promises.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.serving.artifacts import save_models
from repro.serving.ingest import serve_sources
from repro.serving.requests import ServeFailure, ServeRequest
from repro.serving.service import (
    DynamicBatcher,
    ServiceConfig,
    ServiceConfigError,
    ServingService,
    _parse_toml_minimal,
)
from repro.sparse.generators import banded_matrix, power_law_matrix
from repro.sparse.io import write_matrix_market


@pytest.fixture(scope="module")
def model_path(tiny_sweep, tmp_path_factory):
    directory = tmp_path_factory.mktemp("service-model")
    return str(
        save_models(tiny_sweep.models, directory / "model.json", domain="spmv")
    )


@pytest.fixture()
def corpus(tmp_path):
    directory = tmp_path / "corpus"
    directory.mkdir()
    write_matrix_market(
        power_law_matrix(200, 200, 5.0, rng=3), directory / "pl.mtx"
    )
    write_matrix_market(banded_matrix(128, 7, rng=1), directory / "band.mtx")
    return directory


def _config(model_path, **overrides):
    settings = {"model": model_path, "port": 0, "execute": False}
    settings.update(overrides)
    return ServiceConfig(**settings)


def _get(url: str) -> tuple:
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _post(url: str, payload: dict) -> tuple:
    data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def test_minimal_toml_parser_covers_the_service_subset():
    parsed = _parse_toml_minimal(
        "\n".join(
            [
                "# a service config",
                "[service]",
                'model = "models/model.json"  # trailing comment',
                "port = 8091",
                "max_wait_ms = 2.5",
                "execute = false",
                'host = "0.0.0.0"',
                "[options]",
                "num_vectors = 8",
            ]
        )
    )
    assert parsed == {
        "service": {
            "model": "models/model.json",
            "port": 8091,
            "max_wait_ms": 2.5,
            "execute": False,
            "host": "0.0.0.0",
        },
        "options": {"num_vectors": 8},
    }


def test_minimal_toml_parser_rejects_garbage():
    with pytest.raises(ServiceConfigError, match="line 1: expected 'key = value'"):
        _parse_toml_minimal("not toml at all")
    with pytest.raises(ServiceConfigError, match="unterminated string"):
        _parse_toml_minimal('model = "half')
    with pytest.raises(ServiceConfigError, match="unsupported value"):
        _parse_toml_minimal("port = [8091]")


def test_config_requires_a_model_origin():
    with pytest.raises(ServiceConfigError, match="needs a model origin"):
        ServiceConfig()


def test_config_validates_ranges(model_path):
    with pytest.raises(ServiceConfigError, match="max_batch_size"):
        ServiceConfig(model=model_path, max_batch_size=0)
    with pytest.raises(ServiceConfigError, match="max_wait_ms"):
        ServiceConfig(model=model_path, max_wait_ms=-1.0)
    with pytest.raises(ServiceConfigError, match="port"):
        ServiceConfig(model=model_path, port=70000)
    with pytest.raises(ServiceConfigError, match="iterations"):
        ServiceConfig(model=model_path, iterations=0)


def test_config_from_mapping_rejects_unknown_settings(model_path):
    with pytest.raises(ServiceConfigError, match=r"unknown setting\(s\) 'prot'"):
        ServiceConfig.from_mapping({"model": model_path, "prot": 1})
    with pytest.raises(ServiceConfigError, match=r"unknown table \[srvice\]"):
        ServiceConfig.from_mapping({"srvice": {"model": model_path}})


def test_config_from_toml_and_overrides(model_path, tmp_path):
    path = tmp_path / "service.toml"
    path.write_text(
        "[service]\n"
        f'model = "{model_path}"\n'
        "max_batch_size = 4\n"
        "max_wait_ms = 10.0\n"
    )
    config = ServiceConfig.from_toml(path)
    assert config.max_batch_size == 4 and config.max_wait_ms == 10.0
    overridden = config.with_overrides(max_batch_size=32, host=None)
    assert overridden.max_batch_size == 32
    assert overridden.host == config.host  # None means "keep"


# ----------------------------------------------------------------------
# Readiness and the request/response wire contract
# ----------------------------------------------------------------------
def test_daemon_readiness_and_single_request(model_path, tiny_sweep):
    with ServingService(_config(model_path)) as service:
        status, health = _get(service.url + "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["default_model"] == "default"
        assert health["loaded_models"] == ["default"]

        known = {name: 1.0 for name in tiny_sweep.models.known_feature_names}
        known.update(rows=512, cols=512, nnz=4096, iterations=1)
        gathered = {
            name: 0.5 for name in tiny_sweep.models.gathered_feature_names
        }
        status, body = _post(
            service.url + "/v1/serve",
            {"name": "w", "known": known, "gathered": gathered},
        )
        assert status == 200
        assert body["name"] == "w"
        assert body["kernel"] in tiny_sweep.models.kernel_names
        assert body["selector_choice"] in ("known", "gathered")

        status, body = _post(
            service.url + "/v1/serve", {"name": "w", "bogus": 1}
        )
        assert status == 400
        assert "unknown request field(s) 'bogus'" in body["error"]

        status, metrics = _get(service.url + "/metrics")
        assert status == 200
        assert metrics["requests_total"] == 2
        assert metrics["responses_total"] == 1
        assert metrics["failures_total"] == 1  # the malformed payload
        assert metrics["errors_total"] == 1  # ... bucketed as an error
        # The failed request's latency stays out of the success histogram.
        assert metrics["error_latency_ms_max"] > 0.0
        assert metrics["drift"] == {"enabled": False}  # no feedback_dir
    assert service.draining


def test_concurrent_daemon_matches_one_shot_serve(
    model_path, tiny_sweep, corpus, tmp_path
):
    """N concurrent clients get decisions element-wise identical to
    one-shot ``repro serve`` over the same corpus."""
    one_shot = serve_sources(
        corpus,
        tiny_sweep.models,
        domain="spmv",
        iterations=3,
        cache_dir=tmp_path / "oneshot-cache",
    )
    config = _config(
        model_path,
        execute=True,
        max_batch_size=4,
        max_wait_ms=50.0,
        cache_dir=str(tmp_path / "daemon-cache"),
    )
    replies = {}
    failures = []
    with ServingService(config) as service:
        url = service.url + "/v1/serve"

        def client(decision):
            payload = {
                "name": decision.name,
                "source": str(corpus / f"{decision.name}.mtx"),
                "iterations": 3,
            }
            try:
                status, body = _post(url, payload)
                assert status == 200, body
                replies[decision.name] = body
            except Exception as error:  # surfaced after join
                failures.append((decision.name, error))

        threads = [
            threading.Thread(target=client, args=(d,))
            for d in one_shot.decisions
            for _ in range(3)  # duplicates exercise the cache under load
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        metrics = service.metrics.snapshot()
    assert failures == []
    for decision in one_shot.decisions:
        body = replies[decision.name]
        assert body["selector_choice"] == decision.selector_choice
        assert body["kernel"] == decision.kernel
        assert body["iterations"] == 3
        assert body["known"] == decision.known.as_dict()
        assert body["gathered"] == decision.gathered.as_dict()
        assert body["collection_time_ms"] == decision.collection_time_ms
        assert body["runtime_ms"] == decision.runtime_ms
    assert metrics["requests_total"] == 3 * len(one_shot.decisions)
    # Each matrix is ingested at most once; the duplicates hit the warm cache.
    assert metrics["matrices_ingested"] == len(one_shot.decisions)
    assert metrics["ingest_cache_hits"] == 2 * len(one_shot.decisions)


def test_client_assembled_batch_round_trip(model_path, tiny_sweep):
    known = {name: 1.0 for name in tiny_sweep.models.known_feature_names}
    known.update(rows=64, cols=64, nnz=512, iterations=1)
    gathered = {name: 0.5 for name in tiny_sweep.models.gathered_feature_names}
    with ServingService(_config(model_path)) as service:
        status, body = _post(
            service.url + "/v1/serve",
            {
                "requests": [
                    {"name": "a", "known": known, "gathered": gathered},
                    {"name": "broken", "nonsense": True},
                ]
            },
        )
    assert status == 200
    assert body["batch_size"] == 2
    good, bad = body["responses"]
    assert good["name"] == "a" and good["kernel"]
    assert "unknown request field(s) 'nonsense'" in bad["error"]


# ----------------------------------------------------------------------
# Flush triggers
# ----------------------------------------------------------------------
def test_batcher_flushes_on_full_window():
    seen = []
    flushes = []
    batcher = DynamicBatcher(
        lambda batch: seen.append(len(batch)) or list(batch),
        max_batch_size=4,
        max_wait_ms=5_000.0,  # the timer must never fire in this test
        on_flush=lambda size, reason: flushes.append((size, reason)),
    )
    try:
        threads = [
            threading.Thread(target=batcher.submit, args=(object(),))
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert seen == [4, 4]
        assert flushes == [(4, "full"), (4, "full")]
    finally:
        batcher.close()


def test_batcher_flushes_on_timer():
    flushes = []
    batcher = DynamicBatcher(
        lambda batch: list(batch),
        max_batch_size=64,  # the window can never fill
        max_wait_ms=10.0,
        on_flush=lambda size, reason: flushes.append((size, reason)),
    )
    try:
        started = time.monotonic()
        batcher.submit(object(), timeout=30)
        waited_ms = (time.monotonic() - started) * 1000.0
        assert flushes == [(1, "timer")]
        assert waited_ms >= 9.0  # the window deadline was honoured
    finally:
        batcher.close()


def test_batcher_drains_queued_work_on_close():
    release = threading.Event()
    flushes = []

    def evaluate(batch):
        release.wait(30)
        return list(batch)

    batcher = DynamicBatcher(
        evaluate,
        max_batch_size=1,
        max_wait_ms=5_000.0,
        on_flush=lambda size, reason: flushes.append(reason),
    )
    results = []
    threads = [
        threading.Thread(target=lambda: results.append(batcher.submit(object())))
        for _ in range(3)
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.05)  # let the first window open and block in evaluate
    closer = threading.Thread(target=batcher.close)
    closer.start()
    release.set()
    closer.join(timeout=30)
    for thread in threads:
        thread.join(timeout=30)
    assert len(results) == 3  # every accepted request was served
    with pytest.raises(RuntimeError, match="closed"):
        batcher.submit(object())


def test_batcher_delivers_evaluator_exceptions():
    batcher = DynamicBatcher(
        lambda batch: (_ for _ in ()).throw(ValueError("boom")),
        max_batch_size=2,
        max_wait_ms=1.0,
    )
    try:
        with pytest.raises(ValueError, match="boom"):
            batcher.submit(object(), timeout=30)
    finally:
        batcher.close()


# ----------------------------------------------------------------------
# Shutdown
# ----------------------------------------------------------------------
def test_shutdown_is_idempotent_and_summary_is_written(
    model_path, tmp_path, tiny_sweep
):
    config = _config(
        model_path, log_dir=str(tmp_path / "logs"), max_batch_size=2
    )
    service = ServingService(config)
    service.start_background()
    known = {name: 1.0 for name in tiny_sweep.models.known_feature_names}
    known.update(rows=64, cols=64, nnz=512, iterations=1)
    gathered = {name: 0.5 for name in tiny_sweep.models.gathered_feature_names}
    _post(
        service.url + "/v1/serve",
        {"name": "w", "known": known, "gathered": gathered},
    )
    summary = service.shutdown()
    assert service.shutdown() is None  # second caller: already drained
    assert summary["metrics"]["requests_total"] == 1
    assert summary["service"]["max_batch_size"] == 2
    on_disk = json.loads((tmp_path / "logs" / "summary.json").read_text())
    assert on_disk == summary
    log_lines = (
        (tmp_path / "logs" / "requests.log").read_text().strip().splitlines()
    )
    assert len(log_lines) == 1
    record = json.loads(log_lines[0])
    assert record["name"] == "w" and record["latency_ms"] >= 0.0


def test_embedded_service_shutdown_without_accept_loop(model_path):
    """Batcher-only (no HTTP traffic) services must still shut down cleanly."""
    service = ServingService(_config(model_path, max_batch_size=1))
    done = threading.Event()
    threading.Thread(
        target=lambda: (service.shutdown(), done.set()), daemon=True
    ).start()
    assert done.wait(10), "shutdown hung without a running accept loop"
    with pytest.raises(RuntimeError, match="closed"):
        service.serve_request(
            ServeRequest(name="late", known={"rows": 1.0})
        )


# ----------------------------------------------------------------------
# Error bucketing and drift monitoring
# ----------------------------------------------------------------------
def test_metrics_bucket_error_latencies_separately():
    """Failed-request latencies must never pollute the success histogram."""
    from repro.serving.service import _EMPTY_STATS, ServiceMetrics

    metrics = ServiceMetrics()
    metrics.record_results([], _EMPTY_STATS, [10.0])
    metrics.record_error(50.0)
    metrics.record_error()  # error with no measurable latency still counts
    snapshot = metrics.snapshot()
    assert snapshot["errors_total"] == 2
    assert snapshot["error_latency_ms_max"] == 50.0
    assert snapshot["error_latency_ms_mean"] == 25.0
    assert snapshot["latency_ms_max"] == 10.0  # success bucket untouched


def test_batch_error_shares_are_bucketed_per_failure(model_path, tiny_sweep):
    """A client batch with failures books one error share per failure and
    keeps the batch latency in the success histogram for the good ones."""
    known = {name: 1.0 for name in tiny_sweep.models.known_feature_names}
    known.update(rows=64, cols=64, nnz=512, iterations=1)
    gathered = {name: 0.5 for name in tiny_sweep.models.gathered_feature_names}
    with ServingService(_config(model_path)) as service:
        _post(
            service.url + "/v1/serve",
            {
                "requests": [
                    {"name": "a", "known": known, "gathered": gathered},
                    {"name": "broken", "nonsense": True},
                ]
            },
        )
        snapshot = service.metrics.snapshot()
    assert snapshot["failures_total"] == 1
    assert snapshot["errors_total"] == 1
    assert snapshot["error_latency_ms_max"] > 0.0
    assert snapshot["latency_ms_max"] > 0.0  # the good response's latency


def test_drift_monitor_flags_degraded_feedback(tiny_sweep, tmp_path):
    """Feedback artifacts far below the manifest baseline flip the drift
    status in /metrics and the shutdown summary."""
    from repro.serving.registry import ModelRegistry

    registry = ModelRegistry(tmp_path / "registry")
    baseline = {
        "selector_kernel_accuracy": 0.95,
        "selector_slowdown_vs_oracle": 1.05,
    }
    model_file = registry.save(
        tiny_sweep.models, domain="spmv", profile="tiny", evaluation=baseline
    )
    feedback_dir = tmp_path / "feedback"
    feedback_dir.mkdir()
    (feedback_dir / "manifest.json").write_text(
        json.dumps(
            {
                "summary": {
                    "selector_kernel_accuracy": 0.5,
                    "selector_slowdown_vs_oracle": 2.0,
                }
            },
            sort_keys=True,
        )
    )
    config = _config(str(model_file), feedback_dir=str(feedback_dir))
    with ServingService(config) as service:
        status, metrics = _get(service.url + "/metrics")
        assert status == 200
        drift = metrics["drift"]
        assert drift["enabled"] and drift["baseline_available"]
        assert drift["observations"] == 1
        assert drift["drifted"]
        assert len(drift["reasons"]) == 2  # accuracy drop and slowdown growth
        assert drift["baseline_accuracy"] == 0.95
        assert drift["observed_accuracy"] == 0.5
        summary = service.summary()
    assert summary["drift"]["drifted"]


def test_drift_monitor_stays_quiet_on_healthy_feedback(tiny_sweep, tmp_path):
    from repro.serving.registry import ModelRegistry

    registry = ModelRegistry(tmp_path / "registry")
    baseline = {
        "selector_kernel_accuracy": 0.9,
        "selector_slowdown_vs_oracle": 1.1,
    }
    model_file = registry.save(
        tiny_sweep.models, domain="spmv", profile="tiny", evaluation=baseline
    )
    feedback_dir = tmp_path / "feedback"
    (feedback_dir / "run-1").mkdir(parents=True)
    (feedback_dir / "run-1" / "manifest.json").write_text(
        json.dumps(
            {
                "summary": {
                    "selector_kernel_accuracy": 0.88,
                    "selector_slowdown_vs_oracle": 1.12,
                }
            },
            sort_keys=True,
        )
    )
    config = _config(str(model_file), feedback_dir=str(feedback_dir))
    with ServingService(config) as service:
        drift = service.drift_status()
    assert drift["enabled"] and drift["baseline_available"]
    assert drift["observations"] == 1  # nested run directories are scanned
    assert not drift["drifted"] and drift["reasons"] == []


def test_drift_without_manifest_baseline_reports_unavailable(
    model_path, tmp_path
):
    """A bare model.json (no manifest sidecar) still serves; drift just
    reports that no training baseline is available."""
    feedback_dir = tmp_path / "feedback"
    feedback_dir.mkdir()
    config = _config(model_path, feedback_dir=str(feedback_dir))
    with ServingService(config) as service:
        drift = service.drift_status()
    assert drift["enabled"]
    assert not drift["baseline_available"]
    assert not drift["drifted"]


def test_config_validates_drift_threshold(model_path):
    with pytest.raises(ServiceConfigError, match="drift_threshold"):
        ServiceConfig(model=model_path, drift_threshold=0.0)


# ----------------------------------------------------------------------
# The subprocess contract: repro serve --daemon + SIGTERM drain
# ----------------------------------------------------------------------
@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
def test_daemon_subprocess_sigterm_drains_and_summarizes(
    model_path, tmp_path, tiny_sweep
):
    log_dir = tmp_path / "logs"
    config_path = tmp_path / "service.toml"
    config_path.write_text(
        "[service]\n"
        f'model = "{model_path}"\n'
        "port = 0\n"
        "max_batch_size = 4\n"
        "max_wait_ms = 10.0\n"
        "execute = false\n"
        f'log_dir = "{log_dir}"\n'
    )
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        repo_src + os.pathsep + existing if existing else repo_src
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--daemon", "--config", str(config_path)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        startup = process.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", startup)
        assert match, f"no address in startup line: {startup!r}"
        url = f"http://{match.group(1)}:{match.group(2)}"

        status, health = _get(url + "/healthz")
        assert status == 200 and health["status"] == "ok"

        known = {name: 1.0 for name in tiny_sweep.models.known_feature_names}
        known.update(rows=64, cols=64, nnz=512, iterations=1)
        gathered = {
            name: 0.5 for name in tiny_sweep.models.gathered_feature_names
        }
        status, body = _post(
            url + "/v1/serve",
            {"name": "w", "known": known, "gathered": gathered},
        )
        assert status == 200 and body["kernel"]

        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 0, stderr
    summary = json.loads(stdout)  # the shutdown summary is the only stdout
    assert summary["metrics"]["requests_total"] == 1
    assert summary["service"]["default_model"] == "default"
    on_disk = json.loads((log_dir / "summary.json").read_text())
    assert on_disk["metrics"]["requests_total"] == 1
    assert len((log_dir / "requests.log").read_text().strip().splitlines()) == 1
