"""Serving-path parity: batch evaluation, reloaded artifacts, fresh processes.

The acceptance bar of the serving layer is bit-identity: the vectorized
evaluation path must reproduce the scalar reference row for row, and a
model artifact reloaded from disk — in this process or a fresh one — must
reproduce the original predictions and evaluation report exactly.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

import repro
from repro.bench.evaluation import evaluate_dataset
from repro.core.inference import SeerPredictor
from repro.experiments.registry import ExperimentContext
from repro.serving.artifacts import load_models, save_models
from repro.serving.registry import ModelRegistry


def _report_fingerprint(report):
    """Everything an EvaluationReport contains, as comparable values."""
    return (
        report.kernel_names,
        [
            (
                row.name,
                row.iterations,
                row.oracle_kernel,
                row.oracle_ms,
                row.selector_choice,
                row.selector_kernel,
                row.selector_ms,
                row.selector_overhead_ms,
                row.gathered_kernel,
                row.gathered_ms,
                row.gathered_overhead_ms,
                row.known_kernel,
                row.known_ms,
                row.kernel_totals_ms,
            )
            for row in report.rows
        ],
    )


def test_vectorized_evaluation_is_bit_identical_to_scalar(tiny_sweep):
    scalar = evaluate_dataset(
        tiny_sweep.dataset, tiny_sweep.models, vectorized=False
    )
    vectorized = evaluate_dataset(tiny_sweep.dataset, tiny_sweep.models)
    assert _report_fingerprint(vectorized) == _report_fingerprint(scalar)
    assert vectorized.summary() == scalar.summary()


def test_sweep_reports_use_the_vectorized_path_unchanged(tiny_sweep):
    # The reports assembled by run_sweep must equal a scalar re-evaluation:
    # switching the default to the batch path changed no numbers.
    for split, report in (
        (tiny_sweep.train_set, tiny_sweep.train_report),
        (tiny_sweep.test_set, tiny_sweep.test_report),
    ):
        scalar = evaluate_dataset(split, tiny_sweep.models, vectorized=False)
        assert _report_fingerprint(report) == _report_fingerprint(scalar)


def test_predict_batch_from_features_matches_scalar_flow(tiny_sweep):
    predictor = tiny_sweep.predictor
    known_rows = []
    gathered_rows = []
    names = []
    for measurement in tiny_sweep.suite:
        known_rows.append(measurement.known.with_iterations(7))
        gathered_rows.append(measurement.gathered)
        names.append(measurement.name)
    batch = predictor.predict_batch_from_features(known_rows, gathered_rows, names)
    assert len(batch) == len(known_rows)
    for known, gathered, name, decision in zip(
        known_rows, gathered_rows, names, batch
    ):
        scalar = predictor.predict_from_features(
            known, gathered, gathered.collection_time_ms, name=name
        )
        assert decision.matrix_name == scalar.matrix_name
        assert decision.selector_choice == scalar.selector_choice
        assert decision.kernel_name == scalar.kernel_name
        assert decision.collection_time_ms == scalar.collection_time_ms
        assert decision.inference_time_ms == scalar.inference_time_ms
        assert decision.known == scalar.known
        assert decision.gathered.as_dict() == scalar.gathered.as_dict()


def test_reloaded_artifact_reproduces_the_evaluation_report(tiny_sweep, tmp_path):
    path = save_models(tiny_sweep.models, tmp_path / "model.json", domain="spmv")
    reloaded = load_models(path, domain="spmv")
    original = evaluate_dataset(tiny_sweep.test_set, tiny_sweep.models)
    served = evaluate_dataset(tiny_sweep.test_set, reloaded)
    assert _report_fingerprint(served) == _report_fingerprint(original)
    assert served.summary() == original.summary()


def test_reloaded_models_back_a_working_predictor(tiny_sweep, tmp_path, small_matrices):
    path = save_models(tiny_sweep.models, tmp_path / "model.json", domain="spmv")
    predictor = SeerPredictor(load_models(path, domain="spmv"), domain="spmv")
    for matrix in small_matrices.values():
        fresh = predictor.predict(matrix, iterations=3)
        original = tiny_sweep.predictor.predict(matrix, iterations=3)
        assert fresh.kernel_name == original.kernel_name
        assert fresh.selector_choice == original.selector_choice


def test_fresh_process_serves_identical_choices(tiny_sweep, tmp_path):
    """Save, reload in a *fresh interpreter*, and compare every choice."""
    model_path = save_models(
        tiny_sweep.models, tmp_path / "model.json", domain="spmv"
    )
    known = tiny_sweep.dataset.known_matrix()
    gathered = tiny_sweep.dataset.gathered_matrix()
    np.savez(tmp_path / "features.npz", known=known, gathered=gathered)
    expected = tiny_sweep.models.predict_batch(known, gathered)

    script = (
        "import json, sys\n"
        "import numpy as np\n"
        "from repro.serving.artifacts import load_models\n"
        "models = load_models(sys.argv[1], domain='spmv')\n"
        "data = np.load(sys.argv[2])\n"
        "batch = models.predict_batch(data['known'], data['gathered'])\n"
        "print(json.dumps({'selector': list(batch.selector_choices),\n"
        "                  'known': list(batch.known_kernels),\n"
        "                  'gathered': list(batch.gathered_kernels),\n"
        "                  'kernels': list(batch.kernels)}))\n"
    )
    src_dir = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", script, str(model_path), str(tmp_path / "features.npz")],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    served = json.loads(result.stdout)
    assert served["selector"] == list(expected.selector_choices)
    assert served["known"] == list(expected.known_kernels)
    assert served["gathered"] == list(expected.gathered_kernels)
    assert served["kernels"] == list(expected.kernels)


def test_experiment_context_publishes_and_reuses_registry_models(tmp_path):
    registry_root = tmp_path / "models"
    first = ExperimentContext(
        domain="spmv", profile="tiny", model_registry=registry_root
    )
    trained = first.models()  # trains via the shared sweep and publishes
    registry = ModelRegistry(registry_root)
    assert registry.find(domain="spmv", profile="tiny") is not None

    second = ExperimentContext(
        domain="spmv", profile="tiny", model_registry=registry_root
    )
    served = second.models()
    assert second._sweep is None, "registry hit must not trigger a sweep"
    known = first.sweep().test_set.known_matrix()
    gathered = first.sweep().test_set.gathered_matrix()
    assert served.predict_batch(known, gathered) == trained.predict_batch(
        known, gathered
    )


def test_experiment_context_without_registry_trains_in_process(tiny_sweep):
    context = ExperimentContext(domain="spmv", profile="tiny")
    assert context.model_registry is None
    models = context.models()
    assert models is context.sweep().models
