"""Tests for the feature-collection kernels and their cost model."""

import pytest

from repro.gpu.device import MI100
from repro.kernels.feature_kernels import FeatureCollector
from repro.sparse.features import gathered_features
from repro.sparse.generators import power_law_matrix, regular_matrix


def test_collected_features_match_direct_computation():
    matrix = power_law_matrix(5_000, 5_000, 6.0, rng=1)
    collector = FeatureCollector(MI100)
    result = collector.collect(matrix)
    direct = gathered_features(matrix)
    assert result.features.as_vector().tolist() == direct.as_vector().tolist()
    assert result.features.collection_time_ms == pytest.approx(result.collection_time_ms)


def test_collection_cost_is_positive_and_includes_transfer():
    matrix = regular_matrix(1_000, 1_000, 4, rng=2)
    collector = FeatureCollector(MI100)
    cost = collector.collection_time_ms(matrix)
    # two launches plus a host transfer at the very least
    assert cost >= 2 * MI100.launch_overhead_ms + MI100.host_transfer_ms


def test_collection_cost_grows_with_rows_but_slowly():
    collector = FeatureCollector(MI100)
    small = collector.collection_time_ms(regular_matrix(1_000, 1_000, 4, rng=3))
    large = collector.collection_time_ms(regular_matrix(1_000_000, 1_000_000, 4, rng=4))
    assert large > small
    # Collection only touches the row offsets, so even a 1000x larger matrix
    # costs well under 10x more.
    assert large < 10 * small


def test_collection_cost_independent_of_nnz_density():
    collector = FeatureCollector(MI100)
    sparse = collector.collection_time_ms(regular_matrix(100_000, 100_000, 2, rng=5))
    dense = collector.collection_time_ms(regular_matrix(100_000, 100_000, 32, rng=6))
    assert dense == pytest.approx(sparse, rel=0.01)


def test_collection_cheaper_than_spmv_only_for_large_matrices():
    from repro.kernels.csr_block import CsrBlockMapped

    collector = FeatureCollector(MI100)
    kernel = CsrBlockMapped(MI100)
    small = regular_matrix(2_000, 2_000, 8, rng=7)
    large = regular_matrix(1_000_000, 1_000_000, 8, rng=8)
    assert collector.collection_time_ms(small) > kernel.timing(small).iteration_ms
    assert collector.collection_time_ms(large) < kernel.timing(large).iteration_ms
