"""Tests for the kernel registry."""

import pytest

from repro.gpu.device import SMALL_GPU
from repro.kernels.registry import (
    ALL_KERNEL_NAMES,
    FIG5_KERNEL_NAMES,
    KERNEL_CLASSES,
    default_kernels,
    kernel_names,
    make_kernel,
)


def test_registry_contains_the_table_ii_variants():
    assert set(FIG5_KERNEL_NAMES) == {
        "CSR,A",
        "CSR,BM",
        "CSR,MP",
        "CSR,WM",
        "CSR,WO",
        "CSR,TM",
        "COO,WM",
        "ELL,TM",
    }
    assert "rocSPARSE" in ALL_KERNEL_NAMES
    assert set(ALL_KERNEL_NAMES) == set(KERNEL_CLASSES)


def test_formats_cover_csr_coo_ell():
    formats = {cls.sparse_format for cls in KERNEL_CLASSES.values()}
    assert formats == {"CSR", "COO", "ELL"}


def test_make_kernel_and_device_propagation():
    kernel = make_kernel("CSR,WM", SMALL_GPU)
    assert kernel.device is SMALL_GPU
    with pytest.raises(KeyError):
        make_kernel("CSR,XYZ")


def test_default_kernels_order_and_rocsparse_toggle():
    with_vendor = default_kernels()
    without_vendor = default_kernels(include_rocsparse=False)
    assert [k.name for k in with_vendor] == list(ALL_KERNEL_NAMES)
    assert [k.name for k in without_vendor] == list(FIG5_KERNEL_NAMES)
    assert kernel_names(include_rocsparse=False) == FIG5_KERNEL_NAMES


def test_kernel_names_are_unique_labels():
    names = [cls.name for cls in KERNEL_CLASSES.values()]
    assert len(names) == len(set(names))
