"""Numeric correctness of every SpMV kernel variant."""

import numpy as np
import pytest

from repro.kernels.registry import ALL_KERNEL_NAMES, default_kernels, make_kernel


@pytest.fixture(scope="module")
def kernels():
    return default_kernels()


@pytest.mark.parametrize("kernel_name", ALL_KERNEL_NAMES)
def test_kernel_matches_reference_spmv(kernel_name, small_matrices, rng):
    kernel = make_kernel(kernel_name)
    for family, matrix in small_matrices.items():
        x = rng.uniform(-1.0, 1.0, matrix.num_cols)
        result = kernel.run(matrix, x)
        np.testing.assert_allclose(
            result.y, matrix.spmv(x), rtol=1e-9, atol=1e-12,
            err_msg=f"{kernel_name} on {family}",
        )
        assert result.kernel == kernel_name
        assert result.total_ms > 0.0


@pytest.mark.parametrize("kernel_name", ALL_KERNEL_NAMES)
def test_multi_iteration_run_chains_spmv(kernel_name, small_matrices, rng):
    matrix = small_matrices["banded"]
    x = rng.uniform(-1.0, 1.0, matrix.num_cols)
    kernel = make_kernel(kernel_name)
    result = kernel.run(matrix, x, iterations=3)
    expected = matrix.spmv(matrix.spmv(matrix.spmv(x)))
    np.testing.assert_allclose(result.y, expected, rtol=1e-9)
    assert result.iterations == 3
    assert result.total_ms == pytest.approx(
        result.timing.preprocessing_ms + 3 * result.timing.iteration_ms
    )


def test_run_rejects_zero_iterations(small_matrices):
    kernel = make_kernel("CSR,TM")
    with pytest.raises(ValueError):
        kernel.run(small_matrices["regular"], np.ones(256), iterations=0)


def test_rectangular_matrix_multi_iteration_reuses_input(rng):
    from repro.sparse.generators import uniform_random_matrix

    matrix = uniform_random_matrix(60, 40, 0.05, rng=3)
    x = rng.uniform(-1.0, 1.0, 40)
    kernel = make_kernel("CSR,WM")
    result = kernel.run(matrix, x, iterations=4)
    # Non-square: iterations only affect timing, the result is one product.
    np.testing.assert_allclose(result.y, matrix.spmv(x))
