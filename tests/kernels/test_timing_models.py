"""Qualitative behaviour of the kernel cost models.

These tests encode the performance folklore the paper builds on: which
schedule wins on which matrix structure, and why.  They are the guard rails
that keep the simulator producing the paper's dynamics.
"""

import math

import pytest

from repro.kernels.registry import default_kernels, make_kernel
from repro.sparse import generators as gen


def _timings(matrix, include_rocsparse=True):
    out = {}
    for kernel in default_kernels(include_rocsparse=include_rocsparse):
        if kernel.supports(matrix):
            out[kernel.name] = kernel.timing(matrix)
    return out


@pytest.fixture(scope="module")
def large_regular():
    return gen.regular_matrix(200_000, 200_000, 8, rng=1)


@pytest.fixture(scope="module")
def large_skewed():
    return gen.skewed_matrix(100_000, 100_000, 4, 200, 20_000, rng=2)


@pytest.fixture(scope="module")
def road_network():
    return gen.road_network_matrix(500_000, rng=3)


def test_ell_wins_on_uniform_rows(large_regular):
    timings = _timings(large_regular)
    ell = timings["ELL,TM"].iteration_ms
    assert ell <= min(t.iteration_ms for t in timings.values()) * 1.001


def test_ell_collapses_on_skewed_rows(large_skewed):
    timings = _timings(large_skewed)
    best = min(t.iteration_ms for t in timings.values())
    assert timings["ELL,TM"].iteration_ms > 10.0 * best


def test_thread_mapped_suffers_from_uncoalesced_long_rows(large_regular):
    timings = _timings(large_regular)
    assert timings["CSR,TM"].iteration_ms > 1.5 * timings["ELL,TM"].iteration_ms


def test_thread_mapped_is_competitive_on_tiny_rows(road_network):
    timings = _timings(road_network)
    best = min(t.iteration_ms for t in timings.values())
    assert timings["CSR,TM"].iteration_ms <= 1.3 * best


def test_row_per_wavefront_schedules_pay_on_short_rows(road_network):
    timings = _timings(road_network)
    ell = timings["ELL,TM"].iteration_ms
    assert timings["CSR,WM"].iteration_ms > 2.0 * ell
    assert timings["CSR,BM"].iteration_ms > 2.0 * ell


def test_coo_atomics_penalize_many_row_matrices(road_network):
    timings = _timings(road_network)
    assert timings["COO,WM"].iteration_ms > 2.0 * timings["ELL,TM"].iteration_ms


def test_work_oriented_is_balanced_on_skewed_input(large_skewed):
    timings = _timings(large_skewed)
    best = min(t.iteration_ms for t in timings.values())
    assert timings["CSR,WO"].iteration_ms <= 2.5 * best
    assert timings["CSR,MP"].iteration_ms <= 2.5 * best
    # ...and both beat the thread-mapped kernel, which serializes the heavy rows.
    assert timings["CSR,WO"].iteration_ms < timings["CSR,TM"].iteration_ms


def test_only_adaptive_kernels_have_preprocessing(large_regular):
    for kernel in default_kernels():
        timing = kernel.timing(large_regular)
        if kernel.name in ("CSR,A", "rocSPARSE"):
            assert kernel.has_preprocessing
            assert timing.preprocessing_ms > 0.0
        else:
            assert not kernel.has_preprocessing
            assert timing.preprocessing_ms == 0.0


def test_adaptive_preprocessing_scales_with_rows():
    small = gen.power_law_matrix(10_000, 10_000, 8.0, rng=4)
    large = gen.power_law_matrix(200_000, 200_000, 8.0, rng=5)
    kernel = make_kernel("CSR,A")
    assert kernel.preprocessing_time_ms(large) > 5.0 * kernel.preprocessing_time_ms(small)


def test_adaptive_amortizes_on_irregular_matrix_over_many_iterations():
    matrix = gen.power_law_matrix(400_000, 400_000, 12.0, exponent=2.6, rng=6)
    adaptive = make_kernel("CSR,A").timing(matrix)
    others = {
        kernel.name: kernel.timing(matrix)
        for kernel in default_kernels(include_rocsparse=False)
        if kernel.name != "CSR,A" and kernel.supports(matrix)
    }
    best_other_1 = min(t.total_ms(1) for t in others.values())
    best_other_100 = min(t.total_ms(100) for t in others.values())
    # Not worth it for one iteration...
    assert adaptive.total_ms(1) > best_other_1
    # ...but the preprocessing amortizes over a long solver run.
    assert adaptive.total_ms(100) < best_other_100


def test_adaptive_iteration_time_beats_row_mapped_on_irregular_input(large_skewed):
    timings = _timings(large_skewed)
    assert timings["CSR,A"].iteration_ms <= timings["CSR,WM"].iteration_ms
    assert timings["CSR,A"].iteration_ms <= timings["CSR,TM"].iteration_ms


def test_rocsparse_has_heavier_analysis_but_fast_iterations(large_skewed):
    adaptive = make_kernel("CSR,A").timing(large_skewed)
    vendor = make_kernel("rocSPARSE").timing(large_skewed)
    assert vendor.preprocessing_ms > adaptive.preprocessing_ms
    assert vendor.iteration_ms <= adaptive.iteration_ms * 1.001


def test_ell_refuses_pathological_padding():
    matrix = gen.skewed_matrix(500_000, 500_000, 1, 1, 500_000, rng=7)
    ell = make_kernel("ELL,TM")
    assert not ell.supports(matrix)
    from repro.kernels.base import UnsupportedKernelError

    with pytest.raises(UnsupportedKernelError):
        ell.timing(matrix)


def test_launch_overhead_floors_small_matrices():
    matrix = gen.regular_matrix(64, 64, 4, rng=8)
    for name, timing in _timings(matrix).items():
        assert timing.iteration_ms >= make_kernel(name).device.launch_overhead_ms


def test_timing_total_accounts_iterations(large_regular):
    timing = make_kernel("CSR,A").timing(large_regular)
    assert timing.total_ms(5) == pytest.approx(
        timing.preprocessing_ms + 5 * timing.iteration_ms
    )
    with pytest.raises(ValueError):
        timing.total_ms(-1)


def test_all_timings_finite_and_positive(small_matrices):
    for family, matrix in small_matrices.items():
        for name, timing in _timings(matrix).items():
            assert math.isfinite(timing.iteration_ms), (family, name)
            assert timing.iteration_ms > 0.0
            assert timing.preprocessing_ms >= 0.0
