"""Tests for Kendall's tau (validated against scipy)."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.ml.kendall import kendall_tau


def test_perfect_agreement_and_disagreement():
    x = [1.0, 2.0, 3.0, 4.0]
    assert kendall_tau(x, x) == pytest.approx(1.0)
    assert kendall_tau(x, list(reversed(x))) == pytest.approx(-1.0)


def test_constant_input_returns_nan():
    assert math.isnan(kendall_tau([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]))
    assert math.isnan(kendall_tau([1.0, 2.0, 3.0], [5.0, 5.0, 5.0]))


def test_matches_scipy_without_ties():
    rng = np.random.default_rng(0)
    for _ in range(20):
        x = rng.normal(size=50)
        y = rng.normal(size=50)
        expected = stats.kendalltau(x, y).statistic
        assert kendall_tau(x, y) == pytest.approx(expected, abs=1e-12)


def test_matches_scipy_with_ties():
    rng = np.random.default_rng(1)
    for _ in range(20):
        x = rng.integers(0, 5, size=60).astype(float)
        y = rng.integers(0, 4, size=60).astype(float)
        expected = stats.kendalltau(x, y).statistic
        ours = kendall_tau(x, y)
        if math.isnan(expected):
            assert math.isnan(ours)
        else:
            assert ours == pytest.approx(expected, abs=1e-12)


def test_monotonic_transform_invariance():
    rng = np.random.default_rng(2)
    x = rng.uniform(size=40)
    y = rng.uniform(size=40)
    tau = kendall_tau(x, y)
    assert kendall_tau(np.exp(x), y) == pytest.approx(tau, abs=1e-12)
    assert kendall_tau(x, 3.0 * y + 7.0) == pytest.approx(tau, abs=1e-12)


def test_input_validation():
    with pytest.raises(ValueError):
        kendall_tau([1.0], [1.0])
    with pytest.raises(ValueError):
        kendall_tau([1.0, 2.0], [1.0, 2.0, 3.0])
