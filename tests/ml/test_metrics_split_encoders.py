"""Tests for metrics, train/test splitting and label encoding."""

import numpy as np
import pytest

from repro.ml.encoders import LabelEncoder
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    geometric_mean,
    geomean_speedup,
    relative_error_to_oracle,
)
from repro.ml.split import train_test_split


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_accuracy_score():
    assert accuracy_score(["a", "b", "c"], ["a", "b", "c"]) == 1.0
    assert accuracy_score(["a", "b"], ["a", "c"]) == 0.5
    with pytest.raises(ValueError):
        accuracy_score([], [])
    with pytest.raises(ValueError):
        accuracy_score(["a"], ["a", "b"])


def test_confusion_matrix():
    matrix, labels = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
    assert labels == ["a", "b"]
    np.testing.assert_array_equal(matrix, [[1, 1], [0, 1]])
    assert matrix.sum() == 3


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


def test_geomean_speedup():
    baseline = [2.0, 8.0]
    candidate = [1.0, 2.0]
    assert geomean_speedup(baseline, candidate) == pytest.approx(np.sqrt(8.0))
    with pytest.raises(ValueError):
        geomean_speedup([1.0], [1.0, 2.0])


def test_relative_error_to_oracle():
    assert relative_error_to_oracle([1.0, 1.0], [1.0, 1.0]) == pytest.approx(0.0)
    assert relative_error_to_oracle([1.0, 1.0], [2.0, 2.0]) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        relative_error_to_oracle([0.0], [1.0])


# ----------------------------------------------------------------------
# Train/test split
# ----------------------------------------------------------------------
def test_split_sizes_and_disjointness():
    train, test = train_test_split(100, test_fraction=0.2, seed=1)
    assert len(train) == 80
    assert len(test) == 20
    assert set(train).isdisjoint(test)
    assert set(train) | set(test) == set(range(100))


def test_split_is_deterministic_per_seed():
    first = train_test_split(50, seed=7)
    second = train_test_split(50, seed=7)
    third = train_test_split(50, seed=8)
    np.testing.assert_array_equal(first[1], second[1])
    assert not np.array_equal(first[1], third[1])


def test_stratified_split_covers_every_label():
    labels = ["a"] * 40 + ["b"] * 10 + ["c"] * 2
    train, test = train_test_split(52, test_fraction=0.2, seed=3, stratify=labels)
    train_labels = {labels[i] for i in train}
    assert train_labels == {"a", "b", "c"}
    # the rare class (2 samples) must not be drained into the test set
    assert sum(1 for i in train if labels[i] == "c") >= 1


def test_split_validation():
    with pytest.raises(ValueError):
        train_test_split(10, test_fraction=0.0)
    with pytest.raises(ValueError):
        train_test_split(1)
    with pytest.raises(ValueError):
        train_test_split(10, stratify=["a"] * 9)


# ----------------------------------------------------------------------
# Label encoder
# ----------------------------------------------------------------------
def test_label_encoder_round_trip():
    encoder = LabelEncoder()
    codes = encoder.fit_transform(["CSR,TM", "ELL,TM", "CSR,TM"])
    assert encoder.classes_ == ["CSR,TM", "ELL,TM"]
    assert codes.tolist() == [0, 1, 0]
    assert encoder.inverse_transform([1, 0]) == ["ELL,TM", "CSR,TM"]


def test_label_encoder_rejects_unknown_labels_and_codes():
    encoder = LabelEncoder().fit(["a", "b"])
    with pytest.raises(ValueError):
        encoder.transform(["c"])
    with pytest.raises(ValueError):
        encoder.inverse_transform([5])
    with pytest.raises(RuntimeError):
        LabelEncoder().transform(["a"])


def test_label_encoder_is_deterministic():
    first = LabelEncoder().fit(["b", "a", "c"])
    second = LabelEncoder().fit(["c", "b", "a"])
    assert first.classes_ == second.classes_
