"""Property-based tests for the ML substrate (hypothesis)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.kendall import kendall_tau
from repro.ml.metrics import geometric_mean
from repro.ml.split import train_test_split


@st.composite
def labelled_datasets(draw):
    """Random small classification datasets."""
    num_samples = draw(st.integers(min_value=4, max_value=60))
    num_features = draw(st.integers(min_value=1, max_value=4))
    num_classes = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(num_samples, num_features))
    y = rng.integers(0, num_classes, size=num_samples)
    return X, y


@given(labelled_datasets())
@settings(max_examples=40, deadline=None)
def test_unbounded_tree_memorizes_consistent_data(dataset):
    X, y = dataset
    # Make labels a deterministic function of the features so memorization
    # is achievable even with duplicate rows.
    y = (X[:, 0] > np.median(X[:, 0])).astype(int)
    tree = DecisionTreeClassifier().fit(X, y)
    assert tree.predict(X) == list(y)


@given(labelled_datasets(), st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_depth_limit_is_always_respected(dataset, max_depth):
    X, y = dataset
    tree = DecisionTreeClassifier(max_depth=max_depth).fit(X, y)
    assert tree.depth() <= max_depth
    importances = tree.feature_importances()
    assert importances.shape == (X.shape[1],)
    assert math.isclose(importances.sum(), 1.0, abs_tol=1e-9) or importances.sum() == 0.0
    assert np.all(importances >= 0.0)


@given(labelled_datasets())
@settings(max_examples=40, deadline=None)
def test_leaf_class_counts_partition_the_dataset(dataset):
    X, y = dataset
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    leaf_total = sum(
        node.num_samples for node in tree.nodes() if node.is_leaf
    )
    assert leaf_total == X.shape[0]


@given(
    st.lists(st.integers(min_value=-50, max_value=50), min_size=2, max_size=120),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_kendall_matches_scipy_on_arbitrary_integer_data(values, seed):
    x = np.array(values, dtype=np.float64)
    rng = np.random.default_rng(seed)
    y = rng.integers(-5, 5, size=len(values)).astype(np.float64)
    ours = kendall_tau(x, y)
    expected = stats.kendalltau(x, y).statistic
    if math.isnan(expected):
        assert math.isnan(ours)
    else:
        assert math.isclose(ours, expected, abs_tol=1e-9)


@given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_geometric_mean_is_between_min_and_max(values):
    result = geometric_mean(values)
    assert min(values) * (1 - 1e-9) <= result <= max(values) * (1 + 1e-9)


@given(
    st.integers(min_value=2, max_value=500),
    st.floats(min_value=0.05, max_value=0.9),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_split_partitions_all_indices(num_samples, fraction, seed):
    train, test = train_test_split(num_samples, fraction, seed=seed)
    assert len(train) + len(test) == num_samples
    assert set(train).isdisjoint(test)
    assert len(test) >= 1
    assert len(train) >= 1
