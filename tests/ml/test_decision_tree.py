"""Tests for the from-scratch CART decision tree."""

import numpy as np
import pytest

from repro.ml.decision_tree import DecisionTreeClassifier, gini_impurity


def test_gini_impurity_values():
    assert gini_impurity([10, 0]) == pytest.approx(0.0)
    assert gini_impurity([5, 5]) == pytest.approx(0.5)
    assert gini_impurity([1, 1, 1, 1]) == pytest.approx(0.75)
    assert gini_impurity([0, 0]) == pytest.approx(0.0)


def test_fits_a_simple_threshold():
    X = np.array([[1.0], [2.0], [3.0], [10.0], [11.0], [12.0]])
    y = ["low", "low", "low", "high", "high", "high"]
    tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
    assert tree.predict([[0.0]]) == ["low"]
    assert tree.predict([[20.0]]) == ["high"]
    assert tree.depth() == 1
    root = tree.root_
    assert 3.0 < root.threshold < 10.0


def test_perfectly_fits_training_data_without_depth_limit():
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(80, 3))
    y = (X[:, 0] + X[:, 1] > 1.0).astype(int)
    tree = DecisionTreeClassifier().fit(X, y)
    assert tree.predict(X) == list(y)
    for node in tree.nodes():
        if node.is_leaf:
            assert node.impurity == pytest.approx(0.0)


def test_max_depth_limits_tree():
    rng = np.random.default_rng(1)
    X = rng.uniform(size=(200, 4))
    y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)
    shallow = DecisionTreeClassifier(max_depth=2).fit(X, y)
    deep = DecisionTreeClassifier(max_depth=8).fit(X, y)
    assert shallow.depth() <= 2
    assert deep.depth() <= 8
    shallow_acc = np.mean(np.array(shallow.predict(X)) == y)
    deep_acc = np.mean(np.array(deep.predict(X)) == y)
    assert deep_acc >= shallow_acc


def test_min_samples_leaf_is_respected():
    rng = np.random.default_rng(2)
    X = rng.uniform(size=(60, 2))
    y = (X[:, 0] > 0.5).astype(int)
    tree = DecisionTreeClassifier(min_samples_leaf=10).fit(X, y)
    for node in tree.nodes():
        if node.is_leaf:
            assert node.num_samples >= 10


def test_string_labels_round_trip():
    X = [[0.0], [1.0], [2.0], [3.0]]
    y = ["CSR,TM", "CSR,TM", "ELL,TM", "ELL,TM"]
    tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
    assert tree.classes_ == ["CSR,TM", "ELL,TM"]
    assert tree.predict_one([3.0]) == "ELL,TM"


def test_predict_proba_sums_to_one():
    rng = np.random.default_rng(3)
    X = rng.uniform(size=(50, 2))
    y = rng.integers(0, 3, size=50)
    tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
    probabilities = tree.predict_proba(X)
    np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(50))


def test_sample_weights_shift_the_majority():
    # All feature values identical, so no split is possible and the root leaf
    # predicts the (weighted) majority class.
    X = np.zeros((4, 1))
    y = ["a", "a", "a", "b"]
    unweighted = DecisionTreeClassifier(max_depth=1).fit(X, y)
    weighted = DecisionTreeClassifier(max_depth=1).fit(
        X, y, sample_weight=[1.0, 1.0, 1.0, 100.0]
    )
    assert unweighted.predict_one([0.0]) == "a"
    assert weighted.predict_one([0.0]) == "b"


def test_sample_weights_steer_split_choice():
    # Feature 0 separates the heavy samples, feature 1 separates the many
    # light ones; with strong weights the tree must prefer feature 0.
    X = np.array(
        [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0], [0.0, 0.0], [0.0, 1.0]]
    )
    y = ["a", "a", "b", "b", "a", "a"]
    weights = [1.0, 1.0, 50.0, 50.0, 1.0, 1.0]
    tree = DecisionTreeClassifier(max_depth=1).fit(X, y, sample_weight=weights)
    assert tree.root_.feature == 0


def test_sample_weight_validation():
    X = [[0.0], [1.0]]
    y = [0, 1]
    with pytest.raises(ValueError):
        DecisionTreeClassifier().fit(X, y, sample_weight=[1.0])
    with pytest.raises(ValueError):
        DecisionTreeClassifier().fit(X, y, sample_weight=[1.0, -1.0])


def test_feature_importances_sum_to_one_and_identify_signal():
    rng = np.random.default_rng(4)
    X = rng.uniform(size=(300, 3))
    y = (X[:, 1] > 0.5).astype(int)  # only feature 1 matters
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    importances = tree.feature_importances()
    assert importances.sum() == pytest.approx(1.0)
    assert int(np.argmax(importances)) == 1


def test_export_text_contains_feature_names():
    X = [[0.0, 5.0], [1.0, 4.0], [2.0, 3.0], [3.0, 2.0]]
    y = [0, 0, 1, 1]
    tree = DecisionTreeClassifier(max_depth=2).fit(X, y, feature_names=["rows", "nnz"])
    text = tree.export_text()
    assert "rows" in text or "nnz" in text
    assert "predict" in text


def test_deterministic_given_identical_data():
    rng = np.random.default_rng(5)
    X = rng.uniform(size=(120, 4))
    y = rng.integers(0, 4, size=120)
    first = DecisionTreeClassifier(max_depth=5).fit(X, y)
    second = DecisionTreeClassifier(max_depth=5).fit(X, y)
    assert first.export_text() == second.export_text()


def test_input_validation():
    with pytest.raises(ValueError):
        DecisionTreeClassifier(max_depth=0)
    with pytest.raises(ValueError):
        DecisionTreeClassifier(min_samples_split=1)
    with pytest.raises(ValueError):
        DecisionTreeClassifier(min_samples_leaf=0)
    tree = DecisionTreeClassifier()
    with pytest.raises(RuntimeError):
        tree.predict([[1.0]])
    with pytest.raises(ValueError):
        tree.fit(np.ones((2, 2)), [0])
    with pytest.raises(ValueError):
        tree.fit(np.array([[np.nan], [1.0]]), [0, 1])
    fitted = DecisionTreeClassifier().fit([[0.0], [1.0]], [0, 1])
    with pytest.raises(ValueError):
        fitted.predict([[1.0, 2.0]])


def test_constant_features_produce_single_leaf():
    X = np.ones((10, 2))
    y = [0, 1] * 5
    tree = DecisionTreeClassifier().fit(X, y)
    assert tree.depth() == 0
    assert tree.num_nodes_ == 1
