"""The versioned model registry: trained models as cached artifacts.

The sweep engine already treats measurements, matrices and whole sweeps as
content-addressed artifacts; this module gives trained
:class:`~repro.core.training.SeerModels` the same treatment.  A model is a
pure function of its sweep configuration (profile, seeds, iteration counts,
device, kernel set, training config, package sources), so the registry keys
each artifact by the *same* config hash the engine uses for its sweep tier —
including the source-code digest, which means editing the trainer or the
kernels automatically retires stale models.

Layout::

    <root>/<domain>/<profile>/<config-hash>/
        model.json      # the canonical model document (see .artifacts)
        manifest.json   # how it was produced: config, code digest, key

``repro train --save`` populates the registry, ``repro predict`` serves from
it, and :class:`~repro.experiments.registry.ExperimentContext` can reuse a
registered model instead of retraining inside every suite run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from dataclasses import asdict

from repro.bench.engine import atomic_write_bytes, code_version, sweep_config_key
from repro.bench.runner import DEFAULT_SEED, DEFAULT_SPLIT_SEED
from repro.core.dataset import DEFAULT_ITERATION_COUNTS
from repro.core.training import SeerModels, TrainingConfig
from repro.domains import get_domain
from repro.gpu.device import MI100, DeviceSpec
from repro.serving.artifacts import (
    MODEL_FILE_NAME,
    MODEL_FORMAT_VERSION,
    ModelArtifactError,
    load_artifact,
    save_models,
)

#: File name of the provenance sidecar next to every ``model.json``.
MANIFEST_FILE_NAME = "manifest.json"

#: File name of the per-``<domain>/<profile>`` promotion pointer.  When
#: present it names the key serving should prefer over the default
#: config-hash key; ``repro promote`` flips it atomically after a candidate
#: wins its shadow comparison.
CURRENT_POINTER_FILE_NAME = "current.json"


def _profile_name(profile) -> str:
    """Directory-friendly name of a profile (string or CollectionProfile)."""
    return profile if isinstance(profile, str) else profile.name


class ModelRegistry:
    """Versioned store of trained models under one root directory."""

    def __init__(self, root):
        self.root = Path(root)

    def __repr__(self) -> str:
        return f"ModelRegistry(root={str(self.root)!r})"

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    def key_for(
        self,
        domain=None,
        profile: str = "small",
        device: DeviceSpec = MI100,
        iteration_counts=DEFAULT_ITERATION_COUNTS,
        seed: int = DEFAULT_SEED,
        split_seed: int = DEFAULT_SPLIT_SEED,
        config: Optional[TrainingConfig] = None,
        include_aux: bool = True,
    ) -> str:
        """Config hash of the sweep that trains this model.

        Identical to the engine's sweep-tier key for the same
        configuration, source digest included: the registry and the sweep
        cache agree on what "the same training run" means.
        """
        domain = get_domain(domain)
        return sweep_config_key(
            profile,
            seed,
            split_seed,
            iteration_counts,
            device,
            domain.kernel_names(include_aux=include_aux),
            config,
            domain,
        )

    def artifact_dir(self, domain, profile, key: str) -> Path:
        """Directory of one registered model artifact."""
        domain = get_domain(domain)
        return self.root / domain.name / _profile_name(profile) / key

    def pointer_path(self, domain=None, profile: str = "small") -> Path:
        """Location of the ``current`` promotion pointer for a family."""
        domain = get_domain(domain)
        return (
            self.root
            / domain.name
            / _profile_name(profile)
            / CURRENT_POINTER_FILE_NAME
        )

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------
    def save(
        self,
        models: SeerModels,
        domain=None,
        profile: str = "small",
        device: DeviceSpec = MI100,
        iteration_counts=DEFAULT_ITERATION_COUNTS,
        seed: int = DEFAULT_SEED,
        split_seed: int = DEFAULT_SPLIT_SEED,
        config: Optional[TrainingConfig] = None,
        include_aux: bool = True,
        key: Optional[str] = None,
        evaluation: Optional[dict] = None,
        extra: Optional[dict] = None,
    ) -> Path:
        """Persist ``models`` under its config hash; returns the model path.

        Writes ``model.json`` (canonical, golden-testable) plus a
        ``manifest.json`` sidecar recording the configuration and the
        source digest the key embeds.  Saving the same configuration twice
        overwrites in place with identical bytes.

        ``key`` overrides the derived config hash — promotion uses this to
        register retrained candidates side by side with the incumbent.
        ``evaluation`` (typically ``test_report.summary()``) is recorded in
        the manifest and becomes the drift monitor's baseline; ``extra``
        merges additional provenance keys into the manifest.
        """
        domain = get_domain(domain)
        if key is None:
            key = self.key_for(
                domain=domain,
                profile=profile,
                device=device,
                iteration_counts=iteration_counts,
                seed=seed,
                split_seed=split_seed,
                config=config,
                include_aux=include_aux,
            )
        directory = self.artifact_dir(domain, profile, key)
        model_path = save_models(
            models,
            directory / MODEL_FILE_NAME,
            domain=domain,
            training_config=config or TrainingConfig(),
        )
        # Cache the generated-Python selector next to the model document so
        # the daemon's codegen backend can serve it without regenerating —
        # emitted through the same atomic-write discipline as model.json.
        from repro.serving.backends import SELECTOR_MODULE_NAME, emit_selector_module

        emit_selector_module(models, model_path)
        manifest = {
            "format_version": MODEL_FORMAT_VERSION,
            "key": key,
            "code": code_version(),
            "domain": domain.name,
            "profile": _profile_name(profile),
            "device": device.name,
            "iteration_counts": list(iteration_counts),
            "seed": seed,
            "split_seed": split_seed,
            "include_aux": include_aux,
            "training": asdict(config or TrainingConfig()),
            "kernels": list(models.kernel_names),
            "training_size": int(models.training_size),
            "selector_module": SELECTOR_MODULE_NAME,
        }
        if evaluation is not None:
            manifest["evaluation"] = dict(evaluation)
        if extra:
            manifest.update(extra)
        atomic_write_bytes(
            directory / MANIFEST_FILE_NAME,
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )
        return model_path

    def find(self, domain=None, profile: str = "small", **key_kwargs) -> Optional[Path]:
        """Path of the registered ``model.json`` for a configuration, if any."""
        domain = get_domain(domain)
        key = self.key_for(domain=domain, profile=profile, **key_kwargs)
        path = self.artifact_dir(domain, profile, key) / MODEL_FILE_NAME
        return path if path.is_file() else None

    def load(self, domain=None, profile: str = "small", **key_kwargs) -> SeerModels:
        """Load the registered model for a configuration (validated)."""
        domain = get_domain(domain)
        path = self.find(domain=domain, profile=profile, **key_kwargs)
        if path is None:
            key = self.key_for(domain=domain, profile=profile, **key_kwargs)
            raise ModelArtifactError(
                f"no model registered for domain {domain.name!r}, profile "
                f"{_profile_name(profile)!r}, key {key} under {self.root}"
            )
        return load_artifact(path, domain=domain).models

    def load_or_none(
        self, domain=None, profile: str = "small", **key_kwargs
    ) -> Optional[SeerModels]:
        """Like :meth:`load`, but ``None`` when absent *or* unreadable.

        A corrupt registry entry is treated like a cache miss — the caller
        retrains and overwrites it — mirroring how the sweep engine treats
        its artifact tiers.
        """
        domain = get_domain(domain)
        path = self.find(domain=domain, profile=profile, **key_kwargs)
        if path is None:
            return None
        try:
            return load_artifact(path, domain=domain).models
        except (ModelArtifactError, OSError, ValueError):
            # OSError/ValueError cover failure modes load_artifact cannot
            # normalize itself (e.g. the file vanishing between find() and
            # the read, or a schema mismatch surfacing as a ValueError) —
            # all of them are cache misses here, never crashes.
            return None

    # ------------------------------------------------------------------
    # Promotion: the ``current`` pointer
    # ------------------------------------------------------------------
    def promote(
        self, domain=None, profile: str = "small", key: str = "", extra=None
    ) -> Path:
        """Atomically point ``<domain>/<profile>`` serving at ``key``.

        The target artifact must exist — a pointer at a missing model would
        brick every follower.  The pointer document is canonical JSON
        written through :func:`~repro.bench.engine.atomic_write_bytes`, so
        a reader never observes a torn flip.
        """
        domain = get_domain(domain)
        if not key:
            raise ValueError("promote() needs the key of a registered artifact")
        model_path = self.artifact_dir(domain, profile, key) / MODEL_FILE_NAME
        if not model_path.is_file():
            raise ModelArtifactError(
                f"cannot promote {domain.name}/{_profile_name(profile)} to "
                f"{key}: no model.json at {model_path}"
            )
        payload = {
            "format_version": MODEL_FORMAT_VERSION,
            "domain": domain.name,
            "profile": _profile_name(profile),
            "key": key,
        }
        if extra:
            payload.update(extra)
        pointer = self.pointer_path(domain, profile)
        atomic_write_bytes(
            pointer,
            (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )
        return pointer

    def resolve_current(self, domain=None, profile: str = "small") -> Optional[str]:
        """The promoted key of ``<domain>/<profile>``, or ``None``.

        A missing, corrupt or dangling pointer (its target artifact gone)
        resolves to ``None`` — followers then fall back to the default
        config-hash key instead of failing to serve.
        """
        domain = get_domain(domain)
        pointer = self.pointer_path(domain, profile)
        try:
            payload = json.loads(pointer.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        key = payload.get("key") if isinstance(payload, dict) else None
        if not isinstance(key, str) or not key:
            return None
        model_path = self.artifact_dir(domain, profile, key) / MODEL_FILE_NAME
        return key if model_path.is_file() else None

    def current_model_path(
        self, domain=None, profile: str = "small"
    ) -> Optional[Path]:
        """``model.json`` path of the promoted artifact, or ``None``."""
        domain = get_domain(domain)
        key = self.resolve_current(domain, profile)
        if key is None:
            return None
        return self.artifact_dir(domain, profile, key) / MODEL_FILE_NAME

    def manifest_for(self, domain, profile, key: str) -> Optional[dict]:
        """The ``manifest.json`` sidecar of one artifact, or ``None``."""
        path = self.artifact_dir(domain, profile, key) / MANIFEST_FILE_NAME
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None
