"""Shadow-scored model promotion: feedback in, better model out — maybe.

The measured-feedback stage (:mod:`repro.serving.feedback`) tells us how
the deployed selector actually performed on served traffic.  This module
turns that signal into a guarded retraining loop:

1. the feedback rows are split deterministically — even rows join the
   training corpus, odd rows form the *held-out shadow set* no model
   trains on;
2. a candidate is retrained on sweep-corpus + feedback-train rows and
   registered **side by side** with the incumbent (its key is a content
   hash of parent key, feedback digest and training config — never the
   incumbent's slot);
3. incumbent and candidate are shadow-scored on the same held-out set;
4. only when the candidate *wins* (strictly lower slowdown vs the oracle;
   equal slowdown broken by higher selector accuracy) does the registry's
   ``current`` pointer flip — atomically, via
   :meth:`~repro.serving.registry.ModelRegistry.promote` — and the serving
   daemon's :class:`~repro.serving.service.ModelHub` hot-reloads it on the
   next request.  A losing candidate stays in the registry as an audit
   record, and serving never changes.

Everything the decision was based on is written to ``promotion.json`` so a
refused promotion is as inspectable as an accepted one.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

from repro.bench.engine import stable_hash
from repro.bench.evaluation import evaluate_dataset
from repro.bench.runner import DEFAULT_SEED, DEFAULT_SPLIT_SEED, run_sweep
from repro.core.dataset import DEFAULT_ITERATION_COUNTS, TrainingDataset
from repro.core.training import TrainingConfig, train_seer_models
from repro.domains import get_domain
from repro.domains.base import jsonable
from repro.gpu.device import MI100, DeviceSpec
from repro.serving.artifacts import ModelArtifactError, load_artifact
from repro.serving.feedback import FeedbackResult, load_feedback_dataset
from repro.serving.registry import ModelRegistry, _profile_name

#: File name of the promotion decision record.
PROMOTION_FILE_NAME = "promotion.json"

#: Format version of candidate keys and the promotion record.
PROMOTION_FORMAT_VERSION = 1

#: Minimum feedback rows for a meaningful train/shadow split.
MIN_FEEDBACK_ROWS = 2


@dataclass
class ShadowScore:
    """One model's evaluation over the held-out feedback slice."""

    key: str
    summary: dict

    @property
    def slowdown(self) -> float:
        return float(self.summary["selector_slowdown_vs_oracle"])

    @property
    def accuracy(self) -> float:
        return float(self.summary["selector_kernel_accuracy"])


@dataclass
class PromotionResult:
    """Outcome of one promotion attempt, win or lose."""

    domain_name: str
    profile: str
    incumbent: ShadowScore
    candidate: ShadowScore
    candidate_wins: bool
    promoted: bool
    dry_run: bool
    reason: str
    appended_rows: int
    holdout_rows: int
    pointer_path: Optional[Path] = None

    def to_manifest(self) -> dict:
        """The decision record written as ``promotion.json`` (JSON-able)."""
        return {
            "format_version": PROMOTION_FORMAT_VERSION,
            "domain": self.domain_name,
            "profile": self.profile,
            "incumbent": {
                "key": self.incumbent.key,
                "shadow": jsonable(self.incumbent.summary),
            },
            "candidate": {
                "key": self.candidate.key,
                "shadow": jsonable(self.candidate.summary),
            },
            "candidate_wins": self.candidate_wins,
            "promoted": self.promoted,
            "dry_run": self.dry_run,
            "reason": self.reason,
            "appended_rows": self.appended_rows,
            "holdout_rows": self.holdout_rows,
        }

    def render(self) -> str:
        """Console summary of the shadow comparison and the verdict."""
        lines = [
            f"shadow-scored {self.holdout_rows} held-out feedback row(s) "
            f"({self.appended_rows} appended to training)",
            f"  incumbent {self.incumbent.key[:16]}…: "
            f"slowdown {self.incumbent.slowdown:.4f}x, "
            f"accuracy {self.incumbent.accuracy:.2f}",
            f"  candidate {self.candidate.key[:16]}…: "
            f"slowdown {self.candidate.slowdown:.4f}x, "
            f"accuracy {self.candidate.accuracy:.2f}",
        ]
        lines.append(self.reason)
        return "\n".join(lines)


def split_feedback(dataset: TrainingDataset):
    """Deterministic interleaved split: (train-append rows, shadow rows).

    Even indices feed retraining, odd indices stay held out — stable
    across runs so a re-run of ``repro promote`` on the same feedback
    artifact reproduces the same decision.
    """
    if len(dataset) < MIN_FEEDBACK_ROWS:
        raise ValueError(
            f"promotion needs at least {MIN_FEEDBACK_ROWS} feedback rows "
            f"(got {len(dataset)}): one to retrain on, one to shadow-score"
        )
    indices = range(len(dataset))
    return (
        dataset.subset([i for i in indices if i % 2 == 0]),
        dataset.subset([i for i in indices if i % 2 == 1]),
    )


def shadow_score(key: str, models, holdout: TrainingDataset) -> ShadowScore:
    """Evaluate one model over the held-out feedback slice."""
    return ShadowScore(key=key, summary=evaluate_dataset(holdout, models).summary())


def candidate_key_for(
    incumbent_key: str, feedback: TrainingDataset, config: Optional[TrainingConfig]
) -> str:
    """Content hash identifying a retrained candidate.

    Derived from the parent key, a digest of the exact feedback rows and
    the training config — the same feedback against the same incumbent
    always lands on the same registry slot, and never on the incumbent's.
    """
    rows = [
        (
            sample.name,
            int(sample.iterations),
            [float(v) for v in sample.known_vector],
            [float(v) for v in sample.gathered_vector],
            float(sample.collection_time_ms),
            sorted((k, float(v)) for k, v in sample.kernel_total_ms.items()),
            sample.best_kernel,
        )
        for sample in feedback.samples
    ]
    return stable_hash(
        {
            "format": PROMOTION_FORMAT_VERSION,
            "parent": incumbent_key,
            "feedback": rows,
            "config": asdict(config or TrainingConfig()),
        }
    )


def _merge_datasets(
    base: TrainingDataset, extra: TrainingDataset
) -> TrainingDataset:
    """Append feedback samples to the sweep corpus, kernel sets validated."""
    if list(base.kernel_names) != list(extra.kernel_names):
        raise ValueError(
            f"feedback kernel set {list(extra.kernel_names)} disagrees with "
            f"the training corpus kernel set {list(base.kernel_names)}; "
            "was the feedback measured under a different domain or kernel "
            "configuration?"
        )
    return TrainingDataset(
        kernel_names=list(base.kernel_names),
        samples=list(base.samples) + list(extra.samples),
        known_feature_names=base.known_feature_names,
        gathered_feature_names=base.gathered_feature_names,
    )


def promote_from_feedback(
    registry: ModelRegistry,
    feedback,
    domain=None,
    profile: str = "small",
    device: DeviceSpec = MI100,
    iteration_counts=DEFAULT_ITERATION_COUNTS,
    seed: int = DEFAULT_SEED,
    split_seed: int = DEFAULT_SPLIT_SEED,
    config: Optional[TrainingConfig] = None,
    engine=None,
    dry_run: bool = False,
    out_dir=None,
) -> PromotionResult:
    """Retrain on feedback, shadow-score against the incumbent, maybe flip.

    ``feedback`` is a :class:`~repro.serving.feedback.FeedbackResult`, a
    :class:`~repro.core.dataset.TrainingDataset`, or a path to a
    ``feedback.csv``/its directory.  The incumbent is whatever serving
    resolves today: the ``current`` pointer when set, else the default
    config-hash artifact.  With ``dry_run`` the whole comparison runs but
    nothing is written to the registry.  When ``out_dir`` is given the
    decision record lands there as ``promotion.json`` either way.
    """
    domain = get_domain(domain)
    profile = _profile_name(profile)
    if isinstance(feedback, FeedbackResult):
        feedback_dataset = feedback.dataset
    elif isinstance(feedback, TrainingDataset):
        feedback_dataset = feedback
    else:
        feedback_dataset = load_feedback_dataset(feedback, domain=domain)

    incumbent_key = registry.resolve_current(domain, profile)
    if incumbent_key is None:
        incumbent_key = registry.key_for(
            domain=domain,
            profile=profile,
            device=device,
            iteration_counts=iteration_counts,
            seed=seed,
            split_seed=split_seed,
            config=config,
        )
    incumbent_path = (
        registry.artifact_dir(domain, profile, incumbent_key) / "model.json"
    )
    if not incumbent_path.is_file():
        raise ModelArtifactError(
            f"no incumbent model for {domain.name}/{profile} (key "
            f"{incumbent_key}) under {registry.root}; run `repro train "
            f"--save` first so promotion has something to beat"
        )
    incumbent_models = load_artifact(incumbent_path, domain=domain).models

    append_rows, holdout = split_feedback(feedback_dataset)

    sweep = run_sweep(
        profile=profile,
        iteration_counts=iteration_counts,
        device=device,
        seed=seed,
        split_seed=split_seed,
        config=config,
        engine=engine,
        domain=domain,
    )
    combined = _merge_datasets(sweep.train_set, append_rows)
    candidate_models = train_seer_models(combined, config)
    candidate_key = candidate_key_for(incumbent_key, feedback_dataset, config)

    incumbent_score = shadow_score(incumbent_key, incumbent_models, holdout)
    candidate_score = shadow_score(candidate_key, candidate_models, holdout)

    wins = candidate_score.slowdown < incumbent_score.slowdown or (
        candidate_score.slowdown == incumbent_score.slowdown
        and candidate_score.accuracy > incumbent_score.accuracy
    )
    if wins:
        reason = (
            f"candidate wins: shadow slowdown {candidate_score.slowdown:.4f}x "
            f"beats incumbent {incumbent_score.slowdown:.4f}x"
            + (" (dry run: pointer not flipped)" if dry_run else "; promoted")
        )
    else:
        reason = (
            f"candidate refused: shadow slowdown {candidate_score.slowdown:.4f}x "
            f"does not beat incumbent {incumbent_score.slowdown:.4f}x; "
            "serving keeps the incumbent"
        )

    pointer_path = None
    if not dry_run:
        registry.save(
            candidate_models,
            domain=domain,
            profile=profile,
            device=device,
            iteration_counts=iteration_counts,
            seed=seed,
            split_seed=split_seed,
            config=config,
            key=candidate_key,
            evaluation=candidate_score.summary,
            extra={
                "parent": incumbent_key,
                "feedback_rows": len(append_rows),
                "shadow_rows": len(holdout),
                "promotion_candidate": True,
            },
        )
        if wins:
            pointer_path = registry.promote(
                domain,
                profile,
                key=candidate_key,
                extra={"parent": incumbent_key},
            )

    result = PromotionResult(
        domain_name=domain.name,
        profile=profile,
        incumbent=incumbent_score,
        candidate=candidate_score,
        candidate_wins=wins,
        promoted=wins and not dry_run,
        dry_run=dry_run,
        reason=reason,
        appended_rows=len(append_rows),
        holdout_rows=len(holdout),
        pointer_path=pointer_path,
    )
    if out_dir is not None:
        directory = Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / PROMOTION_FILE_NAME).write_text(
            json.dumps(result.to_manifest(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return result
