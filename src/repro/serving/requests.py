"""The unified serving request/response API.

Every way of asking the trained selector for a kernel decision used to
hand-roll its own input validation and output shape: ``repro predict
--batch`` parsed CSV rows, ``repro serve`` walked raw-matrix sources,
``ExperimentContext.corpus_suite()`` built workload records and the
evaluation harness had its own feature-row plumbing.  This module collapses
those paths onto one stable pair of dataclasses:

* :class:`ServeRequest` — one workload to decide on, either as a *matrix
  reference* (a file path or ``recipe:`` spec) or as *inline features*
  (known, optionally gathered, feature mappings), plus workload options,
  an iteration count and an optional model selector;
* :class:`ServeResponse` — one decision: the routing (``known`` vs
  ``gathered``), the chosen kernel, the feature rows consulted, and the
  timing accounting (collection, inference, and — for executed matrix
  requests — kernel preprocessing/runtime).

:func:`evaluate_requests` is the one serving core behind all entry points.
It is *admission-batched*: however many requests arrive in one call, all
selector/classifier tree evaluations run through the compiled vectorized
:meth:`~repro.core.training.SeerModels.predict_batch` path (a few NumPy
passes instead of per-row Python tree walks), while remaining element-wise
identical to the serial :meth:`~repro.core.inference.SeerPredictor.predict`
flow.  The persistent daemon (:mod:`repro.serving.service`) coalesces
concurrent single requests into exactly these batches.

The column-validation helpers (:func:`feature_vector`,
:func:`feature_matrix`) live here too, so a missing feature column produces
the *same* one-line error whatever entry point it came through.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.training import USE_GATHERED, USE_KNOWN, SeerModels
from repro.domains import get_domain
from repro.domains.base import (
    ITERATIONS_FIELD,
    GatheredFeatureRow,
    KnownFeatureRow,
)
from repro.gpu.device import MI100, DeviceSpec
from repro.kernels.base import UnsupportedKernelError
from repro.pipeline.sources import MatrixSource, MatrixSourceError, resolve_source
from repro.sparse.coo import SparseFormatError

if TYPE_CHECKING:  # typing-only imports; runtime imports would be cyclic
    from repro.domains.base import ProblemDomain
    from repro.pipeline import FeaturePipeline
    from repro.serving.ingest import IngestCache

#: Bumped whenever the request/response wire payloads change shape.
REQUEST_FORMAT_VERSION = 1

#: Keys a :class:`ServeRequest` payload may carry; anything else is rejected
#: loudly (a typo silently ignored would serve the wrong workload).
REQUEST_PAYLOAD_KEYS = frozenset(
    {"name", "source", "known", "gathered", "iterations", "options", "model",
     "backend"}
)


class IngestError(RuntimeError):
    """A serving input (CSV cell, request payload, source) is invalid."""


# ----------------------------------------------------------------------
# Column validation — the one error formatter every entry point shares
# ----------------------------------------------------------------------
def parse_numeric_cell(value: object, column: str, origin: str, line: int) -> float:
    """One CSV/option/payload cell as a float, or a one-line error.

    ``origin``/``line`` name the offending location (`file:line` or
    `request:index`), so CLI and daemon callers can surface the message
    verbatim without a traceback.
    """
    try:
        return float(value)
    except TypeError:
        raise IngestError(
            f"{origin}:{line} is missing a value for column {column!r}"
        ) from None
    except ValueError:
        raise IngestError(
            f"{origin}:{line} has a non-numeric value {value!r} for "
            f"column {column!r}"
        ) from None


def feature_vector(
    row: Mapping[str, object],
    names: Sequence[str],
    origin: str,
    line: int,
    kind: str,
) -> List[float]:
    """The named feature columns of one row as floats.

    This is the single missing-column/non-numeric error formatter: CSV
    batches (``repro predict --batch``), inline request features (the
    daemon) and one-shot serving all produce byte-identical messages for
    the same failure.
    """
    vector: List[float] = []
    for name in names:
        if name not in row or row[name] is None:
            raise IngestError(
                f"{origin}:{line} is missing {kind} feature column {name!r}"
            )
        try:
            vector.append(float(row[name]))
        except (TypeError, ValueError):
            raise IngestError(
                f"{origin}:{line} has a non-numeric value {row[name]!r} "
                f"for feature {name!r}"
            ) from None
    return vector


def feature_matrix(
    rows: Iterable[Mapping[str, object]],
    names: Sequence[str],
    origin: str,
    kind: str,
) -> List[List[float]]:
    """Extract the named feature columns of every row as floats.

    Rows are numbered from 2, matching the data lines of a headered CSV.
    """
    return [
        feature_vector(row, names, origin, line, kind)
        for line, row in enumerate(rows, start=2)
    ]


def parse_workload_options(pairs: Optional[Iterable[object]]) -> Dict[str, float]:
    """``KEY=VALUE`` workload options as a dict of ints/floats."""
    options: Dict[str, float] = {}
    for index, pair in enumerate(pairs or (), start=1):
        key, eq, text = str(pair).partition("=")
        if not eq or not key:
            raise IngestError(
                f"workload option {pair!r} is malformed (want KEY=VALUE)"
            )
        value = parse_numeric_cell(text, key, "--workload-option", index)
        options[key] = int(value) if float(value).is_integer() else value
    return options


# ----------------------------------------------------------------------
# The request/response pair
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServeRequest:
    """One kernel-selection request, in the unified serving API.

    Exactly one input form must be populated:

    * ``source`` — a matrix reference: a ``.mtx``/``.mtx.gz``/``.npz`` path
      or a ``recipe:`` spec.  The serving core ingests the matrix (through
      the content-addressed cache when one is configured), featurizes it
      through the shared pipeline and executes the chosen kernel;
    * ``known`` (plus optional ``gathered``) — inline feature mappings
      (``{feature_name: value}``).  No matrix exists, so the decision is
      returned without kernel execution; a request routed to the gathered
      classifier without inline gathered features is an error.

    ``options`` are domain workload parameters (e.g. SpMM's
    ``num_vectors``), ``model`` optionally selects which hot-loaded model a
    daemon should serve the request with (``"<domain>"`` or
    ``"<domain>/<profile>"``; ``None`` = the daemon's default), and
    ``backend`` optionally overrides the daemon's inference backend for
    this request (``"compiled"``, ``"codegen"`` or ``"recursive"``; ``None``
    = the daemon's configured default).
    """

    name: Optional[str] = None
    source: Optional[str] = None
    known: Optional[Dict[str, float]] = None
    gathered: Optional[Dict[str, float]] = None
    iterations: int = 1
    options: Dict[str, float] = field(default_factory=dict)
    model: Optional[str] = None
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.source is None) == (self.known is None):
            raise IngestError(
                "a ServeRequest needs exactly one of 'source' (a matrix "
                "reference) or 'known' (inline features)"
            )
        if self.gathered is not None and self.known is None:
            raise IngestError(
                "inline 'gathered' features require inline 'known' features"
            )
        if int(self.iterations) < 1:
            raise IngestError(
                f"iterations must be >= 1, got {self.iterations!r}"
            )
        if self.backend is not None:
            from repro.serving.backends import BackendError, check_backend

            try:
                check_backend(self.backend)
            except BackendError as error:
                raise IngestError(str(error)) from None

    @property
    def is_inline(self) -> bool:
        """Whether the request carries inline features (no matrix access)."""
        return self.known is not None

    @classmethod
    def from_payload(
        cls, payload: object, origin: str = "request", line: int = 1
    ) -> "ServeRequest":
        """Parse and validate one JSON request payload.

        Unknown keys, malformed feature mappings and bad iteration counts
        all raise :class:`IngestError` with a one-line ``origin:line``
        message, the same shape every other serving entry point uses.
        """
        if not isinstance(payload, dict):
            raise IngestError(
                f"{origin}:{line} must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        unknown = sorted(set(payload) - REQUEST_PAYLOAD_KEYS)
        if unknown:
            raise IngestError(
                f"{origin}:{line} has unknown request field(s) "
                f"{', '.join(map(repr, unknown))}; expected a subset of "
                f"{sorted(REQUEST_PAYLOAD_KEYS)}"
            )
        for key in ("known", "gathered", "options"):
            value = payload.get(key)
            if value is not None and not isinstance(value, dict):
                raise IngestError(
                    f"{origin}:{line} field {key!r} must be an object of "
                    f"name/value pairs"
                )
        iterations = payload.get("iterations", 1)
        if not isinstance(iterations, int) or isinstance(iterations, bool):
            raise IngestError(
                f"{origin}:{line} field 'iterations' must be an integer, "
                f"got {iterations!r}"
            )
        try:
            return cls(
                name=payload.get("name"),
                source=payload.get("source"),
                known=dict(payload["known"]) if payload.get("known") else None,
                gathered=(
                    dict(payload["gathered"]) if payload.get("gathered") else None
                ),
                iterations=iterations,
                options=dict(payload.get("options") or {}),
                model=payload.get("model"),
                backend=payload.get("backend"),
            )
        except IngestError as error:
            raise IngestError(f"{origin}:{line} {error}") from None

    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable form of the request (inverse of ``from_payload``)."""
        payload: Dict[str, object] = {}
        if self.name is not None:
            payload["name"] = self.name
        if self.source is not None:
            payload["source"] = self.source
        if self.known is not None:
            payload["known"] = dict(self.known)
        if self.gathered is not None:
            payload["gathered"] = dict(self.gathered)
        if self.iterations != 1:
            payload["iterations"] = int(self.iterations)
        if self.options:
            payload["options"] = dict(self.options)
        if self.model is not None:
            payload["model"] = self.model
        if self.backend is not None:
            payload["backend"] = self.backend
        return payload


def requests_from_sources(
    sources: Iterable[MatrixSource],
    iterations: int = 1,
    options: Optional[Mapping[str, float]] = None,
) -> List[ServeRequest]:
    """One matrix-reference :class:`ServeRequest` per discovered source."""
    options = dict(options or {})
    return [
        ServeRequest(
            name=source.name,
            source=source.location,
            iterations=iterations,
            options=dict(options),
        )
        for source in sources
    ]


def requests_from_rows(
    rows: Iterable[Mapping[str, object]],
    models: SeerModels,
    origin: str,
    iterations: int = 1,
) -> List[ServeRequest]:
    """Inline-feature requests from headered-CSV row dicts.

    The known feature columns are required; the gathered columns ride along
    only when *all* of them are present (the ``repro predict --batch``
    contract).  Validation goes through :func:`feature_vector`, so error
    messages match every other entry point exactly.
    """
    rows = list(rows)
    requests: List[ServeRequest] = []
    gathered_names = tuple(models.gathered_feature_names)
    with_gathered = bool(rows) and bool(gathered_names) and all(
        name in rows[0] for name in gathered_names
    )
    for line, row in enumerate(rows, start=2):
        known_values = feature_vector(
            row, models.known_feature_names, origin, line, "known"
        )
        known = dict(zip(models.known_feature_names, known_values))
        gathered = None
        if with_gathered:
            gathered_values = feature_vector(
                row, gathered_names, origin, line, "gathered"
            )
            gathered = dict(zip(gathered_names, gathered_values))
        requests.append(
            ServeRequest(
                name=row.get("name"),
                known=known,
                gathered=gathered,
                iterations=max(1, int(known.get("iterations", iterations))),
            )
        )
    return requests


@dataclass(frozen=True)
class ServeResponse:
    """One decision of the unified serving API.

    ``known``/``gathered`` are the feature rows the decision consulted (the
    gathered row is the domain's all-zero placeholder when collection was
    skipped).  ``executed`` marks matrix-backed requests whose chosen kernel
    was actually run; inline-feature requests carry zero kernel timings.
    """

    name: str
    selector_choice: str
    kernel: str
    known: KnownFeatureRow
    gathered: GatheredFeatureRow
    collection_time_ms: float
    inference_time_ms: float
    source: str = ""
    kind: str = "inline"
    supported: bool = True
    executed: bool = False
    preprocessing_ms: float = 0.0
    runtime_ms: float = 0.0

    @property
    def iterations(self) -> int:
        """Iteration count the decision assumed."""
        return int(getattr(self.known, "iterations", 1))

    @property
    def kernel_total_ms(self) -> float:
        """Preprocessing plus all iterations of the selected kernel."""
        return self.preprocessing_ms + self.iterations * self.runtime_ms

    @property
    def total_ms(self) -> float:
        """Selection overhead plus kernel execution, end to end."""
        return (
            self.collection_time_ms + self.inference_time_ms + self.kernel_total_ms
        )

    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable form of the response (the daemon wire shape)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "selector_choice": self.selector_choice,
            "kernel": self.kernel,
            "supported": self.supported,
            "executed": self.executed,
            "iterations": self.iterations,
            "collection_time_ms": self.collection_time_ms,
            "inference_time_ms": self.inference_time_ms,
            "known": self.known.as_dict(),
            "gathered": self.gathered.as_dict(),
        }
        if self.executed:
            payload.update(
                source=self.source,
                kind=self.kind,
                preprocessing_ms=self.preprocessing_ms,
                runtime_ms=self.runtime_ms,
                kernel_total_ms=self.kernel_total_ms,
                total_ms=self.total_ms,
            )
        return payload


@dataclass(frozen=True)
class ServeFailure:
    """A per-request error, kept in request order by non-strict evaluation."""

    name: str
    error: str

    def to_payload(self) -> Dict[str, str]:
        return {"name": self.name, "error": self.error}


@dataclass
class EvaluationStats:
    """What one :func:`evaluate_requests` call actually did."""

    requests: int = 0
    inline_requests: int = 0
    source_requests: int = 0
    matrices_ingested: int = 0
    ingest_cache_hits: int = 0
    gathered_routed: int = 0
    failures: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "inline_requests": self.inline_requests,
            "source_requests": self.source_requests,
            "matrices_ingested": self.matrices_ingested,
            "ingest_cache_hits": self.ingest_cache_hits,
            "gathered_routed": self.gathered_routed,
            "failures": self.failures,
        }


# ----------------------------------------------------------------------
# The admission-batched serving core
# ----------------------------------------------------------------------
@dataclass
class _Prepared:
    """One request after ingestion/featurization, awaiting inference."""

    request: ServeRequest
    name: str
    known: KnownFeatureRow
    source: str = ""
    kind: str = "inline"
    workload: Optional[object] = None
    gathered_inline: Optional[GatheredFeatureRow] = None


def _prepare_request(
    request: ServeRequest,
    index: int,
    models: SeerModels,
    domain: "Optional[ProblemDomain]",
    pipeline: "Optional[FeaturePipeline]",
    cache: "Optional[IngestCache]",
    stats: EvaluationStats,
) -> _Prepared:
    """Resolve one request to features; raises :class:`IngestError` on bad input."""
    from repro.serving.ingest import ingest_matrix

    label = request.name or "request"
    line = index + 1
    if request.is_inline:
        stats.inline_requests += 1
        row = dict(request.known)
        # The reserved ``iterations`` known feature may come from the
        # request's top-level count instead of the feature mapping.
        if ITERATIONS_FIELD in models.known_feature_names:
            row.setdefault(ITERATIONS_FIELD, request.iterations)
        known_values = feature_vector(
            row, models.known_feature_names, label, line, "known"
        )
        known = KnownFeatureRow(
            names=tuple(models.known_feature_names),
            values=tuple(known_values),
        )
        if ITERATIONS_FIELD in known.names:
            known = known.with_iterations(int(known.iterations))
        gathered_inline = None
        if request.gathered is not None:
            gathered_values = feature_vector(
                request.gathered,
                models.gathered_feature_names,
                label,
                line,
                "gathered",
            )
            gathered_inline = GatheredFeatureRow(
                names=tuple(models.gathered_feature_names),
                values=tuple(gathered_values),
            )
        return _Prepared(
            request=request,
            name=request.name or "matrix",
            known=known,
            gathered_inline=gathered_inline,
        )

    stats.source_requests += 1
    try:
        source = resolve_source(request.source)
        matrix, hit = ingest_matrix(source, cache)
    except (MatrixSourceError, SparseFormatError, OSError) as error:
        raise IngestError(f"{label}: {error}") from None
    if hit:
        stats.ingest_cache_hits += 1
    else:
        stats.matrices_ingested += 1
    try:
        workload = domain.serving_workload(matrix, request.options or {})
    except ValueError as error:
        raise IngestError(f"{label}: {error}") from None
    known = pipeline.known_features(workload, request.iterations)
    return _Prepared(
        request=request,
        name=request.name or source.name,
        known=known,
        source=source.location,
        kind=source.kind,
        workload=workload,
    )


def _empty_gathered(
    models: SeerModels, domain: "Optional[ProblemDomain]"
) -> GatheredFeatureRow:
    """The all-zero gathered placeholder in the model's schema."""
    if domain is not None:
        return domain.empty_gathered()
    return GatheredFeatureRow(
        names=tuple(models.gathered_feature_names),
        values=(0.0,) * len(models.gathered_feature_names),
    )


def evaluate_requests(
    models: SeerModels,
    requests: Iterable[ServeRequest],
    domain: "Union[str, ProblemDomain, None]" = None,
    device: DeviceSpec = MI100,
    pipeline: "Optional[FeaturePipeline]" = None,
    cache: "Optional[IngestCache]" = None,
    execute: bool = True,
    strict: bool = True,
    backend=None,
    precision: str = "exact",
) -> Tuple[List[Union[ServeResponse, ServeFailure, None]], EvaluationStats]:
    """Serve a batch of :class:`ServeRequest`\\ s in one vectorized pass.

    This is the single serving core: the daemon's admission batches, the
    one-shot ``repro serve`` corpus loop and ``repro predict --batch`` all
    call it.  All selector/classifier tree evaluations for the whole batch
    run through :meth:`SeerModels.predict_batch` (two vectorized passes —
    one over the known features, one over the gathered-routed subset), so
    the per-request inference cost is amortized across the admission window
    while every decision stays element-wise identical to the serial
    :meth:`~repro.core.inference.SeerPredictor.predict` flow.

    ``backend`` optionally substitutes an inference backend from
    :mod:`repro.serving.backends` (anything exposing the same
    ``predict_batch``) for the models' compiled path — all backends agree
    element-wise, so the decisions are unchanged.  ``precision`` governs
    the *execution* stage of matrix-backed requests: ``"fast"`` times the
    chosen kernel through the fused tolerance-guarded measurement path
    instead of the exact reference (decisions are unaffected either way).

    ``cache`` is an :class:`~repro.serving.ingest.IngestCache` (or ``None``)
    used for matrix-reference requests.  With ``strict`` (the default for
    CLI paths) the first invalid request raises :class:`IngestError`; with
    ``strict=False`` (the daemon) each invalid request yields a
    :class:`ServeFailure` in its slot and the rest of the batch proceeds.

    Returns ``(results, stats)`` with one :class:`ServeResponse` or
    :class:`ServeFailure` per request, in request order.
    """
    from repro.core.inference import TREE_EVALUATION_MS
    from repro.gpu.simulator import check_precision

    check_precision(precision)
    predict_batch = models.predict_batch if backend is None else backend.predict_batch
    requests = list(requests)
    stats = EvaluationStats(requests=len(requests))
    domain = get_domain(domain) if any(not r.is_inline for r in requests) or domain is not None else None
    if pipeline is None and domain is not None:
        pipeline = domain.make_pipeline(device)

    results: List[Union[ServeResponse, ServeFailure, None]] = [None] * len(requests)
    prepared: List[_Prepared] = []
    prepared_slots: List[Optional[int]] = []
    for index, request in enumerate(requests):
        try:
            item = _prepare_request(
                request, index, models, domain, pipeline, cache, stats
            )
        except IngestError as error:
            if strict:
                raise
            stats.failures += 1
            results[index] = ServeFailure(
                name=request.name or f"request[{index}]", error=str(error)
            )
            continue
        prepared.append(item)
        prepared_slots.append(index)

    if not prepared:
        return results, stats

    # One vectorized pass decides the routing and the known-path kernel for
    # the entire admission window.
    known_matrix = np.stack([item.known.as_vector() for item in prepared])
    first_pass = predict_batch(known_matrix)

    # Collect (or accept inline) gathered features only for the rows the
    # selector actually routes through the paid path — exactly the Fig. 3
    # flow — then run the gathered classifier over that subset in one pass.
    routed: List[Tuple[int, GatheredFeatureRow]] = []
    for position, item in enumerate(prepared):
        if first_pass.selector_choices[position] != USE_GATHERED:
            continue
        if item.workload is not None:
            gathered = pipeline.gather(item.workload)
        elif item.gathered_inline is not None:
            gathered = item.gathered_inline
        else:
            message = (
                f"{item.name} is routed to the gathered classifier but the "
                f"request has no gathered features; supply the "
                f"{', '.join(models.gathered_feature_names)} feature(s) or a "
                f"matrix source"
            )
            if strict:
                raise IngestError(message)
            stats.failures += 1
            results[prepared_slots[position]] = ServeFailure(
                name=item.name, error=message
            )
            prepared_slots[position] = None
            continue
        routed.append((position, gathered))

    gathered_kernels: Dict[int, Tuple[str, GatheredFeatureRow]] = {}
    if routed:
        routed_known = known_matrix[[position for position, _ in routed]]
        routed_gathered = np.stack(
            [gathered.as_vector() for _, gathered in routed]
        )
        second_pass = predict_batch(routed_known, routed_gathered)
        for (position, gathered), kernel in zip(
            routed, second_pass.gathered_kernels
        ):
            gathered_kernels[position] = (kernel, gathered)

    for position, item in enumerate(prepared):
        slot = prepared_slots[position]
        if slot is None:
            continue
        if position in gathered_kernels:
            kernel_name, gathered = gathered_kernels[position]
            selector_choice = USE_GATHERED
            collection_ms = gathered.collection_time_ms
            stats.gathered_routed += 1
        else:
            selector_choice = USE_KNOWN
            kernel_name = first_pass.known_kernels[position]
            gathered = _empty_gathered(models, domain)
            collection_ms = 0.0
        executed = False
        supported = True
        preprocessing_ms = 0.0
        runtime_ms = 0.0
        if execute and item.workload is not None:
            executed = True
            kernel = domain.make_kernel(kernel_name, device)
            try:
                timing_context = None
                if precision != "exact":
                    from repro.kernels.base import LaunchContext

                    timing_context = LaunchContext.of(
                        item.workload, precision=precision
                    )
                timing = kernel.timing(item.workload, timing_context)
                preprocessing_ms = timing.preprocessing_ms
                runtime_ms = timing.iteration_ms
            except UnsupportedKernelError:
                supported = False
                runtime_ms = math.inf
        results[slot] = ServeResponse(
            name=item.name,
            selector_choice=selector_choice,
            kernel=kernel_name,
            known=item.known,
            gathered=gathered,
            collection_time_ms=collection_ms,
            inference_time_ms=2 * TREE_EVALUATION_MS,
            source=item.source,
            kind=item.kind,
            supported=supported,
            executed=executed,
            preprocessing_ms=preprocessing_ms,
            runtime_ms=runtime_ms,
        )
    return results, stats


def replace_request(request: ServeRequest, **changes: object) -> ServeRequest:
    """A copy of ``request`` with fields replaced (dataclass ``replace``)."""
    return replace(request, **changes)
