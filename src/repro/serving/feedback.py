"""Measured serving feedback: score deployed decisions against the oracle.

``repro serve`` routes a corpus through the trained selector, but nothing
checks how good those decisions actually were — the serving loop was open.
This module closes it: the ingested corpus is *re-benchmarked on every
kernel* through the existing engine/ingest caches (so the oracle choice is
known), each served decision is scored against that oracle, and the
outcomes land in a deterministic ``feedback.csv`` + ``manifest.json``
artifact in the experiment-artifact format.

Three consumers build on the artifact:

* the **drift monitor** (:class:`DriftMonitor`, surfaced by the daemon's
  ``/metrics`` and ``summary.json``) compares the rolling feedback metrics
  against the model manifest's training-time evaluation summary;
* the **promotion workflow** (:mod:`repro.serving.promotion`) appends
  feedback rows to the training set and shadow-scores a retrained
  candidate on a held-out feedback slice;
* :func:`load_feedback_dataset` turns the CSV back into a
  :class:`~repro.core.dataset.TrainingDataset`, byte-exactly (cells are
  ``repr`` floats, so every value round-trips).

The scoring itself reuses :func:`~repro.bench.evaluation.evaluate_dataset`
wholesale — serving decisions are element-wise identical to the evaluation
report's Selector approach, so "what the daemon served" and "what the
feedback stage scores" can never disagree.
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.bench.evaluation import EvaluationReport, evaluate_dataset
from repro.core.benchmarking import BenchmarkSuite, run_benchmark_suite
from repro.core.dataset import TrainingDataset, TrainingSample, build_training_dataset
from repro.domains import get_domain
from repro.domains.base import jsonable
from repro.experiments.registry import ARTIFACT_FORMAT_VERSION, ExperimentArtifact
from repro.gpu.device import MI100, DeviceSpec
from repro.ml.metrics import relative_error_to_oracle
from repro.serving.ingest import ingest_records

#: File names of one feedback run's artifact pair.
FEEDBACK_FILE_NAME = "feedback.csv"
FEEDBACK_MANIFEST_FILE_NAME = "manifest.json"

#: Prefix of the per-kernel end-to-end-time columns in ``feedback.csv``.
KERNEL_COLUMN_PREFIX = "total_ms:"

#: Summary keys the drift monitor compares against the training baseline.
DRIFT_METRIC_KEYS = ("selector_kernel_accuracy", "selector_slowdown_vs_oracle")


@dataclass
class FeedbackResult:
    """One measured-feedback pass over a served corpus.

    ``dataset`` holds the re-benchmarked corpus as training samples (all
    kernels measured, oracle label derived); ``report`` the evaluation of
    the serving model over exactly those samples.  Row ``i`` of both refers
    to the same workload.
    """

    domain_name: str
    device_name: str
    iterations: int
    dataset: TrainingDataset
    report: EvaluationReport

    def __len__(self) -> int:
        return len(self.dataset)

    @property
    def domain(self):
        return get_domain(self.domain_name)

    def regret(self) -> float:
        """Aggregate time lost vs the oracle (0 = matched it exactly)."""
        return relative_error_to_oracle(
            [row.oracle_ms for row in self.report.rows],
            [row.selector_ms for row in self.report.rows],
        )

    def kernel_record(self) -> dict:
        """Per-kernel win/loss counts of the served (Selector) decisions.

        A *win* is a sample where the selector picked this kernel and the
        oracle agreed; a *loss* is a pick the oracle disagreed with.
        """
        wins = {kernel: 0 for kernel in self.report.kernel_names}
        losses = {kernel: 0 for kernel in self.report.kernel_names}
        for row in self.report.rows:
            if row.selector_kernel == row.oracle_kernel:
                wins[row.selector_kernel] += 1
            else:
                losses[row.selector_kernel] += 1
        return {"wins": wins, "losses": losses}

    def summary(self) -> dict:
        """Headline feedback metrics (manifest ``summary`` block).

        A superset of :meth:`EvaluationReport.summary` — the shared keys
        are what :class:`DriftMonitor` compares against the model
        manifest's training-time evaluation.
        """
        summary = self.report.summary()
        summary["iterations"] = self.iterations
        summary["regret"] = self.regret()
        summary["kernel_record"] = self.kernel_record()
        return summary

    def to_artifact(self) -> ExperimentArtifact:
        """The per-workload outcomes as one flat experiment-format table."""
        domain = self.domain
        columns = (
            ("name",)
            + tuple(domain.known_feature_names)
            + tuple(domain.gathered_feature_names)
            + ("collection_time_ms",)
            + tuple(
                f"{KERNEL_COLUMN_PREFIX}{kernel}"
                for kernel in self.dataset.kernel_names
            )
            + (
                "oracle_kernel",
                "oracle_ms",
                "selector_choice",
                "served_kernel",
                "served_ms",
                "regret",
                "win",
            )
        )
        rows = []
        for sample, row in zip(self.dataset.samples, self.report.rows):
            per_sample_regret = (
                (row.selector_ms - row.oracle_ms) / row.oracle_ms
                if row.oracle_ms > 0
                else math.inf
            )
            rows.append(
                (sample.name,)
                + tuple(float(v) for v in sample.known_vector)
                + tuple(float(v) for v in sample.gathered_vector)
                + (sample.collection_time_ms,)
                + tuple(
                    sample.kernel_total_ms[kernel]
                    for kernel in self.dataset.kernel_names
                )
                + (
                    row.oracle_kernel,
                    row.oracle_ms,
                    row.selector_choice,
                    row.selector_kernel,
                    row.selector_ms,
                    per_sample_regret,
                    row.selector_kernel == row.oracle_kernel,
                )
            )
        return ExperimentArtifact(columns=columns, rows=rows, summary=self.summary())

    def render(self) -> str:
        """Human-readable per-workload outcome table for the console."""
        lines = [
            f"measured {len(self.dataset)} workloads against the oracle "
            f"(domain {self.domain_name}, {self.iterations} iteration(s))"
        ]
        for row in self.report.rows:
            verdict = "==" if row.selector_kernel == row.oracle_kernel else "!="
            lines.append(
                f"  {row.name:<28} served {row.selector_kernel:<10} "
                f"{verdict} oracle {row.oracle_kernel:<10} "
                f"({row.selector_ms:.4f} vs {row.oracle_ms:.4f} ms)"
            )
        summary = self.summary()
        lines.append(
            f"accuracy {summary['selector_kernel_accuracy']:.2f}, "
            f"regret {summary['regret']:.4f}, "
            f"slowdown vs oracle {summary['selector_slowdown_vs_oracle']:.2f}x"
        )
        return "\n".join(lines)


def measure_feedback(
    models, suite: BenchmarkSuite, iterations: int = 1
) -> FeedbackResult:
    """Score the serving models against the oracle over a measured corpus.

    ``suite`` is the re-benchmarked corpus (every kernel measured, e.g.
    :meth:`~repro.experiments.registry.ExperimentContext.corpus_suite` or
    :func:`feedback_from_corpus`); decisions are replayed through the same
    vectorized batch pass the daemon uses, at the given iteration count.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if len(suite) == 0:
        raise ValueError("cannot measure feedback over an empty corpus")
    dataset = build_training_dataset(suite, (iterations,))
    report = evaluate_dataset(dataset, models)
    return FeedbackResult(
        domain_name=suite.domain_name,
        device_name=suite.device_name,
        iterations=iterations,
        dataset=dataset,
        report=report,
    )


def feedback_from_corpus(
    models,
    target,
    domain=None,
    device: DeviceSpec = MI100,
    iterations: int = 1,
    cache_dir=None,
    options=None,
) -> FeedbackResult:
    """Ingest a corpus, re-benchmark it on every kernel, score the models.

    ``target`` is anything ``repro serve`` accepts (directory, manifest,
    file, ``recipe:`` spec or a pre-discovered source list); parsed
    matrices come out of the content-addressed ingest cache when
    ``cache_dir`` is set, so measuring right after serving re-reads no
    Matrix-Market bytes.
    """
    domain = get_domain(domain)
    records = ingest_records(
        target, domain=domain, cache_dir=cache_dir, options=options
    )
    suite = run_benchmark_suite(records, device=device, domain=domain)
    return measure_feedback(models, suite, iterations=iterations)


def write_feedback_artifact(result: FeedbackResult, out_dir, model_info=None) -> dict:
    """Persist a feedback run as ``feedback.csv`` + ``manifest.json``.

    Follows the experiment-artifact contract (repr-precision cells,
    sorted-key manifest, no timestamps), so repeated measurement of an
    unchanged corpus with an unchanged model writes byte-identical files —
    golden-testable, and safe for the promotion workflow to hash.
    """
    artifact = result.to_artifact()
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    data_path = directory / FEEDBACK_FILE_NAME
    data_path.write_text(artifact.to_csv(), encoding="utf-8")
    manifest = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "experiment": "feedback",
        "title": "Measured serving feedback vs the oracle",
        "description": (
            "Served corpus re-benchmarked on every kernel; each decision "
            "scored against the oracle selection"
        ),
        "domain": result.domain.describe(),
        "device": result.device_name,
        "iterations": result.iterations,
        "columns": list(artifact.columns),
        "row_count": len(artifact.rows),
        "summary": jsonable(artifact.summary),
        "model": jsonable(model_info) if model_info else None,
    }
    manifest_path = directory / FEEDBACK_MANIFEST_FILE_NAME
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return {"dir": directory, "data": data_path, "manifest": manifest_path}


def load_feedback_dataset(path, domain=None) -> TrainingDataset:
    """Reconstruct a :class:`TrainingDataset` from a ``feedback.csv``.

    ``path`` is the CSV or the directory holding it.  The domain resolves
    from the sibling manifest when not given.  Cells were written with
    ``repr`` precision, so every float (including ``inf`` for unsupported
    kernels) round-trips exactly — retraining on loaded feedback is
    bit-identical to retraining on the in-memory result.
    """
    path = Path(path)
    if path.is_dir():
        path = path / FEEDBACK_FILE_NAME
    if domain is None:
        manifest_path = path.parent / FEEDBACK_MANIFEST_FILE_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            raise ValueError(
                f"cannot resolve the feedback domain: no readable manifest at "
                f"{manifest_path}; pass domain= explicitly"
            ) from None
        described = manifest.get("domain")
        domain = described.get("name") if isinstance(described, dict) else described
    domain = get_domain(domain)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ValueError(f"cannot read feedback artifact {path}: {error}") from None
    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames is None:
        raise ValueError(f"feedback artifact {path} is empty (no CSV header)")
    kernel_names = [
        column[len(KERNEL_COLUMN_PREFIX):]
        for column in reader.fieldnames
        if column.startswith(KERNEL_COLUMN_PREFIX)
    ]
    required = (
        {"name", "collection_time_ms", "oracle_kernel"}
        | set(domain.known_feature_names)
        | set(domain.gathered_feature_names)
    )
    missing = sorted(required - set(reader.fieldnames))
    if missing or not kernel_names:
        problem = (
            f"missing column(s) {missing}"
            if missing
            else f"no {KERNEL_COLUMN_PREFIX}<kernel> columns"
        )
        raise ValueError(
            f"feedback artifact {path} is not a {domain.name} feedback table: "
            f"{problem}"
        )
    import numpy as np

    samples = []
    for index, row in enumerate(reader, 2):
        try:
            known_vector = np.array(
                [float(row[name]) for name in domain.known_feature_names],
                dtype=np.float64,
            )
            gathered_vector = np.array(
                [float(row[name]) for name in domain.gathered_feature_names],
                dtype=np.float64,
            )
            totals = {
                kernel: float(row[f"{KERNEL_COLUMN_PREFIX}{kernel}"])
                for kernel in kernel_names
            }
            iterations = int(float(row["iterations"]))
            collection_time = float(row["collection_time_ms"])
        except (TypeError, ValueError) as error:
            raise ValueError(
                f"{path}:{index}: malformed feedback row: {error}"
            ) from None
        best = row["oracle_kernel"]
        if best not in totals:
            raise ValueError(
                f"{path}:{index}: oracle kernel {best!r} is not one of the "
                f"measured kernels {kernel_names}"
            )
        samples.append(
            TrainingSample(
                name=row["name"],
                iterations=iterations,
                known_vector=known_vector,
                gathered_vector=gathered_vector,
                collection_time_ms=collection_time,
                kernel_total_ms=totals,
                best_kernel=best,
            )
        )
    if not samples:
        raise ValueError(f"feedback artifact {path} has no data rows")
    return TrainingDataset(
        kernel_names=kernel_names,
        samples=samples,
        known_feature_names=domain.known_feature_names,
        gathered_feature_names=domain.gathered_feature_names,
    )


# ----------------------------------------------------------------------
# Drift monitoring
# ----------------------------------------------------------------------
@dataclass
class DriftMonitor:
    """Rolling comparison of live feedback metrics against a baseline.

    ``baseline`` is the model manifest's training-time evaluation summary
    (``registry.save(evaluation=...)``); each :meth:`observe` call feeds
    one feedback-run summary.  Only the last ``window`` observations
    count, so recovered traffic clears an old alarm.  Degradation beyond
    ``threshold`` — accuracy *dropping* by more than the threshold, or the
    slowdown-vs-oracle *growing* by more than the threshold fraction —
    marks the status as drifted.
    """

    baseline: Optional[dict] = None
    threshold: float = 0.1
    window: int = 8
    _observations: list = field(default_factory=list, repr=False)

    def observe(self, summary: dict) -> None:
        """Feed one feedback-run summary into the rolling window."""
        self._observations.append(dict(summary))
        if len(self._observations) > self.window:
            del self._observations[: -self.window]

    def _rolling_mean(self, key: str) -> Optional[float]:
        values = [
            float(observation[key])
            for observation in self._observations
            if isinstance(observation.get(key), (int, float))
            and math.isfinite(float(observation[key]))
        ]
        if not values:
            return None
        return sum(values) / len(values)

    def status(self) -> dict:
        """The drift verdict plus the numbers behind it (JSON-able)."""
        status = {
            "threshold": self.threshold,
            "window": self.window,
            "observations": len(self._observations),
            "baseline_available": self.baseline is not None,
            "drifted": False,
            "reasons": [],
        }
        if self.baseline is None or not self._observations:
            return status
        baseline_accuracy = self.baseline.get(DRIFT_METRIC_KEYS[0])
        observed_accuracy = self._rolling_mean(DRIFT_METRIC_KEYS[0])
        if baseline_accuracy is not None and observed_accuracy is not None:
            drop = float(baseline_accuracy) - observed_accuracy
            status["baseline_accuracy"] = float(baseline_accuracy)
            status["observed_accuracy"] = observed_accuracy
            status["accuracy_drop"] = drop
            if drop > self.threshold:
                status["drifted"] = True
                status["reasons"].append(
                    f"selector accuracy dropped {drop:.3f} below the "
                    f"training baseline (threshold {self.threshold})"
                )
        baseline_slowdown = self.baseline.get(DRIFT_METRIC_KEYS[1])
        observed_slowdown = self._rolling_mean(DRIFT_METRIC_KEYS[1])
        if (
            baseline_slowdown is not None
            and float(baseline_slowdown) > 0
            and observed_slowdown is not None
        ):
            increase = observed_slowdown / float(baseline_slowdown) - 1.0
            status["baseline_slowdown_vs_oracle"] = float(baseline_slowdown)
            status["observed_slowdown_vs_oracle"] = observed_slowdown
            status["slowdown_increase"] = increase
            if increase > self.threshold:
                status["drifted"] = True
                status["reasons"].append(
                    f"slowdown vs oracle grew {increase:.3f} over the "
                    f"training baseline (threshold {self.threshold})"
                )
        return status
