"""Flattened decision trees for vectorized batch inference.

The paper's pitch for decision trees is that they are "effectively nested
if/else statements" — cheap to evaluate and auditable.  The recursive
:meth:`~repro.ml.decision_tree.DecisionTreeClassifier.predict` walk is the
readable reference implementation of that evaluation, but it pays Python
call overhead per sample per level.  For serving whole batches (sweep
evaluation, CSV scoring, the ``repro predict --batch`` verb) each fitted
tree is *compiled* once into five parallel NumPy arrays — feature index,
threshold, left/right child and leaf class code per node — and a batch of N
feature rows is pushed through all levels simultaneously: one vectorized
compare-and-gather per tree level instead of N recursive walks.

The compiled evaluation is exact, not approximate: it performs the same
``feature <= threshold`` comparisons on the same float64 values as the
recursive walk, so the two paths agree element-wise on every input
(differential-tested in ``tests/serving``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Child index/leaf code meaning "none" in the serialized node arrays.
NO_NODE = -1


@dataclass(frozen=True)
class CompiledTree:
    """One fitted tree flattened into parallel arrays (pre-order).

    Leaves are encoded as self-loops: their ``feature`` is 0, their
    ``threshold`` is ``+inf`` and both children point back at the leaf
    itself, so ``X[:, 0] <= +inf`` keeps every row parked on its leaf while
    other rows are still descending.  (NaN features compare false and take
    the right child — exactly like the recursive walk.)  ``leaf_code`` holds
    the predicted class code at leaves and ``-1`` at internal nodes.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    leaf_code: np.ndarray
    depth: int
    num_features: int

    @property
    def num_nodes(self) -> int:
        """Total number of nodes in the flattened tree."""
        return int(self.feature.shape[0])

    def predict_codes(self, X) -> np.ndarray:
        """Class codes of every row of ``X``, all rows advanced per level."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features, got {X.shape[1]}"
            )
        indices = np.zeros(X.shape[0], dtype=np.int64)
        rows = np.arange(X.shape[0])
        for _ in range(self.depth):
            go_left = X[rows, self.feature[indices]] <= self.threshold[indices]
            indices = np.where(go_left, self.left[indices], self.right[indices])
        return self.leaf_code[indices]


def compile_tree(model) -> CompiledTree:
    """Flatten a fitted :class:`DecisionTreeClassifier` into arrays.

    Nodes are laid out in pre-order (the order ``model.nodes()`` yields
    them), children referenced by array index.
    """
    if model.root_ is None:
        raise RuntimeError("cannot compile an unfitted tree")
    feature, threshold, left, right, leaf_code = [], [], [], [], []

    def add(node) -> int:
        index = len(feature)
        if node.is_leaf:
            feature.append(0)
            threshold.append(np.inf)
            left.append(index)
            right.append(index)
            leaf_code.append(node.prediction)
        else:
            feature.append(node.feature)
            threshold.append(node.threshold)
            left.append(NO_NODE)
            right.append(NO_NODE)
            leaf_code.append(NO_NODE)
            left[index] = add(node.left)
            right[index] = add(node.right)
        return index

    add(model.root_)
    return CompiledTree(
        feature=np.asarray(feature, dtype=np.int64),
        threshold=np.asarray(threshold, dtype=np.float64),
        left=np.asarray(left, dtype=np.int64),
        right=np.asarray(right, dtype=np.int64),
        leaf_code=np.asarray(leaf_code, dtype=np.int64),
        depth=model.depth(),
        num_features=model.num_features_,
    )
