"""Inference backends: three interchangeable selector evaluators.

The serving core decides kernels through one narrow interface —
``predict_batch(known_matrix, gathered_matrix=None) -> BatchSelection`` —
and this module provides three implementations of it:

* ``compiled`` (the default) — the flattened-array vectorized evaluation of
  :mod:`repro.serving.compiled`, via
  :meth:`~repro.core.training.SeerModels.predict_batch`;
* ``codegen`` — *codegen-native* inference: the generated-Python selector
  module (:func:`~repro.core.codegen.models_to_python_module`, the same
  emitter behind ``repro codegen``) is cached as ``selector.py`` next to
  ``model.json`` and executed directly, so the daemon serves decisions
  through exactly the artifact a production library would embed;
* ``recursive`` — the readable per-row
  :meth:`~repro.ml.decision_tree.DecisionTreeClassifier.predict_one`
  reference walk.

All three perform the same ``feature <= threshold`` comparisons on the same
float64 values (the code generator emits thresholds with ``repr``, the
shortest exactly-round-tripping literal), so they agree element-wise on
every input — differential-tested in ``tests/serving``.

The ``selector.py`` cache is written through
:func:`~repro.bench.engine.atomic_write_bytes` and re-emitted whenever the
models it was generated from change, so a promotion that flips the
``current.json`` pointer atomically swaps the served generated code too —
no restart, no torn module.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.training import BatchSelection, SeerModels

#: The selectable inference backends, in preference order.
BACKEND_MODES = ("compiled", "codegen", "recursive")

#: File name of the generated-Python selector cached next to ``model.json``.
SELECTOR_MODULE_NAME = "selector.py"

#: Names the generated selector module must define to be servable.
SELECTOR_MODULE_EXPORTS = (
    "KERNEL_CLASSES",
    "GATHERED_CLASSES",
    "SELECTOR_CLASSES",
    "known_classifier",
    "gathered_classifier",
    "classifier_selector",
)


class BackendError(ValueError):
    """A backend name or a generated selector module is invalid."""


def check_backend(backend: str) -> str:
    """Validate a backend name, returning it; raises :class:`BackendError`."""
    if backend not in BACKEND_MODES:
        raise BackendError(
            f"backend must be one of {', '.join(map(repr, BACKEND_MODES))}, "
            f"got {backend!r}"
        )
    return backend


# ----------------------------------------------------------------------
# The generated selector module: emission, caching, loading
# ----------------------------------------------------------------------
def selector_module_path(model_path) -> Path:
    """Where the generated selector is cached for a ``model.json``."""
    return Path(model_path).parent / SELECTOR_MODULE_NAME


def render_selector_module(models: SeerModels) -> str:
    """The generated-Python selector source for ``models``.

    Thin alias of :func:`~repro.core.codegen.models_to_python_module`, so
    the serving cache and ``repro codegen`` can never drift apart.
    """
    from repro.core.codegen import models_to_python_module

    return models_to_python_module(models)


def emit_selector_module(models: SeerModels, model_path) -> Path:
    """Atomically write the generated selector next to ``model_path``.

    Uses the same temp-file-plus-``os.replace`` discipline as every other
    serving artifact, so a concurrently hot-reloading daemon never observes
    a torn module.
    """
    from repro.bench.engine import atomic_write_bytes

    path = selector_module_path(model_path)
    atomic_write_bytes(path, render_selector_module(models).encode("utf-8"))
    return path


def ensure_selector_module(models: SeerModels, model_path=None) -> str:
    """The selector source for ``models``, re-emitting the cache if stale.

    Regenerates the source from the loaded models and compares it with the
    on-disk ``selector.py``; a missing or differing cache (e.g. an artifact
    registered before code generation existed, or one whose ``model.json``
    was replaced in place) is atomically overwritten.  With no
    ``model_path`` — or an unwritable artifact directory — the source is
    served purely in memory: a read-only registry degrades to uncached
    codegen inference, never to a crash.
    """
    source = render_selector_module(models)
    if model_path is None:
        return source
    path = selector_module_path(model_path)
    try:
        if path.read_text(encoding="utf-8") == source:
            return source
    except OSError:
        pass
    try:
        emit_selector_module(models, model_path)
    except OSError:
        pass
    return source


def load_selector_namespace(source: str, origin: str = SELECTOR_MODULE_NAME) -> dict:
    """Execute generated selector source and return its namespace.

    The module is pure generated code — three functions over tuples of
    literals, no imports — executed into a private namespace (never
    installed in ``sys.modules``), so concurrent hot-reloads of different
    model versions cannot collide.  Missing exports raise
    :class:`BackendError` naming what the module should have defined.
    """
    namespace: dict = {}
    try:
        exec(compile(source, origin, "exec"), namespace)
    except SyntaxError as error:
        raise BackendError(f"{origin} is not valid generated code: {error}") from None
    missing = [name for name in SELECTOR_MODULE_EXPORTS if name not in namespace]
    if missing:
        raise BackendError(
            f"{origin} is missing generated name(s) {', '.join(map(repr, missing))}"
        )
    return namespace


# ----------------------------------------------------------------------
# The three backends
# ----------------------------------------------------------------------
def _check_pair(known_matrix, gathered_matrix):
    """Validated 2-D float64 views of a known/gathered batch pair."""
    known_matrix = np.atleast_2d(np.asarray(known_matrix, dtype=np.float64))
    if gathered_matrix is None:
        return known_matrix, None
    gathered_matrix = np.atleast_2d(np.asarray(gathered_matrix, dtype=np.float64))
    if gathered_matrix.shape[0] != known_matrix.shape[0]:
        raise ValueError(
            f"known and gathered batches disagree on the sample "
            f"count: {known_matrix.shape[0]} vs {gathered_matrix.shape[0]}"
        )
    return known_matrix, gathered_matrix


class CompiledBackend:
    """The default flattened-array vectorized evaluation."""

    name = "compiled"

    def __init__(self, models: SeerModels):
        self.models = models

    def predict_batch(self, known_matrix, gathered_matrix=None) -> BatchSelection:
        return self.models.predict_batch(known_matrix, gathered_matrix)


class RecursiveBackend:
    """The per-row recursive tree walks — the auditable reference."""

    name = "recursive"

    def __init__(self, models: SeerModels):
        self.models = models

    def predict_batch(self, known_matrix, gathered_matrix=None) -> BatchSelection:
        known_matrix, gathered_matrix = _check_pair(known_matrix, gathered_matrix)
        models = self.models
        selector_choices = tuple(
            models.selector_model.predict_one(row) for row in known_matrix
        )
        known_kernels = tuple(
            models.known_model.predict_one(row) for row in known_matrix
        )
        gathered_kernels = None
        if gathered_matrix is not None:
            full = np.hstack([known_matrix, gathered_matrix])
            gathered_kernels = tuple(
                models.gathered_model.predict_one(row) for row in full
            )
        return BatchSelection(
            selector_choices=selector_choices,
            known_kernels=known_kernels,
            gathered_kernels=gathered_kernels,
        )


class CodegenBackend:
    """Inference through the generated-Python selector module.

    Construction loads (and, when ``model_path`` names a writable artifact,
    re-emits) the cached ``selector.py``; every decision then runs the
    generated if/else nests directly.  The generated functions return class
    *indices* into the emitted ``*_CLASSES`` tuples — the same encoder
    ordering the in-memory trees use — so labels agree with the other
    backends exactly.
    """

    name = "codegen"

    def __init__(self, models: SeerModels, model_path=None):
        self.models = models
        self.model_path = Path(model_path) if model_path is not None else None
        source = ensure_selector_module(models, self.model_path)
        origin = (
            str(selector_module_path(self.model_path))
            if self.model_path is not None
            else SELECTOR_MODULE_NAME
        )
        namespace = load_selector_namespace(source, origin)
        self._kernel_classes = tuple(namespace["KERNEL_CLASSES"])
        self._gathered_classes = tuple(namespace["GATHERED_CLASSES"])
        self._selector_classes = tuple(namespace["SELECTOR_CLASSES"])
        self._known_fn = namespace["known_classifier"]
        self._gathered_fn = namespace["gathered_classifier"]
        self._selector_fn = namespace["classifier_selector"]

    def predict_batch(self, known_matrix, gathered_matrix=None) -> BatchSelection:
        known_matrix, gathered_matrix = _check_pair(known_matrix, gathered_matrix)
        selector_choices = tuple(
            self._selector_classes[self._selector_fn(row)] for row in known_matrix
        )
        known_kernels = tuple(
            self._kernel_classes[self._known_fn(row)] for row in known_matrix
        )
        gathered_kernels = None
        if gathered_matrix is not None:
            full = np.hstack([known_matrix, gathered_matrix])
            gathered_kernels = tuple(
                self._gathered_classes[self._gathered_fn(row)] for row in full
            )
        return BatchSelection(
            selector_choices=selector_choices,
            known_kernels=known_kernels,
            gathered_kernels=gathered_kernels,
        )


def make_backend(name: str, models: SeerModels, model_path=None):
    """Build the named backend for ``models``.

    ``model_path`` (the artifact's ``model.json``) only matters to the
    codegen backend, which caches its generated module next to it.
    """
    name = check_backend(name)
    if name == "codegen":
        return CodegenBackend(models, model_path=model_path)
    if name == "recursive":
        return RecursiveBackend(models)
    return CompiledBackend(models)
