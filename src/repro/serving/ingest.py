"""Raw-matrix ingestion and batch serving: the back end of ``repro serve``.

This closes the loop of the paper's Fig. 3 at production scale: starting
from a *directory of matrix files* (not pre-extracted feature CSVs), every
matrix is parsed, featurized through the shared
:class:`~repro.pipeline.FeaturePipeline`, routed through the trained
selector (paying for feature collection only when the model asks for it),
and the chosen kernel is executed — producing one deterministic
``decisions.csv`` + ``manifest.json`` pair in the experiment-artifact
format.

Scaling machinery is reused from the sweep engine:

* **process fan-out** — sources are chunked over worker processes with
  :func:`repro.bench.engine.run_chunked`, and results reassemble in source
  order, so ``--jobs N`` output is bit-identical to the serial run;
* **content-addressed ingest cache** — parsed matrices persist as ``.npz``
  artifacts under ``<cache_dir>/ingest/``, keyed by
  :func:`repro.bench.engine.stable_hash` over the source's *content digest*
  (file bytes or canonical recipe) plus the ``repro.sparse`` source digest,
  so re-serving a corpus skips Matrix-Market parsing entirely while any
  file edit or parser change retires stale entries.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.engine import (
    atomic_write_bytes,
    generator_code_version,
    run_chunked,
    stable_hash,
)
from repro.domains import get_domain
from repro.domains.base import jsonable
from repro.experiments.registry import (
    ARTIFACT_FORMAT_VERSION,
    ExperimentArtifact,
)
from repro.gpu.device import MI100, DeviceSpec
from repro.pipeline.sources import (
    discover_sources,
    ensure_unique_names,
    load_source,
    resolve_source,
    source_digest,
)

# The unified request/response API (and the shared column-validation
# helpers, which historically lived here) — re-exported so existing
# ``repro.serving.ingest`` imports keep working.
from repro.serving.requests import (  # noqa: F401  (re-exports)
    IngestError,
    ServeFailure,
    ServeRequest,
    ServeResponse,
    evaluate_requests,
    feature_matrix,
    feature_vector,
    parse_numeric_cell,
    parse_workload_options,
    requests_from_rows,
    requests_from_sources,
)
from repro.sparse import io as sparse_io
from repro.sparse.coo import SparseFormatError
from repro.sparse.csr import CSRMatrix

#: Bumped whenever the ingest-cache artifact layout changes.
INGEST_FORMAT_VERSION = 1

#: File names of one serve run's artifact pair.
DECISIONS_FILE_NAME = "decisions.csv"
SERVE_MANIFEST_FILE_NAME = "manifest.json"


# ----------------------------------------------------------------------
# The ingest cache tier
# ----------------------------------------------------------------------
class IngestCache:
    """Content-addressed store of parsed matrices under ``<root>/ingest/``.

    Keys embed the source's content digest and the ``repro.sparse`` source
    digest (the parser and the ``.npz`` layout live there), mirroring how
    the engine's generated-matrix tier is keyed by recipe + generator code.
    """

    def __init__(self, root):
        # expanduser so the Python API accepts "~/.cache/seer" exactly as
        # the shell-expanded CLI examples do.
        self.root = Path(root).expanduser()

    def key(self, source) -> str:
        return stable_hash(
            {
                "format": INGEST_FORMAT_VERSION,
                "sparse": generator_code_version(),
                "kind": source.kind,
                "content": source_digest(source),
            }
        )

    def path(self, source) -> Path:
        return self.root / "ingest" / f"{self.key(source)}.npz"

    def load(self, source):
        """The cached parse of ``source``, or ``None`` on miss/corruption."""
        return _load_cached_matrix(self.path(source))

    def store(self, source, matrix: CSRMatrix) -> None:
        _store_cached_matrix(self.path(source), matrix)


def _load_cached_matrix(path: Path):
    try:
        return sparse_io.load_npz(path)
    except (SparseFormatError, OSError):
        return None


def _store_cached_matrix(path: Path, matrix: CSRMatrix) -> None:
    atomic_write_bytes(path, sparse_io.csr_to_npz_bytes(matrix))


def ingest_matrix(source, cache=None) -> tuple:
    """Resolve one source to a CSR matrix; returns ``(matrix, cache_hit)``.

    The cache key — which reads and digests the source's content — is
    computed once per call, not once per load/store, so a cache miss on a
    huge Matrix-Market file hashes its bytes a single time.
    """
    if cache is None:
        return load_source(source), False
    artifact_path = cache.path(source)
    cached = _load_cached_matrix(artifact_path)
    if cached is not None:
        return cached, True
    matrix = load_source(source)
    _store_cached_matrix(artifact_path, matrix)
    return matrix, False


def _resolve_target(target) -> list:
    """A corpus target as a source list.

    Directories/manifests/single specs go through discovery; an explicit
    list may mix :class:`~repro.pipeline.sources.MatrixSource` objects with
    path strings and ``recipe:`` specs, each resolved individually.
    """
    if isinstance(target, (list, tuple)):
        return ensure_unique_names([resolve_source(item) for item in target])
    return discover_sources(target)


def ingest_records(target, domain=None, cache_dir=None, options=None) -> list:
    """Ingest a corpus into named workload records a benchmark suite accepts.

    ``target`` is anything :func:`~repro.pipeline.sources.discover_sources`
    understands (directory, manifest, single file, recipe spec) or an
    already-discovered source list.  This is how experiment suites consume
    ingested corpora: the records feed straight into
    :func:`repro.core.benchmarking.run_benchmark_suite` or
    ``run_sweep(collection=...)``.
    """
    from repro.sparse.collection import MatrixRecord

    domain = get_domain(domain)
    options = domain.validate_serving_options(options)
    sources = _resolve_target(target)
    cache = IngestCache(cache_dir) if cache_dir is not None else None
    # Corpus suites consume the same ServeRequest objects the serving core
    # does, so request validation can never diverge between the two.
    requests = requests_from_sources(sources, options=options)
    records = []
    for source, request in zip(sources, requests):
        matrix, _ = ingest_matrix(source, cache)
        records.append(
            MatrixRecord(
                name=request.name,
                family=source.kind,
                matrix=domain.serving_workload(matrix, request.options),
            )
        )
    return records


# ----------------------------------------------------------------------
# Serving
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServeDecision:
    """One served workload: its features, routing and executed kernel."""

    name: str
    source: str
    kind: str
    known: object
    gathered: object
    selector_choice: str
    kernel: str
    supported: bool
    collection_time_ms: float
    inference_time_ms: float
    preprocessing_ms: float
    runtime_ms: float

    @classmethod
    def from_response(cls, response: ServeResponse) -> "ServeDecision":
        """The artifact-row form of one unified-API :class:`ServeResponse`."""
        return cls(
            name=response.name,
            source=response.source,
            kind=response.kind,
            known=response.known,
            gathered=response.gathered,
            selector_choice=response.selector_choice,
            kernel=response.kernel,
            supported=response.supported,
            collection_time_ms=response.collection_time_ms,
            inference_time_ms=response.inference_time_ms,
            preprocessing_ms=response.preprocessing_ms,
            runtime_ms=response.runtime_ms,
        )

    @property
    def kernel_total_ms(self) -> float:
        """Preprocessing plus all iterations of the selected kernel."""
        iterations = int(getattr(self.known, "iterations", 1))
        return self.preprocessing_ms + iterations * self.runtime_ms

    @property
    def total_ms(self) -> float:
        """Selection overhead plus kernel execution, end to end."""
        return (
            self.collection_time_ms + self.inference_time_ms + self.kernel_total_ms
        )


@dataclass
class ServeStats:
    """Counters describing what a serve run actually did."""

    matrices_ingested: int = 0
    ingest_cache_hits: int = 0

    def as_dict(self) -> dict:
        return {
            "matrices_ingested": self.matrices_ingested,
            "ingest_cache_hits": self.ingest_cache_hits,
        }


@dataclass
class ServeResult:
    """All decisions of one ``repro serve`` run, in corpus order."""

    domain_name: str
    device_name: str
    iterations: int
    decisions: list
    stats: ServeStats = field(default_factory=ServeStats)

    def __len__(self) -> int:
        return len(self.decisions)

    @property
    def domain(self):
        return get_domain(self.domain_name)

    def summary(self) -> dict:
        """Headline scalars of the run (manifest ``summary`` block)."""
        gathered = sum(1 for d in self.decisions if d.selector_choice == "gathered")
        unsupported = sum(1 for d in self.decisions if not d.supported)
        finite = [d.total_ms for d in self.decisions if math.isfinite(d.total_ms)]
        overhead = sum(
            d.collection_time_ms + d.inference_time_ms for d in self.decisions
        )
        return {
            "workloads": len(self.decisions),
            "gathered_routed": gathered,
            "known_routed": len(self.decisions) - gathered,
            "unsupported_selections": unsupported,
            "selection_overhead_ms": overhead,
            "total_execution_ms": sum(finite),
        }

    def to_artifact(self) -> ExperimentArtifact:
        """The decisions as one flat experiment-format table."""
        domain = self.domain
        columns = (
            ("name", "source", "kind")
            + tuple(domain.known_feature_names)
            + tuple(domain.gathered_feature_names)
            + (
                "selector_choice",
                "kernel",
                "supported",
                "collection_time_ms",
                "inference_time_ms",
                "preprocessing_ms",
                "runtime_ms",
                "kernel_total_ms",
                "total_ms",
            )
        )
        rows = []
        for decision in self.decisions:
            known = decision.known.as_dict()
            gathered = decision.gathered.as_dict()
            rows.append(
                (decision.name, decision.source, decision.kind)
                + tuple(known[name] for name in domain.known_feature_names)
                + tuple(gathered[name] for name in domain.gathered_feature_names)
                + (
                    decision.selector_choice,
                    decision.kernel,
                    decision.supported,
                    decision.collection_time_ms,
                    decision.inference_time_ms,
                    decision.preprocessing_ms,
                    decision.runtime_ms,
                    decision.kernel_total_ms,
                    decision.total_ms,
                )
            )
        return ExperimentArtifact(columns=columns, rows=rows, summary=self.summary())

    def render(self) -> str:
        """Human-readable per-decision table for the console."""
        lines = [
            f"served {len(self.decisions)} workloads "
            f"(domain {self.domain_name}, {self.iterations} iteration(s))"
        ]
        for decision in self.decisions:
            lines.append(
                f"  {decision.name:<28} {decision.selector_choice:<8} "
                f"-> {decision.kernel:<8} total {decision.total_ms:.4f} ms"
            )
        return "\n".join(lines)


def _serve_chunk(
    sources,
    models,
    domain,
    device: DeviceSpec,
    iterations: int,
    options,
    cache_dir,
) -> tuple:
    """Worker entry point: ingest and serve a chunk of sources.

    Runs in a worker process (module-level, picklable).  The models cross
    the boundary as plain dataclasses; the domain crosses as an object —
    registered domains pickle by name and resolve to the worker's singleton,
    exactly as the engine's benchmark workers handle it.  The chunk goes
    through the unified serving core as one admission batch
    (:func:`repro.serving.requests.evaluate_requests`), whose vectorized
    tree passes are element-wise identical to the serial predictor flow —
    featurization and the simulated timings stay deterministic.  Returns
    ``(decisions, ingested, cache_hits)``.
    """
    domain = get_domain(domain)
    cache = IngestCache(cache_dir) if cache_dir is not None else None
    requests = requests_from_sources(
        sources, iterations=iterations, options=options or {}
    )
    responses, stats = evaluate_requests(
        models,
        requests,
        domain=domain,
        device=device,
        cache=cache,
        execute=True,
        strict=True,
    )
    decisions = [ServeDecision.from_response(response) for response in responses]
    return decisions, stats.matrices_ingested, stats.ingest_cache_hits


def serve_sources(
    target,
    models,
    domain=None,
    device: DeviceSpec = MI100,
    iterations: int = 1,
    jobs: int = 1,
    cache_dir=None,
    options=None,
    chunks_per_job: int = 4,
) -> ServeResult:
    """Ingest a corpus and serve kernel decisions for every matrix in it.

    ``target`` is a directory/manifest/file/recipe (or a pre-discovered
    source list); ``models`` a trained :class:`~repro.core.training.SeerModels`.
    With ``jobs > 1`` the corpus fans out over worker processes through the
    engine's chunking machinery, and the decisions reassemble in corpus
    order — bit-identical to the serial run.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    domain = get_domain(domain)
    # Fail fast on unknown workload options, before any worker fan-out.
    options = domain.validate_serving_options(options)
    sources = _resolve_target(target)
    cache_dir = str(cache_dir) if cache_dir is not None else None
    chunk_results = run_chunked(
        _serve_chunk,
        sources,
        jobs=jobs,
        chunks_per_job=chunks_per_job,
        args=(models, domain, device, iterations, options, cache_dir),
    )
    result = ServeResult(
        domain_name=domain.name,
        device_name=device.name,
        iterations=iterations,
        decisions=[],
    )
    for decisions, ingested, hits in chunk_results:
        result.decisions.extend(decisions)
        result.stats.matrices_ingested += ingested
        result.stats.ingest_cache_hits += hits
    return result


def write_serve_artifact(result: ServeResult, out_dir, model_info=None) -> dict:
    """Persist a serve run as ``decisions.csv`` + ``manifest.json``.

    The pair follows the experiment-artifact contract: repr-precision cells,
    sorted-key manifest, no timestamps or machine state — and the ingest
    stats are deliberately excluded, so a warm-cache re-serve (or a
    ``--jobs N`` run) writes byte-identical files.
    """
    artifact = result.to_artifact()
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    data_path = directory / DECISIONS_FILE_NAME
    data_path.write_text(artifact.to_csv(), encoding="utf-8")
    kinds = {}
    for decision in result.decisions:
        kinds[decision.kind] = kinds.get(decision.kind, 0) + 1
    manifest = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "experiment": "serve",
        "title": "Raw-matrix serving decisions",
        "description": (
            "Kernel selections over an ingested corpus of raw matrix files, "
            "featurized through the shared FeaturePipeline"
        ),
        "domain": result.domain.describe(),
        "device": result.device_name,
        "iterations": result.iterations,
        "columns": list(artifact.columns),
        "row_count": len(artifact.rows),
        "sources": {"count": len(result.decisions), "kinds": kinds},
        "summary": jsonable(artifact.summary),
        "model": jsonable(model_info) if model_info else None,
    }
    manifest_path = directory / SERVE_MANIFEST_FILE_NAME
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return {"dir": directory, "data": data_path, "manifest": manifest_path}
