"""The persistent serving daemon: ``repro serve --daemon``.

One-shot serving re-pays every fixed cost on every invocation: model
loading, pipeline construction, matrix parsing.  The daemon keeps all of
that warm across requests and adds *dynamic batching* — concurrent
single-workload requests are coalesced into admission windows and decided
through one vectorized :meth:`~repro.core.training.SeerModels.predict_batch`
pass, so sustained traffic amortizes tree inference the same way the
offline suite does.  Everything speaks the unified request/response API of
:mod:`repro.serving.requests`; decisions are element-wise identical to the
one-shot ``repro serve`` path.

The moving parts, stdlib only:

* :class:`ServiceConfig` — declarative, validated configuration, loadable
  from a small TOML file (``repro serve --daemon --config service.toml``);
  a minimal TOML-subset parser backs Pythons without :mod:`tomllib`;
* :class:`ModelHub` — hot-loads model artifacts on first use (an explicit
  ``model.json`` path and/or any ``<domain>/<profile>`` out of a
  :class:`~repro.serving.registry.ModelRegistry`) and keeps them, plus one
  warm :class:`~repro.pipeline.FeaturePipeline` per domain, for the life of
  the process;
* :class:`DynamicBatcher` — a condition-variable admission queue: a batch
  flushes when it reaches ``max_batch_size`` (*full*) or when the window
  opened by its first request exceeds ``max_wait_ms`` (*timer*);
* :class:`ServiceMetrics` — lock-guarded counters behind ``GET /metrics``
  and the JSON shutdown summary;
* :class:`ServingService` — the threaded HTTP server: ``GET /healthz``,
  ``GET /metrics``, ``POST /v1/serve`` (one request object → admission
  batching; ``{"requests": [...]}`` → served as its own batch) and
  ``POST /shutdown``.  Shutdown — request, signal or context exit — stops
  the accept loop, drains in-flight batches, joins handler threads and
  writes ``summary.json`` (plus a ``requests.log`` JSONL) into the
  configured log directory.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional

from repro.experiments.common import DEFAULT_PROFILE
from repro.gpu.device import MI100, DeviceSpec
from repro.serving.ingest import IngestCache
from repro.serving.requests import (
    IngestError,
    ServeFailure,
    ServeRequest,
    evaluate_requests,
)

#: File names of one daemon run's log-directory artifacts (the run-directory
#: pattern: everything a run produced, together under one root).
REQUEST_LOG_FILE_NAME = "requests.log"
SUMMARY_FILE_NAME = "summary.json"


class ServiceConfigError(ValueError):
    """A daemon configuration file or value is invalid."""


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def _parse_toml_minimal(text: str) -> dict:
    """Parse the TOML subset service configs use (fallback for py<3.11).

    Supports ``[table]`` headers, ``key = value`` pairs with quoted-string,
    boolean, integer and float values, comments and blank lines — enough
    for ``service.toml`` without any third-party dependency.  Real
    :mod:`tomllib` is preferred when the interpreter has it.
    """
    data: dict = {}
    table = data
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            if not name:
                raise ServiceConfigError(f"line {lineno}: empty table name")
            table = data.setdefault(name, {})
            continue
        key, eq, value = line.partition("=")
        key = key.strip()
        if not eq or not key:
            raise ServiceConfigError(
                f"line {lineno}: expected 'key = value', got {raw.strip()!r}"
            )
        value = value.strip()
        if value[:1] in ('"', "'"):
            quote = value[0]
            end = value.find(quote, 1)
            if end < 0:
                raise ServiceConfigError(
                    f"line {lineno}: unterminated string {value!r}"
                )
            trailing = value[end + 1:].strip()
            if trailing and not trailing.startswith("#"):
                raise ServiceConfigError(
                    f"line {lineno}: unexpected text after string: {trailing!r}"
                )
            table[key] = value[1:end]
            continue
        value = value.split("#", 1)[0].strip()
        if value in ("true", "false"):
            table[key] = value == "true"
        else:
            try:
                table[key] = int(value)
            except ValueError:
                try:
                    table[key] = float(value)
                except ValueError:
                    raise ServiceConfigError(
                        f"line {lineno}: unsupported value {value!r} (the "
                        f"minimal parser accepts strings, booleans, integers "
                        f"and floats)"
                    ) from None
    return data


def _load_toml(path: Path) -> dict:
    try:
        import tomllib
    except ImportError:
        tomllib = None
    try:
        if tomllib is not None:
            with open(path, "rb") as handle:
                return tomllib.load(handle)
        return _parse_toml_minimal(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise ServiceConfigError(f"{path}: unreadable config ({error})") from None
    except ValueError as error:
        raise ServiceConfigError(f"{path}: {error}") from None


#: Keys a ``[service]`` table (or flag overrides) may set.
_CONFIG_KEYS = frozenset(
    {
        "host",
        "port",
        "model",
        "registry",
        "domain",
        "profile",
        "max_batch_size",
        "max_wait_ms",
        "cache_dir",
        "iterations",
        "log_dir",
        "execute",
        "feedback_dir",
        "drift_threshold",
        "backend",
        "precision",
    }
)


@dataclass(frozen=True)
class ServiceConfig:
    """Declarative, eagerly-validated daemon configuration.

    Exactly one model origin is required: ``model`` (a ``model.json`` path,
    served as the default and the only model) and/or ``registry`` (a
    :class:`~repro.serving.registry.ModelRegistry` root, from which any
    ``<domain>/<profile>`` a request selects is hot-loaded; ``domain`` +
    ``profile`` name the default).  ``port = 0`` binds an ephemeral port —
    the daemon prints the bound address on startup.
    """

    host: str = "127.0.0.1"
    port: int = 0
    model: Optional[str] = None
    registry: Optional[str] = None
    domain: Optional[str] = None
    profile: str = DEFAULT_PROFILE
    max_batch_size: int = 16
    max_wait_ms: float = 5.0
    cache_dir: Optional[str] = None
    iterations: int = 1
    log_dir: Optional[str] = None
    execute: bool = True
    feedback_dir: Optional[str] = None
    drift_threshold: float = 0.1
    #: Default inference backend: ``compiled`` (vectorized flattened trees),
    #: ``codegen`` (the generated-Python selector module cached next to
    #: ``model.json``) or ``recursive`` (per-row reference walks).  Requests
    #: may override it per call via their ``backend`` field.
    backend: str = "compiled"
    #: Measurement precision of the execution stage: ``exact`` (the
    #: golden-pinned reference) or ``fast`` (the fused tolerance-guarded
    #: path).  Selection decisions are identical either way.
    precision: str = "exact"
    options: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.model is None and self.registry is None:
            raise ServiceConfigError(
                "the service needs a model origin: set 'model' (a model.json "
                "path) or 'registry' (a model-registry root)"
            )
        if not isinstance(self.port, int) or not 0 <= self.port <= 65535:
            raise ServiceConfigError(f"port must be 0..65535, got {self.port!r}")
        if int(self.max_batch_size) < 1:
            raise ServiceConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size!r}"
            )
        if float(self.max_wait_ms) < 0:
            raise ServiceConfigError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms!r}"
            )
        if int(self.iterations) < 1:
            raise ServiceConfigError(
                f"iterations must be >= 1, got {self.iterations!r}"
            )
        if not float(self.drift_threshold) > 0:
            raise ServiceConfigError(
                f"drift_threshold must be > 0, got {self.drift_threshold!r}"
            )
        from repro.gpu.simulator import check_precision
        from repro.serving.backends import BackendError, check_backend

        try:
            check_backend(self.backend)
        except BackendError as error:
            raise ServiceConfigError(str(error)) from None
        try:
            check_precision(self.precision)
        except ValueError as error:
            raise ServiceConfigError(str(error)) from None

    @classmethod
    def from_mapping(cls, data: dict, origin: str = "config") -> "ServiceConfig":
        """Build a config from a parsed TOML document (or plain dict).

        Keys may sit at the top level or under a ``[service]`` table;
        workload options go in an ``[options]`` table.  Unknown keys are
        rejected — a typo silently falling back to a default would run the
        daemon with the wrong window or model.
        """
        data = dict(data or {})
        service = dict(data.pop("service", {}) or {})
        options = dict(data.pop("options", {}) or {})
        for key, value in data.items():
            if isinstance(value, dict):
                raise ServiceConfigError(
                    f"{origin}: unknown table [{key}] (expected [service] "
                    f"and/or [options])"
                )
            service.setdefault(key, value)
        unknown = sorted(set(service) - _CONFIG_KEYS)
        if unknown:
            raise ServiceConfigError(
                f"{origin}: unknown setting(s) {', '.join(map(repr, unknown))}; "
                f"expected a subset of {sorted(_CONFIG_KEYS)}"
            )
        return cls(options=options, **service)

    @classmethod
    def from_toml(cls, path) -> "ServiceConfig":
        path = Path(path)
        return cls.from_mapping(_load_toml(path), origin=str(path))

    def with_overrides(self, **overrides) -> "ServiceConfig":
        """A copy with non-``None`` overrides applied (CLI flags)."""
        import dataclasses

        changes = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **changes) if changes else self


# ----------------------------------------------------------------------
# Hot model loading
# ----------------------------------------------------------------------
class ModelHub:
    """Loaded-once model artifacts plus one warm pipeline per domain.

    ``resolve(selector)`` maps a request's ``model`` field to a loaded
    artifact: ``None`` is the configured default, ``"<domain>"`` and
    ``"<domain>/<profile>"`` come out of the configured registry (loaded on
    first use, kept for the life of the daemon).  Pipelines — whose
    collectors are the expensive part — are shared across requests and
    batches, which is exactly the warm state one-shot serving cannot keep.
    """

    def __init__(self, config: ServiceConfig, device: DeviceSpec = MI100):
        from repro.serving.registry import ModelRegistry

        self.config = config
        self.device = device
        self.registry = (
            ModelRegistry(config.registry) if config.registry is not None else None
        )
        self._lock = threading.Lock()
        self._artifacts: dict = {}
        self._pipelines: dict = {}
        self._backends: dict = {}

    @property
    def default_key(self) -> str:
        if self.config.model is not None:
            return "default"
        domain = self.config.domain or "spmv"
        return f"{domain}/{self.config.profile}"

    def _model_path(self, key: str) -> Path:
        """The on-disk ``model.json`` a key currently maps to.

        Registry keys resolve promotion-pointer first (the ``current.json``
        a ``repro promote`` run flips), falling back to the default
        config-hash artifact — so a promotion is picked up on the next
        resolve, without restarting the daemon.
        """
        if key == "default" and self.config.model is not None:
            return Path(self.config.model)
        if self.registry is None:
            raise IngestError(
                f"request selects model {key!r} but the service has no "
                f"registry configured (only the default model is servable)"
            )
        domain, _, profile = key.partition("/")
        profile = profile or self.config.profile
        path = self.registry.current_model_path(domain=domain, profile=profile)
        if path is None:
            path = self.registry.find(domain=domain, profile=profile)
        if path is None:
            raise IngestError(
                f"no model registered for {domain!r}/{profile!r} under "
                f"{self.registry.root}"
            )
        return path

    def _load(self, key: str, path: Path):
        from repro.serving.artifacts import ModelArtifactError, load_artifact

        if key == "default" and self.config.model is not None:
            return load_artifact(path)
        try:
            return load_artifact(path)
        except ModelArtifactError as error:
            raise IngestError(str(error)) from None

    def resolve(self, selector: Optional[str] = None):
        """The loaded artifact for a request's model selector.

        Artifacts cache per key, but the cache entry remembers which path
        it was loaded from: when a promotion moves the key's ``current``
        pointer, the next resolve sees the new path and hot-reloads.
        """
        key = selector or ("default" if self.config.model is not None else None)
        if key is None:
            key = self.default_key
        with self._lock:
            path = self._model_path(key)
            entry = self._artifacts.get(key)
            if entry is None or entry[0] != path:
                entry = (path, self._load(key, path))
                self._artifacts[key] = entry
            return key, entry[1]

    def pipeline_for(self, artifact):
        """The warm feature pipeline of an artifact's domain."""
        from repro.domains import get_domain

        domain = get_domain(artifact.domain_name)
        with self._lock:
            pipeline = self._pipelines.get(domain.name)
            if pipeline is None:
                pipeline = domain.make_pipeline(self.device)
                self._pipelines[domain.name] = pipeline
            return pipeline

    def backend_for(self, key: str, artifact, backend_name=None):
        """The inference backend serving ``key``'s artifact.

        Backend objects cache per ``(key, backend)`` pair, but — like the
        artifact cache — each entry remembers the ``model.json`` path it was
        built from: when a promotion hot-reloads the artifact, the next call
        rebuilds the backend, and for ``codegen`` that rebuild atomically
        re-emits the generated ``selector.py`` next to the *new* model — a
        flipped ``current.json`` pointer swaps the served generated code
        without a restart.
        """
        from repro.serving.backends import BackendError, check_backend, make_backend

        try:
            name = check_backend(backend_name or self.config.backend)
        except BackendError as error:
            raise IngestError(str(error)) from None
        path = getattr(artifact, "path", None)
        with self._lock:
            entry = self._backends.get((key, name))
            if entry is None or entry[0] != path:
                try:
                    entry = (path, make_backend(name, artifact.models, model_path=path))
                except BackendError as error:
                    raise IngestError(str(error)) from None
                self._backends[(key, name)] = entry
            return entry[1]

    def loaded_models(self) -> list:
        with self._lock:
            return sorted(self._artifacts)

    def loaded_backends(self) -> list:
        """``"<key>:<backend>"`` labels of every instantiated backend."""
        with self._lock:
            return sorted(f"{key}:{name}" for key, name in self._backends)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
@dataclass
class ServiceMetrics:
    """Lock-guarded service counters (``/metrics`` and the shutdown summary)."""

    requests_total: int = 0
    responses_total: int = 0
    failures_total: int = 0
    errors_total: int = 0
    error_latency_ms_sum: float = 0.0
    error_latency_ms_max: float = 0.0
    inline_requests: int = 0
    source_requests: int = 0
    matrices_ingested: int = 0
    ingest_cache_hits: int = 0
    gathered_routed: int = 0
    batches_total: int = 0
    batch_occupancy_sum: int = 0
    batch_occupancy_max: int = 0
    full_flushes: int = 0
    timer_flushes: int = 0
    drain_flushes: int = 0
    latency_ms_sum: float = 0.0
    latency_ms_max: float = 0.0

    def __post_init__(self):
        self._lock = threading.Lock()
        self._started = time.monotonic()

    def record_batch(self, size: int, reason: str) -> None:
        with self._lock:
            self.batches_total += 1
            self.batch_occupancy_sum += size
            self.batch_occupancy_max = max(self.batch_occupancy_max, size)
            if reason == "full":
                self.full_flushes += 1
            elif reason == "timer":
                self.timer_flushes += 1
            else:
                self.drain_flushes += 1

    def record_results(self, results, stats, latencies_ms) -> None:
        with self._lock:
            self.requests_total += len(results)
            self.responses_total += sum(
                1 for r in results if not isinstance(r, ServeFailure)
            )
            self.failures_total += sum(
                1 for r in results if isinstance(r, ServeFailure)
            )
            self.inline_requests += stats.inline_requests
            self.source_requests += stats.source_requests
            self.matrices_ingested += stats.matrices_ingested
            self.ingest_cache_hits += stats.ingest_cache_hits
            self.gathered_routed += stats.gathered_routed
            for latency in latencies_ms:
                self.latency_ms_sum += latency
                self.latency_ms_max = max(self.latency_ms_max, latency)

    def record_error(self, latency_ms: Optional[float] = None) -> None:
        """Count one failed request; its latency stays out of the success
        histogram and lands in the separate error bucket instead."""
        with self._lock:
            self.errors_total += 1
            if latency_ms is not None:
                self.error_latency_ms_sum += latency_ms
                self.error_latency_ms_max = max(
                    self.error_latency_ms_max, latency_ms
                )

    def snapshot(self) -> dict:
        """Counters plus derived means/throughput, as one JSON document."""
        with self._lock:
            uptime = max(time.monotonic() - self._started, 1e-9)
            served = self.requests_total
            batches = self.batches_total
            return {
                "requests_total": served,
                "responses_total": self.responses_total,
                "failures_total": self.failures_total,
                "errors_total": self.errors_total,
                "error_latency_ms_mean": (
                    self.error_latency_ms_sum / self.errors_total
                    if self.errors_total
                    else 0.0
                ),
                "error_latency_ms_max": self.error_latency_ms_max,
                "inline_requests": self.inline_requests,
                "source_requests": self.source_requests,
                "matrices_ingested": self.matrices_ingested,
                "ingest_cache_hits": self.ingest_cache_hits,
                "ingest_cache_hit_rate": (
                    self.ingest_cache_hits
                    / max(self.ingest_cache_hits + self.matrices_ingested, 1)
                ),
                "gathered_routed": self.gathered_routed,
                "batches_total": batches,
                "batch_occupancy_mean": (
                    self.batch_occupancy_sum / batches if batches else 0.0
                ),
                "batch_occupancy_max": self.batch_occupancy_max,
                "full_flushes": self.full_flushes,
                "timer_flushes": self.timer_flushes,
                "drain_flushes": self.drain_flushes,
                "latency_ms_mean": self.latency_ms_sum / served if served else 0.0,
                "latency_ms_max": self.latency_ms_max,
                "uptime_s": uptime,
                "throughput_rps": served / uptime,
            }


# ----------------------------------------------------------------------
# Dynamic batching
# ----------------------------------------------------------------------
class _Pending:
    """One enqueued request waiting for its admission batch to flush."""

    __slots__ = ("request", "event", "result", "enqueued")

    def __init__(self, request: ServeRequest):
        self.request = request
        self.event = threading.Event()
        self.result = None
        self.enqueued = time.monotonic()


class DynamicBatcher:
    """Coalesce concurrent requests into bounded admission windows.

    A window opens when a request lands in an empty queue and flushes when
    either ``max_batch_size`` requests have accumulated (*flush-on-full*) or
    ``max_wait_ms`` has elapsed since the window opened (*flush-on-timer*).
    ``evaluate`` is called with the batched request list and must return one
    result per request, in order.  :meth:`close` drains everything still
    queued before returning, so no accepted request is ever dropped.
    """

    def __init__(
        self,
        evaluate,
        max_batch_size: int = 16,
        max_wait_ms: float = 5.0,
        on_flush=None,
    ):
        self._evaluate = evaluate
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self._on_flush = on_flush
        self._queue: list = []
        self._cond = threading.Condition()
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="serve-batcher", daemon=True
        )
        self._worker.start()

    def submit(self, request: ServeRequest, timeout: Optional[float] = None):
        """Enqueue one request; block until its batch flushes.

        Returns the request's :class:`~repro.serving.requests.ServeResponse`
        or :class:`~repro.serving.requests.ServeFailure`; raises
        :class:`RuntimeError` once the batcher is closed.
        """
        pending = _Pending(request)
        with self._cond:
            if self._closed:
                raise RuntimeError("the serving batcher is closed")
            self._queue.append(pending)
            self._cond.notify_all()
        if not pending.event.wait(timeout):
            raise TimeoutError(
                f"request was not served within {timeout} s"
            )
        if isinstance(pending.result, BaseException):
            raise pending.result
        return pending.result

    def close(self) -> None:
        """Stop accepting work and drain every queued request."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._worker.join()

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                # The window opened with the oldest queued request; fill it
                # until the batch is full, the deadline passes, or we drain.
                deadline = self._queue[0].enqueued + self.max_wait_ms / 1000.0
                while (
                    len(self._queue) < self.max_batch_size and not self._closed
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                batch = self._queue[: self.max_batch_size]
                del self._queue[: self.max_batch_size]
                if len(batch) >= self.max_batch_size:
                    reason = "full"
                elif self._closed:
                    reason = "drain"
                else:
                    reason = "timer"
            self._flush(batch, reason)

    def _flush(self, batch: list, reason: str) -> None:
        try:
            results = self._evaluate([pending.request for pending in batch])
        except BaseException as error:  # deliver, never strand a waiter
            results = [error] * len(batch)
        if self._on_flush is not None:
            self._on_flush(len(batch), reason)
        for pending, result in zip(batch, results):
            pending.result = result
            pending.event.set()


# ----------------------------------------------------------------------
# The HTTP service
# ----------------------------------------------------------------------
class _ServingHTTPServer(ThreadingHTTPServer):
    # Join handler threads on close so graceful shutdown lets in-flight
    # requests write their responses before the process exits.
    daemon_threads = False
    block_on_close = True
    service: "ServingService" = None


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # Quiet by default: per-request stderr chatter is useless under load
    # and breaks the clean stdout contract of `repro serve --daemon`.
    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise IngestError("request body is empty (expected JSON)")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise IngestError(f"request body is not valid JSON: {error}") from None

    def do_GET(self):  # noqa: N802 (stdlib casing)
        service = self.server.service
        if self.path == "/healthz":
            if service.draining:
                self._send_json(503, {"status": "draining"})
            else:
                self._send_json(
                    200,
                    {
                        "status": "ok",
                        "default_model": service.hub.default_key,
                        "loaded_models": service.hub.loaded_models(),
                        "backend": service.config.backend,
                        "loaded_backends": service.hub.loaded_backends(),
                        "precision": service.config.precision,
                    },
                )
        elif self.path == "/metrics":
            payload = service.metrics.snapshot()
            payload["drift"] = service.drift_status()
            payload["backend"] = service.config.backend
            payload["loaded_backends"] = service.hub.loaded_backends()
            payload["precision"] = service.config.precision
            self._send_json(200, payload)
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self):  # noqa: N802 (stdlib casing)
        service = self.server.service
        if self.path == "/shutdown":
            self._send_json(200, {"status": "shutting down"})
            threading.Thread(target=service.shutdown, daemon=True).start()
            return
        if self.path != "/v1/serve":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            payload = self._read_json()
        except IngestError as error:
            self._send_json(400, {"error": str(error)})
            return
        try:
            if isinstance(payload, dict) and "requests" in payload:
                self._serve_many(service, payload)
            else:
                self._serve_one(service, payload)
        except RuntimeError:
            self._send_json(503, {"error": "the service is shutting down"})

    def _serve_one(self, service, payload) -> None:
        started = time.monotonic()
        try:
            request = ServeRequest.from_payload(payload)
        except IngestError as error:
            latency_ms = (time.monotonic() - started) * 1000.0
            service.metrics.record_results(
                [ServeFailure(name="request", error=str(error))],
                _EMPTY_STATS,
                [],
            )
            service.metrics.record_error(latency_ms)
            self._send_json(400, {"error": str(error)})
            return
        result = service.batcher.submit(request)
        latency_ms = (time.monotonic() - started) * 1000.0
        service.log_request(result, latency_ms)
        if isinstance(result, ServeFailure):
            # Failed requests must not pollute the success latency histogram
            # — a burst of fast 400s would otherwise *improve* the reported
            # service latency.
            service.metrics.record_error(latency_ms)
            self._send_json(400, result.to_payload())
        else:
            service.metrics.record_results([], _EMPTY_STATS, [latency_ms])
            self._send_json(200, result.to_payload())

    def _serve_many(self, service, payload) -> None:
        started = time.monotonic()
        items = payload.get("requests")
        if not isinstance(items, list) or not items:
            self._send_json(
                400, {"error": "'requests' must be a non-empty JSON array"}
            )
            return
        requests = []
        for index, item in enumerate(items):
            try:
                requests.append(
                    ServeRequest.from_payload(item, origin="requests", line=index)
                )
            except IngestError as error:
                failure = ServeFailure(
                    name=f"requests[{index}]", error=str(error)
                )
                # Pre-failed slots never reach evaluate_requests, so count
                # them here or they vanish from requests/failures entirely.
                service.metrics.record_results([failure], _EMPTY_STATS, [])
                requests.append(failure)
        # A client-assembled list is already a batch: serve it as one window
        # instead of trickling it through the admission queue.
        results = service.evaluate_batch(requests, reason="full")
        latency_ms = (time.monotonic() - started) * 1000.0
        share_ms = latency_ms / max(len(results), 1)
        failed = 0
        for result in results:
            service.log_request(result, share_ms)
            if isinstance(result, ServeFailure):
                failed += 1
        # Each failed slot's latency share lands in the error bucket; the
        # batch counts toward the success histogram only if something in it
        # actually succeeded.
        for _ in range(failed):
            service.metrics.record_error(share_ms)
        if failed < len(results):
            service.metrics.record_results([], _EMPTY_STATS, [latency_ms])
        self._send_json(
            200,
            {
                "responses": [result.to_payload() for result in results],
                "batch_size": len(results),
            },
        )


class _EmptyStats:
    inline_requests = 0
    source_requests = 0
    matrices_ingested = 0
    ingest_cache_hits = 0
    gathered_routed = 0


_EMPTY_STATS = _EmptyStats()


class ServingService:
    """The long-running serving daemon behind ``repro serve --daemon``.

    Usable as a context manager (tests run it in-process); the CLI drives
    :meth:`serve_forever` on the main thread and triggers :meth:`shutdown`
    from its signal handlers.  All warm state — loaded model artifacts,
    feature pipelines, the content-addressed ingest cache — lives for the
    life of the service, and every decision goes through the unified
    :func:`~repro.serving.requests.evaluate_requests` core.
    """

    def __init__(self, config: ServiceConfig, device: DeviceSpec = MI100):
        self.config = config
        self.device = device
        self.hub = ModelHub(config, device=device)
        self.cache = (
            IngestCache(config.cache_dir) if config.cache_dir is not None else None
        )
        self.metrics = ServiceMetrics()
        self.draining = False
        self._accepting = False
        self._shutdown_lock = threading.Lock()
        self._shutdown_done = threading.Event()
        self._log_lock = threading.Lock()
        self._log_handle = None
        if config.log_dir is not None:
            log_dir = Path(config.log_dir)
            log_dir.mkdir(parents=True, exist_ok=True)
            self._log_handle = open(
                log_dir / REQUEST_LOG_FILE_NAME, "a", encoding="utf-8"
            )
        # Load the default model eagerly: readiness means servable.
        self.hub.resolve(None)
        self.batcher = DynamicBatcher(
            self._evaluate_for_batcher,
            max_batch_size=config.max_batch_size,
            max_wait_ms=config.max_wait_ms,
            on_flush=self.metrics.record_batch,
        )
        self._httpd = _ServingHTTPServer((config.host, config.port), _Handler)
        self._httpd.service = self

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _evaluate_for_batcher(self, requests: list) -> list:
        return self.evaluate_batch(requests, reason=None)

    def evaluate_batch(self, requests: list, reason: Optional[str] = "full") -> list:
        """Serve one batch, grouping by model selector, order preserved.

        ``requests`` may contain pre-failed :class:`ServeFailure` entries
        (malformed payloads) — they pass through in their slots.  When
        ``reason`` is given the batch is recorded in the flush metrics
        (the admission batcher records its own flushes).
        """
        results: list = list(requests)
        groups: dict = {}
        for index, request in enumerate(requests):
            if isinstance(request, ServeFailure):
                continue
            try:
                key, artifact = self.hub.resolve(request.model)
            except IngestError as error:
                results[index] = ServeFailure(
                    name=request.name or f"request[{index}]", error=str(error)
                )
                # Model-resolution failures bypass evaluate_requests; count
                # them so the request/failure totals stay exhaustive.
                self.metrics.record_results([results[index]], _EMPTY_STATS, [])
                continue
            backend_name = request.backend or self.config.backend
            groups.setdefault((key, backend_name), ([], []))
            groups[(key, backend_name)][0].append(index)
            groups[(key, backend_name)][1].append(request)
        for (key, backend_name), (slots, group) in sorted(groups.items()):
            _, artifact = self.hub.resolve(key)
            try:
                backend = self.hub.backend_for(key, artifact, backend_name)
            except IngestError as error:
                for slot, request in zip(slots, group):
                    results[slot] = ServeFailure(
                        name=request.name or f"request[{slot}]", error=str(error)
                    )
                    self.metrics.record_results([results[slot]], _EMPTY_STATS, [])
                continue
            needs_domain = any(not r.is_inline for r in group)
            domain = artifact.domain_name if needs_domain else None
            pipeline = self.hub.pipeline_for(artifact) if needs_domain else None
            group_results, stats = evaluate_requests(
                artifact.models,
                group,
                domain=domain,
                device=self.device,
                pipeline=pipeline,
                cache=self.cache,
                execute=self.config.execute,
                strict=False,
                backend=backend,
                precision=self.config.precision,
            )
            self.metrics.record_results(group_results, stats, [])
            for slot, result in zip(slots, group_results):
                results[slot] = result
        if reason is not None:
            self.metrics.record_batch(len(requests), reason)
        return results

    def serve_request(self, request: ServeRequest):
        """Python-API entry point: one request through the admission batcher."""
        return self.batcher.submit(request)

    # ------------------------------------------------------------------
    # Drift monitoring
    # ------------------------------------------------------------------
    def _drift_baseline(self) -> Optional[dict]:
        """Training-time evaluation summary of the default model, if any.

        Registered artifacts carry it in their ``manifest.json`` sidecar
        (``registry.save(evaluation=...)``); an explicit ``model`` path
        is covered when it sits next to such a sidecar.
        """
        try:
            _, artifact = self.hub.resolve(None)
        except IngestError:
            return None
        path = getattr(artifact, "path", None)
        if path is None:
            return None
        manifest_path = Path(path).parent / "manifest.json"
        try:
            payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        evaluation = payload.get("evaluation") if isinstance(payload, dict) else None
        return evaluation if isinstance(evaluation, dict) else None

    def drift_status(self) -> dict:
        """Live-traffic drift report for ``/metrics`` and ``summary.json``.

        Scans the configured ``feedback_dir`` for feedback-artifact
        manifests (each one a ``repro serve --measure`` run over real
        traffic) and compares their rolling metrics against the model's
        training-time evaluation summary, flagging degradation beyond
        ``drift_threshold``.
        """
        from repro.serving.feedback import DriftMonitor

        if self.config.feedback_dir is None:
            return {"enabled": False}
        monitor = DriftMonitor(
            baseline=self._drift_baseline(),
            threshold=self.config.drift_threshold,
        )
        root = Path(self.config.feedback_dir)
        manifests = []
        if (root / "manifest.json").is_file():
            manifests.append(root / "manifest.json")
        manifests.extend(sorted(root.glob("*/manifest.json")))
        for manifest_path in manifests:
            try:
                payload = json.loads(manifest_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            summary = payload.get("summary") if isinstance(payload, dict) else None
            if isinstance(summary, dict):
                monitor.observe(summary)
        status = monitor.status()
        status["enabled"] = True
        return status

    def log_request(self, result, latency_ms: float) -> None:
        """Append one served decision to the run's JSONL request log."""
        if self._log_handle is None:
            return
        if isinstance(result, ServeFailure):
            record = {"name": result.name, "error": result.error}
        else:
            record = {
                "name": result.name,
                "selector_choice": result.selector_choice,
                "kernel": result.kernel,
                "supported": result.supported,
            }
        record["latency_ms"] = round(latency_ms, 3)
        with self._log_lock:
            self._log_handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._log_handle.flush()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` — resolves ephemeral port 0."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Run the accept loop until :meth:`shutdown` (blocking)."""
        self._accepting = True
        try:
            self._httpd.serve_forever(poll_interval=0.05)
        finally:
            self.shutdown()

    def start_background(self) -> threading.Thread:
        """Run the accept loop on a background thread (tests, load gen)."""
        self._accepting = True
        thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serve-http",
            daemon=True,
        )
        thread.start()
        return thread

    def shutdown(self) -> Optional[dict]:
        """Graceful drain: stop accepting, finish in-flight work, summarize.

        Safe to call from any thread (HTTP ``/shutdown``, signal handlers,
        context exit) and idempotent — the first caller performs the drain
        and writes ``summary.json``; later callers wait for it and get
        ``None``.
        """
        with self._shutdown_lock:
            if self.draining:
                self._shutdown_done.wait()
                return None
            self.draining = True
        # BaseServer.shutdown() blocks until serve_forever() exits, which
        # deadlocks when the accept loop was never started (embedded use:
        # batcher-only, no HTTP traffic) — skip straight to the drain.
        if self._accepting:
            self._httpd.shutdown()
        self.batcher.close()
        self._httpd.server_close()
        summary = self.summary()
        if self.config.log_dir is not None:
            summary_path = Path(self.config.log_dir) / SUMMARY_FILE_NAME
            summary_path.write_text(
                json.dumps(summary, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        if self._log_handle is not None:
            with self._log_lock:
                self._log_handle.close()
                self._log_handle = None
        self._shutdown_done.set()
        return summary

    def summary(self) -> dict:
        """The shutdown-summary document (also servable any time)."""
        return {
            "service": {
                "default_model": self.hub.default_key,
                "loaded_models": self.hub.loaded_models(),
                "max_batch_size": self.config.max_batch_size,
                "max_wait_ms": self.config.max_wait_ms,
                "execute": self.config.execute,
                "backend": self.config.backend,
                "loaded_backends": self.hub.loaded_backends(),
                "precision": self.config.precision,
            },
            "metrics": self.metrics.snapshot(),
            "drift": self.drift_status(),
        }

    def __enter__(self) -> "ServingService":
        self.start_background()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
