"""Serialization of trained :class:`~repro.core.training.SeerModels`.

A fitted model is "printable weights" (Section III-D of the paper): three
decision trees, their label encodings and the feature schemas they were
trained on.  This module writes all of that as one canonical JSON document —
``model.json`` — that a fresh process can load and serve without re-running
the training sweep.

The format is deliberately *canonical*: keys are sorted, floats are emitted
in their shortest round-trippable form (Python ``repr`` semantics, what the
``json`` module produces), and no timestamps or machine state are embedded.
``save -> load -> save`` is therefore byte-stable, which the golden-artifact
test pins, and a reloaded model predicts bit-identically to the original.

Loading validates eagerly and raises :class:`ModelArtifactError` with a
clear message on corrupted files, format-version mismatches and
domain-schema mismatches — a broken artifact must never silently
mispredict.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.training import USE_GATHERED, USE_KNOWN, SeerModels
from repro.ml.decision_tree import DecisionTreeClassifier, TreeNode
from repro.ml.encoders import LabelEncoder

#: Format marker distinguishing model artifacts from other JSON files.
MODEL_FORMAT = "seer-models"

#: Bumped whenever the on-disk model layout changes incompatibly.
MODEL_FORMAT_VERSION = 1

#: File name of the model document inside a registry artifact directory.
MODEL_FILE_NAME = "model.json"


class ModelArtifactError(RuntimeError):
    """A model artifact is unreadable, corrupt or incompatible."""


# ----------------------------------------------------------------------
# Tree <-> payload
# ----------------------------------------------------------------------
def tree_to_payload(model: DecisionTreeClassifier) -> dict:
    """JSON-serializable form of one fitted tree (nodes in pre-order)."""
    if model.root_ is None:
        raise ModelArtifactError("cannot serialize an unfitted tree")
    nodes = []
    for node in model.nodes():
        nodes.append(
            {
                "feature": int(node.feature) if not node.is_leaf else -1,
                "threshold": float(node.threshold) if not node.is_leaf else 0.0,
                # Children as pre-order indices; node_id is assigned in
                # build order, which is pre-order, so the ids are indices.
                "left": int(node.left.node_id) if not node.is_leaf else -1,
                "right": int(node.right.node_id) if not node.is_leaf else -1,
                "num_samples": int(node.num_samples),
                "total_weight": float(node.total_weight),
                "impurity": float(node.impurity),
                "class_counts": [float(count) for count in node.class_counts],
            }
        )
    return {
        "classes": model._encoder.to_payload(),
        "feature_names": list(model.feature_names_),
        "max_depth": model.max_depth,
        "min_samples_split": model.min_samples_split,
        "min_samples_leaf": model.min_samples_leaf,
        "nodes": nodes,
    }


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise ModelArtifactError(message)


def tree_from_payload(payload: dict, label: str = "tree") -> DecisionTreeClassifier:
    """Rebuild a fitted tree from :func:`tree_to_payload` output.

    Validates the structure as it goes — child indices must form a proper
    binary tree over the node list, feature indices must fit the schema and
    thresholds must be finite — so a corrupted artifact fails loudly here
    instead of mispredicting later.
    """
    _check(isinstance(payload, dict), f"{label}: payload must be an object")
    for key in ("classes", "feature_names", "nodes"):
        _check(key in payload, f"{label}: missing key {key!r}")
    classes = payload["classes"]
    feature_names = payload["feature_names"]
    nodes = payload["nodes"]
    _check(
        isinstance(classes, list) and classes,
        f"{label}: 'classes' must be a non-empty list",
    )
    _check(
        isinstance(feature_names, list) and feature_names,
        f"{label}: 'feature_names' must be a non-empty list",
    )
    _check(isinstance(nodes, list) and nodes, f"{label}: 'nodes' must be a non-empty list")

    try:
        model = DecisionTreeClassifier(
            max_depth=payload.get("max_depth"),
            min_samples_split=int(payload.get("min_samples_split", 2)),
            min_samples_leaf=int(payload.get("min_samples_leaf", 1)),
        )
    except (TypeError, ValueError) as exc:
        raise ModelArtifactError(f"{label}: invalid tree parameters ({exc})") from exc
    model.num_features_ = len(feature_names)
    model.feature_names_ = [str(name) for name in feature_names]
    try:
        model._encoder = LabelEncoder.from_classes(classes)
    except (TypeError, ValueError) as exc:
        raise ModelArtifactError(f"{label}: invalid classes ({exc})") from exc
    num_features = len(feature_names)
    num_classes = len(classes)
    visited = set()

    def build(index: int, depth: int) -> TreeNode:
        _check(
            isinstance(index, int) and 0 <= index < len(nodes),
            f"{label}: child index {index!r} out of range",
        )
        _check(index not in visited, f"{label}: node {index} referenced twice")
        visited.add(index)
        raw = nodes[index]
        _check(isinstance(raw, dict), f"{label}: node {index} must be an object")
        try:
            counts = np.asarray(raw["class_counts"], dtype=np.float64)
            feature = int(raw["feature"])
            threshold = float(raw["threshold"])
            left = raw["left"]
            right = raw["right"]
            node = TreeNode(
                node_id=index,
                depth=depth,
                num_samples=int(raw["num_samples"]),
                total_weight=float(raw["total_weight"]),
                impurity=float(raw["impurity"]),
                class_counts=counts,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelArtifactError(
                f"{label}: node {index} is malformed ({exc})"
            ) from exc
        _check(
            counts.ndim == 1 and counts.shape[0] == num_classes,
            f"{label}: node {index} has {counts.shape} class counts, "
            f"expected {num_classes}",
        )
        if feature == -1:
            _check(
                left == -1 and right == -1,
                f"{label}: leaf node {index} must have no children",
            )
            return node
        _check(
            0 <= feature < num_features,
            f"{label}: node {index} splits on feature {feature}, schema has "
            f"{num_features}",
        )
        _check(
            math.isfinite(threshold),
            f"{label}: node {index} has a non-finite threshold",
        )
        node.feature = feature
        node.threshold = threshold
        node.left = build(left, depth + 1)
        node.right = build(right, depth + 1)
        return node

    model.root_ = build(0, 0)
    _check(
        len(visited) == len(nodes),
        f"{label}: {len(nodes) - len(visited)} node(s) unreachable from the root",
    )
    model._num_nodes = len(nodes)
    return model


# ----------------------------------------------------------------------
# SeerModels <-> payload
# ----------------------------------------------------------------------
def models_to_payload(
    models: SeerModels,
    domain=None,
    training_config=None,
) -> dict:
    """JSON-serializable form of a full trained model bundle."""
    training = asdict(training_config) if training_config is not None else None
    domain_name = None
    if domain is not None:
        domain_name = domain if isinstance(domain, str) else domain.name
    return {
        "format": MODEL_FORMAT,
        "format_version": MODEL_FORMAT_VERSION,
        "domain": domain_name,
        "kernel_names": list(models.kernel_names),
        "known_feature_names": list(models.known_feature_names),
        "gathered_feature_names": list(models.gathered_feature_names),
        "training_size": int(models.training_size),
        "training": training,
        "trees": {
            "known": tree_to_payload(models.known_model),
            "gathered": tree_to_payload(models.gathered_model),
            "selector": tree_to_payload(models.selector_model),
        },
    }


def models_from_payload(payload, domain=None) -> SeerModels:
    """Rebuild a :class:`SeerModels` from :func:`models_to_payload` output.

    ``domain`` (name or instance, optional) additionally validates that the
    artifact's feature schemas and kernel labels match the domain it is
    about to serve — a model trained on one schema must never silently
    score feature rows laid out for another.
    """
    _check(isinstance(payload, dict), "model artifact must be a JSON object")
    _check(
        payload.get("format") == MODEL_FORMAT,
        f"not a Seer model artifact (format marker "
        f"{payload.get('format')!r}, expected {MODEL_FORMAT!r})",
    )
    version = payload.get("format_version")
    _check(
        version == MODEL_FORMAT_VERSION,
        f"unsupported model format version {version!r} "
        f"(this build reads version {MODEL_FORMAT_VERSION})",
    )
    for key in (
        "kernel_names",
        "known_feature_names",
        "gathered_feature_names",
        "trees",
    ):
        _check(key in payload, f"model artifact is missing key {key!r}")
    trees = payload["trees"]
    _check(isinstance(trees, dict), "'trees' must be an object")
    for key in ("known", "gathered", "selector"):
        _check(key in trees, f"model artifact is missing the {key!r} tree")
    for key in ("kernel_names", "known_feature_names", "gathered_feature_names"):
        value = payload[key]
        _check(
            isinstance(value, list)
            and all(isinstance(item, str) for item in value),
            f"{key!r} must be a list of strings",
        )

    known_names = tuple(payload["known_feature_names"])
    gathered_names = tuple(payload["gathered_feature_names"])
    kernel_names = list(payload["kernel_names"])
    _check(bool(kernel_names), "'kernel_names' must be non-empty")

    known_model = tree_from_payload(trees["known"], "known tree")
    gathered_model = tree_from_payload(trees["gathered"], "gathered tree")
    selector_model = tree_from_payload(trees["selector"], "selector tree")

    _check(
        known_model.num_features_ == len(known_names),
        f"known tree expects {known_model.num_features_} features, schema "
        f"names {len(known_names)}",
    )
    _check(
        gathered_model.num_features_ == len(known_names) + len(gathered_names),
        f"gathered tree expects {gathered_model.num_features_} features, "
        f"schema names {len(known_names) + len(gathered_names)}",
    )
    _check(
        selector_model.num_features_ == len(known_names),
        f"selector tree expects {selector_model.num_features_} features, "
        f"schema names {len(known_names)}",
    )
    bad_selector_classes = set(selector_model.classes_) - {USE_KNOWN, USE_GATHERED}
    _check(
        not bad_selector_classes,
        f"selector tree predicts unknown classes {sorted(bad_selector_classes)}",
    )
    unknown_kernels = set(known_model.classes_) | set(gathered_model.classes_)
    unknown_kernels -= set(kernel_names)
    _check(
        not unknown_kernels,
        f"trees predict kernels {sorted(unknown_kernels)} absent from "
        f"'kernel_names'",
    )

    if domain is not None:
        from repro.domains import get_domain

        domain = get_domain(domain)
        artifact_domain = payload.get("domain")
        _check(
            artifact_domain is None or artifact_domain == domain.name,
            f"model artifact was trained for domain {artifact_domain!r}, "
            f"not {domain.name!r}",
        )
        _check(
            known_names == tuple(domain.known_feature_names),
            f"known-feature schema mismatch: artifact {list(known_names)}, "
            f"domain {domain.name!r} declares {list(domain.known_feature_names)}",
        )
        _check(
            gathered_names == tuple(domain.gathered_feature_names),
            f"gathered-feature schema mismatch: artifact "
            f"{list(gathered_names)}, domain {domain.name!r} declares "
            f"{list(domain.gathered_feature_names)}",
        )
        registered = set(domain.kernel_names(include_aux=True))
        missing = set(kernel_names) - registered
        _check(
            not missing,
            f"model artifact selects kernels {sorted(missing)} that domain "
            f"{domain.name!r} does not register",
        )

    try:
        training_size = int(payload.get("training_size", 0))
    except (TypeError, ValueError) as exc:
        raise ModelArtifactError(f"invalid 'training_size' ({exc})") from exc
    return SeerModels(
        known_model=known_model,
        gathered_model=gathered_model,
        selector_model=selector_model,
        kernel_names=kernel_names,
        known_feature_names=known_names,
        gathered_feature_names=gathered_names,
        training_size=training_size,
    )


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def dump_model_document(payload: dict) -> str:
    """Canonical JSON text of a model payload (sorted keys, LF, newline-terminated)."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def save_models(
    models: SeerModels,
    path,
    domain=None,
    training_config=None,
) -> Path:
    """Write ``models`` as a canonical ``model.json`` document at ``path``.

    The write is atomic (temp file + rename, the same discipline as the
    sweep engine's cache tiers): a killed save or a concurrent reader can
    never observe a truncated artifact under a valid path.
    """
    from repro.bench.engine import atomic_write_bytes

    path = Path(path)
    payload = models_to_payload(models, domain=domain, training_config=training_config)
    atomic_write_bytes(path, dump_model_document(payload).encode("utf-8"))
    return path


@dataclass(frozen=True)
class ModelArtifact:
    """A loaded model bundle plus the metadata its document carried."""

    models: SeerModels
    domain_name: Optional[str]
    training: Optional[dict]
    path: Optional[Path] = None


def load_artifact(path, domain=None) -> ModelArtifact:
    """Read and validate a ``model.json`` document (or its directory)."""
    path = Path(path)
    if path.is_dir():
        path = path / MODEL_FILE_NAME
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        # A torn write can leave bytes that are not even valid UTF-8, which
        # raises before json.loads ever runs — treat it like any other
        # unreadable artifact.
        raise ModelArtifactError(f"cannot read model artifact {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ModelArtifactError(
            f"model artifact {path} is not valid JSON (truncated or "
            f"corrupted?): {exc}"
        ) from exc
    models = models_from_payload(payload, domain=domain)
    return ModelArtifact(
        models=models,
        domain_name=payload.get("domain"),
        training=payload.get("training"),
        path=path,
    )


def load_models(path, domain=None) -> SeerModels:
    """Load just the :class:`SeerModels` from a ``model.json`` document."""
    return load_artifact(path, domain=domain).models
