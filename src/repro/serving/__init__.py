"""Model serving: compiled batch inference plus the versioned model registry.

The training sweep is expensive; serving is not.  This package separates
the two the way the paper's deployment story does (train once, embed the
trees, select kernels at runtime for pennies):

* :mod:`repro.serving.compiled` — fitted decision trees flattened into
  NumPy arrays so N feature rows are classified in a handful of vectorized
  passes (:meth:`SeerModels.predict_batch` rides on this);
* :mod:`repro.serving.backends` — the three interchangeable inference
  backends (``compiled``/``codegen``/``recursive``) behind one
  ``predict_batch`` interface, including the generated-Python
  ``selector.py`` cache the codegen backend serves natively;
* :mod:`repro.serving.artifacts` — canonical ``model.json`` documents:
  byte-stable serialization of a full :class:`~repro.core.training.SeerModels`
  with eager validation on load;
* :mod:`repro.serving.registry` — a versioned on-disk registry keyed by the
  same config-plus-source-digest hashes the sweep engine uses, populated by
  ``repro train --save`` and served by ``repro predict``;
* :mod:`repro.serving.requests` — the unified request/response API
  (:class:`ServeRequest`/:class:`ServeResponse`) and the admission-batched
  :func:`evaluate_requests` core that every serving entry point shares;
* :mod:`repro.serving.ingest` — raw-matrix ingestion (``.mtx``/``.mtx.gz``/
  ``.npz``/``recipe:`` corpora through a content-addressed cache tier) and
  the parallel batch-serving loop behind ``repro serve``;
* :mod:`repro.serving.service` — the persistent serving daemon
  (``repro serve --daemon``): warm caches, dynamic batching of concurrent
  requests into ``predict_batch`` windows, ``/metrics`` counters and a JSON
  shutdown summary.
"""

from repro.serving.artifacts import (
    MODEL_FILE_NAME,
    MODEL_FORMAT,
    MODEL_FORMAT_VERSION,
    ModelArtifact,
    ModelArtifactError,
    load_artifact,
    load_models,
    models_from_payload,
    models_to_payload,
    save_models,
    tree_from_payload,
    tree_to_payload,
)
from repro.serving.backends import (
    BACKEND_MODES,
    SELECTOR_MODULE_NAME,
    BackendError,
    CodegenBackend,
    CompiledBackend,
    RecursiveBackend,
    check_backend,
    emit_selector_module,
    make_backend,
)
from repro.serving.compiled import CompiledTree, compile_tree
from repro.serving.ingest import (
    DECISIONS_FILE_NAME,
    IngestCache,
    IngestError,
    ServeDecision,
    ServeResult,
    ingest_records,
    serve_sources,
    write_serve_artifact,
)
from repro.serving.registry import MANIFEST_FILE_NAME, ModelRegistry
from repro.serving.requests import (
    ServeFailure,
    ServeRequest,
    ServeResponse,
    evaluate_requests,
    requests_from_rows,
    requests_from_sources,
)

__all__ = [
    "BACKEND_MODES",
    "BackendError",
    "CodegenBackend",
    "CompiledBackend",
    "RecursiveBackend",
    "SELECTOR_MODULE_NAME",
    "check_backend",
    "emit_selector_module",
    "make_backend",
    "DECISIONS_FILE_NAME",
    "IngestCache",
    "IngestError",
    "ServeDecision",
    "ServeFailure",
    "ServeRequest",
    "ServeResponse",
    "ServeResult",
    "evaluate_requests",
    "ingest_records",
    "requests_from_rows",
    "requests_from_sources",
    "serve_sources",
    "write_serve_artifact",
    "MODEL_FILE_NAME",
    "MODEL_FORMAT",
    "MODEL_FORMAT_VERSION",
    "MANIFEST_FILE_NAME",
    "CompiledTree",
    "ModelArtifact",
    "ModelArtifactError",
    "ModelRegistry",
    "compile_tree",
    "load_artifact",
    "load_models",
    "models_from_payload",
    "models_to_payload",
    "save_models",
    "tree_from_payload",
    "tree_to_payload",
]
