"""Analytical GPU execution-model simulator.

The paper measures its kernels on an AMD Instinct MI100.  No GPU is
available offline, so this package provides a deterministic analytical model
of a SIMD accelerator that captures the mechanisms the paper attributes the
performance differences to:

* **SIMD lockstep** — a wavefront is as slow as its slowest lane, which is
  how per-row load imbalance turns into lost throughput;
* **wavefront scheduling** — wavefronts are list-scheduled onto a finite
  number of concurrent hardware slots (compute units x waves per CU), so a
  single enormous wavefront or an insufficient number of wavefronts limits
  speedup;
* **memory bandwidth roofline** — large problems are bound by bytes moved,
  not by arithmetic;
* **kernel-launch overhead** — small problems are bound by neither;
* **sequential host work** — preprocessing passes such as Adaptive-CSR row
  binning run on the host and are far slower per element than the device.

Kernels (in :mod:`repro.kernels`) translate a sparse matrix into per-wavefront
cycle and byte counts; this package turns those into milliseconds.
"""

from repro.gpu.device import DeviceSpec, MI100, SMALL_GPU, get_device
from repro.gpu.host import HostModel
from repro.gpu.memory import effective_bandwidth_gb_s, gather_bytes_per_access
from repro.gpu.occupancy import wavefront_slots, workgroup_slots
from repro.gpu.simulator import GPUSimulator, LaunchResult, simulate_launch

__all__ = [
    "DeviceSpec",
    "MI100",
    "SMALL_GPU",
    "get_device",
    "HostModel",
    "effective_bandwidth_gb_s",
    "gather_bytes_per_access",
    "wavefront_slots",
    "workgroup_slots",
    "GPUSimulator",
    "LaunchResult",
    "simulate_launch",
]
