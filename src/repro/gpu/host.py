"""Sequential host (CPU) cost model.

Several kernels in the case study have a preprocessing stage that runs on the
host — most importantly the sequential row binning of Adaptive-CSR (Daga &
Greathouse) and the format conversions (CSR to ELL / COO).  The host is
modelled as a sequential machine with a fixed cost per element plus a fixed
per-call overhead; it is deliberately much slower per element than the
device, which is what creates the preprocessing-amortization trade-off the
multi-iteration study (Fig. 7) exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec, MI100

#: Fixed overhead of one host-side preprocessing call, in milliseconds.
HOST_CALL_OVERHEAD_MS = 0.02


@dataclass(frozen=True)
class HostModel:
    """Cost model for sequential host work tied to a device description."""

    device: DeviceSpec = MI100

    def sequential_time_ms(self, num_ops: float, ops_per_element: float = 1.0) -> float:
        """Time to process ``num_ops`` elements sequentially on the host."""
        if num_ops < 0:
            raise ValueError("num_ops must be non-negative")
        elements = num_ops * ops_per_element
        return HOST_CALL_OVERHEAD_MS + elements * self.device.host_ns_per_op * 1e-6

    def transfer_time_ms(self, num_bytes: float) -> float:
        """Time to copy ``num_bytes`` between host and device over PCIe."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        pcie_gb_s = 16.0
        return self.device.host_transfer_ms + num_bytes / pcie_gb_s * 1e-6
