"""Memory-system model.

The model is intentionally simple: streaming accesses (values, column
indices, row offsets, the output vector) move at full DRAM bandwidth, while
gathers from the dense input vector cost more per access when the vector does
not fit in the last-level cache.  That single distinction is enough to
reproduce the paper-level effects: large random matrices become memory-bound
and formats with extra padding (ELL) or extra per-nonzero metadata (COO) pay
for it.
"""

from __future__ import annotations

from repro.gpu.device import DeviceSpec

#: Bytes of one double-precision value.
VALUE_BYTES = 8

#: Bytes of one 32-bit index (column index, row index, row offset).
INDEX_BYTES = 4

#: Bytes fetched per gather when the source vector fits in the LLC.
CACHED_GATHER_BYTES = 8

#: Bytes fetched per gather when the source vector spills to DRAM (a partial
#: cache line is wasted on average).
UNCACHED_GATHER_BYTES = 24


def gather_bytes_per_access(device: DeviceSpec, vector_bytes: float) -> float:
    """Effective bytes moved per random gather from a vector of given size."""
    if vector_bytes <= device.l2_cache_bytes:
        return CACHED_GATHER_BYTES
    return UNCACHED_GATHER_BYTES


def effective_bandwidth_gb_s(device: DeviceSpec, utilization: float = 1.0) -> float:
    """Bandwidth available to a launch, scaled by an utilization factor."""
    utilization = min(max(utilization, 0.0), 1.0)
    return device.mem_bandwidth_gb_s * utilization


def memory_time_ms(device: DeviceSpec, bytes_moved: float, utilization: float = 1.0) -> float:
    """Time to move ``bytes_moved`` bytes at the effective bandwidth."""
    bandwidth = effective_bandwidth_gb_s(device, utilization)
    if bandwidth <= 0.0:
        raise ValueError("effective bandwidth must be positive")
    # bytes / (GB/s) = ns; convert to ms.
    return bytes_moved / bandwidth * 1e-6
