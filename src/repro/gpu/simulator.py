"""Kernel-launch timing model.

A kernel launch is described by the per-wavefront cycle counts the kernel
derived from the input structure (each count already folds SIMD lockstep in:
it is the *maximum* lane cost within that wavefront) plus the total number of
bytes the launch moves through the memory system.

The launch time is a roofline combined with list-scheduling of wavefronts
onto the finite number of concurrent hardware slots:

``compute_ms  = max(sum(cycles) / slots, max(cycles)) * cycle_time``
``memory_ms   = bytes / (bandwidth * utilization)``
``serial_ms   = serial_cycles * cycle_time``
``total_ms    = launch_overhead + max(compute_ms, memory_ms, serial_ms)``

The ``max(cycles)`` term is what makes a single enormous row visible at the
launch level; the ``sum/slots`` term is what rewards kernels that create
enough balanced wavefronts to fill the machine.  ``utilization`` models how
well a kernel's access pattern exploits the DRAM bandwidth (row-per-wavefront
kernels issue many small transactions and do not reach peak), and
``serial_cycles`` models device-wide serialized resources such as the global
atomic unit that COO segmented reductions funnel through.

Launches can be simulated one at a time (:func:`simulate_launch`) or as a
batch (:func:`simulate_launch_batch`).  Kernels describe a launch as a
:class:`LaunchSpec` so the two paths consume the *same* cycle arrays and are
bit-identical by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.gpu.device import DeviceSpec, MI100
from repro.gpu.memory import memory_time_ms
from repro.gpu.occupancy import wavefront_slots

#: Measurement precision modes accepted throughout the pipeline.
PRECISION_MODES = ("exact", "fast")

#: Relative-tolerance contract of ``precision="fast"``.
#:
#: The fast path fuses each launch's cycle sum into one
#: ``np.add.reduceat`` segment pass over a concatenated table.  ``reduceat``
#: accumulates sequentially while ``ndarray.sum`` uses pairwise summation,
#: so the two round differently: for non-negative addends the relative
#: error of either scheme is bounded by ``n * eps`` (``n`` = wavefronts per
#: launch, at most ~1e6 for the profiles this repository ships;
#: ``eps ~ 2.2e-16``), i.e. below 1e-9 with two orders of margin.  The max
#: and min reductions are order-insensitive and stay exact, as do the
#: memory/serial/overhead roofline terms, so every derived millisecond
#: figure agrees with the scalar reference to within this bound.  The
#: differential suite asserts it on every hypothesis-generated workload.
FAST_MODE_RELATIVE_TOLERANCE = 1e-9

#: Per-launch cycle count above which the fused table stops paying for
#: itself.  Packing a launch into the shared ``reduceat`` table costs one
#: ``np.concatenate`` copy of its cycle array; for large launches the
#: reductions are already bandwidth-bound, so that copy is pure overhead.
#: Launches above the cutoff therefore run the exact per-array reductions
#: (bit-identical to the reference — zero error, trivially inside the
#: tolerance) and only the small, launch-overhead-dominated specs — where
#: fusion amortizes the per-call dispatch cost — share the table.
FAST_MODE_FUSION_CUTOFF = 4096


def check_precision(precision: str) -> str:
    """Validate a precision-mode string and return it."""
    if precision not in PRECISION_MODES:
        raise ValueError(
            f"precision must be one of {PRECISION_MODES}, got {precision!r}"
        )
    return precision


@dataclass(frozen=True)
class LaunchResult:
    """Timing of one simulated kernel launch (all times in milliseconds)."""

    label: str
    total_ms: float
    compute_ms: float
    memory_ms: float
    overhead_ms: float
    num_wavefronts: int
    bytes_moved: float
    serial_ms: float = 0.0

    @property
    def bound(self) -> str:
        """Which roofline term dominated: 'compute', 'memory', 'serial' or 'overhead'."""
        busiest = max(self.compute_ms, self.memory_ms, self.serial_ms)
        if self.overhead_ms >= busiest:
            return "overhead"
        if self.serial_ms >= max(self.compute_ms, self.memory_ms):
            return "serial"
        if self.compute_ms >= self.memory_ms:
            return "compute"
        return "memory"


@dataclass(frozen=True)
class LaunchSpec:
    """One kernel launch awaiting simulation.

    ``wavefront_cycles`` must be a 1-D float64 array (use
    :func:`as_wavefront_cycles` to normalize arbitrary input); the remaining
    fields mirror the :func:`simulate_launch` parameters.
    """

    wavefront_cycles: np.ndarray
    bytes_moved: float
    label: str = "kernel"
    occupancy_factor: float = 1.0
    extra_launches: int = 0
    bandwidth_utilization: float = 1.0
    serial_cycles: float = 0.0
    #: Logical tiling factor: the launch behaves as if ``wavefront_cycles``
    #: were ``np.repeat``-ed (element-wise) ``repeat`` times.  The fast
    #: measurement path uses this to describe uniform wavefront blocks
    #: without materializing them; the exact path always emits ``repeat=1``
    #: with the expansion done eagerly, keeping it bit-identical to the
    #: scalar reference.
    repeat: int = 1


def as_wavefront_cycles(wavefront_cycles) -> np.ndarray:
    """Normalize a cycle-count argument to a 1-D float64 array."""
    cycles = np.asarray(wavefront_cycles, dtype=np.float64)
    if cycles.ndim == 0:
        cycles = cycles.reshape(1)
    return cycles


def _validate_spec(spec: LaunchSpec) -> float:
    """Validate a spec and return ``max(wavefront_cycles)`` (0.0 when empty).

    The min/max reductions double as the finiteness check: a NaN anywhere
    propagates into the minimum and an infinity shows up at one of the two
    extremes, so no extra ``isfinite`` pass over the array is needed.
    """
    cycles = spec.wavefront_cycles
    if cycles.size:
        lowest = float(cycles.min())
        highest = float(cycles.max())
        if math.isnan(lowest) or math.isinf(lowest) or math.isinf(highest):
            raise ValueError(
                f"{spec.label}: wavefront cycle counts must be finite"
            )
        if lowest < 0:
            raise ValueError("wavefront cycle counts must be non-negative")
    else:
        highest = 0.0
    if not math.isfinite(spec.bytes_moved):
        raise ValueError(f"{spec.label}: bytes_moved must be finite")
    if spec.bytes_moved < 0:
        raise ValueError("bytes_moved must be non-negative")
    if not math.isfinite(spec.serial_cycles):
        raise ValueError(f"{spec.label}: serial_cycles must be finite")
    if spec.serial_cycles < 0:
        raise ValueError("serial_cycles must be non-negative")
    if spec.repeat < 1:
        raise ValueError(f"{spec.label}: repeat must be >= 1")
    return highest


def _finalize(
    device: DeviceSpec,
    spec: LaunchSpec,
    max_cycles: float,
    total_cycles: float = None,
) -> LaunchResult:
    """Turn a validated spec plus its max reduction into a LaunchResult.

    ``total_cycles`` may carry a precomputed cycle sum (the fast batch path
    computes it in one fused segment pass); when omitted the exact per-array
    pairwise ``ndarray.sum`` runs here.
    """
    cycles = spec.wavefront_cycles
    num_wavefronts = int(cycles.shape[0]) * spec.repeat
    slots = wavefront_slots(device, spec.occupancy_factor)
    if num_wavefronts == 0:
        compute_ms = 0.0
    else:
        if total_cycles is None:
            total_cycles = float(cycles.sum()) * spec.repeat
        makespan_cycles = max(total_cycles / slots, max_cycles)
        compute_ms = makespan_cycles * device.cycle_time_ns * 1e-6
    memory_ms = memory_time_ms(device, spec.bytes_moved, spec.bandwidth_utilization)
    serial_ms = spec.serial_cycles * device.cycle_time_ns * 1e-6
    overhead_ms = device.launch_overhead_ms * (1 + max(spec.extra_launches, 0))
    total_ms = overhead_ms + max(compute_ms, memory_ms, serial_ms)
    return LaunchResult(
        label=spec.label,
        total_ms=total_ms,
        compute_ms=compute_ms,
        memory_ms=memory_ms,
        overhead_ms=overhead_ms,
        num_wavefronts=num_wavefronts,
        bytes_moved=float(spec.bytes_moved),
        serial_ms=serial_ms,
    )


def simulate_spec(device: DeviceSpec, spec: LaunchSpec) -> LaunchResult:
    """Compute the time of one kernel launch described by a spec."""
    return _finalize(device, spec, _validate_spec(spec))


def _validate_scalar_fields(spec: LaunchSpec) -> None:
    """The non-array half of :func:`_validate_spec` (bytes/serial checks)."""
    if not math.isfinite(spec.bytes_moved):
        raise ValueError(f"{spec.label}: bytes_moved must be finite")
    if spec.bytes_moved < 0:
        raise ValueError("bytes_moved must be non-negative")
    if not math.isfinite(spec.serial_cycles):
        raise ValueError(f"{spec.label}: serial_cycles must be finite")
    if spec.serial_cycles < 0:
        raise ValueError("serial_cycles must be non-negative")
    if spec.repeat < 1:
        raise ValueError(f"{spec.label}: repeat must be >= 1")


def simulate_launch_batch(device: DeviceSpec, specs, precision: str = "exact") -> list:
    """Simulate many launches on one device.

    ``precision="exact"`` (the default) is bit-identical to the scalar path:
    each launch runs exactly three reductions over its own cycle array (min
    for validation, max, sum), so the batch costs ``O(total cycles) +
    O(len(specs))``.  The sums deliberately run per-array through
    ``ndarray.sum`` rather than one ``np.add.reduceat`` over a
    concatenation: NumPy's pairwise summation and ``reduceat``'s sequential
    accumulation round differently, so a fused segment sum would *not* be
    bit-identical to :func:`simulate_launch`.

    ``precision="fast"`` trades that bit-identity for one fused pass: every
    cycle array (up to :data:`FAST_MODE_FUSION_CUTOFF` elements) is
    concatenated into a single table and the per-launch min/max/sum
    reductions become three ``reduceat`` segment reductions.  Min and max
    are order-insensitive (still exact); the sequential segment sum agrees
    with the pairwise reference to within
    :data:`FAST_MODE_RELATIVE_TOLERANCE` (see its docstring for the bound).
    Launches above the cutoff keep the exact per-array reductions — the
    concatenate copy would cost more than fusion saves there (see the
    cutoff's docstring) — and empty-cycle launches are excluded from the
    table because ``reduceat`` returns ``values[offset]`` — not the
    identity — for empty segments.
    """
    specs = list(specs)
    if check_precision(precision) == "exact":
        maxima = [_validate_spec(spec) for spec in specs]
        return [
            _finalize(device, spec, max_cycles)
            for spec, max_cycles in zip(specs, maxima)
        ]
    for spec in specs:
        _validate_scalar_fields(spec)
    maxima = [0.0] * len(specs)
    totals = [0.0] * len(specs)
    fused = []
    for index, spec in enumerate(specs):
        cycles = spec.wavefront_cycles
        if not cycles.size:
            continue
        if cycles.size <= FAST_MODE_FUSION_CUTOFF:
            fused.append(index)
            continue
        lowest = float(cycles.min())
        highest = float(cycles.max())
        if (
            math.isnan(lowest)
            or math.isinf(lowest)
            or math.isinf(highest)
            or lowest < 0
        ):
            # Replay the scalar validator from the first spec so the error
            # names the first offending launch, as the exact path would.
            for candidate in specs:
                _validate_spec(candidate)
        maxima[index] = highest
        totals[index] = float(cycles.sum()) * spec.repeat
    nonempty = fused
    if nonempty:
        table = np.concatenate([specs[i].wavefront_cycles for i in nonempty])
        sizes = [specs[i].wavefront_cycles.size for i in nonempty]
        offsets = np.zeros(len(nonempty), dtype=np.intp)
        np.cumsum(sizes[:-1], out=offsets[1:])
        segment_max = np.maximum.reduceat(table, offsets)
        lowest = float(np.minimum.reduceat(table, offsets).min())
        highest = float(segment_max.max())
        if (
            math.isnan(lowest)
            or math.isinf(lowest)
            or math.isinf(highest)
            or lowest < 0
        ):
            # Re-run the scalar validator so the error names the offending
            # launch exactly as the exact path would.
            for spec in specs:
                _validate_spec(spec)
        segment_sum = np.add.reduceat(table, offsets)
        for position, index in enumerate(nonempty):
            maxima[index] = float(segment_max[position])
            totals[index] = float(segment_sum[position]) * specs[index].repeat
    return [
        _finalize(device, spec, maxima[index], totals[index])
        for index, spec in enumerate(specs)
    ]


@dataclass
class GPUSimulator:
    """Stateful wrapper that accumulates launch results for a device."""

    device: DeviceSpec = MI100
    history: list = field(default_factory=list)

    def launch(
        self,
        wavefront_cycles,
        bytes_moved: float,
        label: str = "kernel",
        occupancy_factor: float = 1.0,
        extra_launches: int = 0,
        bandwidth_utilization: float = 1.0,
        serial_cycles: float = 0.0,
    ) -> LaunchResult:
        """Simulate one launch and record it in the history."""
        result = simulate_launch(
            self.device,
            wavefront_cycles,
            bytes_moved,
            label=label,
            occupancy_factor=occupancy_factor,
            extra_launches=extra_launches,
            bandwidth_utilization=bandwidth_utilization,
            serial_cycles=serial_cycles,
        )
        self.history.append(result)
        return result

    def total_time_ms(self) -> float:
        """Sum of all recorded launch times."""
        return float(sum(result.total_ms for result in self.history))

    def reset(self) -> None:
        """Forget the recorded history."""
        self.history.clear()


def simulate_launch(
    device: DeviceSpec,
    wavefront_cycles,
    bytes_moved: float,
    label: str = "kernel",
    occupancy_factor: float = 1.0,
    extra_launches: int = 0,
    bandwidth_utilization: float = 1.0,
    serial_cycles: float = 0.0,
) -> LaunchResult:
    """Compute the time of one kernel launch.

    Parameters
    ----------
    device:
        Device description.
    wavefront_cycles:
        Array (or scalar sequence) of per-wavefront cycle counts.  Each entry
        must already be the maximum lane cost of that wavefront.  All counts
        must be finite and non-negative.
    bytes_moved:
        Total DRAM traffic of the launch in bytes (finite, non-negative).
    label:
        Name recorded in the result (kernel name).
    occupancy_factor:
        Residency scaling for resource-hungry kernels, see
        :func:`repro.gpu.occupancy.wavefront_slots`.
    extra_launches:
        Additional kernel launches issued by the same logical operation
        (e.g. a separate reduction pass); each adds one launch overhead.
    bandwidth_utilization:
        Fraction of peak DRAM bandwidth this kernel's access pattern can
        sustain (1.0 for fully streaming kernels).
    serial_cycles:
        Cycles spent on a device-wide serialized resource (e.g. global
        atomics); modelled as an independent roofline term.
    """
    spec = LaunchSpec(
        wavefront_cycles=as_wavefront_cycles(wavefront_cycles),
        bytes_moved=bytes_moved,
        label=label,
        occupancy_factor=occupancy_factor,
        extra_launches=extra_launches,
        bandwidth_utilization=bandwidth_utilization,
        serial_cycles=serial_cycles,
    )
    return simulate_spec(device, spec)


def group_reduce_max(values: np.ndarray, group_size: int) -> np.ndarray:
    """Maximum of consecutive groups of ``group_size`` entries.

    Used by row-mapped kernels to turn per-row costs into per-wavefront
    costs: a wavefront of ``group_size`` lanes is as slow as its heaviest
    lane.  The tail group is padded with zeros.
    """
    values = np.asarray(values, dtype=np.float64)
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if values.size == 0:
        return np.zeros(0, dtype=np.float64)
    num_groups = -(-values.size // group_size)
    if values.size == num_groups * group_size:
        return values.reshape(num_groups, group_size).max(axis=1)
    padded = np.zeros(num_groups * group_size, dtype=np.float64)
    padded[: values.size] = values
    return padded.reshape(num_groups, group_size).max(axis=1)


def group_reduce_sum(values: np.ndarray, group_size: int) -> np.ndarray:
    """Sum of consecutive groups of ``group_size`` entries (zero-padded tail)."""
    values = np.asarray(values, dtype=np.float64)
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if values.size == 0:
        return np.zeros(0, dtype=np.float64)
    num_groups = -(-values.size // group_size)
    if values.size == num_groups * group_size:
        return values.reshape(num_groups, group_size).sum(axis=1)
    padded = np.zeros(num_groups * group_size, dtype=np.float64)
    padded[: values.size] = values
    return padded.reshape(num_groups, group_size).sum(axis=1)
