"""Kernel-launch timing model.

A kernel launch is described by the per-wavefront cycle counts the kernel
derived from the input structure (each count already folds SIMD lockstep in:
it is the *maximum* lane cost within that wavefront) plus the total number of
bytes the launch moves through the memory system.

The launch time is a roofline combined with list-scheduling of wavefronts
onto the finite number of concurrent hardware slots:

``compute_ms  = max(sum(cycles) / slots, max(cycles)) * cycle_time``
``memory_ms   = bytes / (bandwidth * utilization)``
``serial_ms   = serial_cycles * cycle_time``
``total_ms    = launch_overhead + max(compute_ms, memory_ms, serial_ms)``

The ``max(cycles)`` term is what makes a single enormous row visible at the
launch level; the ``sum/slots`` term is what rewards kernels that create
enough balanced wavefronts to fill the machine.  ``utilization`` models how
well a kernel's access pattern exploits the DRAM bandwidth (row-per-wavefront
kernels issue many small transactions and do not reach peak), and
``serial_cycles`` models device-wide serialized resources such as the global
atomic unit that COO segmented reductions funnel through.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.device import DeviceSpec, MI100
from repro.gpu.memory import memory_time_ms
from repro.gpu.occupancy import wavefront_slots


@dataclass(frozen=True)
class LaunchResult:
    """Timing of one simulated kernel launch (all times in milliseconds)."""

    label: str
    total_ms: float
    compute_ms: float
    memory_ms: float
    overhead_ms: float
    num_wavefronts: int
    bytes_moved: float

    @property
    def bound(self) -> str:
        """Which roofline term dominated: 'compute', 'memory' or 'overhead'."""
        if self.overhead_ms >= max(self.compute_ms, self.memory_ms):
            return "overhead"
        if self.compute_ms >= self.memory_ms:
            return "compute"
        return "memory"


@dataclass
class GPUSimulator:
    """Stateful wrapper that accumulates launch results for a device."""

    device: DeviceSpec = MI100
    history: list = field(default_factory=list)

    def launch(
        self,
        wavefront_cycles,
        bytes_moved: float,
        label: str = "kernel",
        occupancy_factor: float = 1.0,
        extra_launches: int = 0,
        bandwidth_utilization: float = 1.0,
        serial_cycles: float = 0.0,
    ) -> LaunchResult:
        """Simulate one launch and record it in the history."""
        result = simulate_launch(
            self.device,
            wavefront_cycles,
            bytes_moved,
            label=label,
            occupancy_factor=occupancy_factor,
            extra_launches=extra_launches,
            bandwidth_utilization=bandwidth_utilization,
            serial_cycles=serial_cycles,
        )
        self.history.append(result)
        return result

    def total_time_ms(self) -> float:
        """Sum of all recorded launch times."""
        return float(sum(result.total_ms for result in self.history))

    def reset(self) -> None:
        """Forget the recorded history."""
        self.history.clear()


def simulate_launch(
    device: DeviceSpec,
    wavefront_cycles,
    bytes_moved: float,
    label: str = "kernel",
    occupancy_factor: float = 1.0,
    extra_launches: int = 0,
    bandwidth_utilization: float = 1.0,
    serial_cycles: float = 0.0,
) -> LaunchResult:
    """Compute the time of one kernel launch.

    Parameters
    ----------
    device:
        Device description.
    wavefront_cycles:
        Array (or scalar sequence) of per-wavefront cycle counts.  Each entry
        must already be the maximum lane cost of that wavefront.
    bytes_moved:
        Total DRAM traffic of the launch in bytes.
    label:
        Name recorded in the result (kernel name).
    occupancy_factor:
        Residency scaling for resource-hungry kernels, see
        :func:`repro.gpu.occupancy.wavefront_slots`.
    extra_launches:
        Additional kernel launches issued by the same logical operation
        (e.g. a separate reduction pass); each adds one launch overhead.
    bandwidth_utilization:
        Fraction of peak DRAM bandwidth this kernel's access pattern can
        sustain (1.0 for fully streaming kernels).
    serial_cycles:
        Cycles spent on a device-wide serialized resource (e.g. global
        atomics); modelled as an independent roofline term.
    """
    cycles = np.asarray(wavefront_cycles, dtype=np.float64)
    if cycles.ndim == 0:
        cycles = cycles.reshape(1)
    if np.any(cycles < 0):
        raise ValueError("wavefront cycle counts must be non-negative")
    if bytes_moved < 0:
        raise ValueError("bytes_moved must be non-negative")
    if serial_cycles < 0:
        raise ValueError("serial_cycles must be non-negative")

    num_wavefronts = int(cycles.shape[0])
    slots = wavefront_slots(device, occupancy_factor)
    if num_wavefronts == 0:
        compute_ms = 0.0
    else:
        total_cycles = float(cycles.sum())
        max_cycles = float(cycles.max())
        makespan_cycles = max(total_cycles / slots, max_cycles)
        compute_ms = makespan_cycles * device.cycle_time_ns * 1e-6
    memory_ms = memory_time_ms(device, bytes_moved, bandwidth_utilization)
    serial_ms = serial_cycles * device.cycle_time_ns * 1e-6
    overhead_ms = device.launch_overhead_ms * (1 + max(extra_launches, 0))
    total_ms = overhead_ms + max(compute_ms, memory_ms, serial_ms)
    return LaunchResult(
        label=label,
        total_ms=total_ms,
        compute_ms=compute_ms,
        memory_ms=memory_ms,
        overhead_ms=overhead_ms,
        num_wavefronts=num_wavefronts,
        bytes_moved=float(bytes_moved),
    )


def group_reduce_max(values: np.ndarray, group_size: int) -> np.ndarray:
    """Maximum of consecutive groups of ``group_size`` entries.

    Used by row-mapped kernels to turn per-row costs into per-wavefront
    costs: a wavefront of ``group_size`` lanes is as slow as its heaviest
    lane.  The tail group is padded with zeros.
    """
    values = np.asarray(values, dtype=np.float64)
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if values.size == 0:
        return np.zeros(0, dtype=np.float64)
    num_groups = -(-values.size // group_size)
    padded = np.zeros(num_groups * group_size, dtype=np.float64)
    padded[: values.size] = values
    return padded.reshape(num_groups, group_size).max(axis=1)


def group_reduce_sum(values: np.ndarray, group_size: int) -> np.ndarray:
    """Sum of consecutive groups of ``group_size`` entries (zero-padded tail)."""
    values = np.asarray(values, dtype=np.float64)
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if values.size == 0:
        return np.zeros(0, dtype=np.float64)
    num_groups = -(-values.size // group_size)
    padded = np.zeros(num_groups * group_size, dtype=np.float64)
    padded[: values.size] = values
    return padded.reshape(num_groups, group_size).sum(axis=1)
