"""Device descriptions for the analytical GPU model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated SIMD accelerator.

    The defaults of :data:`MI100` approximate the AMD Instinct MI100 used in
    the paper; only ratios between quantities matter for the reproduction
    (who wins on which matrix), not the absolute values.

    Attributes
    ----------
    name:
        Human-readable device name.
    num_cus:
        Number of compute units (CUs / SMs).
    simd_width:
        Lanes per wavefront (64 on CDNA GPUs).
    max_waves_per_cu:
        Wavefronts a CU keeps in flight to hide latency; together with
        ``num_cus`` this bounds the number of concurrently executing
        wavefronts.
    clock_ghz:
        Device clock in GHz.
    mem_bandwidth_gb_s:
        Achievable HBM bandwidth in GB/s.
    l2_cache_bytes:
        Last-level cache capacity; dense vectors that fit here are gathered
        at cache rather than DRAM granularity.
    launch_overhead_us:
        Fixed host-side cost of one kernel launch in microseconds.
    host_transfer_us:
        Fixed cost of one device-to-host result transfer (used by
        feature-collection kernels that must deliver scalars to the host).
    host_ns_per_op:
        Cost of one element of sequential host work in nanoseconds (used for
        preprocessing passes such as Adaptive-CSR binning).
    """

    name: str
    num_cus: int
    simd_width: int
    max_waves_per_cu: int
    clock_ghz: float
    mem_bandwidth_gb_s: float
    l2_cache_bytes: int
    launch_overhead_us: float
    host_transfer_us: float
    host_ns_per_op: float

    @property
    def lane_count(self) -> int:
        """Total number of SIMD lanes across the device."""
        return self.num_cus * self.simd_width

    @property
    def cycle_time_ns(self) -> float:
        """Duration of one device clock cycle in nanoseconds."""
        return 1.0 / self.clock_ghz

    @property
    def launch_overhead_ms(self) -> float:
        """Kernel-launch overhead in milliseconds."""
        return self.launch_overhead_us * 1e-3

    @property
    def host_transfer_ms(self) -> float:
        """Device-to-host transfer overhead in milliseconds."""
        return self.host_transfer_us * 1e-3


#: Approximation of the AMD Instinct MI100 accelerator used in the paper.
MI100 = DeviceSpec(
    name="MI100-sim",
    num_cus=120,
    simd_width=64,
    max_waves_per_cu=4,
    clock_ghz=1.5,
    mem_bandwidth_gb_s=1100.0,
    l2_cache_bytes=8 * 1024 * 1024,
    launch_overhead_us=8.0,
    host_transfer_us=10.0,
    host_ns_per_op=1.0,
)

#: A much smaller device, useful in tests to expose saturation effects early.
SMALL_GPU = DeviceSpec(
    name="small-sim",
    num_cus=8,
    simd_width=32,
    max_waves_per_cu=4,
    clock_ghz=1.0,
    mem_bandwidth_gb_s=100.0,
    l2_cache_bytes=1 * 1024 * 1024,
    launch_overhead_us=5.0,
    host_transfer_us=8.0,
    host_ns_per_op=6.0,
)

_DEVICES = {"mi100": MI100, "small": SMALL_GPU}


def get_device(name: str = "mi100") -> DeviceSpec:
    """Look up a built-in device description by name."""
    key = name.lower()
    if key not in _DEVICES:
        raise KeyError(f"unknown device {name!r}; expected one of {sorted(_DEVICES)}")
    return _DEVICES[key]
