"""Occupancy model.

Occupancy determines how many wavefronts execute concurrently.  The model
keeps the two inputs that matter for the SpMV variants: the device limit
(compute units x waves per CU) and an optional per-workgroup resource factor
for kernels that use a lot of LDS/registers (block-mapped and merge-path
variants), which reduces how many waves a CU can keep resident.
"""

from __future__ import annotations

from repro.gpu.device import DeviceSpec


def wavefront_slots(device: DeviceSpec, occupancy_factor: float = 1.0) -> int:
    """Number of wavefronts the device executes concurrently.

    ``occupancy_factor`` in (0, 1] scales the per-CU wave count for kernels
    whose register/LDS footprint limits residency.
    """
    if not 0.0 < occupancy_factor <= 1.0:
        raise ValueError("occupancy_factor must be in (0, 1]")
    waves = max(1, int(round(device.max_waves_per_cu * occupancy_factor)))
    return device.num_cus * waves


def workgroup_slots(
    device: DeviceSpec, waves_per_workgroup: int, occupancy_factor: float = 1.0
) -> int:
    """Number of workgroups the device executes concurrently."""
    if waves_per_workgroup < 1:
        raise ValueError("waves_per_workgroup must be >= 1")
    slots = wavefront_slots(device, occupancy_factor)
    return max(1, slots // waves_per_workgroup)
