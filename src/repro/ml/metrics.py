"""Classification and performance metrics.

The paper reports two distinct quantities (Section IV-C):

* **accuracy** — the fraction of exactly-correct fastest-kernel predictions;
* **error / speedup** — runtime lost or gained relative to the Oracle or to
  individual kernels, which can be good even when accuracy is mediocre
  because many mispredictions are between near-equivalent kernels.

Both families live here, together with the geometric-mean speedup used for
the headline 6.5x number.
"""

from __future__ import annotations

import numpy as np


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of predictions equal to the true label."""
    y_true = list(y_true)
    y_pred = list(y_pred)
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must have the same length")
    if not y_true:
        raise ValueError("cannot compute accuracy of an empty set")
    correct = sum(1 for true, pred in zip(y_true, y_pred) if true == pred)
    return correct / len(y_true)


def confusion_matrix(y_true, y_pred, labels=None) -> tuple:
    """Confusion matrix and the label order used for its axes.

    Returns ``(matrix, labels)`` where ``matrix[i, j]`` counts samples whose
    true label is ``labels[i]`` and predicted label is ``labels[j]``.
    """
    y_true = list(y_true)
    y_pred = list(y_pred)
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must have the same length")
    if labels is None:
        labels = sorted(set(y_true) | set(y_pred), key=str)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for true, pred in zip(y_true, y_pred):
        matrix[index[true], index[pred]] += 1
    return matrix, list(labels)


def geometric_mean(values) -> float:
    """Geometric mean of strictly positive values."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot compute the geometric mean of an empty set")
    if np.any(values <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(values))))


def geomean_speedup(baseline_times, candidate_times) -> float:
    """Geometric-mean speedup of ``candidate`` over ``baseline`` per element.

    Speedup per element is ``baseline / candidate``; values above 1 mean the
    candidate is faster.
    """
    baseline = np.asarray(list(baseline_times), dtype=np.float64)
    candidate = np.asarray(list(candidate_times), dtype=np.float64)
    if baseline.shape != candidate.shape:
        raise ValueError("baseline and candidate must have the same shape")
    return geometric_mean(baseline / candidate)


def relative_error_to_oracle(oracle_times, predictor_times) -> float:
    """Total runtime lost relative to the Oracle, as a fraction of the Oracle.

    Zero means the predictor matched the Oracle exactly; 1.0 means it took
    twice the Oracle's aggregate time.
    """
    oracle = np.asarray(list(oracle_times), dtype=np.float64)
    predictor = np.asarray(list(predictor_times), dtype=np.float64)
    if oracle.shape != predictor.shape:
        raise ValueError("oracle and predictor must have the same shape")
    oracle_total = oracle.sum()
    if oracle_total <= 0:
        raise ValueError("oracle total time must be positive")
    return float((predictor.sum() - oracle_total) / oracle_total)
