"""Label encoding for classifier targets."""

from __future__ import annotations

import numpy as np


class LabelEncoder:
    """Map arbitrary hashable labels to dense integer codes and back.

    The encoder sorts labels lexicographically (as strings) when they are
    not numerically comparable, which keeps the mapping deterministic across
    runs — a requirement for reproducible generated decision-tree headers.
    """

    def __init__(self):
        self.classes_ = None

    def fit(self, labels) -> "LabelEncoder":
        """Learn the label set."""
        unique = sorted(set(labels), key=lambda label: (str(type(label)), str(label)))
        self.classes_ = list(unique)
        self._index = {label: code for code, label in enumerate(self.classes_)}
        return self

    def transform(self, labels) -> np.ndarray:
        """Encode labels as integer codes."""
        self._require_fitted()
        try:
            return np.array([self._index[label] for label in labels], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"unseen label {exc.args[0]!r}") from exc

    def fit_transform(self, labels) -> np.ndarray:
        """Fit on ``labels`` and return their codes."""
        return self.fit(labels).transform(labels)

    def inverse_transform(self, codes):
        """Decode integer codes back to the original labels."""
        self._require_fitted()
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.classes_)):
            raise ValueError("code out of range")
        return [self.classes_[code] for code in codes]

    def _require_fitted(self) -> None:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder used before fit()")

    def to_payload(self) -> list:
        """The learned classes as a JSON-serializable list (encoding order)."""
        self._require_fitted()
        return list(self.classes_)

    @classmethod
    def from_classes(cls, classes) -> "LabelEncoder":
        """Rebuild an encoder from a stored class list.

        The given order is preserved verbatim — not re-sorted — so a
        deserialized encoder reproduces the original code mapping exactly.
        """
        encoder = cls()
        encoder.classes_ = list(classes)
        if len(set(encoder.classes_)) != len(encoder.classes_):
            raise ValueError("encoder classes must be unique")
        encoder._index = {label: code for code, label in enumerate(encoder.classes_)}
        return encoder
