"""Machine-learning substrate.

The paper trains its predictors with scikit-learn's CART decision tree
(Gini impurity, bounded depth).  scikit-learn is not available offline, so
this package implements the pieces Seer needs from scratch: a CART
classifier, label encoding, train/test splitting, classification metrics,
and Kendall's rank correlation (Table III).
"""

from repro.ml.decision_tree import DecisionTreeClassifier, TreeNode
from repro.ml.encoders import LabelEncoder
from repro.ml.kendall import kendall_tau
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    geometric_mean,
    geomean_speedup,
)
from repro.ml.split import train_test_split

__all__ = [
    "DecisionTreeClassifier",
    "TreeNode",
    "LabelEncoder",
    "kendall_tau",
    "accuracy_score",
    "confusion_matrix",
    "geometric_mean",
    "geomean_speedup",
    "train_test_split",
]
