"""Kendall rank correlation (tau-b).

Table III of the paper reports the Kendall correlation coefficient between
each kernel's runtime and each matrix feature across the dataset, as
evidence that different schedules respond to different structural
characteristics.  This implementation uses Knight's O(n log n) algorithm
(merge-sort inversion counting) with the tau-b tie correction, and is
validated against ``scipy.stats.kendalltau`` in the test suite.
"""

from __future__ import annotations

import numpy as np


def _count_inversions(values: np.ndarray) -> int:
    """Number of inversions in ``values`` via iterative merge sort."""
    values = values.copy()
    buffer = np.empty_like(values)
    n = values.shape[0]
    inversions = 0
    width = 1
    while width < n:
        for start in range(0, n, 2 * width):
            mid = min(start + width, n)
            stop = min(start + 2 * width, n)
            left, right = start, mid
            out = start
            while left < mid and right < stop:
                if values[left] <= values[right]:
                    buffer[out] = values[left]
                    left += 1
                else:
                    buffer[out] = values[right]
                    right += 1
                    inversions += mid - left
                out += 1
            while left < mid:
                buffer[out] = values[left]
                left += 1
                out += 1
            while right < stop:
                buffer[out] = values[right]
                right += 1
                out += 1
            values[start:stop] = buffer[start:stop]
        width *= 2
    return inversions


def _tie_term(values: np.ndarray) -> float:
    """Sum of t*(t-1)/2 over groups of tied values."""
    _, counts = np.unique(values, return_counts=True)
    counts = counts[counts > 1].astype(np.float64)
    return float((counts * (counts - 1) / 2.0).sum())


def _joint_tie_term(x: np.ndarray, y: np.ndarray) -> float:
    """Sum of t*(t-1)/2 over groups tied in both x and y simultaneously."""
    pairs = np.stack([x, y], axis=1)
    _, counts = np.unique(pairs, axis=0, return_counts=True)
    counts = counts[counts > 1].astype(np.float64)
    return float((counts * (counts - 1) / 2.0).sum())


def kendall_tau(x, y) -> float:
    """Kendall's tau-b between two equal-length sequences.

    Returns a value in [-1, 1]; ``nan`` when either input is constant (no
    pair is comparable, matching scipy's behaviour).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be one-dimensional and equally long")
    n = x.shape[0]
    if n < 2:
        raise ValueError("need at least two observations")

    total_pairs = n * (n - 1) / 2.0
    ties_x = _tie_term(x)
    ties_y = _tie_term(y)
    if ties_x == total_pairs or ties_y == total_pairs:
        return float("nan")
    ties_xy = _joint_tie_term(x, y)

    # Sort by x (breaking ties by y); discordant pairs among x-distinct
    # entries are inversions of the y sequence.
    order = np.lexsort((y, x))
    y_sorted = y[order]
    discordant = _count_inversions(y_sorted)

    concordant_minus_discordant = (
        total_pairs - ties_x - ties_y + ties_xy - 2.0 * discordant
    )
    denominator = np.sqrt((total_pairs - ties_x) * (total_pairs - ties_y))
    return float(concordant_minus_discordant / denominator)
