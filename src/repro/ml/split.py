"""Train/test splitting.

The paper uses a plain 80/20 train-test split with no validation set
(Section III-C explains why: no hyperparameter tuning is performed).
"""

from __future__ import annotations

import numpy as np


def train_test_split(
    num_samples: int,
    test_fraction: float = 0.2,
    seed: int = 0,
    stratify=None,
) -> tuple:
    """Return ``(train_indices, test_indices)`` for a dataset of given size.

    Parameters
    ----------
    num_samples:
        Total number of samples.
    test_fraction:
        Fraction of samples assigned to the test split (paper: 0.2).
    seed:
        Seed of the shuffling RNG; splits are deterministic given the seed.
    stratify:
        Optional array of labels; when given, each label contributes
        proportionally to the test split (so rare kernels still appear in
        both splits).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if num_samples < 2:
        raise ValueError("need at least two samples to split")
    rng = np.random.default_rng(seed)

    if stratify is None:
        order = rng.permutation(num_samples)
        num_test = max(1, int(round(test_fraction * num_samples)))
        num_test = min(num_test, num_samples - 1)
        return np.sort(order[num_test:]), np.sort(order[:num_test])

    stratify = np.asarray(stratify)
    if stratify.shape[0] != num_samples:
        raise ValueError("stratify must have one label per sample")
    train_parts, test_parts = [], []
    for label in np.unique(stratify):
        members = np.flatnonzero(stratify == label)
        members = rng.permutation(members)
        if members.size == 1:
            train_parts.append(members)
            continue
        num_test = max(1, int(round(test_fraction * members.size)))
        num_test = min(num_test, members.size - 1)
        test_parts.append(members[:num_test])
        train_parts.append(members[num_test:])
    train = np.sort(np.concatenate(train_parts)) if train_parts else np.array([], dtype=np.int64)
    test = np.sort(np.concatenate(test_parts)) if test_parts else np.array([], dtype=np.int64)
    return train, test
