"""CART decision-tree classifier with Gini impurity.

This is the model family the paper builds everything on (Section III-C):
decision trees are effectively nested if/else statements, they are cheap to
evaluate at runtime, and their weights can be printed and audited.  The
implementation follows the classic CART recipe:

* at every node, evaluate every (feature, threshold) split where the sorted
  feature value changes, scoring splits by the weighted Gini impurity of the
  two children;
* stop when the node is pure, the depth limit is reached, or a minimum
  sample count would be violated;
* ties are broken deterministically (lower feature index, then lower
  threshold) so the same training data always produces the same tree — the
  reproducibility property the paper calls out for production libraries.

Samples may carry weights.  The classifier-selection model uses this to make
its training cost-aware: a sample whose misrouting would waste hundreds of
milliseconds weighs correspondingly more than one where the two paths are
nearly equivalent (Section III-A / IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.encoders import LabelEncoder


@dataclass
class TreeNode:
    """One node of a fitted decision tree."""

    node_id: int
    depth: int
    num_samples: int
    total_weight: float
    impurity: float
    class_counts: np.ndarray
    feature: int = -1
    threshold: float = 0.0
    left: "TreeNode" = None
    right: "TreeNode" = None

    @property
    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return self.left is None

    @property
    def prediction(self) -> int:
        """Index of the heaviest class at this node (ties -> lowest index)."""
        return int(np.argmax(self.class_counts))


@dataclass
class _Split:
    """Best split found for a node."""

    feature: int
    threshold: float
    gain: float
    left_mask: np.ndarray = field(repr=False, default=None)


def gini_impurity(class_counts: np.ndarray) -> float:
    """Gini impurity of a node with the given per-class (weighted) counts."""
    counts = np.asarray(class_counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - np.square(proportions).sum())


class DecisionTreeClassifier:
    """CART classifier (Gini impurity, bounded depth).

    Parameters
    ----------
    max_depth:
        Maximum tree depth; the paper's only regularizer (Section III-C).
        ``None`` grows until leaves are pure.
    min_samples_split:
        Smallest node (by sample count) that may still be split.
    min_samples_leaf:
        Smallest allowed child node (by sample count).
    """

    def __init__(
        self,
        max_depth: int = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
    ):
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1 or None")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.root_ = None
        self.num_features_ = 0
        self.feature_names_ = None
        self._encoder = LabelEncoder()
        self._num_nodes = 0
        self._compiled = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, X, y, feature_names=None, sample_weight=None) -> "DecisionTreeClassifier":
        """Fit the tree on feature matrix ``X`` and labels ``y``.

        ``sample_weight`` (optional, positive) scales each sample's
        contribution to the impurity criterion and to leaf majorities.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be a 2-D array of shape (samples, features)")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        codes = self._encoder.fit_transform(list(y))
        if codes.shape[0] != X.shape[0]:
            raise ValueError("X and y must have the same number of samples")
        if np.any(~np.isfinite(X)):
            raise ValueError("X contains NaN or infinite values")
        if sample_weight is None:
            weights = np.ones(X.shape[0], dtype=np.float64)
        else:
            weights = np.asarray(sample_weight, dtype=np.float64)
            if weights.shape != (X.shape[0],):
                raise ValueError("sample_weight must have one entry per sample")
            if np.any(~np.isfinite(weights)) or np.any(weights <= 0):
                raise ValueError("sample weights must be positive and finite")
        self.num_features_ = X.shape[1]
        if feature_names is not None:
            if len(feature_names) != self.num_features_:
                raise ValueError("feature_names must match the number of features")
            self.feature_names_ = list(feature_names)
        else:
            self.feature_names_ = [f"f{i}" for i in range(self.num_features_)]
        self._num_nodes = 0
        self._compiled = None
        self.root_ = self._build(X, codes, weights, depth=0)
        return self

    @property
    def classes_(self) -> list:
        """The original class labels, in encoding order."""
        return list(self._encoder.classes_) if self._encoder.classes_ else []

    @property
    def num_nodes_(self) -> int:
        """Total number of nodes in the fitted tree."""
        return self._num_nodes

    def _new_node(self, codes: np.ndarray, weights: np.ndarray, depth: int) -> TreeNode:
        counts = np.bincount(
            codes, weights=weights, minlength=len(self._encoder.classes_)
        )
        node = TreeNode(
            node_id=self._num_nodes,
            depth=depth,
            num_samples=int(codes.shape[0]),
            total_weight=float(weights.sum()),
            impurity=gini_impurity(counts),
            class_counts=counts,
        )
        self._num_nodes += 1
        return node

    def _build(
        self, X: np.ndarray, codes: np.ndarray, weights: np.ndarray, depth: int
    ) -> TreeNode:
        node = self._new_node(codes, weights, depth)
        if self._should_stop(node, depth):
            return node
        split = self._best_split(X, codes, weights)
        if split is None:
            return node
        node.feature = split.feature
        node.threshold = split.threshold
        left_mask = split.left_mask
        node.left = self._build(X[left_mask], codes[left_mask], weights[left_mask], depth + 1)
        node.right = self._build(
            X[~left_mask], codes[~left_mask], weights[~left_mask], depth + 1
        )
        return node

    def _should_stop(self, node: TreeNode, depth: int) -> bool:
        if node.impurity == 0.0:
            return True
        if node.num_samples < self.min_samples_split:
            return True
        if self.max_depth is not None and depth >= self.max_depth:
            return True
        return False

    def _best_split(self, X: np.ndarray, codes: np.ndarray, weights: np.ndarray):
        num_samples = codes.shape[0]
        num_classes = len(self._encoder.classes_)
        parent_counts = np.bincount(codes, weights=weights, minlength=num_classes)
        parent_weight = float(weights.sum())
        parent_gini = gini_impurity(parent_counts)
        best = None
        weighted_one_hot = np.zeros((num_samples, num_classes), dtype=np.float64)
        weighted_one_hot[np.arange(num_samples), codes] = weights
        for feature in range(self.num_features_):
            column = X[:, feature]
            order = np.argsort(column, kind="mergesort")
            sorted_values = column[order]
            sorted_weights = weights[order]
            # Cumulative weighted class counts of the left child for every
            # split point "after position i" (left = first i+1 sorted samples).
            left_counts = np.cumsum(weighted_one_hot[order], axis=0)
            left_weights = np.cumsum(sorted_weights)
            left_sizes = np.arange(1, num_samples + 1, dtype=np.float64)
            right_counts = parent_counts[None, :] - left_counts
            right_weights = parent_weight - left_weights
            right_sizes = num_samples - left_sizes
            # Valid split positions: the value changes and both children
            # respect min_samples_leaf (by sample count).
            value_changes = sorted_values[:-1] < sorted_values[1:]
            sizes_ok = (
                (left_sizes[:-1] >= self.min_samples_leaf)
                & (right_sizes[:-1] >= self.min_samples_leaf)
            )
            valid = value_changes & sizes_ok
            if not np.any(valid):
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                left_gini = 1.0 - np.square(
                    left_counts[:-1] / np.maximum(left_weights[:-1, None], 1e-300)
                ).sum(axis=1)
                right_gini = 1.0 - np.square(
                    right_counts[:-1] / np.maximum(right_weights[:-1, None], 1e-300)
                ).sum(axis=1)
            weighted = (
                left_weights[:-1] * left_gini + right_weights[:-1] * right_gini
            ) / parent_weight
            weighted = np.where(valid, weighted, np.inf)
            position = int(np.argmin(weighted))
            gain = parent_gini - weighted[position]
            if gain <= 1e-12:
                continue
            threshold = 0.5 * (sorted_values[position] + sorted_values[position + 1])
            if best is None or gain > best.gain + 1e-12:
                left_mask = column <= threshold
                best = _Split(
                    feature=feature,
                    threshold=float(threshold),
                    gain=float(gain),
                    left_mask=left_mask,
                )
        return best

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self.root_ is None:
            raise RuntimeError("DecisionTreeClassifier used before fit()")

    def _leaf_for(self, sample: np.ndarray) -> TreeNode:
        node = self.root_
        while not node.is_leaf:
            if sample[node.feature] <= node.threshold:
                node = node.left
            else:
                node = node.right
        return node

    def predict(self, X) -> list:
        """Predict the class label of every row of ``X``."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.num_features_:
            raise ValueError(
                f"expected {self.num_features_} features, got {X.shape[1]}"
            )
        codes = [self._leaf_for(sample).prediction for sample in X]
        return self._encoder.inverse_transform(codes)

    def predict_one(self, sample):
        """Predict the class label of a single feature vector."""
        return self.predict(np.asarray(sample, dtype=np.float64).reshape(1, -1))[0]

    def compiled(self):
        """The tree flattened for vectorized evaluation (built lazily).

        The compiled form is cached on the instance and invalidated by
        :meth:`fit`; it performs exactly the comparisons of the recursive
        walk, so ``predict_batch`` and ``predict`` always agree.
        """
        self._require_fitted()
        if self._compiled is None:
            from repro.serving.compiled import compile_tree

            self._compiled = compile_tree(self)
        return self._compiled

    def predict_batch(self, X) -> list:
        """Predict every row of ``X`` through the compiled vectorized path.

        Element-wise identical to :meth:`predict`; the recursive walk is
        kept as the auditable reference implementation while this path
        advances all N samples one tree level at a time in NumPy.
        """
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.num_features_:
            raise ValueError(
                f"expected {self.num_features_} features, got {X.shape[1]}"
            )
        return self._encoder.inverse_transform(self.compiled().predict_codes(X))

    def predict_proba(self, X) -> np.ndarray:
        """Per-class empirical (weighted) probabilities of the reached leaves."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        probabilities = np.zeros((X.shape[0], len(self._encoder.classes_)))
        for i, sample in enumerate(X):
            leaf = self._leaf_for(sample)
            total = leaf.class_counts.sum()
            if total:
                probabilities[i] = leaf.class_counts / total
        return probabilities

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Depth of the fitted tree (a root-only tree has depth 0)."""
        self._require_fitted()

        def _depth(node: TreeNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self.root_)

    def nodes(self) -> list:
        """All nodes in depth-first (pre-order) order."""
        self._require_fitted()
        out = []

        def _walk(node: TreeNode) -> None:
            out.append(node)
            if not node.is_leaf:
                _walk(node.left)
                _walk(node.right)

        _walk(self.root_)
        return out

    def feature_importances(self) -> np.ndarray:
        """Impurity-based feature importances, normalized to sum to one."""
        self._require_fitted()
        importances = np.zeros(self.num_features_, dtype=np.float64)
        total_weight = self.root_.total_weight
        for node in self.nodes():
            if node.is_leaf:
                continue
            weighted_child_impurity = (
                node.left.total_weight * node.left.impurity
                + node.right.total_weight * node.right.impurity
            ) / node.total_weight
            decrease = node.impurity - weighted_child_impurity
            importances[node.feature] += node.total_weight / total_weight * decrease
        total = importances.sum()
        return importances / total if total > 0 else importances

    def export_text(self) -> str:
        """Human-readable if/else rendering of the tree (explainability)."""
        self._require_fitted()
        lines = []

        def _walk(node: TreeNode, indent: str) -> None:
            if node.is_leaf:
                label = self._encoder.classes_[node.prediction]
                lines.append(f"{indent}predict {label!r}  (n={node.num_samples})")
                return
            name = self.feature_names_[node.feature]
            lines.append(f"{indent}if {name} <= {node.threshold:.6g}:")
            _walk(node.left, indent + "    ")
            lines.append(f"{indent}else:  # {name} > {node.threshold:.6g}")
            _walk(node.right, indent + "    ")

        _walk(self.root_, "")
        return "\n".join(lines)
