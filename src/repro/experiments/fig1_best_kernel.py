"""Figure 1: the fastest kernel varies widely across the dataset.

The paper's opening figure plots, for every SuiteSparse matrix, the runtime
of whichever kernel is fastest on it, coloured by kernel.  The message is
that no single kernel dominates: matrices with similar amounts of work are
won by different kernels.  This driver regenerates the underlying series:
one point per matrix with its nonzero count, the winning kernel and the
winning runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import DEFAULT_PROFILE, format_table, resolve_sweep
from repro.experiments.registry import ExperimentArtifact, register_experiment


@dataclass(frozen=True)
class Fig1Point:
    """One point of the Fig. 1 scatter."""

    name: str
    nnz: int
    fastest_kernel: str
    fastest_runtime_ms: float


@dataclass
class Fig1Result:
    """The full Fig. 1 series plus summary statistics."""

    points: list = field(default_factory=list)
    winner_counts: dict = field(default_factory=dict)

    @property
    def distinct_winners(self) -> int:
        """How many different kernels win at least one matrix."""
        return len(self.winner_counts)

    def to_rows(self) -> list:
        """Rows (name, nnz, kernel, runtime_ms) sorted by nonzero count."""
        return [
            (p.name, p.nnz, p.fastest_kernel, round(p.fastest_runtime_ms, 6))
            for p in sorted(self.points, key=lambda p: p.nnz)
        ]

    def render(self) -> str:
        """Printable summary of the figure's data."""
        header = (
            f"Fig. 1 — fastest kernel per matrix ({len(self.points)} matrices, "
            f"{self.distinct_winners} distinct winning kernels)\n"
        )
        summary = format_table(
            ["kernel", "matrices won"],
            sorted(self.winner_counts.items(), key=lambda kv: -kv[1]),
        )
        return header + summary

    def to_artifact(self) -> ExperimentArtifact:
        """Structured output: one row per matrix, full precision."""
        return ExperimentArtifact(
            columns=("name", "nnz", "fastest_kernel", "fastest_runtime_ms"),
            rows=[
                (p.name, p.nnz, p.fastest_kernel, p.fastest_runtime_ms)
                for p in sorted(self.points, key=lambda p: p.nnz)
            ],
            summary={
                "matrices": len(self.points),
                "distinct_winners": self.distinct_winners,
                "winner_counts": dict(self.winner_counts),
            },
        )


def run_fig1(profile: str = DEFAULT_PROFILE, sweep=None) -> Fig1Result:
    """Regenerate the Fig. 1 series on the synthetic collection."""
    sweep = resolve_sweep(sweep, profile)
    result = Fig1Result()
    for measurement in sweep.suite:
        winner = measurement.fastest_kernel(iterations=1)
        result.points.append(
            Fig1Point(
                name=measurement.name,
                nnz=measurement.known.nnz,
                fastest_kernel=winner,
                fastest_runtime_ms=measurement.kernel_total_ms(winner, 1),
            )
        )
        result.winner_counts[winner] = result.winner_counts.get(winner, 0) + 1
    return result


@register_experiment(
    "fig1",
    title="Fastest kernel per matrix (Fig. 1)",
    description="one point per workload: nonzeros, winning kernel, winning runtime",
)
def _fig1_experiment(context) -> Fig1Result:
    return run_fig1(profile=context.profile, sweep=context.sweep())
