"""Table III: Kendall correlation between kernel runtimes and features.

For every kernel, the paper reports the Kendall rank-correlation coefficient
between the kernel's per-matrix runtime and each feature (rows, nnz, max /
min / mean / variance of row density) across the dataset.  Row-mapped
schedules correlate most with the number of rows, work-oriented schedules
with the number of nonzeros — the monotonic relationships the predictor
exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.domains.base import ITERATIONS_FIELD
from repro.experiments.common import DEFAULT_PROFILE, format_table, resolve_sweep
from repro.experiments.registry import ExperimentArtifact, register_experiment
from repro.ml.kendall import kendall_tau

#: Feature columns of Table III for the SpMV case study, in paper order.
TABLE3_FEATURES = ("rows", "nnz", "most", "least", "avg", "var")


def table3_feature_names(sweep) -> tuple:
    """Feature columns of the table for a sweep's domain.

    The SpMV case study keeps the paper's six columns (with its shorthand
    ``most``/``least``/``avg``/``var`` names); every other domain reports
    its declared known features (minus the iteration count, which is not a
    workload property) followed by its gathered features.
    """
    if sweep.domain_name == "spmv":
        return TABLE3_FEATURES
    domain = sweep.suite.domain
    known = tuple(
        name for name in domain.known_feature_names if name != ITERATIONS_FIELD
    )
    return known + tuple(domain.gathered_feature_names)


def _feature_value(measurement, feature: str) -> float:
    if feature == "rows":
        return float(measurement.known.rows)
    if feature == "nnz":
        return float(measurement.known.nnz)
    if feature == "most":
        return measurement.gathered.max_row_density
    if feature == "least":
        return measurement.gathered.min_row_density
    if feature == "avg":
        return measurement.gathered.mean_row_density
    if feature == "var":
        return measurement.gathered.var_row_density
    known = measurement.known.as_dict()
    if feature in known:
        return float(known[feature])
    gathered = measurement.gathered.as_dict()
    if feature in gathered:
        return float(gathered[feature])
    raise KeyError(feature)


@dataclass
class Table3Result:
    """Kendall correlation of every kernel's runtime with every feature."""

    correlations: dict = field(default_factory=dict)
    feature_names: tuple = TABLE3_FEATURES

    def row_for(self, kernel: str) -> dict:
        """Correlation row of one kernel."""
        return self.correlations[kernel]

    def to_rows(self) -> list:
        """Rows (kernel, tau per feature) in kernel order."""
        rows = []
        for kernel, values in self.correlations.items():
            rows.append(
                (kernel, *(round(values[feature], 2) for feature in self.feature_names))
            )
        return rows

    def render(self) -> str:
        """Printable Table III."""
        return "Table III — Kendall correlation (|tau|)\n" + format_table(
            ["Load-Balancing Alg.", *self.feature_names], self.to_rows()
        )

    def to_artifact(self) -> ExperimentArtifact:
        """Structured output: one row per kernel, full-precision |tau|."""
        return ExperimentArtifact(
            columns=("kernel", *self.feature_names),
            rows=[
                (kernel, *(values[feature] for feature in self.feature_names))
                for kernel, values in self.correlations.items()
            ],
            summary={"features": list(self.feature_names)},
        )


def run_table3(profile: str = DEFAULT_PROFILE, sweep=None) -> Table3Result:
    """Compute the Table III correlations on the synthetic collection.

    As in the paper, the statistic relates single-iteration kernel runtimes
    to the matrix features; the absolute value of tau is reported (the sign
    only encodes whether runtime grows or shrinks with the feature).
    """
    sweep = resolve_sweep(sweep, profile)
    measurements = list(sweep.suite)
    feature_names = table3_feature_names(sweep)
    result = Table3Result(feature_names=feature_names)
    for kernel in sweep.kernel_names:
        runtimes = np.array(
            [m.kernel_total_ms(kernel, 1) for m in measurements], dtype=np.float64
        )
        finite = np.isfinite(runtimes)
        row = {}
        for feature in feature_names:
            values = np.array(
                [_feature_value(m, feature) for m in measurements], dtype=np.float64
            )
            tau = kendall_tau(values[finite], runtimes[finite])
            row[feature] = abs(tau) if not math.isnan(tau) else float("nan")
        result.correlations[kernel] = row
    return result


@register_experiment(
    "table3",
    title="Kendall correlations (Table III)",
    description="rank correlation between every kernel's runtime and the "
    "domain's known/gathered features",
)
def _table3_experiment(context) -> Table3Result:
    return run_table3(profile=context.profile, sweep=context.sweep())
