"""Table I: capability comparison of Seer against prior autotuners.

Table I of the paper is a qualitative checklist of framework capabilities
(preprocessing amortization, feature-collection cost, classifier-selection
model, general abstraction, sparse case study, compressed formats,
explainability) across Seer, Nitro, WISE and spECK.  The prior-work columns
are literature facts reproduced verbatim; the Seer column is *checked
against this implementation*: each claimed capability maps to a concrete
artifact in the code base, and the driver verifies that artifact exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dataset import TrainingSample
from repro.core.inference import SeerPredictor
from repro.core.training import USE_GATHERED, USE_KNOWN
from repro.experiments.common import format_table
from repro.experiments.registry import ExperimentArtifact, register_experiment
from repro.kernels.feature_kernels import FeatureCollector
from repro.kernels.registry import KERNEL_CLASSES
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.sparse.features import KNOWN_FEATURE_NAMES

#: Capability rows of Table I with the published prior-work entries.
PRIOR_WORK_COLUMNS = ("Nitro", "WISE", "spECK")

TABLE1_ROWS = {
    "Preprocessing Amortization": {"Nitro": False, "WISE": False, "spECK": False},
    "Feature Collection Cost": {"Nitro": False, "WISE": False, "spECK": True},
    "Classifier Selection Model": {"Nitro": False, "WISE": False, "spECK": False},
    "General Abstraction": {"Nitro": True, "WISE": False, "spECK": False},
    "Sparse Case Study": {"Nitro": True, "WISE": True, "spECK": True},
    "Compressed Formats": {"Nitro": True, "WISE": True, "spECK": True},
    "Explainability": {"Nitro": False, "WISE": True, "spECK": False},
}


@dataclass
class Table1Result:
    """Capability matrix plus the verification of each Seer capability."""

    capabilities: dict = field(default_factory=dict)
    verification: dict = field(default_factory=dict)

    def seer_supports_all(self) -> bool:
        """Whether every Seer capability claimed in Table I is implemented."""
        return all(self.verification.values())

    def to_rows(self) -> list:
        """Rows matching the paper's layout: feature, Seer, Nitro, WISE, spECK."""
        rows = []
        for feature, prior in TABLE1_ROWS.items():
            rows.append(
                (
                    feature,
                    "yes" if self.verification.get(feature, False) else "no",
                    *("yes" if prior[column] else "no" for column in PRIOR_WORK_COLUMNS),
                )
            )
        return rows

    def render(self) -> str:
        """Printable Table I."""
        return "Table I — feature comparison\n" + format_table(
            ["Feature", "Seer (this repo)", *PRIOR_WORK_COLUMNS], self.to_rows()
        )

    def to_artifact(self) -> ExperimentArtifact:
        """Structured output: the capability matrix, one row per feature."""
        return ExperimentArtifact(
            columns=("feature", "seer", *(c.lower() for c in PRIOR_WORK_COLUMNS)),
            rows=self.to_rows(),
            summary={"seer_supports_all": self.seer_supports_all()},
        )


def _verify_capabilities() -> dict:
    """Map each Seer capability of Table I to evidence in this code base."""
    return {
        # The training corpus carries an explicit iteration count and kernel
        # totals are preprocessing + iterations x runtime.
        "Preprocessing Amortization": "iterations" in KNOWN_FEATURE_NAMES
        and hasattr(TrainingSample, "total_ms"),
        # Feature collection has a simulated cost that the selector weighs.
        "Feature Collection Cost": hasattr(FeatureCollector, "collection_time_ms"),
        # The classifier-selection model is a first-class citizen of the
        # deployed predictor.
        "Classifier Selection Model": USE_KNOWN != USE_GATHERED
        and hasattr(SeerPredictor, "predict"),
        # The abstraction is not SpMV-specific: kernels are pluggable classes
        # behind a registry and the trainer only sees runtime/feature tables.
        "General Abstraction": len(KERNEL_CLASSES) >= 2,
        "Sparse Case Study": {"CSR,TM", "COO,WM", "ELL,TM"} <= set(KERNEL_CLASSES),
        "Compressed Formats": len(
            {cls.sparse_format for cls in KERNEL_CLASSES.values()}
        ) >= 3,
        # Decision trees can be printed as if/else text and exported as code.
        "Explainability": hasattr(DecisionTreeClassifier, "export_text"),
    }


def run_table1() -> Table1Result:
    """Build Table I and verify the Seer column against the implementation."""
    return Table1Result(capabilities=dict(TABLE1_ROWS), verification=_verify_capabilities())


@register_experiment(
    "table1",
    title="Capability comparison (Table I)",
    needs_sweep=False,
    description="framework capability checklist, Seer column verified "
    "against this code base (domain-independent)",
)
def _table1_experiment(context) -> Table1Result:
    return run_table1()
