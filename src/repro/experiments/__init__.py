"""Experiment drivers: one module per table/figure of the paper's evaluation.

Each driver returns a structured result object and can print the rows or
series the corresponding table/figure reports.  The benchmark harness under
``benchmarks/`` calls these drivers; ``python -m repro <experiment>`` runs
them from the command line.
"""

from repro.experiments.accuracy_table import AccuracyResult, run_accuracy_table
from repro.experiments.fig1_best_kernel import Fig1Result, run_fig1
from repro.experiments.fig5_single_iteration import Fig5Result, run_fig5
from repro.experiments.fig6_feature_cost import Fig6Result, run_fig6
from repro.experiments.fig7_multi_iteration import Fig7Result, run_fig7
from repro.experiments.table1_features import Table1Result, run_table1
from repro.experiments.table3_kendall import Table3Result, run_table3

__all__ = [
    "AccuracyResult",
    "run_accuracy_table",
    "Fig1Result",
    "run_fig1",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "run_fig7",
    "Table1Result",
    "run_table1",
    "Table3Result",
    "run_table3",
]
