"""Experiment suite: one module per table/figure of the paper's evaluation.

Each driver returns a structured result object that can print the rows or
series the corresponding table/figure reports (``render()``) and convert to
a CSV-able table (``to_artifact()``).  Importing this package registers
every experiment with the :mod:`repro.experiments.registry`, mirroring the
domain/kernel registries; ``repro experiments list`` / ``repro experiments
run --domain NAME`` drive the suite from the command line, and the benchmark
harness under ``benchmarks/`` calls the drivers directly.
"""

from repro.experiments.registry import (
    ExperimentArtifact,
    ExperimentContext,
    ExperimentSpec,
    experiment_names,
    experiments_for,
    get_experiment,
    register_experiment,
    run_experiment,
    write_artifact,
)
# Imported in paper order — experiment registration order follows.
from repro.experiments.fig1_best_kernel import Fig1Result, run_fig1
from repro.experiments.fig5_single_iteration import Fig5Result, run_fig5
from repro.experiments.fig6_feature_cost import Fig6Result, run_fig6
from repro.experiments.fig7_multi_iteration import Fig7Result, run_fig7
from repro.experiments.table1_features import Table1Result, run_table1
from repro.experiments.table3_kendall import Table3Result, run_table3
from repro.experiments.accuracy_table import AccuracyResult, run_accuracy_table
from repro.experiments.spmm_amortization import (
    SpmmAmortizationResult,
    run_spmm_amortization,
)

__all__ = [
    "ExperimentArtifact",
    "ExperimentContext",
    "ExperimentSpec",
    "experiment_names",
    "experiments_for",
    "get_experiment",
    "register_experiment",
    "run_experiment",
    "write_artifact",
    "AccuracyResult",
    "run_accuracy_table",
    "Fig1Result",
    "run_fig1",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "run_fig7",
    "SpmmAmortizationResult",
    "run_spmm_amortization",
    "Table1Result",
    "run_table1",
    "Table3Result",
    "run_table3",
]
