"""SpMM amortization study: feature-collection cost vs. ``num_vectors``.

The SpMM collector streams the sparse matrix's column indices, so its cost
is fixed per matrix — it does not grow with the dense block width.  Kernel
runtime, by contrast, scales with ``num_vectors`` (every nonzero touches a
``num_vectors``-wide row of B).  Collecting features therefore amortizes
*faster* as the dense block widens: the iterations needed for an informed
kernel choice to pay for the collection shrink with ``num_vectors``.

This is the per-domain analog of the paper's Fig. 6 (which sweeps matrix
size for SpMV): same question — when is gathering features worth it? — asked
along the axis that is unique to the SpMM domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.domains import get_domain
from repro.domains.spmm import AMORTIZATION_VECTOR_GRID, SpmmWorkload
from repro.experiments.common import format_table
from repro.experiments.registry import ExperimentArtifact, register_experiment
from repro.gpu.device import MI100
from repro.kernels.base import UnsupportedKernelError

#: Row count of the study's matrix (large enough that kernel runtime, not
#: launch overhead, dominates; small enough to build in milliseconds).
DEFAULT_NUM_ROWS = 32_768

#: Seed of the study's power-law matrix.
DEFAULT_SEED = 11


@dataclass(frozen=True)
class AmortizationPoint:
    """One ``num_vectors`` position of the study."""

    num_vectors: int
    collection_ms: float
    best_kernel: str
    best_kernel_ms: float
    worst_kernel: str
    worst_kernel_ms: float

    @property
    def amortize_iterations(self) -> float:
        """Iterations until collection pays for itself.

        The worst-vs-best per-iteration gap is the cost of an uninformed
        kernel choice; collection has amortized once the accumulated gap
        exceeds the collection time.  ``inf`` when every kernel ties.
        """
        savings = self.worst_kernel_ms - self.best_kernel_ms
        if savings <= 0.0:
            return float("inf")
        return self.collection_ms / savings


@dataclass
class SpmmAmortizationResult:
    """The full ``num_vectors`` sweep plus the matrix it ran on."""

    rows: int = 0
    nnz: int = 0
    points: list = field(default_factory=list)

    def to_rows(self) -> list:
        """Rows for display, one per swept ``num_vectors``."""
        return [
            (
                p.num_vectors,
                round(p.collection_ms, 4),
                p.best_kernel,
                round(p.best_kernel_ms, 4),
                p.worst_kernel,
                round(p.worst_kernel_ms, 4),
                round(p.amortize_iterations, 2)
                if math.isfinite(p.amortize_iterations)
                else "never",
            )
            for p in sorted(self.points, key=lambda p: p.num_vectors)
        ]

    def render(self) -> str:
        """Printable summary of the study."""
        header = (
            f"SpMM amortization — collection cost vs num_vectors "
            f"(matrix: {self.rows} rows, {self.nnz} nnz)\n"
        )
        return header + format_table(
            [
                "num_vectors",
                "collection ms",
                "best kernel",
                "best ms",
                "worst kernel",
                "worst ms",
                "amortize iters",
            ],
            self.to_rows(),
        )

    def to_artifact(self) -> ExperimentArtifact:
        """Structured output: one row per swept ``num_vectors``."""
        return ExperimentArtifact(
            columns=(
                "num_vectors",
                "collection_ms",
                "best_kernel",
                "best_kernel_ms",
                "worst_kernel",
                "worst_kernel_ms",
                "amortize_iterations",
            ),
            rows=[
                (
                    p.num_vectors,
                    p.collection_ms,
                    p.best_kernel,
                    p.best_kernel_ms,
                    p.worst_kernel,
                    p.worst_kernel_ms,
                    p.amortize_iterations,
                )
                for p in sorted(self.points, key=lambda p: p.num_vectors)
            ],
            summary={"rows": self.rows, "nnz": self.nnz},
        )


def run_spmm_amortization(
    num_vectors_grid=AMORTIZATION_VECTOR_GRID,
    num_rows: int = DEFAULT_NUM_ROWS,
    device=MI100,
    seed: int = DEFAULT_SEED,
) -> SpmmAmortizationResult:
    """Sweep the dense block width and compare collection cost per iteration."""
    domain = get_domain("spmm")
    base = domain.scaling_workload(num_rows, seed=seed)
    matrix = base.matrix
    collector = domain.make_collector(device)
    kernels = domain.default_kernels(device)
    result = SpmmAmortizationResult(rows=matrix.num_rows, nnz=matrix.nnz)
    for num_vectors in num_vectors_grid:
        workload = SpmmWorkload(matrix=matrix, num_vectors=int(num_vectors))
        per_iteration = {}
        for kernel in kernels:
            try:
                per_iteration[kernel.name] = kernel.timing(workload).iteration_ms
            except UnsupportedKernelError:
                continue
        best = min(per_iteration, key=lambda name: (per_iteration[name], name))
        worst = max(per_iteration, key=lambda name: (per_iteration[name], name))
        result.points.append(
            AmortizationPoint(
                num_vectors=int(num_vectors),
                collection_ms=collector.collection_time_ms(workload),
                best_kernel=best,
                best_kernel_ms=per_iteration[best],
                worst_kernel=worst,
                worst_kernel_ms=per_iteration[worst],
            )
        )
    return result


@register_experiment(
    "spmm_amortization",
    title="SpMM feature-cost amortization vs num_vectors",
    domains=("spmm",),
    needs_sweep=False,
    description="fixed collection cost against kernel runtimes growing with "
    "the dense block width; how fast gathering pays off",
)
def _spmm_amortization_experiment(context) -> SpmmAmortizationResult:
    return run_spmm_amortization(device=context.device)
