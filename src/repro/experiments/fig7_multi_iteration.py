"""Figure 7: multi-iteration runs and preprocessing amortization.

Fig. 7 examines three matrices at 1 and 19 iterations.  Kernels with a
preprocessing stage (Adaptive-CSR, rocSPARSE) are not worth their setup cost
for a single iteration, but over 19 iterations the cost can amortize — on
some matrices but not others — and the predictors must anticipate that from
the iteration count.  19 iterations is singled out in the paper precisely
because it is the crossover point for some matrices and not for others.

The archetypes used here mirror the paper's three examples:

* ``CurlCurl_3_like`` — amortization happens by 19 iterations, so a
  preprocessing kernel should be selected there but not at 1 iteration;
* ``G3_Circuit_like`` — ELL,TM wins at both 1 and 19 iterations because the
  preprocessing never amortizes on this very uniform matrix;
* ``PWTK_like`` — amortization again favours the preprocessing kernel at 19
  iterations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.experiments.common import DEFAULT_PROFILE, format_table, resolve_sweep
from repro.experiments.registry import ExperimentArtifact, register_experiment
from repro.kernels.base import UnsupportedKernelError
from repro.kernels.registry import default_kernels
from repro.sparse.collection import archetype

#: Archetypes of the Fig. 7 matrices and their generation scales.
FIG7_MATRICES = {
    "CurlCurl_3_like": 32768,
    "G3_Circuit_like": 32768,
    "PWTK_like": 24576,
}

#: Iteration counts examined by the figure.
FIG7_ITERATIONS = (1, 19)


@dataclass
class Fig7Case:
    """One panel of Fig. 7: one matrix at one iteration count."""

    name: str
    iterations: int
    oracle_kernel: str
    oracle_ms: float
    selector_choice: str
    selector_kernel: str
    selector_ms: float
    known_kernel: str
    known_ms: float
    gathered_kernel: str
    gathered_ms: float
    kernel_totals_ms: dict = field(default_factory=dict)

    @property
    def oracle_uses_preprocessing_kernel(self) -> bool:
        """Whether the fastest kernel at this iteration count has preprocessing."""
        return self.oracle_kernel in ("CSR,A", "rocSPARSE")

    def to_rows(self) -> list:
        """Rows (approach/kernel, total ms) for this panel."""
        rows = [
            ("Oracle", round(self.oracle_ms, 4)),
            ("Selector", round(self.selector_ms, 4)),
            ("Gathered", round(self.gathered_ms, 4)),
            ("Known", round(self.known_ms, 4)),
        ]
        for kernel, total in self.kernel_totals_ms.items():
            rows.append((kernel, round(total, 4) if math.isfinite(total) else "n/a"))
        return rows


@dataclass
class Fig7Result:
    """All panels of Fig. 7."""

    cases: list = field(default_factory=list)

    def case(self, name: str, iterations: int) -> Fig7Case:
        """Look up one panel."""
        for case in self.cases:
            if case.name == name and case.iterations == iterations:
                return case
        raise KeyError((name, iterations))

    def amortization_flips(self) -> list:
        """Matrices whose best kernel gains preprocessing between 1 and 19 iters."""
        flips = []
        for name in sorted({case.name for case in self.cases}):
            single = self.case(name, 1)
            multi = self.case(name, 19)
            if (
                not single.oracle_uses_preprocessing_kernel
                and multi.oracle_uses_preprocessing_kernel
            ):
                flips.append(name)
        return flips

    def render(self) -> str:
        """Printable summary of every panel."""
        sections = []
        for case in self.cases:
            header = (
                f"Fig. 7 — {case.name}, {case.iterations} iteration(s): "
                f"oracle={case.oracle_kernel}, selector={case.selector_kernel} "
                f"(via {case.selector_choice} path)"
            )
            sections.append(header + "\n" + format_table(["approach", "total ms"], case.to_rows()))
        sections.append(
            "matrices where preprocessing amortizes by 19 iterations: "
            + ", ".join(self.amortization_flips() or ["none"])
        )
        return "\n\n".join(sections)

    def to_artifact(self) -> ExperimentArtifact:
        """Structured output: one row per (matrix, iterations, approach/kernel)."""
        rows = []
        for case in self.cases:
            rows.append((case.name, case.iterations, "Oracle", case.oracle_kernel, case.oracle_ms))
            rows.append(
                (case.name, case.iterations, "Selector", case.selector_kernel, case.selector_ms)
            )
            rows.append(
                (case.name, case.iterations, "Gathered", case.gathered_kernel, case.gathered_ms)
            )
            rows.append((case.name, case.iterations, "Known", case.known_kernel, case.known_ms))
            for kernel, total in case.kernel_totals_ms.items():
                rows.append((case.name, case.iterations, kernel, kernel, total))
        return ExperimentArtifact(
            columns=("name", "iterations", "approach", "kernel", "total_ms"),
            rows=rows,
            summary={"amortization_flips": self.amortization_flips()},
        )


def _case_for(record, iterations: int, sweep) -> Fig7Case:
    matrix = record.matrix
    device = sweep.predictor.device
    kernels = default_kernels(device, include_rocsparse=True)
    totals = {}
    for kernel in kernels:
        try:
            totals[kernel.name] = kernel.timing(matrix).total_ms(iterations)
        except UnsupportedKernelError:
            totals[kernel.name] = float("inf")
    finite = {name: value for name, value in totals.items() if math.isfinite(value)}
    oracle_kernel = min(finite, key=lambda name: (finite[name], name))
    worst = max(finite.values())

    def total_for(kernel_name: str, overhead_ms: float = 0.0) -> float:
        base = totals.get(kernel_name, worst)
        if not math.isfinite(base):
            base = worst
        return base + overhead_ms

    decision = sweep.predictor.predict(matrix, iterations=iterations, name=record.name)
    collection = sweep.predictor.collector.collect(matrix)
    from repro.sparse.features import known_features  # local import to avoid cycle

    known = known_features(matrix, iterations)
    known_kernel = sweep.models.predict_known(known.as_vector())
    gathered_kernel = sweep.models.predict_gathered(
        known.as_vector(), collection.features.as_vector()
    )
    return Fig7Case(
        name=record.name,
        iterations=iterations,
        oracle_kernel=oracle_kernel,
        oracle_ms=finite[oracle_kernel],
        selector_choice=decision.selector_choice,
        selector_kernel=decision.kernel_name,
        selector_ms=total_for(decision.kernel_name, decision.overhead_ms),
        known_kernel=known_kernel,
        known_ms=total_for(known_kernel),
        gathered_kernel=gathered_kernel,
        gathered_ms=total_for(gathered_kernel, collection.collection_time_ms),
        kernel_totals_ms=totals,
    )


def run_fig7(profile: str = DEFAULT_PROFILE, sweep=None, scales=None) -> Fig7Result:
    """Regenerate the Fig. 7 multi-iteration amortization study."""
    sweep = resolve_sweep(sweep, profile)
    scales = scales or FIG7_MATRICES
    result = Fig7Result()
    for name, scale in scales.items():
        record = archetype(name, scale=scale)
        for iterations in FIG7_ITERATIONS:
            result.cases.append(_case_for(record, iterations, sweep))
    return result


@register_experiment(
    "fig7",
    title="Multi-iteration amortization study (Fig. 7)",
    domains=("spmv",),
    description="named SpMV archetypes at 1 and 19 iterations; which "
    "matrices amortize a preprocessing stage",
)
def _fig7_experiment(context) -> Fig7Result:
    return run_fig7(profile=context.profile, sweep=context.sweep())
