"""Model accuracies on the held-out test split (Section IV-C).

The paper reports that, on an 80/20 train-test split, the known, gathered
and classifier-selection predictors reach 77%, 83% and 95% accuracy.  This
driver computes the same three numbers on the synthetic collection:

* known / gathered accuracy — how often the model names the Oracle's kernel;
* selector accuracy — how often the classifier-selection model routes a
  sample to the cheaper of its two paths (the decision it is trained for).

The paper also stresses the difference between *accuracy* and *error*
(mispredictions between near-equivalent kernels barely cost anything), so
the result carries the runtime error against the Oracle as well.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import DEFAULT_PROFILE, format_table, resolve_sweep
from repro.experiments.registry import ExperimentArtifact, register_experiment


@dataclass(frozen=True)
class AccuracyResult:
    """Accuracies and Oracle-relative errors of the three predictors."""

    known_accuracy: float
    gathered_accuracy: float
    selector_accuracy: float
    selector_kernel_accuracy: float
    known_error_vs_oracle: float
    gathered_error_vs_oracle: float
    selector_error_vs_oracle: float
    test_samples: int

    def to_rows(self) -> list:
        """Rows (model, accuracy, runtime error vs Oracle)."""
        return [
            ("Known", round(self.known_accuracy, 3), round(self.known_error_vs_oracle, 3)),
            (
                "Gathered",
                round(self.gathered_accuracy, 3),
                round(self.gathered_error_vs_oracle, 3),
            ),
            (
                "Classifier selection",
                round(self.selector_accuracy, 3),
                round(self.selector_error_vs_oracle, 3),
            ),
        ]

    def render(self) -> str:
        """Printable accuracy table."""
        header = (
            f"Model accuracy on the {self.test_samples}-sample test split "
            "(paper: known 77%, gathered 83%, selector 95%)\n"
        )
        return header + format_table(
            ["model", "accuracy", "aggregate slowdown vs Oracle - 1"], self.to_rows()
        )

    def to_artifact(self) -> ExperimentArtifact:
        """Structured output: one row per predictor, full precision."""
        return ExperimentArtifact(
            columns=("model", "accuracy", "error_vs_oracle"),
            rows=[
                ("Known", self.known_accuracy, self.known_error_vs_oracle),
                ("Gathered", self.gathered_accuracy, self.gathered_error_vs_oracle),
                (
                    "Classifier selection",
                    self.selector_accuracy,
                    self.selector_error_vs_oracle,
                ),
            ],
            summary={
                "test_samples": self.test_samples,
                "selector_kernel_accuracy": self.selector_kernel_accuracy,
            },
        )


def run_accuracy_table(profile: str = DEFAULT_PROFILE, sweep=None) -> AccuracyResult:
    """Compute the three predictor accuracies on the held-out split."""
    sweep = resolve_sweep(sweep, profile)
    report = sweep.test_report
    return AccuracyResult(
        known_accuracy=report.accuracy("Known"),
        gathered_accuracy=report.accuracy("Gathered"),
        selector_accuracy=report.selector_choice_accuracy(),
        selector_kernel_accuracy=report.accuracy("Selector"),
        known_error_vs_oracle=report.slowdown_vs_oracle("Known") - 1.0,
        gathered_error_vs_oracle=report.slowdown_vs_oracle("Gathered") - 1.0,
        selector_error_vs_oracle=report.slowdown_vs_oracle("Selector") - 1.0,
        test_samples=len(report.rows),
    )


@register_experiment(
    "accuracy",
    title="Model accuracies (Section IV-C)",
    description="known/gathered/selector accuracy and Oracle-relative error "
    "on the held-out test split",
)
def _accuracy_experiment(context) -> AccuracyResult:
    return run_accuracy_table(profile=context.profile, sweep=context.sweep())
