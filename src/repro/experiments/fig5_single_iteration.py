"""Figure 5: single-iteration runtime of predictors vs. individual kernels.

Fig. 5a-c of the paper show, for three representative SuiteSparse matrices,
the end-to-end single-iteration runtime of the Oracle, the classifier
selection predictor, the gathered- and known-feature predictors, and every
individual kernel; lighter stacked bars show the overhead (feature
collection or preprocessing) of each approach.  Fig. 5d shows the same bars
aggregated over the dataset, which is where the headline "2x over the best
single kernel" and "6.5x geometric-mean speedup" numbers come from.

The per-matrix studies use named archetypes that mimic the structure of the
paper's matrices (nlpkkt200, matrix-new_3, Ga41As41H72); the aggregate uses
the synthetic collection's held-out test split at one iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.evaluation import EvaluationReport
from repro.experiments.common import DEFAULT_PROFILE, format_table, resolve_sweep
from repro.experiments.registry import ExperimentArtifact, register_experiment
from repro.kernels.base import UnsupportedKernelError
from repro.kernels.registry import default_kernels
from repro.sparse.collection import archetype
from repro.sparse.features import known_features

#: Archetypes of the three matrices examined in Fig. 5a-c and the scales at
#: which they are generated (large enough to be outside the launch-overhead
#: regime, small enough to build quickly).
FIG5_MATRICES = {
    "nlpkkt200_like": 24576,
    "matrix_new_3_like": 8192,
    "Ga41As41H72_like": 16384,
}


@dataclass
class ApproachBar:
    """One bar of a Fig. 5 plot: runtime plus overhead split."""

    label: str
    total_ms: float
    overhead_ms: float = 0.0

    @property
    def kernel_ms(self) -> float:
        """Portion of the bar spent in the SpMV kernel itself."""
        return self.total_ms - self.overhead_ms


@dataclass
class Fig5MatrixStudy:
    """All bars of one per-matrix plot (Fig. 5a, 5b or 5c)."""

    name: str
    rows: int
    nnz: int
    bars: list = field(default_factory=list)

    def bar(self, label: str) -> ApproachBar:
        """Look up one bar by its label."""
        for bar in self.bars:
            if bar.label == label:
                return bar
        raise KeyError(label)

    def to_rows(self) -> list:
        """Rows (label, total_ms, overhead_ms)."""
        return [
            (bar.label, round(bar.total_ms, 4), round(bar.overhead_ms, 4))
            for bar in self.bars
        ]


@dataclass
class Fig5Result:
    """The three per-matrix studies plus the aggregate (Fig. 5d) numbers."""

    studies: list = field(default_factory=list)
    aggregate: dict = field(default_factory=dict)
    speedup_vs_best_kernel: float = float("nan")
    geomean_speedup_vs_kernels: float = float("nan")
    slowdown_vs_oracle: float = float("nan")

    def render(self) -> str:
        """Printable summary of every panel of Fig. 5."""
        sections = []
        for study in self.studies:
            sections.append(
                f"Fig. 5 ({study.name}, rows={study.rows}, nnz={study.nnz})\n"
                + format_table(["approach", "total ms", "overhead ms"], study.to_rows())
            )
        aggregate_rows = [
            (label, round(value, 3)) for label, value in self.aggregate.items()
        ]
        sections.append(
            "Fig. 5d (aggregate single-iteration runtime)\n"
            + format_table(["approach", "total ms"], aggregate_rows)
            + f"\nselector speedup vs best single kernel: {self.speedup_vs_best_kernel:.2f}x"
            + f"\nselector geomean speedup vs all kernels: {self.geomean_speedup_vs_kernels:.2f}x"
            + f"\nselector slowdown vs Oracle: {self.slowdown_vs_oracle:.3f}x"
        )
        return "\n\n".join(sections)

    def to_artifact(self) -> ExperimentArtifact:
        """Structured output: per-matrix study bars plus the aggregate bars."""
        rows = []
        for study in self.studies:
            for bar in study.bars:
                rows.append((study.name, bar.label, bar.total_ms, bar.overhead_ms))
        for label, value in self.aggregate.items():
            rows.append(("aggregate", label, value, ""))
        return ExperimentArtifact(
            columns=("section", "label", "total_ms", "overhead_ms"),
            rows=rows,
            summary={
                "speedup_vs_best_kernel": self.speedup_vs_best_kernel,
                "geomean_speedup_vs_kernels": self.geomean_speedup_vs_kernels,
                "slowdown_vs_oracle": self.slowdown_vs_oracle,
            },
        )


def _study_for_matrix(record, sweep) -> Fig5MatrixStudy:
    """Build the per-matrix bars (predictors first, then every kernel)."""
    matrix = record.matrix
    device = sweep.predictor.device
    kernels = default_kernels(device, include_rocsparse=False)
    timings = {}
    for kernel in kernels:
        try:
            timings[kernel.name] = kernel.timing(matrix)
        except UnsupportedKernelError:
            timings[kernel.name] = None

    finite = {
        name: timing.total_ms(1) for name, timing in timings.items() if timing
    }
    oracle_kernel = min(finite, key=lambda name: (finite[name], name))
    worst_ms = max(finite.values())

    def total_for(kernel_name: str, overhead_ms: float = 0.0) -> float:
        if timings.get(kernel_name) is None:
            return worst_ms + overhead_ms
        return timings[kernel_name].total_ms(1) + overhead_ms

    study = Fig5MatrixStudy(name=record.name, rows=matrix.num_rows, nnz=matrix.nnz)
    study.bars.append(ApproachBar("Oracle", finite[oracle_kernel]))

    # The deployed Seer flow (selector -> known or gathered path).
    decision = sweep.predictor.predict(matrix, iterations=1, name=record.name)
    study.bars.append(
        ApproachBar(
            "Selector",
            total_for(decision.kernel_name, decision.overhead_ms),
            decision.overhead_ms,
        )
    )

    # Always-gathered and always-known paths.
    collection = sweep.predictor.collector.collect(matrix)
    known = known_features(matrix, 1)
    gathered_kernel = sweep.models.predict_gathered(
        known.as_vector(), collection.features.as_vector()
    )
    study.bars.append(
        ApproachBar(
            "Gathered",
            total_for(gathered_kernel, collection.collection_time_ms),
            collection.collection_time_ms,
        )
    )
    known_kernel = sweep.models.predict_known(known.as_vector())
    study.bars.append(ApproachBar("Known", total_for(known_kernel)))

    for kernel in kernels:
        timing = timings[kernel.name]
        if timing is None:
            study.bars.append(ApproachBar(kernel.name, float("inf"), 0.0))
        else:
            study.bars.append(
                ApproachBar(kernel.name, timing.total_ms(1), timing.preprocessing_ms)
            )
    return study


def _single_iteration_report(report: EvaluationReport) -> EvaluationReport:
    """Restrict an evaluation report to its single-iteration samples."""
    return EvaluationReport(
        kernel_names=list(report.kernel_names),
        rows=[row for row in report.rows if row.iterations == 1],
    )


def run_fig5(
    profile: str = DEFAULT_PROFILE, sweep=None, include_studies: bool = True
) -> Fig5Result:
    """Regenerate Fig. 5: three per-matrix studies plus the aggregate."""
    sweep = resolve_sweep(sweep, profile)
    result = Fig5Result()
    if include_studies:
        for name, scale in FIG5_MATRICES.items():
            record = archetype(name, scale=scale)
            result.studies.append(_study_for_matrix(record, sweep))

    report = _single_iteration_report(sweep.test_report)
    result.aggregate = {
        label: report.aggregate_ms(label)
        for label in ("Oracle", "Selector", "Gathered", "Known", *report.kernel_names)
    }
    result.speedup_vs_best_kernel = report.speedup_vs_best_single_kernel("Selector")
    result.geomean_speedup_vs_kernels = report.geomean_speedup_vs_kernels("Selector")
    result.slowdown_vs_oracle = report.slowdown_vs_oracle("Selector")
    return result


@register_experiment(
    "fig5",
    title="Single-iteration predictor comparison (Fig. 5)",
    description="predictors vs. individual kernels; per-matrix archetype "
    "studies (SpMV only) plus the aggregate bars",
)
def _fig5_experiment(context) -> Fig5Result:
    # The three per-matrix studies are built from named SpMV archetypes; for
    # every other domain the aggregate panel (Fig. 5d) is what generalizes.
    return run_fig5(
        profile=context.profile,
        sweep=context.sweep(),
        include_studies=context.domain.name == "spmv",
    )
