"""Figure 6: feature-collection cost vs. kernel runtime as rows grow.

The paper plots the cost of running the feature-collection kernels against
the runtime of the CSR,BM kernel for matrices of increasing row count.  For
small matrices collection costs as much as (or more than) the SpMV itself —
so collecting features for a single-iteration run cannot pay off — while
past roughly 10^5 rows the kernel runtime grows faster than the collection
cost and gathering becomes affordable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import format_table
from repro.gpu.device import MI100
from repro.kernels.csr_block import CsrBlockMapped
from repro.kernels.feature_kernels import FeatureCollector
from repro.sparse.generators import power_law_matrix

#: Row counts of the sweep (the paper sweeps roughly 10 to 10^7 rows).
DEFAULT_ROW_COUNTS = (10, 100, 1_000, 10_000, 100_000, 1_000_000, 4_000_000)

#: Average row length of the sweep matrices (mildly irregular, FEM-like).
SWEEP_AVG_ROW_LENGTH = 8.0


@dataclass(frozen=True)
class Fig6Point:
    """One x-position of the Fig. 6 plot."""

    rows: int
    nnz: int
    collection_ms: float
    kernel_ms: float

    @property
    def collection_dominates(self) -> bool:
        """Whether gathering features costs more than running the kernel."""
        return self.collection_ms >= self.kernel_ms


@dataclass
class Fig6Result:
    """The two series of Fig. 6 plus the crossover estimate."""

    points: list = field(default_factory=list)

    def crossover_rows(self) -> float:
        """Smallest swept row count where the kernel outweighs collection.

        Returns ``inf`` when collection dominates across the whole sweep.
        """
        for point in sorted(self.points, key=lambda p: p.rows):
            if not point.collection_dominates:
                return float(point.rows)
        return float("inf")

    def to_rows(self) -> list:
        """Rows (rows, nnz, collection_ms, CSR,BM ms, collection dominates)."""
        return [
            (
                p.rows,
                p.nnz,
                round(p.collection_ms, 4),
                round(p.kernel_ms, 4),
                "yes" if p.collection_dominates else "no",
            )
            for p in sorted(self.points, key=lambda p: p.rows)
        ]

    def render(self) -> str:
        """Printable Fig. 6 series."""
        return (
            "Fig. 6 — feature-collection cost vs CSR,BM runtime\n"
            + format_table(
                ["rows", "nnz", "collection ms", "CSR,BM ms", "collection >= kernel"],
                self.to_rows(),
            )
            + f"\ncrossover at ~{self.crossover_rows():.0f} rows "
            "(paper: ~100,000 rows)"
        )


def run_fig6(row_counts=DEFAULT_ROW_COUNTS, device=MI100, seed: int = 5) -> Fig6Result:
    """Sweep matrix sizes and compare collection cost with CSR,BM runtime."""
    collector = FeatureCollector(device)
    kernel = CsrBlockMapped(device)
    result = Fig6Result()
    for index, rows in enumerate(row_counts):
        matrix = power_law_matrix(
            num_rows=int(rows),
            num_cols=int(rows),
            avg_row_length=SWEEP_AVG_ROW_LENGTH,
            exponent=2.4,
            rng=seed + index,
        )
        collection_ms = collector.collection_time_ms(matrix)
        kernel_ms = kernel.timing(matrix).iteration_ms
        result.points.append(
            Fig6Point(
                rows=int(rows),
                nnz=matrix.nnz,
                collection_ms=collection_ms,
                kernel_ms=kernel_ms,
            )
        )
    return result
