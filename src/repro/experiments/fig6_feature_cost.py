"""Figure 6: feature-collection cost vs. kernel runtime as rows grow.

The paper plots the cost of running the feature-collection kernels against
the runtime of the CSR,BM kernel for matrices of increasing row count.  For
small matrices collection costs as much as (or more than) the SpMV itself —
so collecting features for a single-iteration run cannot pay off — while
past roughly 10^5 rows the kernel runtime grows faster than the collection
cost and gathering becomes affordable.

The study is domain-parameterized: every domain names its reference kernel
(:attr:`~repro.domains.ProblemDomain.feature_cost_kernel`) and builds its
cost-scaling workloads (:meth:`~repro.domains.ProblemDomain.scaling_workload`);
the default ``"spmv"`` configuration reproduces the paper's figure exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.domains import get_domain
from repro.domains.base import SCALING_AVG_ROW_LENGTH
from repro.experiments.common import format_table
from repro.experiments.registry import ExperimentArtifact, register_experiment
from repro.gpu.device import MI100

#: Row counts of the sweep (the paper sweeps roughly 10 to 10^7 rows).
DEFAULT_ROW_COUNTS = (10, 100, 1_000, 10_000, 100_000, 1_000_000, 4_000_000)

#: Reduced sweep used by suite runs on the small collection profiles: it
#: still brackets the ~10^5-row crossover, but drops the 4M-row point whose
#: generation alone costs seconds.
REDUCED_ROW_COUNTS = (10, 100, 1_000, 10_000, 100_000, 1_000_000)


def row_counts_for_profile(profile: str) -> tuple:
    """Row grid matching a collection profile's size budget."""
    if profile in ("tiny", "small"):
        return REDUCED_ROW_COUNTS
    return DEFAULT_ROW_COUNTS

#: Average row length of the sweep matrices (mildly irregular, FEM-like).
SWEEP_AVG_ROW_LENGTH = SCALING_AVG_ROW_LENGTH


@dataclass(frozen=True)
class Fig6Point:
    """One x-position of the Fig. 6 plot."""

    rows: int
    nnz: int
    collection_ms: float
    kernel_ms: float

    @property
    def collection_dominates(self) -> bool:
        """Whether gathering features costs more than running the kernel."""
        return self.collection_ms >= self.kernel_ms


@dataclass
class Fig6Result:
    """The two series of Fig. 6 plus the crossover estimate."""

    points: list = field(default_factory=list)
    kernel_name: str = "CSR,BM"

    def crossover_rows(self) -> float:
        """Smallest swept row count where the kernel outweighs collection.

        Returns ``inf`` when collection dominates across the whole sweep.
        """
        for point in sorted(self.points, key=lambda p: p.rows):
            if not point.collection_dominates:
                return float(point.rows)
        return float("inf")

    def to_rows(self) -> list:
        """Rows (rows, nnz, collection_ms, kernel ms, collection dominates)."""
        return [
            (
                p.rows,
                p.nnz,
                round(p.collection_ms, 4),
                round(p.kernel_ms, 4),
                "yes" if p.collection_dominates else "no",
            )
            for p in sorted(self.points, key=lambda p: p.rows)
        ]

    def render(self) -> str:
        """Printable Fig. 6 series."""
        return (
            f"Fig. 6 — feature-collection cost vs {self.kernel_name} runtime\n"
            + format_table(
                [
                    "rows",
                    "nnz",
                    "collection ms",
                    f"{self.kernel_name} ms",
                    "collection >= kernel",
                ],
                self.to_rows(),
            )
            + f"\ncrossover at ~{self.crossover_rows():.0f} rows "
            "(paper: ~100,000 rows)"
        )

    def to_artifact(self) -> ExperimentArtifact:
        """Structured output: one row per swept size, full precision."""
        return ExperimentArtifact(
            columns=("rows", "nnz", "collection_ms", "kernel_ms", "collection_dominates"),
            rows=[
                (
                    p.rows,
                    p.nnz,
                    p.collection_ms,
                    p.kernel_ms,
                    "yes" if p.collection_dominates else "no",
                )
                for p in sorted(self.points, key=lambda p: p.rows)
            ],
            summary={
                "kernel": self.kernel_name,
                "crossover_rows": self.crossover_rows(),
            },
        )


def run_fig6(
    row_counts=DEFAULT_ROW_COUNTS, device=MI100, seed: int = 5, domain=None
) -> Fig6Result:
    """Sweep workload sizes and compare collection cost with a kernel's runtime."""
    domain = get_domain(domain)
    if domain.feature_cost_kernel is None:
        raise ValueError(
            f"domain {domain.name!r} declares no feature_cost_kernel; the "
            "feature-cost study is undefined for it"
        )
    collector = domain.make_collector(device)
    kernel = domain.make_kernel(domain.feature_cost_kernel, device)
    result = Fig6Result(kernel_name=kernel.name)
    for index, rows in enumerate(row_counts):
        workload = domain.scaling_workload(int(rows), seed=seed + index)
        collection_ms = collector.collection_time_ms(workload)
        kernel_ms = kernel.timing(workload).iteration_ms
        result.points.append(
            Fig6Point(
                rows=int(rows),
                nnz=workload.nnz,
                collection_ms=collection_ms,
                kernel_ms=kernel_ms,
            )
        )
    return result


@register_experiment(
    "fig6",
    title="Feature-collection cost sweep (Fig. 6)",
    needs_sweep=False,
    description="collection cost vs. the domain's reference kernel as the "
    "workload grows; crossover marks where gathering becomes affordable",
    # Only defined for domains that name a reference kernel (and therefore
    # implement scaling_workload); others are filtered out of the suite.
    predicate=lambda domain: domain.feature_cost_kernel is not None,
)
def _fig6_experiment(context) -> Fig6Result:
    return run_fig6(
        row_counts=row_counts_for_profile(context.profile),
        device=context.device,
        domain=context.domain,
    )
