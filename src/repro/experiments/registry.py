"""The experiment suite subsystem: registry, context and artifacts.

The drivers under :mod:`repro.experiments` regenerate the paper's figures
and tables.  Historically each was a free function hard-wired to the SpMV
case study; this module turns them into a *domain-parameterized suite*
mirroring the domain/kernel registries:

* :func:`register_experiment` — decorator registering a runner under a
  stable name, with the set of domains it supports (``None`` = every
  registered domain) and whether it needs a full pipeline sweep;
* :class:`ExperimentContext` — resolves the domain, collection profile and
  optional :class:`~repro.bench.engine.SweepEngine` once, then lazily runs
  (and caches) the one expensive sweep every experiment of a suite shares;
* :class:`ExperimentArtifact` — the structured output contract: every
  experiment result converts to one flat table (``to_artifact()``), which
  :func:`write_artifact` persists as ``<out>/<domain>/<experiment>/data.csv``
  plus a ``manifest.json`` sidecar.

Artifacts are deliberately deterministic — cell formatting is fixed
(``repr`` for floats) and manifests carry no timestamps or machine state —
so golden-file regression tests can assert byte-stable reproduction and a
warm engine cache must reproduce a cold run exactly.

``repro experiments list`` / ``repro experiments run`` expose the registry
from the command line.
"""

from __future__ import annotations

import csv
import io
import json
import numbers
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.bench.runner import run_sweep
from repro.domains import get_domain
from repro.domains.base import jsonable, suggest_names
from repro.experiments.common import DEFAULT_PROFILE
from repro.gpu.device import MI100, DeviceSpec

#: Bumped whenever the on-disk artifact layout changes.
ARTIFACT_FORMAT_VERSION = 1

_EXPERIMENTS = {}


# ----------------------------------------------------------------------
# Structured artifacts
# ----------------------------------------------------------------------
def format_cell(value) -> str:
    """Deterministic text form of one CSV cell.

    Floats use ``repr`` (shortest round-trippable form, stable across
    platforms), so artifacts are byte-identical run to run; infinities and
    NaNs come out as ``inf``/``nan``.
    """
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, numbers.Integral):
        return str(int(value))
    if isinstance(value, numbers.Real):
        return repr(float(value))
    return str(value)


@dataclass
class ExperimentArtifact:
    """One experiment's structured output: a flat table plus summary scalars."""

    columns: tuple
    rows: list
    summary: dict = field(default_factory=dict)

    def __post_init__(self):
        self.columns = tuple(str(column) for column in self.columns)
        self.rows = [tuple(row) for row in self.rows]
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"artifact row {row!r} has {len(row)} cells, expected "
                    f"{len(self.columns)} ({self.columns!r})"
                )

    def to_csv(self) -> str:
        """The table as deterministic CSV text (LF line endings)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow([format_cell(cell) for cell in row])
        return buffer.getvalue()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: metadata plus its runner."""

    name: str
    title: str
    runner: Callable
    domains: Optional[tuple] = None
    needs_sweep: bool = True
    description: str = ""
    predicate: Optional[Callable] = None

    def supports(self, domain) -> bool:
        """Whether the experiment is defined for ``domain``.

        An experiment is supported when the domain's name is in ``domains``
        (or ``domains`` is ``None``) *and* the optional capability
        ``predicate`` accepts the domain — so e.g. the feature-cost study is
        filtered out for domains that declare no reference kernel instead of
        crashing mid-suite.
        """
        domain = get_domain(domain)
        if self.domains is not None and domain.name not in self.domains:
            return False
        if self.predicate is not None and not self.predicate(domain):
            return False
        return True


def register_experiment(
    name: str,
    *,
    title: str,
    domains=None,
    needs_sweep: bool = True,
    description: str = "",
    predicate=None,
):
    """Register an experiment runner under ``name``.

    ``domains`` restricts the experiment to specific domain names (``None``
    means every registered domain) and ``predicate`` optionally narrows
    support further by inspecting the domain's capabilities; ``needs_sweep``
    marks experiments that read the shared pipeline sweep (so tooling knows
    whether ``--profile`` and the engine matter).  The runner receives an
    :class:`ExperimentContext` and returns a result object exposing
    ``render()`` and ``to_artifact()``.
    """

    def decorate(runner):
        if name in _EXPERIMENTS:
            raise ValueError(f"experiment {name!r} is already registered")
        _EXPERIMENTS[name] = ExperimentSpec(
            name=name,
            title=title,
            runner=runner,
            domains=tuple(domains) if domains is not None else None,
            needs_sweep=needs_sweep,
            description=description,
            predicate=predicate,
        )
        return runner

    return decorate


def unregister_experiment(name: str) -> None:
    """Remove a registered experiment (primarily for tests)."""
    _EXPERIMENTS.pop(name, None)


def experiment_names() -> tuple:
    """Registered experiment names, in registration (paper) order."""
    return tuple(_EXPERIMENTS)


def get_experiment(name: str) -> ExperimentSpec:
    """Look up one experiment; unknown names suggest close matches."""
    if name not in _EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; expected one of "
            f"{sorted(_EXPERIMENTS)}" + suggest_names(name, _EXPERIMENTS)
        )
    return _EXPERIMENTS[name]


def experiments_for(domain=None) -> tuple:
    """The specs applicable to ``domain``, in registration order."""
    domain = get_domain(domain)
    return tuple(spec for spec in _EXPERIMENTS.values() if spec.supports(domain))


# ----------------------------------------------------------------------
# Context
# ----------------------------------------------------------------------
class ExperimentContext:
    """Shared configuration and artifacts of one experiment-suite run.

    Resolves the domain once and lazily runs the one end-to-end sweep all
    experiments of the suite share — through the given engine when one is
    configured, so repeated suite runs are served from the three-tier disk
    cache instead of re-benchmarking.
    """

    def __init__(
        self,
        domain=None,
        profile: str = DEFAULT_PROFILE,
        engine=None,
        device: DeviceSpec = MI100,
        model_registry=None,
        corpus=None,
    ):
        self.domain = get_domain(domain)
        self.profile = profile
        self.engine = engine
        self.device = device
        if model_registry is not None:
            from repro.serving.registry import ModelRegistry

            if not isinstance(model_registry, ModelRegistry):
                model_registry = ModelRegistry(model_registry)
        self.model_registry = model_registry
        self.corpus = corpus
        self._sweep = None
        self._models = None
        self._corpus_records = {}

    def __repr__(self) -> str:
        return (
            f"ExperimentContext(domain={self.domain.name!r}, "
            f"profile={self.profile!r}, engine={self.engine!r})"
        )

    def sweep(self):
        """The context's pipeline sweep, run once and cached.

        With a ``model_registry``, the freshly trained models are also
        published to the registry, so one suite run leaves behind a
        servable model artifact for ``repro predict`` and later runs.
        """
        if self._sweep is None:
            self._sweep = run_sweep(
                profile=self.profile,
                device=self.device,
                engine=self.engine,
                domain=self.domain,
            )
            if self.model_registry is not None:
                self.model_registry.save(
                    self._sweep.models,
                    domain=self.domain,
                    profile=self.profile,
                    device=self.device,
                    evaluation=self._sweep.test_report.summary(),
                )
        return self._sweep

    def models(self):
        """Trained models for this configuration, registry-first.

        With a ``model_registry`` holding an artifact for this exact
        configuration (same config hash as the sweep tier), the models are
        served from disk without running any sweep; otherwise the shared
        sweep runs (training once) and its models are published to the
        registry for the next caller.
        """
        if self._models is not None:
            return self._models
        if self._sweep is None and self.model_registry is not None:
            loaded = self.model_registry.load_or_none(
                domain=self.domain, profile=self.profile, device=self.device
            )
            if loaded is not None:
                self._models = loaded
                return self._models
        self._models = self.sweep().models
        return self._models

    # ------------------------------------------------------------------
    # Ingested corpora
    # ------------------------------------------------------------------
    def corpus_requests(self, options=None, iterations: int = 1) -> list:
        """The corpus as unified :class:`~repro.serving.ServeRequest` objects.

        One request per discovered source, carrying the validated workload
        options — the same objects the serving daemon and ``repro serve``
        consume, so an experiment suite and a deployed service can never
        disagree about how a corpus is interpreted.
        """
        if self.corpus is None:
            raise ValueError(
                "this ExperimentContext has no corpus; pass "
                "ExperimentContext(corpus=<dir-or-manifest>)"
            )
        from repro.pipeline.sources import discover_sources
        from repro.serving.requests import requests_from_sources

        options = self.domain.validate_serving_options(options)
        return requests_from_sources(
            discover_sources(self.corpus), iterations=iterations, options=options
        )

    def corpus_records(self, options=None) -> list:
        """Workload records ingested from the context's raw-matrix corpus.

        ``corpus`` (constructor argument) is anything
        :func:`repro.pipeline.sources.discover_sources` understands — a
        directory of ``.mtx``/``.mtx.gz``/``.npz`` files, a manifest, a
        single file or a ``recipe:`` spec.  Parsed matrices are served from
        the engine's content-addressed ingest cache tier when the context
        has a caching engine.  Records are memoized per option set, so one
        suite run ingests the corpus once however many experiments ask.
        """
        if self.corpus is None:
            raise ValueError(
                "this ExperimentContext has no corpus; pass "
                "ExperimentContext(corpus=<dir-or-manifest>)"
            )
        memo_key = tuple(sorted((options or {}).items()))
        if memo_key not in self._corpus_records:
            from repro.serving.ingest import ingest_records

            cache_dir = self.engine.cache_dir if self.engine is not None else None
            self._corpus_records[memo_key] = ingest_records(
                self.corpus,
                domain=self.domain,
                cache_dir=cache_dir,
                options=options,
            )
        return self._corpus_records[memo_key]

    def corpus_suite(self, options=None):
        """Benchmark + featurize the ingested corpus with the suite machinery.

        This is how experiments consume ingested corpora: the returned
        :class:`~repro.core.benchmarking.BenchmarkSuite` has exactly the
        shape the sweep produces for synthetic profiles, with every feature
        extracted through the shared :class:`~repro.pipeline.FeaturePipeline`.
        ``options`` are domain-specific workload parameters forwarded to
        :meth:`corpus_records` (e.g. SpMM's ``num_vectors``).
        """
        from repro.core.benchmarking import run_benchmark_suite

        return run_benchmark_suite(
            self.corpus_records(options=options),
            device=self.device,
            domain=self.domain,
        )

    def corpus_feedback(self, models=None, options=None, iterations: int = 1):
        """Measured serving feedback over the ingested corpus.

        Re-benchmarks the corpus on every kernel (through
        :meth:`corpus_suite`, so the ingest and engine caches apply) and
        scores ``models`` — the context's own registry-first models when
        omitted — against the oracle.  The returned
        :class:`~repro.serving.feedback.FeedbackResult` is what
        ``repro serve --measure`` writes and ``repro promote`` consumes.
        """
        from repro.serving.feedback import measure_feedback

        if models is None:
            models = self.models()
        return measure_feedback(
            models, self.corpus_suite(options=options), iterations=iterations
        )


def run_experiment(experiment, context: ExperimentContext):
    """Run one experiment (name or spec) under ``context``."""
    spec = experiment if isinstance(experiment, ExperimentSpec) else get_experiment(experiment)
    if not spec.supports(context.domain):
        supported = "restricted" if spec.domains is None else ", ".join(spec.domains)
        raise ValueError(
            f"experiment {spec.name!r} does not support domain "
            f"{context.domain.name!r} (supported: {supported})"
        )
    return spec.runner(context)


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def artifact_dir(out_dir, spec: ExperimentSpec, context: ExperimentContext) -> Path:
    """Directory one experiment's artifacts land in."""
    return Path(out_dir) / context.domain.name / spec.name


def write_artifact(
    spec: ExperimentSpec, context: ExperimentContext, result, out_dir
) -> dict:
    """Persist one experiment result as ``data.csv`` + ``manifest.json``.

    Returns ``{"dir": ..., "data": ..., "manifest": ...}`` paths.  Output is
    fully deterministic for a given configuration (no timestamps, fixed cell
    formatting), which is what the golden-artifact and warm/cold-parity
    regression tests assert.
    """
    artifact = result.to_artifact()
    directory = artifact_dir(out_dir, spec, context)
    directory.mkdir(parents=True, exist_ok=True)
    data_path = directory / "data.csv"
    data_path.write_text(artifact.to_csv(), encoding="utf-8")

    # The engine's configuration documents how the artifact was produced;
    # its activity counters are excluded so a warm-cache rerun writes a
    # byte-identical manifest.
    engine_config = None
    if context.engine is not None:
        engine_config = {
            key: value
            for key, value in context.engine.describe().items()
            if key != "stats"
        }
    manifest = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "experiment": spec.name,
        "title": spec.title,
        "description": spec.description,
        "domain": context.domain.describe(),
        "device": context.device.name,
        "profile": context.profile if spec.needs_sweep else None,
        "engine": engine_config,
        "columns": list(artifact.columns),
        "row_count": len(artifact.rows),
        "summary": jsonable(artifact.summary),
    }
    if spec.needs_sweep:
        manifest["sweep_summary"] = jsonable(context.sweep().test_report.summary())
    manifest_path = directory / "manifest.json"
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return {"dir": directory, "data": data_path, "manifest": manifest_path}
