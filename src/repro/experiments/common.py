"""Shared infrastructure for the experiment drivers.

The per-process sweep cache here serves the legacy free-function entry
points (``run_fig1(profile=...)`` and friends).  Suite-level runs go through
:class:`repro.experiments.registry.ExperimentContext`, which additionally
resolves a domain and shares one sweep across every experiment of a run.
"""

from __future__ import annotations

from functools import lru_cache

from repro.bench.engine import engine_from_env
from repro.bench.runner import SweepResult, run_sweep

#: Default collection profile used by the experiment drivers.  ``medium`` is
#: large enough to leave the launch-overhead-dominated regime; the benchmark
#: harness upgrades the headline experiments to ``full``.
DEFAULT_PROFILE = "medium"

_default_engine = None
_engine_initialized = False


def set_default_engine(engine) -> None:
    """Route every subsequent :func:`get_sweep` through ``engine``.

    Pass ``None`` to force the plain serial path.  The CLI calls this once at
    startup with the engine built from ``--jobs``/``--cache-dir``.
    """
    global _default_engine, _engine_initialized
    _default_engine = engine
    _engine_initialized = True


def default_engine():
    """Engine shared by the experiment drivers.

    Unless overridden via :func:`set_default_engine`, it is built lazily
    from the ``SEER_JOBS``/``SEER_CACHE_DIR`` environment variables and is
    ``None`` (serial path) when neither is set.
    """
    global _default_engine, _engine_initialized
    if not _engine_initialized:
        _default_engine = engine_from_env()
        _engine_initialized = True
    return _default_engine


@lru_cache(maxsize=4)
def get_sweep(profile: str = DEFAULT_PROFILE) -> SweepResult:
    """Run (once) and cache the end-to-end pipeline for a profile.

    Every experiment driver shares the same sweep per profile so the
    benchmarking work is not repeated for each table/figure.  With a default
    engine configured, the sweep is additionally shared *across* processes
    through the engine's on-disk cache and its benchmarking stage runs on
    worker processes.
    """
    return run_sweep(profile=profile, engine=default_engine())


def resolve_sweep(sweep, profile: str) -> SweepResult:
    """Return ``sweep`` if given, otherwise the cached sweep for ``profile``."""
    if sweep is not None:
        return sweep
    return get_sweep(profile)


def format_table(headers, rows) -> str:
    """Render a small left-aligned text table (no external dependencies)."""
    headers = [str(h) for h in headers]
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[col]), max((len(r[col]) for r in rendered), default=0))
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
