"""Command-line interface for the Seer reproduction.

``repro`` (also installed as ``seer-repro``, or ``python -m repro``) exposes
the pipeline stages, the model registry and the experiment suite:

.. code-block:: console

   repro sweep --profile small --output-dir out/   # benchmark + train
   repro sweep --profile medium --jobs 8 --cache-dir ~/.cache/seer
   repro train --profile small --save models/      # train once, register
   repro predict --model models/spmv/small/<hash>  # inspect the artifact
   repro predict --model ... --batch features.csv  # serve a feature batch
   repro serve --model ... matrices/ --jobs 4      # serve raw matrix files
   repro experiments list                          # registered experiments
   repro experiments run --all --domain spmv --profile tiny --out-dir out/
   repro experiments run fig1 table3 --domain spmm --profile tiny
   repro fig1                                      # legacy per-figure entry
   repro fig5 --profile full                       # Fig. 5 a-d
   repro accuracy                                  # Section IV-C numbers

``--jobs`` fans the benchmarking stage out over worker processes and
``--cache-dir`` persists per-matrix measurements and whole sweep artifacts,
so repeated invocations (and different experiments sharing one
configuration) skip the benchmarking work entirely.  ``--out-dir`` writes
each experiment's structured artifacts (``data.csv`` + ``manifest.json``)
under ``<out>/<domain>/<experiment>/``.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from repro.bench.engine import SweepEngine, engine_from_env
from repro.bench.runner import run_sweep
from repro.core.codegen import write_cpp_header, write_python_module
from repro.domains import DEFAULT_DOMAIN, domain_names
from repro.experiments.common import DEFAULT_PROFILE
from repro.experiments.registry import (
    ExperimentContext,
    experiment_names,
    experiments_for,
    get_experiment,
    run_experiment,
    write_artifact,
)
from repro.sparse.collection import PROFILE_NAMES


def _add_profile(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        default=DEFAULT_PROFILE,
        choices=list(PROFILE_NAMES),
        help="synthetic collection profile to benchmark on",
    )


def _add_domain(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--domain",
        default=DEFAULT_DOMAIN,
        choices=list(domain_names()),
        help="problem domain to sweep (default: %(default)s)",
    )


def _jobs_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 means one per CPU)")
    return value


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_jobs_count,
        default=None,
        metavar="N",
        help="worker processes for the benchmarking stage "
        "(1 = serial, 0 = one per CPU; default: SEER_JOBS or serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="directory for persistent sweep/measurement artifacts "
        "(default: SEER_CACHE_DIR or no disk caching)",
    )


def _resolve_engine(args) -> SweepEngine:
    """Engine described by ``--jobs``/``--cache-dir``, or ``None`` for serial.

    Each explicit flag overrides its ``SEER_JOBS``/``SEER_CACHE_DIR``
    environment variable independently (so ``--jobs 1`` forces the serial
    benchmarking stage even with ``SEER_JOBS`` exported); with neither flags
    nor environment, the serial reference path runs.
    """
    try:
        return engine_from_env(jobs=args.jobs, cache_dir=args.cache_dir)
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None


def _engine_status_line(engine: SweepEngine) -> str:
    """One-line summary of what an engine did (parallelism + cache tiers)."""
    stats = engine.stats
    if engine.cache_dir is None:
        cache_state = "off"
    else:
        cache_state = "hit" if stats.sweep_cache_hits else "miss"
    return (
        f"engine: jobs={engine.jobs} measured={stats.matrices_measured} "
        f"measurement-cache-hits={stats.measurement_cache_hits} "
        f"sweep-cache={cache_state}"
    )


def _cmd_sweep(args) -> int:
    engine = _resolve_engine(args)
    sweep = run_sweep(profile=args.profile, engine=engine, domain=args.domain)
    report = sweep.test_report
    print(
        f"domain {sweep.suite.domain_name}: benchmarked {len(sweep.suite)} "
        f"workloads, {len(sweep.dataset)} samples"
    )
    print(f"known/gathered accuracy: {report.accuracy('Known'):.2f} / "
          f"{report.accuracy('Gathered'):.2f}")
    print(f"selector routing accuracy: {report.selector_choice_accuracy():.2f}")
    print(f"selector slowdown vs Oracle: {report.slowdown_vs_oracle():.2f}x")
    if engine is not None:
        print(_engine_status_line(engine))
    if args.output_dir:
        output = Path(args.output_dir)
        sweep.suite.save(output)
        write_cpp_header(sweep.models, output / "seer_models.h")
        write_python_module(sweep.models, output / "seer_models.py")
        print(f"wrote CSVs and generated models to {output}")
    return 0


# ----------------------------------------------------------------------
# The serving layer: train --save / predict
# ----------------------------------------------------------------------
def _cmd_train(args) -> int:
    """Run the training sweep and register the models as an artifact."""
    from repro.serving.registry import ModelRegistry

    engine = _resolve_engine(args)
    sweep = run_sweep(profile=args.profile, engine=engine, domain=args.domain)
    registry = ModelRegistry(args.save)
    model_path = registry.save(
        sweep.models, domain=args.domain, profile=args.profile
    )
    report = sweep.test_report
    print(
        f"domain {sweep.suite.domain_name}: trained on {len(sweep.train_set)} "
        f"samples ({len(sweep.suite)} workloads, profile {args.profile!r})"
    )
    print(f"known/gathered accuracy: {report.accuracy('Known'):.2f} / "
          f"{report.accuracy('Gathered'):.2f}")
    print(f"selector slowdown vs Oracle: {report.slowdown_vs_oracle():.2f}x")
    if engine is not None:
        print(_engine_status_line(engine))
    print(f"registered model: {model_path}")
    return 0


def _batch_rows(path: Path) -> list:
    """Rows of a feature CSV as dictionaries (header required)."""
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise SystemExit(f"repro: error: {path} is empty (no CSV header)")
        return list(reader)


def _feature_matrix(rows, names, path, kind: str):
    """Extract the named feature columns of every row as floats.

    Validation lives in :func:`repro.serving.ingest.feature_matrix` — the
    same helper ``repro serve`` uses — so both serving entry points reject
    missing columns and unparseable numeric cells with identical one-line
    errors (non-zero exit, no traceback).
    """
    from repro.serving.ingest import IngestError, feature_matrix

    try:
        return feature_matrix(rows, names, path, kind)
    except IngestError as error:
        raise SystemExit(f"repro: error: {error}") from None


def _cmd_predict(args) -> int:
    """Serve (or inspect) a registered model artifact."""
    from repro.serving.artifacts import ModelArtifactError, load_artifact

    try:
        artifact = load_artifact(args.model)
    except ModelArtifactError as error:
        raise SystemExit(f"repro: error: {error}") from None
    models = artifact.models
    if args.batch is None:
        print(f"model artifact: {artifact.path}")
        print(f"domain: {artifact.domain_name or 'unspecified'}")
        print(f"training samples: {models.training_size}")
        print(f"kernels: {', '.join(models.kernel_names)}")
        print(f"known features: {', '.join(models.known_feature_names)}")
        print(f"gathered features: {', '.join(models.gathered_feature_names)}")
        for label, model in (
            ("known", models.known_model),
            ("gathered", models.gathered_model),
            ("selector", models.selector_model),
        ):
            print(
                f"{label} tree: {model.num_nodes_} nodes, depth {model.depth()}"
            )
        return 0

    batch_path = Path(args.batch)
    rows = _batch_rows(batch_path)
    if not rows:
        raise SystemExit(f"repro: error: {batch_path} has no data rows")
    known_matrix = _feature_matrix(
        rows, models.known_feature_names, batch_path, "known"
    )
    gathered_matrix = None
    present = set(rows[0])
    gathered_names = models.gathered_feature_names
    if gathered_names and all(name in present for name in gathered_names):
        gathered_matrix = _feature_matrix(
            rows, gathered_names, batch_path, "gathered"
        )
    selection = models.predict_batch(known_matrix, gathered_matrix)
    try:
        kernels = selection.kernels
    except ValueError as error:
        hint = (
            f" (add the {', '.join(gathered_names)} columns to {batch_path})"
            if gathered_names
            else ""
        )
        raise SystemExit(f"repro: error: {error}{hint}") from None
    writer = csv.writer(sys.stdout, lineterminator="\n")
    has_names = "name" in present
    header = ["name"] if has_names else []
    writer.writerow(header + ["selector_choice", "kernel"])
    for index, row in enumerate(rows):
        prefix = [row["name"]] if has_names else []
        writer.writerow(
            prefix + [selection.selector_choices[index], kernels[index]]
        )
    return 0


# ----------------------------------------------------------------------
# Raw-matrix serving: repro serve
# ----------------------------------------------------------------------
def _cmd_serve(args) -> int:
    """Ingest raw matrix files and serve kernel decisions from a model."""
    from repro.pipeline.sources import MatrixSourceError, discover_sources
    from repro.serving.artifacts import ModelArtifactError, load_artifact
    from repro.serving.ingest import (
        IngestError,
        parse_workload_options,
        serve_sources,
        write_serve_artifact,
    )
    from repro.sparse.coo import SparseFormatError

    try:
        artifact = load_artifact(args.model)
    except ModelArtifactError as error:
        raise SystemExit(f"repro: error: {error}") from None
    domain = artifact.domain_name or DEFAULT_DOMAIN
    engine = _resolve_engine(args)
    jobs = engine.jobs if engine is not None else 1
    cache_dir = engine.cache_dir if engine is not None else None
    try:
        options = parse_workload_options(args.workload_option)
        sources = discover_sources(args.corpus)
        result = serve_sources(
            sources,
            artifact.models,
            domain=domain,
            iterations=args.iterations,
            jobs=jobs,
            cache_dir=cache_dir,
            options=options,
        )
    except (IngestError, MatrixSourceError, SparseFormatError, ValueError) as error:
        raise SystemExit(f"repro: error: {error}") from None
    print(result.render())
    model_info = {
        "domain": artifact.domain_name,
        "kernels": list(artifact.models.kernel_names),
        "training_size": int(artifact.models.training_size),
    }
    paths = write_serve_artifact(result, args.out_dir, model_info=model_info)
    stats = result.stats
    print(
        f"ingest: parsed={stats.matrices_ingested} "
        f"cache-hits={stats.ingest_cache_hits} jobs={jobs}"
    )
    print(f"wrote {paths['data']} and {paths['manifest']}")
    return 0


# ----------------------------------------------------------------------
# The experiment suite
# ----------------------------------------------------------------------
def _cmd_experiments_list(args) -> int:
    for name in experiment_names():
        spec = get_experiment(name)
        domains = "all domains" if spec.domains is None else ", ".join(spec.domains)
        sweep_note = "" if spec.needs_sweep else " (no sweep needed)"
        print(f"{spec.name:<18} {spec.title} [{domains}]{sweep_note}")
    return 0


def _select_specs(args):
    """Experiment specs named on the command line, validated for the domain."""
    if args.all and args.names:
        raise SystemExit("repro: error: give experiment names or --all, not both")
    if args.all:
        return experiments_for(args.domain)
    if not args.names:
        raise SystemExit(
            "repro: error: name at least one experiment or pass --all "
            f"(registered: {', '.join(experiment_names())})"
        )
    specs = []
    for name in args.names:
        try:
            spec = get_experiment(name)
        except KeyError as error:
            raise SystemExit(f"repro: error: {error.args[0]}") from None
        if not spec.supports(args.domain):
            supported = (
                "restricted" if spec.domains is None else ", ".join(spec.domains)
            )
            raise SystemExit(
                f"repro: error: experiment {name!r} does not support domain "
                f"{args.domain!r} (supported: {supported})"
            )
        specs.append(spec)
    return specs


def _cmd_experiments_run(args) -> int:
    specs = _select_specs(args)
    context = ExperimentContext(
        domain=args.domain,
        profile=args.profile,
        engine=_resolve_engine(args),
        model_registry=args.model_dir,
    )
    engine = context.engine
    for spec in specs:
        result = run_experiment(spec, context)
        print(result.render())
        if args.out_dir:
            paths = write_artifact(spec, context, result, args.out_dir)
            print(f"[{spec.name}] wrote {paths['data']} and {paths['manifest']}")
        print()
    if engine is not None:
        print(_engine_status_line(engine))
    return 0


def _cmd_experiment(name: str):
    """Legacy single-experiment command (``repro fig1`` etc.)."""

    def command(args) -> int:
        context = ExperimentContext(
            profile=getattr(args, "profile", DEFAULT_PROFILE),
            engine=_resolve_engine(args),
        )
        result = run_experiment(name, context)
        print(result.render())
        return 0

    return command


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Seer (CGO 2024) reproduction: benchmarking, training and experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="run the full pipeline and optionally export CSVs")
    _add_profile(sweep)
    _add_domain(sweep)
    _add_engine_options(sweep)
    sweep.add_argument("--output-dir", default=None, help="directory for CSVs and generated headers")
    sweep.set_defaults(func=_cmd_sweep)

    train = sub.add_parser(
        "train",
        help="run the training sweep and save the models to a registry",
    )
    _add_profile(train)
    _add_domain(train)
    _add_engine_options(train)
    train.add_argument(
        "--save", required=True, metavar="DIR",
        help="model-registry root; the artifact lands under "
        "DIR/<domain>/<profile>/<config-hash>/model.json",
    )
    train.set_defaults(func=_cmd_train)

    predict = sub.add_parser(
        "predict",
        help="inspect a saved model artifact or serve a feature-batch CSV",
    )
    predict.add_argument(
        "--model", required=True, metavar="PATH",
        help="path to a model.json (or the directory containing it)",
    )
    predict.add_argument(
        "--batch", default=None, metavar="CSV",
        help="CSV of feature rows (known feature columns required, gathered "
        "columns optional); predictions are written to stdout",
    )
    predict.set_defaults(func=_cmd_predict)

    serve = sub.add_parser(
        "serve",
        help="ingest raw matrix files (.mtx/.mtx.gz/.npz/recipe:) and serve "
        "kernel decisions from a registered model",
    )
    serve.add_argument(
        "corpus", metavar="PATH",
        help="matrix directory, manifest file, single matrix file or a "
        "recipe:<builder>?key=value spec",
    )
    serve.add_argument(
        "--model", required=True, metavar="PATH",
        help="path to a model.json (or the directory containing it)",
    )
    serve.add_argument(
        "--iterations", type=int, default=1, metavar="N",
        help="iteration count the decisions assume (default: %(default)s)",
    )
    serve.add_argument(
        "--out-dir", default=".", metavar="DIR",
        help="directory for decisions.csv + manifest.json (default: cwd)",
    )
    serve.add_argument(
        "--workload-option", action="append", default=[], metavar="KEY=VALUE",
        help="domain-specific workload parameter (e.g. num_vectors=8 for "
        "spmm); may be repeated",
    )
    _add_engine_options(serve)
    serve.set_defaults(func=_cmd_serve)

    experiments = sub.add_parser(
        "experiments", help="list or run the registered experiment suite"
    )
    experiments_sub = experiments.add_subparsers(
        dest="experiments_command", required=True
    )
    list_parser = experiments_sub.add_parser(
        "list", help="show every registered experiment and its domains"
    )
    list_parser.set_defaults(func=_cmd_experiments_list)
    run_parser = experiments_sub.add_parser(
        "run", help="run experiments for one domain, optionally writing artifacts"
    )
    run_parser.add_argument(
        "names", nargs="*", metavar="EXPERIMENT",
        help="experiments to run (see 'repro experiments list')",
    )
    run_parser.add_argument(
        "--all", action="store_true",
        help="run every experiment the domain supports",
    )
    _add_domain(run_parser)
    _add_profile(run_parser)
    _add_engine_options(run_parser)
    run_parser.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="write data.csv + manifest.json per experiment under DIR/<domain>/<name>/",
    )
    run_parser.add_argument(
        "--model-dir", default=None, metavar="DIR",
        help="model-registry root: publish the suite's trained models there, "
        "servable later via 'repro predict' or ExperimentContext.models()",
    )
    run_parser.set_defaults(func=_cmd_experiments_run)

    legacy = {
        "fig1": (True, "fastest-kernel-per-matrix survey (Fig. 1)"),
        "fig5": (True, "single-iteration predictor comparison (Fig. 5)"),
        "fig6": (False, "feature-collection cost sweep (Fig. 6)"),
        "fig7": (True, "multi-iteration amortization study (Fig. 7)"),
        "table1": (False, "capability comparison (Table I)"),
        "table3": (True, "Kendall correlations (Table III)"),
        "accuracy": (True, "model accuracies (Section IV-C)"),
    }
    for name, (needs_profile, help_text) in legacy.items():
        sub_parser = sub.add_parser(name, help=help_text)
        if needs_profile:
            _add_profile(sub_parser)
        _add_engine_options(sub_parser)
        sub_parser.set_defaults(func=_cmd_experiment(name))
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
