"""Command-line interface for the Seer reproduction.

``repro`` (also installed as ``seer-repro``, or ``python -m repro``) exposes
the pipeline stages, the model registry and the experiment suite:

.. code-block:: console

   repro sweep --profile small --output-dir out/   # benchmark + train
   repro sweep --profile medium --jobs 8 --cache-dir ~/.cache/seer
   repro train --profile small --save models/      # train once, register
   repro predict --model models/spmv/small/<hash>  # inspect the artifact
   repro predict --model ... --batch features.csv  # serve a feature batch
   repro serve --model ... matrices/ --jobs 4      # serve raw matrix files
   repro serve --daemon --config service.toml      # persistent daemon
   repro bench serve --model ...                   # serving load generator
   repro experiments list                          # registered experiments
   repro experiments run --all --domain spmv --profile tiny --out-dir out/
   repro experiments run fig1 table3 --domain spmm --profile tiny
   repro fig1                                      # legacy per-figure entry
   repro fig5 --profile full                       # Fig. 5 a-d
   repro accuracy                                  # Section IV-C numbers

``--jobs`` fans the benchmarking stage out over worker processes and
``--cache-dir`` persists per-matrix measurements and whole sweep artifacts,
so repeated invocations (and different experiments sharing one
configuration) skip the benchmarking work entirely.  ``--out-dir`` writes
each experiment's structured artifacts (``data.csv`` + ``manifest.json``)
under ``<out>/<domain>/<experiment>/``.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from repro.bench.engine import SweepEngine, engine_from_env
from repro.bench.runner import run_sweep
from repro.core.benchmarking import TIMING_MODES
from repro.core.codegen import write_cpp_header, write_python_module
from repro.gpu.simulator import PRECISION_MODES
from repro.domains import DEFAULT_DOMAIN, domain_names
from repro.experiments.common import DEFAULT_PROFILE
from repro.experiments.registry import (
    ExperimentContext,
    experiment_names,
    experiments_for,
    get_experiment,
    run_experiment,
    write_artifact,
)
from repro.sparse.collection import PROFILE_NAMES


def _add_profile(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        default=DEFAULT_PROFILE,
        choices=list(PROFILE_NAMES),
        help="synthetic collection profile to benchmark on",
    )


def _add_domain(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--domain",
        default=DEFAULT_DOMAIN,
        choices=list(domain_names()),
        help="problem domain to sweep (default: %(default)s)",
    )


def _jobs_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 means one per CPU)")
    return value


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_jobs_count,
        default=None,
        metavar="N",
        help="worker processes for the benchmarking stage "
        "(1 = serial, 0 = one per CPU; default: SEER_JOBS or serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="directory for persistent sweep/measurement artifacts "
        "(default: SEER_CACHE_DIR or no disk caching)",
    )
    parser.add_argument(
        "--precision",
        default=None,
        choices=list(PRECISION_MODES),
        help="measurement precision: 'exact' is the golden-pinned reference, "
        "'fast' fuses the per-kernel cost-model transforms "
        "(tolerance-guarded; default: exact)",
    )
    parser.add_argument(
        "--timing-mode",
        default=None,
        choices=list(TIMING_MODES),
        help="'batched' one-shot launch-table timing or the 'scalar' "
        "per-kernel ground-truth loop "
        "(default: batched, or the deprecated SEER_SCALAR_TIMING fallback)",
    )


def _resolve_engine(args) -> SweepEngine:
    """Engine described by ``--jobs``/``--cache-dir``/``--precision``, or ``None``.

    Each explicit flag overrides its ``SEER_JOBS``/``SEER_CACHE_DIR``
    environment variable independently (so ``--jobs 1`` forces the serial
    benchmarking stage even with ``SEER_JOBS`` exported); with neither flags
    nor environment, the serial reference path runs.  ``--timing-mode`` and
    ``--precision`` likewise override the deprecated ``SEER_SCALAR_TIMING``
    fallback; any non-default value forces an engine so the choice is
    threaded explicitly instead of through the environment.
    """
    try:
        return engine_from_env(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            timing_mode=getattr(args, "timing_mode", None),
            precision=getattr(args, "precision", None),
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None


def _engine_status_line(engine: SweepEngine) -> str:
    """One-line summary of what an engine did (parallelism + cache tiers)."""
    stats = engine.stats
    if engine.cache_dir is None:
        cache_state = "off"
    else:
        cache_state = "hit" if stats.sweep_cache_hits else "miss"
    return (
        f"engine: jobs={engine.jobs} measured={stats.matrices_measured} "
        f"measurement-cache-hits={stats.measurement_cache_hits} "
        f"sweep-cache={cache_state}"
    )


def _cmd_sweep(args) -> int:
    engine = _resolve_engine(args)
    sweep = run_sweep(profile=args.profile, engine=engine, domain=args.domain)
    report = sweep.test_report
    print(
        f"domain {sweep.suite.domain_name}: benchmarked {len(sweep.suite)} "
        f"workloads, {len(sweep.dataset)} samples"
    )
    print(f"known/gathered accuracy: {report.accuracy('Known'):.2f} / "
          f"{report.accuracy('Gathered'):.2f}")
    print(f"selector routing accuracy: {report.selector_choice_accuracy():.2f}")
    print(f"selector slowdown vs Oracle: {report.slowdown_vs_oracle():.2f}x")
    if engine is not None:
        print(_engine_status_line(engine))
    if args.output_dir:
        output = Path(args.output_dir)
        sweep.suite.save(output)
        write_cpp_header(sweep.models, output / "seer_models.h")
        write_python_module(sweep.models, output / "seer_models.py")
        print(f"wrote CSVs and generated models to {output}")
    return 0


# ----------------------------------------------------------------------
# The serving layer: train --save / predict
# ----------------------------------------------------------------------
def _cmd_train(args) -> int:
    """Run the training sweep and register the models as an artifact."""
    from repro.serving.registry import ModelRegistry

    engine = _resolve_engine(args)
    sweep = run_sweep(profile=args.profile, engine=engine, domain=args.domain)
    registry = ModelRegistry(args.save)
    model_path = registry.save(
        sweep.models,
        domain=args.domain,
        profile=args.profile,
        evaluation=sweep.test_report.summary(),
    )
    report = sweep.test_report
    print(
        f"domain {sweep.suite.domain_name}: trained on {len(sweep.train_set)} "
        f"samples ({len(sweep.suite)} workloads, profile {args.profile!r})"
    )
    print(f"known/gathered accuracy: {report.accuracy('Known'):.2f} / "
          f"{report.accuracy('Gathered'):.2f}")
    print(f"selector slowdown vs Oracle: {report.slowdown_vs_oracle():.2f}x")
    if engine is not None:
        print(_engine_status_line(engine))
    print(f"registered model: {model_path}")
    return 0


def _batch_rows(path: Path) -> list:
    """Rows of a feature CSV as dictionaries (header required)."""
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise SystemExit(f"repro: error: {path} is empty (no CSV header)")
        return list(reader)


def _cmd_predict(args) -> int:
    """Serve (or inspect) a registered model artifact."""
    from repro.serving.artifacts import ModelArtifactError, load_artifact
    from repro.serving.requests import (
        IngestError,
        evaluate_requests,
        requests_from_rows,
    )

    try:
        artifact = load_artifact(args.model)
    except ModelArtifactError as error:
        raise SystemExit(f"repro: error: {error}") from None
    models = artifact.models
    if args.batch is None:
        print(f"model artifact: {artifact.path}")
        print(f"domain: {artifact.domain_name or 'unspecified'}")
        print(f"training samples: {models.training_size}")
        print(f"kernels: {', '.join(models.kernel_names)}")
        print(f"known features: {', '.join(models.known_feature_names)}")
        print(f"gathered features: {', '.join(models.gathered_feature_names)}")
        for label, model in (
            ("known", models.known_model),
            ("gathered", models.gathered_model),
            ("selector", models.selector_model),
        ):
            print(
                f"{label} tree: {model.num_nodes_} nodes, depth {model.depth()}"
            )
        return 0

    batch_path = Path(args.batch)
    rows = _batch_rows(batch_path)
    if not rows:
        raise SystemExit(f"repro: error: {batch_path} has no data rows")
    # The whole CSV becomes one admission batch of the unified serving core:
    # validation (shared error formatter) and vectorized tree inference are
    # exactly what the daemon and `repro serve` run.
    try:
        requests = requests_from_rows(rows, models, batch_path)
        responses, _ = evaluate_requests(
            models, requests, execute=False, strict=True
        )
    except IngestError as error:
        raise SystemExit(f"repro: error: {error}") from None
    writer = csv.writer(sys.stdout, lineterminator="\n")
    has_names = "name" in set(rows[0])
    header = ["name"] if has_names else []
    writer.writerow(header + ["selector_choice", "kernel"])
    for row, response in zip(rows, responses):
        prefix = [row["name"]] if has_names else []
        writer.writerow(prefix + [response.selector_choice, response.kernel])
    return 0


# ----------------------------------------------------------------------
# Selector code generation: repro codegen
# ----------------------------------------------------------------------
def _cmd_codegen(args) -> int:
    """Emit a standalone selector from a registered model artifact."""
    from repro.core.codegen import models_to_cpp_header, models_to_python_module
    from repro.serving.artifacts import ModelArtifactError, load_artifact

    try:
        artifact = load_artifact(args.model)
    except ModelArtifactError as error:
        raise SystemExit(f"repro: error: {error}") from None
    if args.install:
        from repro.serving.backends import emit_selector_module

        if args.language != "py":
            raise SystemExit(
                "repro: error: --install caches the Python selector "
                "(use --language py)"
            )
        if artifact.path is None:
            raise SystemExit(
                "repro: error: --install needs a model artifact on disk"
            )
        installed = emit_selector_module(artifact.models, artifact.path)
        print(f"installed codegen selector: {installed}")
        return 0
    if args.language == "cpp":
        rendered = models_to_cpp_header(artifact.models)
    else:
        rendered = models_to_python_module(artifact.models)
    if args.output is None:
        sys.stdout.write(rendered)
        return 0
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(rendered, encoding="utf-8")
    print(f"wrote {args.language} selector: {output}")
    return 0


# ----------------------------------------------------------------------
# Raw-matrix serving: repro serve
# ----------------------------------------------------------------------
def _cmd_serve_daemon(args) -> int:
    """Run the persistent serving daemon (``repro serve --daemon``)."""
    import json
    import signal
    import threading

    from repro.serving.ingest import IngestError, parse_workload_options
    from repro.serving.service import (
        ServiceConfig,
        ServiceConfigError,
        ServingService,
    )

    try:
        if args.config is not None:
            config = ServiceConfig.from_toml(args.config)
        else:
            if args.model is None:
                raise ServiceConfigError(
                    "daemon mode needs --model PATH or --config service.toml"
                )
            config = ServiceConfig(model=args.model)
        options = parse_workload_options(args.workload_option)
        config = config.with_overrides(
            model=args.model,
            host=args.host,
            port=args.port,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            cache_dir=args.cache_dir,
            iterations=args.iterations,
            log_dir=args.log_dir,
            feedback_dir=args.feedback_dir,
            drift_threshold=args.drift_threshold,
            backend=args.backend,
            precision=args.precision,
            options=options or None,
        )
        service = ServingService(config)
    except (ServiceConfigError, IngestError, OSError) as error:
        raise SystemExit(f"repro: error: {error}") from None
    host, port = service.address
    print(
        f"serving daemon listening on http://{host}:{port} "
        f"(model {service.hub.default_key}, "
        f"max_batch_size={config.max_batch_size}, "
        f"max_wait_ms={config.max_wait_ms})",
        flush=True,
    )

    def request_shutdown(signum, frame):
        # Never call shutdown() on the thread running serve_forever — it
        # blocks on the accept loop it would be stopping.
        threading.Thread(target=service.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, request_shutdown)
    signal.signal(signal.SIGINT, request_shutdown)
    service.serve_forever()
    print(json.dumps(service.summary(), indent=2, sort_keys=True))
    return 0


def _cmd_serve(args) -> int:
    """Ingest raw matrix files and serve kernel decisions from a model."""
    from repro.pipeline.sources import MatrixSourceError, discover_sources
    from repro.serving.artifacts import ModelArtifactError, load_artifact
    from repro.serving.ingest import (
        IngestError,
        parse_workload_options,
        serve_sources,
        write_serve_artifact,
    )
    from repro.sparse.coo import SparseFormatError

    if args.daemon:
        return _cmd_serve_daemon(args)
    if args.corpus is None:
        raise SystemExit(
            "repro: error: one-shot serve needs a corpus PATH "
            "(or pass --daemon to run the persistent service)"
        )
    if args.model is None:
        raise SystemExit("repro: error: serve needs --model PATH")
    try:
        artifact = load_artifact(args.model)
    except ModelArtifactError as error:
        raise SystemExit(f"repro: error: {error}") from None
    domain = artifact.domain_name or DEFAULT_DOMAIN
    engine = _resolve_engine(args)
    jobs = engine.jobs if engine is not None else 1
    cache_dir = engine.cache_dir if engine is not None else None
    try:
        options = parse_workload_options(args.workload_option)
        sources = discover_sources(args.corpus)
        result = serve_sources(
            sources,
            artifact.models,
            domain=domain,
            iterations=1 if args.iterations is None else args.iterations,
            jobs=jobs,
            cache_dir=cache_dir,
            options=options,
        )
    except (IngestError, MatrixSourceError, SparseFormatError, ValueError) as error:
        raise SystemExit(f"repro: error: {error}") from None
    print(result.render())
    model_info = {
        "domain": artifact.domain_name,
        "kernels": list(artifact.models.kernel_names),
        "training_size": int(artifact.models.training_size),
    }
    paths = write_serve_artifact(result, args.out_dir, model_info=model_info)
    stats = result.stats
    print(
        f"ingest: parsed={stats.matrices_ingested} "
        f"cache-hits={stats.ingest_cache_hits} jobs={jobs}"
    )
    print(f"wrote {paths['data']} and {paths['manifest']}")
    if args.measure:
        from repro.serving.feedback import (
            feedback_from_corpus,
            write_feedback_artifact,
        )

        try:
            feedback = feedback_from_corpus(
                artifact.models,
                sources,
                domain=domain,
                iterations=1 if args.iterations is None else args.iterations,
                cache_dir=cache_dir,
                options=options,
            )
        except (IngestError, ValueError) as error:
            raise SystemExit(f"repro: error: {error}") from None
        print(feedback.render())
        feedback_paths = write_feedback_artifact(
            feedback, Path(args.out_dir) / "feedback", model_info=model_info
        )
        print(
            f"wrote {feedback_paths['data']} and {feedback_paths['manifest']}"
        )
    return 0


# ----------------------------------------------------------------------
# Shadow-scored promotion: repro promote
# ----------------------------------------------------------------------
def _cmd_promote(args) -> int:
    """Retrain on measured feedback and shadow-score against the incumbent."""
    from repro.serving.artifacts import ModelArtifactError
    from repro.serving.promotion import PROMOTION_FILE_NAME, promote_from_feedback
    from repro.serving.registry import ModelRegistry

    engine = _resolve_engine(args)
    registry = ModelRegistry(args.registry)
    try:
        result = promote_from_feedback(
            registry,
            args.feedback,
            domain=args.domain,
            profile=args.profile,
            engine=engine,
            dry_run=args.dry_run,
            out_dir=args.out_dir,
        )
    except (ModelArtifactError, ValueError) as error:
        raise SystemExit(f"repro: error: {error}") from None
    print(result.render())
    if result.promoted:
        print(f"current pointer: {result.pointer_path}")
    if args.out_dir:
        print(f"wrote {Path(args.out_dir) / PROMOTION_FILE_NAME}")
    if engine is not None:
        print(_engine_status_line(engine))
    return 0


# ----------------------------------------------------------------------
# Serving benchmarks: repro bench serve
# ----------------------------------------------------------------------
def _cmd_bench_serve(args) -> int:
    """Closed-loop load generation against the serving daemon."""
    import json

    from repro.bench.loadgen import bench_serve, render_bench_serve
    from repro.serving.artifacts import ModelArtifactError

    try:
        result = bench_serve(
            args.model,
            requests=args.requests,
            clients=args.clients,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            seed=args.seed,
            compare=not args.no_compare,
            transport=args.transport,
        )
    except ModelArtifactError as error:
        raise SystemExit(f"repro: error: {error}") from None
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(render_bench_serve(result))
    return 0


# ----------------------------------------------------------------------
# Static analysis: repro lint
# ----------------------------------------------------------------------
#: Default location of the committed grandfathered-findings baseline.
DEFAULT_LINT_BASELINE = Path("analysis") / "baseline.json"


def _cmd_lint(args) -> int:
    """Run the AST-based invariant checker (``repro lint``)."""
    from repro.analysis import (
        AnalysisError,
        Baseline,
        all_rules,
        lint_paths,
        package_dir,
        render_json,
        render_text,
    )

    if args.list_rules:
        for spec in all_rules():
            scope = ", ".join(spec.scope)
            print(f"{spec.id:<8} {spec.summary} [scope: {scope}]")
        return 0

    baseline_path = Path(args.baseline) if args.baseline else DEFAULT_LINT_BASELINE
    try:
        targets = args.paths or [package_dir()]
        baseline = None
        if not args.no_baseline and not args.write_baseline:
            if args.baseline is not None and not baseline_path.is_file():
                raise AnalysisError(f"{baseline_path}: no such baseline file")
            if baseline_path.is_file():
                baseline = Baseline.from_file(baseline_path)
        report = lint_paths(
            targets, select=args.select, ignore=args.ignore, baseline=baseline
        )
    except AnalysisError as error:
        raise SystemExit(f"repro: error: {error}") from None

    if args.write_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(
            Baseline.from_findings(report.findings).dumps(), encoding="utf-8"
        )
        print(
            f"wrote {baseline_path} grandfathering {len(report.findings)} "
            f"finding(s)"
        )
        return 0
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.clean else 1


# ----------------------------------------------------------------------
# The experiment suite
# ----------------------------------------------------------------------
def _cmd_experiments_list(args) -> int:
    for name in experiment_names():
        spec = get_experiment(name)
        domains = "all domains" if spec.domains is None else ", ".join(spec.domains)
        sweep_note = "" if spec.needs_sweep else " (no sweep needed)"
        print(f"{spec.name:<18} {spec.title} [{domains}]{sweep_note}")
    return 0


def _select_specs(args):
    """Experiment specs named on the command line, validated for the domain."""
    if args.all and args.names:
        raise SystemExit("repro: error: give experiment names or --all, not both")
    if args.all:
        return experiments_for(args.domain)
    if not args.names:
        raise SystemExit(
            "repro: error: name at least one experiment or pass --all "
            f"(registered: {', '.join(experiment_names())})"
        )
    specs = []
    for name in args.names:
        try:
            spec = get_experiment(name)
        except KeyError as error:
            raise SystemExit(f"repro: error: {error.args[0]}") from None
        if not spec.supports(args.domain):
            supported = (
                "restricted" if spec.domains is None else ", ".join(spec.domains)
            )
            raise SystemExit(
                f"repro: error: experiment {name!r} does not support domain "
                f"{args.domain!r} (supported: {supported})"
            )
        specs.append(spec)
    return specs


def _cmd_experiments_run(args) -> int:
    specs = _select_specs(args)
    context = ExperimentContext(
        domain=args.domain,
        profile=args.profile,
        engine=_resolve_engine(args),
        model_registry=args.model_dir,
    )
    engine = context.engine
    for spec in specs:
        result = run_experiment(spec, context)
        print(result.render())
        if args.out_dir:
            paths = write_artifact(spec, context, result, args.out_dir)
            print(f"[{spec.name}] wrote {paths['data']} and {paths['manifest']}")
        print()
    if engine is not None:
        print(_engine_status_line(engine))
    return 0


def _cmd_experiment(name: str):
    """Legacy single-experiment command (``repro fig1`` etc.)."""

    def command(args) -> int:
        context = ExperimentContext(
            profile=getattr(args, "profile", DEFAULT_PROFILE),
            engine=_resolve_engine(args),
        )
        result = run_experiment(name, context)
        print(result.render())
        return 0

    return command


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Seer (CGO 2024) reproduction: benchmarking, training and experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="run the full pipeline and optionally export CSVs")
    _add_profile(sweep)
    _add_domain(sweep)
    _add_engine_options(sweep)
    sweep.add_argument("--output-dir", default=None, help="directory for CSVs and generated headers")
    sweep.set_defaults(func=_cmd_sweep)

    train = sub.add_parser(
        "train",
        help="run the training sweep and save the models to a registry",
    )
    _add_profile(train)
    _add_domain(train)
    _add_engine_options(train)
    train.add_argument(
        "--save", required=True, metavar="DIR",
        help="model-registry root; the artifact lands under "
        "DIR/<domain>/<profile>/<config-hash>/model.json",
    )
    train.set_defaults(func=_cmd_train)

    predict = sub.add_parser(
        "predict",
        help="inspect a saved model artifact or serve a feature-batch CSV",
    )
    predict.add_argument(
        "--model", required=True, metavar="PATH",
        help="path to a model.json (or the directory containing it)",
    )
    predict.add_argument(
        "--batch", default=None, metavar="CSV",
        help="CSV of feature rows (known feature columns required, gathered "
        "columns optional); predictions are written to stdout",
    )
    predict.set_defaults(func=_cmd_predict)

    codegen = sub.add_parser(
        "codegen",
        help="emit a standalone selector (Python module or C++ header) from "
        "a registered model artifact",
    )
    codegen.add_argument(
        "--model", required=True, metavar="PATH",
        help="path to a model.json (or the directory containing it)",
    )
    codegen.add_argument(
        "--language", choices=("py", "cpp"), default="py",
        help="output language (default: py)",
    )
    codegen.add_argument(
        "--output", default=None, metavar="PATH",
        help="file to write; omitted, the generated code goes to stdout",
    )
    codegen.add_argument(
        "--install", action="store_true",
        help="atomically cache the generated Python selector as selector.py "
        "next to the model artifact, where the serving daemon's codegen "
        "backend loads it",
    )
    codegen.set_defaults(func=_cmd_codegen)

    serve = sub.add_parser(
        "serve",
        help="ingest raw matrix files (.mtx/.mtx.gz/.npz/recipe:) and serve "
        "kernel decisions from a registered model, one-shot or as a "
        "persistent daemon",
    )
    serve.add_argument(
        "corpus", nargs="?", default=None, metavar="PATH",
        help="matrix directory, manifest file, single matrix file or a "
        "recipe:<builder>?key=value spec (omit with --daemon)",
    )
    serve.add_argument(
        "--model", default=None, metavar="PATH",
        help="path to a model.json (or the directory containing it)",
    )
    serve.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="iteration count the decisions assume (default: 1)",
    )
    serve.add_argument(
        "--out-dir", default=".", metavar="DIR",
        help="directory for decisions.csv + manifest.json (default: cwd)",
    )
    serve.add_argument(
        "--workload-option", action="append", default=[], metavar="KEY=VALUE",
        help="domain-specific workload parameter (e.g. num_vectors=8 for "
        "spmm); may be repeated",
    )
    serve.add_argument(
        "--measure", action="store_true",
        help="after serving, re-benchmark the corpus on every kernel and "
        "score each decision against the oracle; writes feedback.csv + "
        "manifest.json under OUT_DIR/feedback/ (one-shot mode only)",
    )
    serve.add_argument(
        "--daemon", action="store_true",
        help="run the persistent serving daemon (dynamic batching, warm "
        "caches, HTTP API) instead of a one-shot corpus pass",
    )
    serve.add_argument(
        "--config", default=None, metavar="TOML",
        help="daemon configuration file (service.toml); CLI flags override "
        "individual settings",
    )
    serve.add_argument(
        "--host", default=None, metavar="HOST",
        help="daemon bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="daemon port (default: 0 = ephemeral, printed on startup)",
    )
    serve.add_argument(
        "--max-batch-size", type=int, default=None, metavar="N",
        help="daemon admission-batch window size (flush-on-full trigger)",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=None, metavar="MS",
        help="daemon admission-window deadline (flush-on-timer trigger)",
    )
    serve.add_argument(
        "--log-dir", default=None, metavar="DIR",
        help="daemon run directory for requests.log + summary.json",
    )
    serve.add_argument(
        "--feedback-dir", default=None, metavar="DIR",
        help="daemon drift monitoring: directory of feedback artifacts "
        "(repro serve --measure output) compared against the model's "
        "training-time evaluation in /metrics and summary.json",
    )
    serve.add_argument(
        "--drift-threshold", type=float, default=None, metavar="X",
        help="degradation fraction that flags drift (default: 0.1)",
    )
    serve.add_argument(
        "--backend", default=None, choices=["compiled", "codegen", "recursive"],
        help="daemon inference backend: the vectorized compiled trees, the "
        "generated-Python selector module cached next to model.json, or "
        "the per-row recursive reference walks (default: compiled)",
    )
    _add_engine_options(serve)
    serve.set_defaults(func=_cmd_serve)

    promote = sub.add_parser(
        "promote",
        help="retrain on measured feedback, shadow-score the candidate "
        "against the incumbent on held-out feedback rows, and flip the "
        "registry's current pointer only when the candidate wins",
    )
    promote.add_argument(
        "--registry", required=True, metavar="DIR",
        help="model-registry root holding the incumbent (repro train --save)",
    )
    promote.add_argument(
        "--feedback", required=True, metavar="PATH",
        help="feedback.csv from `repro serve --measure` (or its directory)",
    )
    _add_profile(promote)
    _add_domain(promote)
    _add_engine_options(promote)
    promote.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="directory for the promotion.json decision record",
    )
    promote.add_argument(
        "--dry-run", action="store_true",
        help="run the full shadow comparison but write nothing to the "
        "registry (no candidate artifact, no pointer flip)",
    )
    promote.set_defaults(func=_cmd_promote)

    bench = sub.add_parser(
        "bench", help="serving benchmarks (closed-loop load generation)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_serve = bench_sub.add_parser(
        "serve",
        help="drive the serving daemon with closed-loop clients and compare "
        "batched admission against per-request inference",
    )
    bench_serve.add_argument(
        "--model", required=True, metavar="PATH",
        help="path to a model.json (or the directory containing it)",
    )
    bench_serve.add_argument(
        "--requests", type=int, default=200, metavar="N",
        help="total requests per run (default: %(default)s)",
    )
    bench_serve.add_argument(
        "--clients", type=int, default=8, metavar="N",
        help="concurrent closed-loop client threads (default: %(default)s)",
    )
    bench_serve.add_argument(
        "--max-batch-size", type=int, default=8, metavar="N",
        help="admission-batch window of the batched run (default: %(default)s)",
    )
    bench_serve.add_argument(
        "--max-wait-ms", type=float, default=5.0, metavar="MS",
        help="admission-window deadline (default: %(default)s)",
    )
    bench_serve.add_argument(
        "--seed", type=int, default=7, metavar="SEED",
        help="seed of the synthetic request stream (default: %(default)s)",
    )
    bench_serve.add_argument(
        "--transport", choices=("inproc", "http"), default="inproc",
        help="inproc submits straight into the admission batcher (isolates "
        "the batching/inference signal, regression-guarded); http drives "
        "/v1/serve over real sockets (end-to-end, transport-dominated) "
        "(default: %(default)s)",
    )
    bench_serve.add_argument(
        "--no-compare", action="store_true",
        help="skip the per-request (max_batch_size=1) baseline run",
    )
    bench_serve.add_argument(
        "--json", action="store_true",
        help="emit the raw measurement document instead of the table",
    )
    bench_serve.set_defaults(func=_cmd_bench_serve)

    lint = sub.add_parser(
        "lint",
        help="run the AST-based invariant checker (determinism, cache "
        "safety, daemon concurrency, plugin conformance)",
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the installed repro "
        "package)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: %(default)s)",
    )
    lint.add_argument(
        "--select", action="append", default=[], metavar="RULE",
        help="only run these rule IDs or prefixes (e.g. DET, CONC002); "
        "may be repeated",
    )
    lint.add_argument(
        "--ignore", action="append", default=[], metavar="RULE",
        help="skip these rule IDs or prefixes; may be repeated",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="grandfathered-findings file "
        f"(default: {DEFAULT_LINT_BASELINE} when present)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring any baseline file",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule with its scope and exit",
    )
    lint.set_defaults(func=_cmd_lint)

    experiments = sub.add_parser(
        "experiments", help="list or run the registered experiment suite"
    )
    experiments_sub = experiments.add_subparsers(
        dest="experiments_command", required=True
    )
    list_parser = experiments_sub.add_parser(
        "list", help="show every registered experiment and its domains"
    )
    list_parser.set_defaults(func=_cmd_experiments_list)
    run_parser = experiments_sub.add_parser(
        "run", help="run experiments for one domain, optionally writing artifacts"
    )
    run_parser.add_argument(
        "names", nargs="*", metavar="EXPERIMENT",
        help="experiments to run (see 'repro experiments list')",
    )
    run_parser.add_argument(
        "--all", action="store_true",
        help="run every experiment the domain supports",
    )
    _add_domain(run_parser)
    _add_profile(run_parser)
    _add_engine_options(run_parser)
    run_parser.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="write data.csv + manifest.json per experiment under DIR/<domain>/<name>/",
    )
    run_parser.add_argument(
        "--model-dir", default=None, metavar="DIR",
        help="model-registry root: publish the suite's trained models there, "
        "servable later via 'repro predict' or ExperimentContext.models()",
    )
    run_parser.set_defaults(func=_cmd_experiments_run)

    legacy = {
        "fig1": (True, "fastest-kernel-per-matrix survey (Fig. 1)"),
        "fig5": (True, "single-iteration predictor comparison (Fig. 5)"),
        "fig6": (False, "feature-collection cost sweep (Fig. 6)"),
        "fig7": (True, "multi-iteration amortization study (Fig. 7)"),
        "table1": (False, "capability comparison (Table I)"),
        "table3": (True, "Kendall correlations (Table III)"),
        "accuracy": (True, "model accuracies (Section IV-C)"),
    }
    for name, (needs_profile, help_text) in legacy.items():
        sub_parser = sub.add_parser(name, help=help_text)
        if needs_profile:
            _add_profile(sub_parser)
        _add_engine_options(sub_parser)
        sub_parser.set_defaults(func=_cmd_experiment(name))
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
