"""Command-line interface for the Seer reproduction.

``repro`` (also installed as ``seer-repro``, or ``python -m repro``) exposes
the pipeline stages and the per-figure experiment drivers:

.. code-block:: console

   repro sweep --profile small --output-dir out/   # benchmark + train
   repro sweep --profile medium --jobs 8 --cache-dir ~/.cache/seer
   repro fig1                                      # Fig. 1 series
   repro fig5 --profile full                       # Fig. 5 a-d
   repro fig6                                      # Fig. 6 series
   repro fig7                                      # Fig. 7 panels
   repro table1                                    # Table I
   repro table3                                    # Table III
   repro accuracy                                  # Section IV-C numbers

``--jobs`` fans the benchmarking stage out over worker processes and
``--cache-dir`` persists per-matrix measurements and whole sweep artifacts,
so repeated invocations (and different experiment drivers sharing one
configuration) skip the benchmarking work entirely.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.engine import SweepEngine, engine_from_env
from repro.bench.runner import run_sweep
from repro.core.codegen import write_cpp_header, write_python_module
from repro.domains import DEFAULT_DOMAIN, domain_names
from repro.experiments import (
    run_accuracy_table,
    run_fig1,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table1,
    run_table3,
)
from repro.experiments import common as experiments_common
from repro.experiments.common import DEFAULT_PROFILE
from repro.sparse.collection import PROFILE_NAMES


def _add_profile(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        default=DEFAULT_PROFILE,
        choices=list(PROFILE_NAMES),
        help="synthetic collection profile to benchmark on",
    )


def _add_domain(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--domain",
        default=DEFAULT_DOMAIN,
        choices=list(domain_names()),
        help="problem domain to sweep (default: %(default)s)",
    )


def _jobs_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 means one per CPU)")
    return value


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_jobs_count,
        default=None,
        metavar="N",
        help="worker processes for the benchmarking stage "
        "(1 = serial, 0 = one per CPU; default: SEER_JOBS or serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="directory for persistent sweep/measurement artifacts "
        "(default: SEER_CACHE_DIR or no disk caching)",
    )


def _resolve_engine(args) -> SweepEngine:
    """Engine described by ``--jobs``/``--cache-dir``, or ``None`` for serial.

    Each explicit flag overrides its ``SEER_JOBS``/``SEER_CACHE_DIR``
    environment variable independently (so ``--jobs 1`` forces the serial
    benchmarking stage even with ``SEER_JOBS`` exported); with neither flags
    nor environment, the serial reference path runs.
    """
    try:
        return engine_from_env(jobs=args.jobs, cache_dir=args.cache_dir)
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None


def _cmd_sweep(args) -> int:
    engine = _resolve_engine(args)
    sweep = run_sweep(profile=args.profile, engine=engine, domain=args.domain)
    report = sweep.test_report
    print(
        f"domain {sweep.suite.domain_name}: benchmarked {len(sweep.suite)} "
        f"workloads, {len(sweep.dataset)} samples"
    )
    print(f"known/gathered accuracy: {report.accuracy('Known'):.2f} / "
          f"{report.accuracy('Gathered'):.2f}")
    print(f"selector routing accuracy: {report.selector_choice_accuracy():.2f}")
    print(f"selector slowdown vs Oracle: {report.slowdown_vs_oracle():.2f}x")
    if engine is not None:
        stats = engine.stats
        if engine.cache_dir is None:
            cache_state = "off"
        else:
            cache_state = "hit" if stats.sweep_cache_hits else "miss"
        print(
            f"engine: jobs={engine.jobs} measured={stats.matrices_measured} "
            f"measurement-cache-hits={stats.measurement_cache_hits} "
            f"sweep-cache={cache_state}"
        )
    if args.output_dir:
        output = Path(args.output_dir)
        sweep.suite.save(output)
        write_cpp_header(sweep.models, output / "seer_models.h")
        write_python_module(sweep.models, output / "seer_models.py")
        print(f"wrote CSVs and generated models to {output}")
    return 0


def _cmd_experiment(runner, needs_profile=True):
    def command(args) -> int:
        experiments_common.set_default_engine(_resolve_engine(args))
        if needs_profile:
            result = runner(profile=args.profile)
        else:
            result = runner()
        print(result.render())
        return 0

    return command


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Seer (CGO 2024) reproduction: benchmarking, training and experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="run the full pipeline and optionally export CSVs")
    _add_profile(sweep)
    _add_domain(sweep)
    _add_engine_options(sweep)
    sweep.add_argument("--output-dir", default=None, help="directory for CSVs and generated headers")
    sweep.set_defaults(func=_cmd_sweep)

    experiments = {
        "fig1": (run_fig1, True, "fastest-kernel-per-matrix survey (Fig. 1)"),
        "fig5": (run_fig5, True, "single-iteration predictor comparison (Fig. 5)"),
        "fig6": (run_fig6, False, "feature-collection cost sweep (Fig. 6)"),
        "fig7": (run_fig7, True, "multi-iteration amortization study (Fig. 7)"),
        "table1": (run_table1, False, "capability comparison (Table I)"),
        "table3": (run_table3, True, "Kendall correlations (Table III)"),
        "accuracy": (run_accuracy_table, True, "model accuracies (Section IV-C)"),
    }
    for name, (runner, needs_profile, help_text) in experiments.items():
        sub_parser = sub.add_parser(name, help=help_text)
        if needs_profile:
            _add_profile(sub_parser)
        _add_engine_options(sub_parser)
        sub_parser.set_defaults(func=_cmd_experiment(runner, needs_profile))
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
