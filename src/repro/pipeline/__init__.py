"""The feature pipeline: one featurization path for sweep- and serve-time.

The paper's deployed flow (Fig. 3) starts from a *matrix*: the known
features are read straight off the format, the classifier-selection model
decides whether the gathered features are worth their collection cost, and
the chosen kernel runs.  Before this package existed the reproduction had
two divergent copies of that featurization — one inlined in the benchmark
sweep (:mod:`repro.core.benchmarking`), one inlined in the runtime predictor
(:mod:`repro.core.inference`).  :class:`FeaturePipeline` is the single
shared implementation both now consume:

* **source → CSR** — :mod:`repro.pipeline.sources` resolves raw matrix
  files (Matrix Market ``.mtx``/``.mtx.gz``, ``.npz`` CSR archives) and
  synthetic ``recipe:`` specs into :class:`~repro.sparse.csr.CSRMatrix`
  objects;
* **CSR → workload** — the active domain wraps the matrix into its workload
  type (:meth:`~repro.domains.ProblemDomain.serving_workload`);
* **workload → known features** — free at runtime, extracted through the
  domain's declarative schema;
* **workload → gathered features (optional)** — collected by the domain's
  simulated parallel kernels at a measured cost.

Pipelines are cheap to construct and build their collector lazily, so
passing one across call sites costs nothing until features are actually
gathered.  Obtain one via :meth:`repro.domains.ProblemDomain.make_pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.domains import get_domain
from repro.gpu.device import MI100, DeviceSpec
from repro.pipeline.sources import (
    MatrixSource,
    MatrixSourceError,
    discover_sources,
    load_source,
    parse_recipe,
    recipe_builders,
    source_digest,
)

__all__ = [
    "FeatureBundle",
    "FeaturePipeline",
    "MatrixSource",
    "MatrixSourceError",
    "discover_sources",
    "load_source",
    "parse_recipe",
    "recipe_builders",
    "source_digest",
]


@dataclass(frozen=True)
class FeatureBundle:
    """One workload's extracted features.

    ``known`` is always populated; ``gathered`` is either the collected row
    (carrying its measured ``collection_time_ms``) or the domain's all-zero
    placeholder when collection was skipped, exactly as the sweep and the
    runtime predictor represent the two cases.
    """

    known: object
    gathered: object
    collected: bool

    @property
    def collection_time_ms(self) -> float:
        """Cost paid to gather the dynamic features (0 when skipped)."""
        return self.gathered.collection_time_ms if self.collected else 0.0


class FeaturePipeline:
    """Featurization shared by the benchmark sweep and the serving layer.

    Parameters
    ----------
    domain:
        Problem domain (name or instance) whose schemas and collector drive
        the extraction; defaults to ``"spmv"``.
    device:
        Simulated device the feature-collection kernels run on.
    collector:
        Pre-built collector to reuse; by default the domain's collector is
        built lazily on first gather.
    """

    def __init__(self, domain=None, device: DeviceSpec = MI100, collector=None):
        self.domain = get_domain(domain)
        self.device = device
        self._collector = collector

    def __repr__(self) -> str:
        return (
            f"FeaturePipeline(domain={self.domain.name!r}, "
            f"device={self.device.name!r})"
        )

    @property
    def collector(self):
        """The domain's feature collector, built on first use."""
        if self._collector is None:
            self._collector = self.domain.make_collector(self.device)
        return self._collector

    # ------------------------------------------------------------------
    # Featurization
    # ------------------------------------------------------------------
    def known_features(self, workload, iterations: int = 1):
        """Extract the trivially known features of ``workload``."""
        return self.domain.known_features(workload, iterations)

    def gather(self, workload, context=None):
        """Run the collection kernels; the row carries its measured cost.

        ``context`` optionally shares a
        :class:`~repro.kernels.base.LaunchContext` with the timing kernels so
        the row lengths are derived once per workload.  Collectors that
        predate the context protocol are still called without it.
        """
        if context is None:
            return self.collector.collect(workload).features
        return self.collector.collect(workload, context=context).features

    def empty_gathered(self):
        """The all-zero gathered row recorded when collection is skipped."""
        return self.domain.empty_gathered()

    def extract(
        self, workload, iterations: int = 1, gather: bool = True, context=None
    ) -> FeatureBundle:
        """Full featurization of one workload.

        With ``gather`` (the default, what the benchmark sweep needs) the
        collection kernels run and their cost is recorded; without it the
        bundle carries the domain's empty gathered row, as the runtime flow
        does when the selector skips collection.  ``context`` is forwarded
        to :meth:`gather`.
        """
        known = self.known_features(workload, iterations)
        if gather:
            return FeatureBundle(
                known=known, gathered=self.gather(workload, context=context), collected=True
            )
        return FeatureBundle(known=known, gathered=self.empty_gathered(), collected=False)

    # ------------------------------------------------------------------
    # Raw sources
    # ------------------------------------------------------------------
    def load_workload(self, source, options=None):
        """Build a domain workload from a raw source (path, spec or source).

        ``source`` may be a :class:`~repro.pipeline.sources.MatrixSource`, a
        path to a ``.mtx``/``.mtx.gz``/``.npz`` file or a ``recipe:`` spec
        string; ``options`` are domain-specific workload parameters (e.g.
        SpMM's ``num_vectors``).
        """
        matrix = load_source(source)
        return self.domain.serving_workload(matrix, options or {})

    def extract_from_source(
        self, source, iterations: int = 1, gather: bool = True, options=None
    ) -> FeatureBundle:
        """Featurize a raw source end to end (source → CSR → features)."""
        return self.extract(
            self.load_workload(source, options), iterations=iterations, gather=gather
        )
