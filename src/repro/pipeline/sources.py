"""Raw matrix sources: files and synthetic recipes behind one interface.

``repro serve`` (and any other consumer of the feature pipeline) starts
from *sources* — things that resolve to a :class:`~repro.sparse.csr.CSRMatrix`:

* ``.mtx`` / ``.mtx.gz`` — Matrix-Market coordinate files, the SuiteSparse
  distribution format;
* ``.npz`` — CSR archives written by :func:`repro.sparse.io.save_npz` (and
  by the engine's generated-matrix cache tier);
* ``recipe:`` specs — synthetic generator invocations of the form
  ``recipe:power_law_matrix?num_rows=4096&avg_row_length=8&seed=7``, built
  by the :mod:`repro.sparse.generators` functions.

:func:`discover_sources` expands a directory, a manifest file or a single
source into a deterministic (name-sorted) list of :class:`MatrixSource`
records, and :func:`source_digest` gives every source a content digest the
ingest cache keys artifacts by: file sources hash their bytes, recipe
sources hash their canonical spec.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.sparse import generators
from repro.sparse.coo import SparseFormatError
from repro.sparse.csr import CSRMatrix
from repro.sparse.io import load_npz, read_matrix_market

#: Recognised matrix-file suffixes, in discovery order.
MATRIX_SUFFIXES = (".mtx", ".mtx.gz", ".npz")

#: Prefix marking a synthetic-recipe source.
RECIPE_PREFIX = "recipe:"


class MatrixSourceError(ValueError):
    """A matrix source cannot be resolved, parsed or built."""


@dataclass(frozen=True)
class MatrixSource:
    """One raw matrix: where it comes from and how to read it.

    ``kind`` is ``"mtx"``, ``"npz"`` or ``"recipe"``; ``location`` is the
    file path (for file kinds) or the canonical recipe spec.
    """

    name: str
    kind: str
    location: str

    def load(self) -> CSRMatrix:
        """Resolve this source into a CSR matrix."""
        return load_source(self)


def recipe_builders() -> tuple:
    """Names of the generator functions a ``recipe:`` spec may invoke."""
    return tuple(
        name
        for name in sorted(dir(generators))
        if name.endswith("_matrix") and not name.startswith("_")
    )


def _parse_param(key: str, text: str, spec: str):
    """One recipe parameter as an int when possible, else a float."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise MatrixSourceError(
            f"recipe {spec!r}: parameter {key}={text!r} is not numeric"
        ) from None


def parse_recipe(spec: str) -> tuple:
    """Split a ``recipe:`` spec into ``(builder, params, seed, name)``.

    The spec grammar is ``recipe:<builder>?key=value&key=value...``; the
    reserved keys ``seed`` (generator seed, default 0) and ``name`` (display
    name) are separated from the builder keyword arguments.
    """
    if not spec.startswith(RECIPE_PREFIX):
        raise MatrixSourceError(f"not a recipe spec: {spec!r}")
    body = spec[len(RECIPE_PREFIX):]
    builder, _, query = body.partition("?")
    builder = builder.strip()
    if builder not in recipe_builders():
        raise MatrixSourceError(
            f"recipe {spec!r}: unknown builder {builder!r}; expected one of "
            f"{', '.join(recipe_builders())}"
        )
    params = {}
    seed = 0
    name = None
    for item in filter(None, query.split("&")):
        key, eq, text = item.partition("=")
        key = key.strip()
        if not eq or not key:
            raise MatrixSourceError(
                f"recipe {spec!r}: malformed parameter {item!r} (want key=value)"
            )
        if key == "name":
            name = text.strip()
        elif key == "seed":
            seed = int(_parse_param(key, text, spec))
        else:
            params[key] = _parse_param(key, text, spec)
    return builder, params, seed, name


def build_recipe(spec: str) -> CSRMatrix:
    """Construct the matrix a ``recipe:`` spec describes."""
    builder_name, params, seed, _ = parse_recipe(spec)
    builder = getattr(generators, builder_name)
    try:
        return builder(rng=np.random.default_rng(seed), **params)
    except TypeError as exc:
        raise MatrixSourceError(f"recipe {spec!r}: {exc}") from None
    except (ValueError, SparseFormatError) as exc:
        raise MatrixSourceError(f"recipe {spec!r}: {exc}") from exc


def _canonical_recipe(spec: str) -> str:
    """Recipe spec with sorted parameters (the digestable canonical form)."""
    builder, params, seed, _ = parse_recipe(spec)
    parts = [f"{key}={params[key]!r}" for key in sorted(params)]
    parts.append(f"seed={seed}")
    return RECIPE_PREFIX + builder + "?" + "&".join(parts)


def _source_kind(path: Path) -> str:
    text = path.name.lower()
    if text.endswith(".mtx") or text.endswith(".mtx.gz"):
        return "mtx"
    if text.endswith(".npz"):
        return "npz"
    raise MatrixSourceError(
        f"{path}: unrecognised matrix file (expected one of "
        f"{', '.join(MATRIX_SUFFIXES)})"
    )


def _source_name(path: Path) -> str:
    name = path.name
    for suffix in (".mtx.gz", ".mtx", ".npz"):
        if name.lower().endswith(suffix):
            return name[: -len(suffix)]
    return path.stem


def source_from_path(path) -> MatrixSource:
    """A :class:`MatrixSource` for one matrix file."""
    path = Path(path)
    return MatrixSource(
        name=_source_name(path), kind=_source_kind(path), location=str(path)
    )


def source_from_recipe(spec: str) -> MatrixSource:
    """A :class:`MatrixSource` for one ``recipe:`` spec (validated)."""
    builder, _, _, name = parse_recipe(spec)
    canonical = _canonical_recipe(spec)
    if name is None:
        digest = hashlib.sha256(canonical.encode()).hexdigest()[:8]
        name = f"{builder}_{digest}"
    return MatrixSource(name=name, kind="recipe", location=canonical)


def resolve_source(source) -> MatrixSource:
    """Coerce a source-ish value (source, path or spec) to a MatrixSource."""
    if isinstance(source, MatrixSource):
        return source
    text = str(source)
    if text.startswith(RECIPE_PREFIX):
        return source_from_recipe(text)
    return source_from_path(text)


def load_source(source) -> CSRMatrix:
    """Resolve any source-ish value into a CSR matrix.

    All failure modes — missing files, malformed Matrix-Market content,
    corrupt ``.npz`` archives, invalid recipes — surface as
    :class:`MatrixSourceError` (Matrix-Market and format errors are
    subclasses of :class:`~repro.sparse.coo.SparseFormatError`, which the
    caller may also catch).
    """
    source = resolve_source(source)
    if source.kind == "recipe":
        return build_recipe(source.location)
    path = Path(source.location)
    if not path.is_file():
        raise MatrixSourceError(f"{path}: no such matrix file")
    if source.kind == "npz":
        return load_npz(path)
    return read_matrix_market(path)


def source_digest(source) -> str:
    """Content digest of one source (what the ingest cache keys by).

    File sources hash their raw bytes — renaming or moving a file keeps its
    cached parse servable, while any content change retires it.  Recipe
    sources hash their canonical spec.
    """
    source = resolve_source(source)
    if source.kind == "recipe":
        payload = _canonical_recipe(source.location).encode()
    else:
        path = Path(source.location)
        try:
            payload = path.read_bytes()
        except OSError as exc:
            raise MatrixSourceError(f"{path}: unreadable ({exc})") from exc
    return hashlib.sha256(payload).hexdigest()[:24]


def _manifest_sources(path: Path) -> list:
    """Sources listed in a manifest file (one path or recipe per line).

    Blank lines and ``#`` comments are skipped; relative paths resolve
    against the manifest's directory.  An optional ``name=...`` recipe
    parameter (or simply distinct file names) keeps entries distinguishable;
    duplicate names are rejected so ``decisions.csv`` rows stay unambiguous.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise MatrixSourceError(
            f"{path.name}: not a readable manifest file ({exc})"
        ) from exc
    sources = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            if line.startswith(RECIPE_PREFIX):
                sources.append(source_from_recipe(line))
            else:
                entry = Path(line)
                if not entry.is_absolute():
                    entry = path.parent / entry
                sources.append(source_from_path(entry))
        except MatrixSourceError as exc:
            raise MatrixSourceError(f"{path.name}:{lineno}: {exc}") from None
    return sources


def ensure_unique_names(sources) -> list:
    """Reject source lists with clashing names.

    Every serving artifact (``decisions.csv`` rows, suite records) is keyed
    by source name; two sources sharing one would be indistinguishable
    downstream, so discovery and explicit source lists both refuse them.
    """
    seen = {}
    for source in sources:
        if source.name in seen:
            raise MatrixSourceError(
                f"duplicate source name {source.name!r} "
                f"({seen[source.name]} and {source.location}); give recipes "
                f"distinct name= parameters or rename the files"
            )
        seen[source.name] = source.location
    return list(sources)


def discover_sources(target) -> list:
    """Expand a directory, manifest file or single source into sources.

    * a **directory** yields every ``.mtx``/``.mtx.gz``/``.npz`` file in it,
      sorted by file name (deterministic serve order);
    * a **manifest file** (any other text file) yields its listed paths and
      ``recipe:`` specs in file order;
    * a **matrix file** or **recipe spec** yields itself.

    Raises :class:`MatrixSourceError` when nothing is found or names clash.
    """
    if isinstance(target, MatrixSource):
        return [target]
    text = str(target)
    if text.startswith(RECIPE_PREFIX):
        return [source_from_recipe(text)]
    path = Path(text)
    if path.is_dir():
        files = sorted(
            entry
            for entry in path.iterdir()
            if entry.is_file()
            and any(entry.name.lower().endswith(sfx) for sfx in MATRIX_SUFFIXES)
        )
        sources = [source_from_path(entry) for entry in files]
        if not sources:
            raise MatrixSourceError(
                f"{path}: no matrix files "
                f"({', '.join(MATRIX_SUFFIXES)}) found"
            )
    elif path.is_file():
        lowered = path.name.lower()
        if any(lowered.endswith(sfx) for sfx in MATRIX_SUFFIXES):
            sources = [source_from_path(path)]
        else:
            sources = _manifest_sources(path)
            if not sources:
                raise MatrixSourceError(f"{path}: manifest lists no sources")
    else:
        raise MatrixSourceError(f"{path}: no such file or directory")

    return ensure_unique_names(sources)
