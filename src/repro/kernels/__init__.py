"""SpMV kernel variants of the Seer case study (Table II).

Every kernel couples a compressed sparse format with a load-balancing
schedule and exposes numeric execution, per-iteration timing on the
simulated GPU, and (where applicable) a preprocessing stage.  The
:mod:`repro.kernels.feature_kernels` module provides the parallel
feature-collection kernels whose cost the classifier-selection model weighs.
"""

from repro.kernels.base import (
    KernelTiming,
    SpmvKernel,
    SpmvRunResult,
    UnsupportedKernelError,
)
from repro.kernels.coo_warp import CooWarpMapped
from repro.kernels.csr_adaptive import CsrAdaptive, RocSparseAdaptive
from repro.kernels.csr_block import CsrBlockMapped
from repro.kernels.csr_merge import CsrMergePath, CsrWorkOriented
from repro.kernels.csr_scalar import CsrThreadMapped
from repro.kernels.csr_vector import CsrWarpMapped
from repro.kernels.ell_thread import EllThreadMapped
from repro.kernels.feature_kernels import FeatureCollectionResult, FeatureCollector
from repro.kernels.registry import (
    default_kernels,
    kernel_names,
    make_kernel,
)

#: Registry constants re-exported lazily (PEP 562): they are views of the
#: ``"spmv"`` domain's kernel registry, and resolving them eagerly here would
#: import ``repro.domains`` during this package's own initialization.
_REGISTRY_CONSTANTS = ("ALL_KERNEL_NAMES", "FIG5_KERNEL_NAMES", "KERNEL_CLASSES")


def __getattr__(name: str):
    if name in _REGISTRY_CONSTANTS:
        from repro.kernels import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "KernelTiming",
    "SpmvKernel",
    "SpmvRunResult",
    "UnsupportedKernelError",
    "CooWarpMapped",
    "CsrAdaptive",
    "RocSparseAdaptive",
    "CsrBlockMapped",
    "CsrMergePath",
    "CsrWorkOriented",
    "CsrThreadMapped",
    "CsrWarpMapped",
    "EllThreadMapped",
    "FeatureCollectionResult",
    "FeatureCollector",
    "ALL_KERNEL_NAMES",
    "FIG5_KERNEL_NAMES",
    "KERNEL_CLASSES",
    "default_kernels",
    "kernel_names",
    "make_kernel",
]
