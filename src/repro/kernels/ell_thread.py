"""ELL thread-mapped SpMV — ``ELL,TM`` in the paper.

The ELLPACK layout pads every row to the longest row's length and stores the
result column-major, so a thread-per-row schedule is perfectly regular: all
lanes execute the same number of iterations and every access is coalesced.
The flip side is that the padded slots are real work and real traffic — a
single long row inflates the whole matrix, which is why ELL,TM swings from
the best kernel on uniform matrices to the worst on skewed ones.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.memory import INDEX_BYTES, VALUE_BYTES
from repro.gpu.simulator import LaunchSpec
from repro.kernels.base import (
    CYCLES_PER_NONZERO,
    ROW_OVERHEAD_CYCLES,
    LaunchContext,
    SpmvKernel,
    UnsupportedKernelError,
)
from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import ELLMatrix

#: Padding ratios beyond this are refused (the ELL arrays would not fit).
MAX_SUPPORTED_PADDING = 4096.0

#: Largest padded element count for which the numeric path materializes ELL.
MATERIALIZE_LIMIT = 4_000_000


class EllThreadMapped(SpmvKernel):
    """One row per thread over the padded ELL layout."""

    name = "ELL,TM"
    sparse_format = "ELL"
    schedule = "Thread Mapped"
    has_preprocessing = False

    def supports(self, matrix: CSRMatrix) -> bool:
        """Refuse matrices whose padding would be astronomically wasteful."""
        if matrix.num_rows == 0:
            return True
        if matrix.nnz == 0:
            return True
        padded = matrix.num_rows * float(matrix.row_lengths().max())
        return padded <= MAX_SUPPORTED_PADDING * matrix.nnz

    def _padded_width(self, matrix: CSRMatrix) -> int:
        if matrix.num_rows == 0 or matrix.nnz == 0:
            return 0
        return int(matrix.row_lengths().max())

    def _launch_spec(self, matrix: CSRMatrix, context: LaunchContext) -> LaunchSpec:
        width = context.max_row_length
        num_waves = max(1, int(np.ceil(matrix.num_rows / self.device.simd_width)))
        wave_cycles = width * CYCLES_PER_NONZERO + ROW_OVERHEAD_CYCLES
        padded_slots = matrix.num_rows * width
        bytes_moved = (
            padded_slots * (VALUE_BYTES + INDEX_BYTES)
            + matrix.num_rows * VALUE_BYTES
            + self._gather_bytes(matrix, matrix.nnz)
        )
        if context.fast:
            # All waves cost the same; describe the uniform block once.
            return self._spec([wave_cycles], bytes_moved, repeat=num_waves)
        wavefront_cycles = np.full(num_waves, wave_cycles, dtype=np.float64)
        return self._spec(wavefront_cycles, bytes_moved)

    def _numeric_result(self, matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
        """Compute through the ELL layout when it is small enough to build."""
        width = self._padded_width(matrix)
        if matrix.num_rows * max(width, 1) <= MATERIALIZE_LIMIT:
            return ELLMatrix.from_csr(matrix, max_padding_ratio=float("inf")).spmv(x)
        return matrix.spmv(x)

    def timing(self, matrix: CSRMatrix, context=None):
        if not self.supports(matrix):
            raise UnsupportedKernelError(
                f"{self.name}: padding ratio too large for this matrix"
            )
        return super().timing(matrix, context)
