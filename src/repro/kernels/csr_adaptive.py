"""Adaptive-CSR SpMV — ``CSR,A`` — and the rocSPARSE-like variant.

Adaptive CSR (Daga & Greathouse, HiPC'15; the algorithm behind rocSPARSE's
CSR SpMV) bins rows by size during a sequential preprocessing pass: runs of
short rows are packed together so a whole workgroup streams them through the
LDS, medium rows get a wavefront each, and very long rows are split across
workgroups.  The result is near-ideal load balance and fully coalesced
traffic *per iteration*, paid for by the preprocessing pass — which is the
amortization trade-off the multi-iteration study (Fig. 7) revolves around.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.memory import INDEX_BYTES
from repro.gpu.simulator import LaunchSpec, group_reduce_sum
from repro.kernels.base import (
    CYCLES_PER_NONZERO,
    ROW_OVERHEAD_CYCLES,
    WAVE_REDUCTION_CYCLES,
    LaunchContext,
    SpmvKernel,
)
from repro.sparse.csr import CSRMatrix

#: Rows with at most this many nonzeros are packed into row blocks (LDS path).
SHORT_ROW_LIMIT = 256

#: Nonzeros each row block feeds to one wavefront of the stream path.
ROW_BLOCK_NNZ = 1024

#: Host operations per row of the sequential binning pass (a single linear
#: scan over the row offsets).
BINNING_OPS_PER_ROW = 1.0

#: Compute advantage of the hand-tuned vendor kernel (rocSPARSE).
VENDOR_CPN = 3.5


def _fast_block_sums(context, split: int, rows_per_block: int) -> np.ndarray:
    """Per-block nonzero sums of the short rows from the shared prefix sums.

    The blocks tile the first ``split`` entries of the sorted order, so each
    block sum is a difference of two prefix-sum entries — no fresh grouped
    reduction pass.  Sequential prefix accumulation rounds differently from
    the exact path's pairwise group sums (tolerance-guarded).
    """
    prefix = context.sorted_prefix_sum
    num_blocks = -(-split // rows_per_block)
    ends = np.minimum(
        np.arange(1, num_blocks + 1, dtype=np.intp) * rows_per_block, split
    )
    boundary = prefix[ends - 1]
    block_nnz = np.empty(num_blocks, dtype=np.float64)
    block_nnz[0] = boundary[0]
    np.subtract(boundary[1:], boundary[:-1], out=block_nnz[1:])
    return block_nnz


class CsrAdaptive(SpmvKernel):
    """Adaptive-CSR: row binning preprocessing plus streamed execution."""

    name = "CSR,A"
    sparse_format = "CSR"
    schedule = "Adaptive-CSR"
    has_preprocessing = True

    #: Cycles per nonzero of the streaming path (coalesced LDS streaming).
    cycles_per_nonzero = CYCLES_PER_NONZERO

    def preprocessing_time_ms(self, matrix: CSRMatrix) -> float:
        """Sequential row binning plus upload of the row-block table."""
        binning_ms = self.host.sequential_time_ms(
            matrix.num_rows, ops_per_element=BINNING_OPS_PER_ROW
        )
        num_blocks = max(1, matrix.nnz // ROW_BLOCK_NNZ)
        upload_ms = self.host.transfer_time_ms(num_blocks * INDEX_BYTES)
        return binning_ms + upload_ms

    def _launch_spec(self, matrix: CSRMatrix, context: LaunchContext) -> LaunchSpec:
        # The sorted lengths are shared with the vendor variant; the
        # short/long split is a binary search on the sorted array (two
        # views) instead of two boolean-mask passes and copies.
        row_lengths = context.sorted_row_lengths_f64
        split = int(np.searchsorted(row_lengths, SHORT_ROW_LIMIT, side="right"))
        short = row_lengths[:split]
        long = row_lengths[split:]

        wave_costs = []
        if short.size:
            # Stream path: like-sized rows are packed into blocks of roughly
            # ROW_BLOCK_NNZ nonzeros; each block is one wavefront streaming
            # through the LDS with negligible imbalance.
            if context.fast:
                block_nnz = _fast_block_sums(
                    context, split, self._rows_per_block_fast(context, split)
                )
            else:
                block_nnz = group_reduce_sum(short, self._rows_per_block(short))
            wave_costs.append(
                block_nnz / self.device.simd_width * self.cycles_per_nonzero
                + WAVE_REDUCTION_CYCLES
                + ROW_OVERHEAD_CYCLES
            )
        if long.size:
            # Vector path: long rows are split across wavefronts of
            # simd_width nonzeros each.
            strips = np.ceil(long / self.device.simd_width)
            wave_costs.append(
                strips * self.cycles_per_nonzero
                + WAVE_REDUCTION_CYCLES
                + ROW_OVERHEAD_CYCLES
            )
        wavefront_cycles = (
            np.concatenate(wave_costs) if wave_costs else np.zeros(1)
        )
        bytes_moved = self._csr_stream_bytes(matrix) + self._gather_bytes(
            matrix, matrix.nnz
        )
        return self._spec(wavefront_cycles, bytes_moved)

    def _rows_per_block(self, short_row_lengths: np.ndarray) -> int:
        """How many sorted short rows fit in one ROW_BLOCK_NNZ-sized block."""
        mean_length = float(short_row_lengths.mean()) if short_row_lengths.size else 1.0
        return max(1, int(ROW_BLOCK_NNZ / max(mean_length, 1.0)))

    def _rows_per_block_fast(self, context, split: int) -> int:
        """Fast-mode :meth:`_rows_per_block` from the shared prefix sums."""
        if split == 0:
            return max(1, int(ROW_BLOCK_NNZ))
        mean_length = float(context.sorted_prefix_sum[split - 1]) / split
        return max(1, int(ROW_BLOCK_NNZ / max(mean_length, 1.0)))


class RocSparseAdaptive(CsrAdaptive):
    """rocSPARSE-like vendor kernel.

    Same adaptive algorithm with hand-tuned constants: a faster streaming
    inner loop, but a heavier analysis (preprocessing) stage because the
    library builds additional metadata for repeated use.
    """

    name = "rocSPARSE"
    schedule = "Adaptive-CSR (vendor)"
    cycles_per_nonzero = VENDOR_CPN

    def preprocessing_time_ms(self, matrix: CSRMatrix) -> float:
        base = super().preprocessing_time_ms(matrix)
        analysis_ms = self.host.sequential_time_ms(
            matrix.num_rows, ops_per_element=2.0 * BINNING_OPS_PER_ROW
        )
        return base + analysis_ms
