"""Work-oriented (merge-path) CSR SpMV — ``CSR,WO`` and ``CSR,MP``.

Merrill & Garland's merge-based SpMV treats the row offsets and the nonzero
indices as two sorted lists and assigns every thread (``CSR,WO``) or every
wavefront (``CSR,MP``) an equal slice of the *merged* list, i.e. an equal
share of ``nnz + num_rows`` work items.  Load balance is essentially perfect
regardless of the row-length distribution, at the price of:

* a binary search per thread/wavefront to locate its slice,
* carry-out bookkeeping for rows that straddle slice boundaries (modelled as
  an extra fix-up launch plus partial-sum traffic), and
* a slightly less regular access pattern than the purely row-mapped kernels.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.occupancy import wavefront_slots
from repro.gpu.simulator import LaunchSpec
from repro.kernels.base import (
    CYCLES_PER_NONZERO,
    MERGE_SEARCH_CYCLES,
    LaunchContext,
    SpmvKernel,
)
from repro.gpu.memory import VALUE_BYTES
from repro.sparse.csr import CSRMatrix

#: Bytes touched per probe of the merge-path binary search (one cache line of
#: the row-offsets array).
SEARCH_PROBE_BYTES = 64.0

#: Compute multiplier for the merge bookkeeping executed alongside each item.
MERGE_ITEM_OVERHEAD = 1.3

#: Memory inflation of the diagonal traversal relative to a pure row walk.
MERGE_TRAFFIC_FACTOR = 1.15

#: Gather inflation: splitting rows across threads defeats much of the
#: x-vector reuse the row-mapped kernels enjoy.
MERGE_GATHER_PENALTY = 1.5

#: Work items processed by one wavefront of the coarse-grained (MP) variant.
MP_ITEMS_PER_WAVE = 512


class _MergeBased(SpmvKernel):
    """Shared cost model for the two merge-path granularities."""

    bandwidth_utilization = 0.85

    #: How many merge-path binary searches one wavefront performs (one per
    #: lane for the thread-granularity variant, one per wavefront for the
    #: coarse-grained variant).
    searches_per_wave = 1.0

    def _merge_spec(self, matrix: CSRMatrix, items_per_lane: float, num_waves: int,
                    extra_launches: int, context: LaunchContext = None) -> LaunchSpec:
        total_work = matrix.nnz + matrix.num_rows
        search_depth = np.log2(max(total_work, 2))
        search_cycles = MERGE_SEARCH_CYCLES + 4.0 * search_depth
        lane_cycles = (
            items_per_lane * CYCLES_PER_NONZERO * MERGE_ITEM_OVERHEAD
            + search_cycles
        )
        partial_sum_bytes = num_waves * self.device.simd_width * VALUE_BYTES
        search_bytes = (
            num_waves * self.searches_per_wave * search_depth * SEARCH_PROBE_BYTES
        )
        bytes_moved = (
            self._csr_stream_bytes(matrix) * MERGE_TRAFFIC_FACTOR
            + self._gather_bytes(matrix, matrix.nnz) * MERGE_GATHER_PENALTY
            + 2.0 * partial_sum_bytes
            + search_bytes
        )
        if context is not None and context.fast:
            # Merge-path slices are equal by construction; keep the uniform
            # wave block symbolic instead of materializing it.
            return self._spec(
                [float(lane_cycles)],
                bytes_moved,
                extra_launches=extra_launches,
                repeat=max(num_waves, 1),
            )
        wavefront_cycles = np.full(max(num_waves, 1), lane_cycles, dtype=np.float64)
        return self._spec(
            wavefront_cycles, bytes_moved, extra_launches=extra_launches
        )


class CsrWorkOriented(_MergeBased):
    """Thread-granularity merge path (``CSR,WO``).

    The total work is divided evenly across every resident thread of the
    device, so each lane receives the same number of items.
    """

    name = "CSR,WO"
    sparse_format = "CSR"
    schedule = "Work Oriented"
    has_preprocessing = False
    searches_per_wave = 64.0  # one binary search per lane

    def _launch_spec(self, matrix: CSRMatrix, context: LaunchContext) -> LaunchSpec:
        total_work = matrix.nnz + matrix.num_rows
        slots = wavefront_slots(self.device)
        total_lanes = slots * self.device.simd_width
        items_per_lane = float(np.ceil(max(total_work, 1) / total_lanes))
        lanes_needed = int(np.ceil(max(total_work, 1) / items_per_lane))
        num_waves = min(slots, int(np.ceil(lanes_needed / self.device.simd_width)))
        return self._merge_spec(
            matrix, items_per_lane, num_waves, extra_launches=1, context=context
        )


class CsrMergePath(_MergeBased):
    """Wavefront-granularity merge path (``CSR,MP``).

    Each wavefront receives a fixed-size slice of the merged list; the
    number of wavefronts therefore grows with the problem instead of being
    pinned to the device width, which lowers the per-launch fix-up cost but
    adds a little more per-slice search overhead for large problems.
    """

    name = "CSR,MP"
    sparse_format = "CSR"
    schedule = "Work Oriented (merge path)"
    has_preprocessing = False

    def _launch_spec(self, matrix: CSRMatrix, context: LaunchContext) -> LaunchSpec:
        total_work = matrix.nnz + matrix.num_rows
        num_waves = int(np.ceil(max(total_work, 1) / MP_ITEMS_PER_WAVE))
        items_per_lane = MP_ITEMS_PER_WAVE / self.device.simd_width
        return self._merge_spec(
            matrix, items_per_lane, num_waves, extra_launches=1, context=context
        )
