"""CSR thread-mapped (scalar) SpMV — ``CSR,TM`` in the paper.

Each thread owns one row (Bell & Garland's CSR-scalar kernel).  A wavefront
therefore processes 64 consecutive rows in lockstep and is as slow as its
longest row.  Because each lane walks its own row, accesses to the value and
column-index arrays are *not* coalesced: consecutive lanes touch addresses a
full row apart, so a growing fraction of every cache line fetched is wasted
as rows get longer.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.simulator import LaunchSpec
from repro.kernels.base import (
    CSR_NNZ_BYTES,
    CYCLES_PER_NONZERO,
    ROW_OVERHEAD_CYCLES,
    LaunchContext,
    SpmvKernel,
)
from repro.gpu.memory import INDEX_BYTES, VALUE_BYTES
from repro.sparse.csr import CSRMatrix

#: Maximum waste factor for uncoalesced row-private streaming accesses.
MAX_COALESCING_PENALTY = 8.0


def uncoalesced_penalty(row_lengths: np.ndarray) -> np.ndarray:
    """Per-row waste factor for thread-private traversal of a CSR row.

    Rows of up to about four nonzeros still share cache lines with their
    neighbours and pay no penalty; longer rows waste progressively more of
    each fetched line, saturating at :data:`MAX_COALESCING_PENALTY`.
    """
    lengths = np.asarray(row_lengths, dtype=np.float64)
    return np.clip((lengths - 2.0) / 2.0, 1.0, MAX_COALESCING_PENALTY)


def _fast_penalized_stream_bytes(context: LaunchContext) -> float:
    """``sum(row_length * CSR_NNZ_BYTES * penalty)`` from shared prefix sums.

    The penalty is piecewise in the row length ``r`` — ``1`` for ``r <= 4``,
    ``(r - 2) / 2`` for ``4 < r < 18`` and ``MAX_COALESCING_PENALTY`` past
    ``r >= 18`` — so the weighted sum splits into three ranges of the
    shared sorted order, each answered by the cached prefix sums of the
    lengths and their squares (tolerance-guarded: the prefix sums
    accumulate sequentially, the exact path pairwise).
    """
    lengths = context.sorted_row_lengths_f64
    if lengths.size == 0:
        return 0.0
    prefix = context.sorted_prefix_sum
    prefix_sq = context.sorted_prefix_sum_squares
    flat_end = int(np.searchsorted(lengths, 4.0, side="right"))
    saturated_start = int(np.searchsorted(lengths, 18.0, side="left"))

    def range_sum(table, start, stop):
        if stop <= start:
            return 0.0
        below = float(table[start - 1]) if start else 0.0
        return float(table[stop - 1]) - below

    flat = range_sum(prefix, 0, flat_end)
    ramp_lengths = range_sum(prefix, flat_end, saturated_start)
    ramp_squares = range_sum(prefix_sq, flat_end, saturated_start)
    ramp = (ramp_squares - 2.0 * ramp_lengths) / 2.0
    saturated = MAX_COALESCING_PENALTY * range_sum(
        prefix, saturated_start, lengths.size
    )
    return CSR_NNZ_BYTES * (flat + ramp + saturated)


class CsrThreadMapped(SpmvKernel):
    """One row per thread over CSR."""

    name = "CSR,TM"
    sparse_format = "CSR"
    schedule = "Thread Mapped"
    has_preprocessing = False
    bandwidth_utilization = 0.90

    def _launch_spec(self, matrix: CSRMatrix, context: LaunchContext) -> LaunchSpec:
        row_lengths = context.row_lengths_f64
        # The per-lane cycle transform is monotone in the row length, so it
        # commutes with the wavefront max: transforming the shared grouped
        # maxima is bit-identical to group-reducing the transformed lanes
        # and touches a simd_width-times-smaller array.
        wavefront_cycles = (
            context.grouped_max(self.device.simd_width) * CYCLES_PER_NONZERO
            + ROW_OVERHEAD_CYCLES
        )
        if context.fast:
            stream_bytes = _fast_penalized_stream_bytes(context)
        else:
            penalty = uncoalesced_penalty(row_lengths)
            stream_bytes = float((row_lengths * CSR_NNZ_BYTES * penalty).sum())
        bytes_moved = (
            stream_bytes
            + (matrix.num_rows + 1) * INDEX_BYTES
            + matrix.num_rows * VALUE_BYTES
            + self._gather_bytes(matrix, matrix.nnz)
        )
        return self._spec(wavefront_cycles, bytes_moved)
