"""CSR thread-mapped (scalar) SpMV — ``CSR,TM`` in the paper.

Each thread owns one row (Bell & Garland's CSR-scalar kernel).  A wavefront
therefore processes 64 consecutive rows in lockstep and is as slow as its
longest row.  Because each lane walks its own row, accesses to the value and
column-index arrays are *not* coalesced: consecutive lanes touch addresses a
full row apart, so a growing fraction of every cache line fetched is wasted
as rows get longer.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.simulator import LaunchSpec
from repro.kernels.base import (
    CSR_NNZ_BYTES,
    CYCLES_PER_NONZERO,
    ROW_OVERHEAD_CYCLES,
    LaunchContext,
    SpmvKernel,
)
from repro.gpu.memory import INDEX_BYTES, VALUE_BYTES
from repro.sparse.csr import CSRMatrix

#: Maximum waste factor for uncoalesced row-private streaming accesses.
MAX_COALESCING_PENALTY = 8.0


def uncoalesced_penalty(row_lengths: np.ndarray) -> np.ndarray:
    """Per-row waste factor for thread-private traversal of a CSR row.

    Rows of up to about four nonzeros still share cache lines with their
    neighbours and pay no penalty; longer rows waste progressively more of
    each fetched line, saturating at :data:`MAX_COALESCING_PENALTY`.
    """
    lengths = np.asarray(row_lengths, dtype=np.float64)
    return np.clip((lengths - 2.0) / 2.0, 1.0, MAX_COALESCING_PENALTY)


class CsrThreadMapped(SpmvKernel):
    """One row per thread over CSR."""

    name = "CSR,TM"
    sparse_format = "CSR"
    schedule = "Thread Mapped"
    has_preprocessing = False
    bandwidth_utilization = 0.90

    def _launch_spec(self, matrix: CSRMatrix, context: LaunchContext) -> LaunchSpec:
        row_lengths = context.row_lengths_f64
        # The per-lane cycle transform is monotone in the row length, so it
        # commutes with the wavefront max: transforming the shared grouped
        # maxima is bit-identical to group-reducing the transformed lanes
        # and touches a simd_width-times-smaller array.
        wavefront_cycles = (
            context.grouped_max(self.device.simd_width) * CYCLES_PER_NONZERO
            + ROW_OVERHEAD_CYCLES
        )
        penalty = uncoalesced_penalty(row_lengths)
        stream_bytes = float((row_lengths * CSR_NNZ_BYTES * penalty).sum())
        bytes_moved = (
            stream_bytes
            + (matrix.num_rows + 1) * INDEX_BYTES
            + matrix.num_rows * VALUE_BYTES
            + self._gather_bytes(matrix, matrix.nnz)
        )
        return self._spec(wavefront_cycles, bytes_moved)
