"""CSR thread-mapped (scalar) SpMV — ``CSR,TM`` in the paper.

Each thread owns one row (Bell & Garland's CSR-scalar kernel).  A wavefront
therefore processes 64 consecutive rows in lockstep and is as slow as its
longest row.  Because each lane walks its own row, accesses to the value and
column-index arrays are *not* coalesced: consecutive lanes touch addresses a
full row apart, so a growing fraction of every cache line fetched is wasted
as rows get longer.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.simulator import LaunchResult, group_reduce_max
from repro.kernels.base import (
    CSR_NNZ_BYTES,
    CYCLES_PER_NONZERO,
    ROW_OVERHEAD_CYCLES,
    SpmvKernel,
)
from repro.gpu.memory import INDEX_BYTES, VALUE_BYTES
from repro.sparse.csr import CSRMatrix

#: Maximum waste factor for uncoalesced row-private streaming accesses.
MAX_COALESCING_PENALTY = 8.0


def uncoalesced_penalty(row_lengths: np.ndarray) -> np.ndarray:
    """Per-row waste factor for thread-private traversal of a CSR row.

    Rows of up to about four nonzeros still share cache lines with their
    neighbours and pay no penalty; longer rows waste progressively more of
    each fetched line, saturating at :data:`MAX_COALESCING_PENALTY`.
    """
    lengths = np.asarray(row_lengths, dtype=np.float64)
    return np.clip((lengths - 2.0) / 2.0, 1.0, MAX_COALESCING_PENALTY)


class CsrThreadMapped(SpmvKernel):
    """One row per thread over CSR."""

    name = "CSR,TM"
    sparse_format = "CSR"
    schedule = "Thread Mapped"
    has_preprocessing = False
    bandwidth_utilization = 0.90

    def _iteration_launch(self, matrix: CSRMatrix) -> LaunchResult:
        row_lengths = matrix.row_lengths().astype(np.float64)
        lane_cycles = row_lengths * CYCLES_PER_NONZERO + ROW_OVERHEAD_CYCLES
        wavefront_cycles = group_reduce_max(lane_cycles, self.device.simd_width)
        penalty = uncoalesced_penalty(row_lengths)
        stream_bytes = float((row_lengths * CSR_NNZ_BYTES * penalty).sum())
        bytes_moved = (
            stream_bytes
            + (matrix.num_rows + 1) * INDEX_BYTES
            + matrix.num_rows * VALUE_BYTES
            + self._gather_bytes(matrix, matrix.nnz)
        )
        return self._launch(wavefront_cycles, bytes_moved)
