"""Kernel abstraction shared by every SpMV variant.

Each kernel variant of Table II is a class with three responsibilities:

* **numeric correctness** — ``run`` produces the SpMV result ``y = A @ x``
  (computed with the format the kernel operates on where that is feasible);
* **per-iteration timing** — an analytical translation of the matrix
  structure into per-wavefront cycle counts and bytes moved, handed to the
  GPU simulator;
* **preprocessing timing** — the one-time cost (row binning, analysis
  passes) that the multi-iteration study amortizes.

The cost-model constants below are shared so kernels differ only where the
paper says they differ: how work is mapped to lanes, what metadata the
format carries, and what preprocessing they require.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.gpu.device import DeviceSpec, MI100
from repro.gpu.host import HostModel
from repro.gpu.memory import INDEX_BYTES, VALUE_BYTES, gather_bytes_per_access
from repro.gpu.simulator import (
    LaunchResult,
    LaunchSpec,
    as_wavefront_cycles,
    check_precision,
    group_reduce_max,
    simulate_launch,
    simulate_launch_batch,
    simulate_spec,
)
from repro.sparse.csr import CSRMatrix

#: Cycles a lane spends per nonzero (multiply-add plus address arithmetic).
CYCLES_PER_NONZERO = 4.0

#: Per-row bookkeeping cycles (offset reads, output write) for row-mapped kernels.
ROW_OVERHEAD_CYCLES = 8.0

#: Cycles of a wavefront-wide (64-lane) reduction.
WAVE_REDUCTION_CYCLES = 12.0

#: Cycles of a workgroup-wide (LDS) reduction.
BLOCK_REDUCTION_CYCLES = 40.0

#: Cycles of one merge-path binary search (work-oriented kernels).
MERGE_SEARCH_CYCLES = 24.0

#: Cycles of one global atomic update (COO segmented reduction carry-out).
ATOMIC_CYCLES = 16.0

#: Bytes of CSR metadata per nonzero (value + column index).
CSR_NNZ_BYTES = VALUE_BYTES + INDEX_BYTES

#: Bytes of COO metadata per nonzero (value + column index + row index).
COO_NNZ_BYTES = VALUE_BYTES + 2 * INDEX_BYTES


class UnsupportedKernelError(RuntimeError):
    """Raised when a kernel cannot process a matrix (e.g. pathological ELL padding)."""


class LaunchContext:
    """Per-workload cache of the row-structure arrays kernel cost models share.

    Every kernel's cycle model starts from the same derived arrays — the row
    lengths, their float64 view, their sorted order, grouped maxima.
    Computing them once per measurement instead of once per kernel is where
    most of the batched path's speedup comes from.  All consumers are
    read-only and the matrix is not mutated during a measurement, so sharing
    is safe; a context is cheap to construct and fills lazily.
    """

    def __init__(self, matrix: CSRMatrix, precision: str = "exact"):
        self.matrix = matrix
        #: ``"exact"`` keeps every cached reduction bit-identical to the
        #: per-kernel scalar path; ``"fast"`` lets the context substitute
        #: fused closed-form expressions (shared sorted prefix sums,
        #: hierarchical grouped maxima, symbolic ``repeat`` expansions)
        #: that agree with the reference only to within
        #: :data:`~repro.gpu.simulator.FAST_MODE_RELATIVE_TOLERANCE`.
        self.precision = check_precision(precision)
        self._row_lengths = None
        self._row_lengths_f64 = None
        self._sorted_f64 = None
        self._sorted_prefix_sum = None
        self._sorted_prefix_sq = None
        self._grouped_max: dict = {}
        self._clamped_stream: dict = {}
        self._occupied_rows = None

    @classmethod
    def of(
        cls,
        workload,
        context: "Optional[LaunchContext]" = None,
        precision: str = "exact",
    ) -> "LaunchContext":
        """The given context, or a fresh one for the workload's matrix.

        ``workload`` is either a :class:`~repro.sparse.csr.CSRMatrix` or a
        domain workload wrapping one in a ``matrix`` attribute.
        """
        if context is not None:
            return context
        return cls(getattr(workload, "matrix", workload), precision=precision)

    @property
    def fast(self) -> bool:
        """Whether fused tolerance-guarded shortcuts are allowed."""
        return self.precision == "fast"

    @property
    def row_lengths(self) -> np.ndarray:
        """Integer nonzero count per row."""
        if self._row_lengths is None:
            self._row_lengths = self.matrix.row_lengths()
        return self._row_lengths

    @property
    def row_lengths_f64(self) -> np.ndarray:
        """Row lengths as float64, the input of every cycle model."""
        if self._row_lengths_f64 is None:
            self._row_lengths_f64 = self.row_lengths.astype(np.float64)
        return self._row_lengths_f64

    @property
    def sorted_row_lengths_f64(self) -> np.ndarray:
        """Ascending row lengths (float64), shared by the adaptive kernels."""
        if self._sorted_f64 is None:
            self._sorted_f64 = np.sort(self.row_lengths_f64)
        return self._sorted_f64

    @property
    def sorted_prefix_sum(self) -> np.ndarray:
        """Prefix sums of the sorted row lengths (fast-mode shared pass).

        One sequential ``cumsum`` over the shared sorted copy answers every
        clamped-stream query in O(log n); sequential accumulation rounds
        differently from the exact path's pairwise sums, which is why only
        fast mode consults it.
        """
        if self._sorted_prefix_sum is None:
            self._sorted_prefix_sum = np.cumsum(self.sorted_row_lengths_f64)
        return self._sorted_prefix_sum

    @property
    def sorted_prefix_sum_squares(self) -> np.ndarray:
        """Prefix sums of the squared sorted row lengths (fast mode only).

        Together with :attr:`sorted_prefix_sum` this answers any piecewise-
        quadratic row-length reduction (e.g. the CSR,TM uncoalesced-penalty
        traffic) from two binary searches instead of an O(n) pass.
        """
        if self._sorted_prefix_sq is None:
            lengths = self.sorted_row_lengths_f64
            self._sorted_prefix_sq = np.cumsum(lengths * lengths)
        return self._sorted_prefix_sq

    def grouped_max(self, group_size: int) -> np.ndarray:
        """Grouped maximum of the row lengths (zero-padded tail).

        Row-mapped kernels apply monotone per-lane cycle transforms, which
        commute with ``max``; taking the grouped maximum over the raw row
        lengths lets every kernel with the same group size share it and run
        its transform on the ``group_size``-times-smaller array.  In fast
        mode a coarse grouping is reduced from the largest already-cached
        divisor grouping instead of the full row array (``max`` composes
        hierarchically over zero-padded tails because lengths are
        non-negative).
        """
        cached = self._grouped_max.get(group_size)
        if cached is None:
            if self.fast:
                divisors = [
                    size
                    for size in self._grouped_max
                    if 1 < size < group_size and group_size % size == 0
                ]
                if divisors:
                    base = max(divisors)
                    cached = group_reduce_max(
                        self._grouped_max[base], group_size // base
                    )
            if cached is None:
                cached = group_reduce_max(self.row_lengths_f64, group_size)
            self._grouped_max[group_size] = cached
        return cached

    def clamped_stream_bytes(self, bytes_per_nonzero: float, floor: float) -> float:
        """``sum(max(row_length * bytes_per_nonzero, floor))`` over all rows.

        The per-row DRAM traffic with a minimum-transaction floor; the
        warp- and block-mapped kernels use identical expressions, so the
        reduction is cached per (bytes, floor) pair.

        Fast mode answers from the shared sorted prefix sums instead of a
        fresh multiply/maximum/sum pass: with ``k`` rows shorter than
        ``floor / bytes_per_nonzero``, the total is ``floor * k +
        bytes_per_nonzero * (total_length - prefix[k])`` — one binary
        search per (bytes, floor) pair, no O(n) work after the first query.
        """
        key = (bytes_per_nonzero, floor)
        cached = self._clamped_stream.get(key)
        if cached is None:
            if self.fast:
                sorted_lengths = self.sorted_row_lengths_f64
                if sorted_lengths.size == 0:
                    cached = 0.0
                else:
                    prefix = self.sorted_prefix_sum
                    clamped = int(
                        np.searchsorted(
                            sorted_lengths, floor / bytes_per_nonzero, side="left"
                        )
                    )
                    total = float(prefix[-1])
                    below = float(prefix[clamped - 1]) if clamped else 0.0
                    cached = floor * clamped + bytes_per_nonzero * (total - below)
            else:
                cached = float(
                    np.maximum(self.row_lengths_f64 * bytes_per_nonzero, floor).sum()
                )
            self._clamped_stream[key] = cached
        return cached

    @property
    def occupied_rows(self) -> int:
        """Number of rows with at least one nonzero."""
        if self._occupied_rows is None:
            self._occupied_rows = int(np.count_nonzero(self.row_lengths))
        return self._occupied_rows

    @property
    def max_row_length(self) -> int:
        """Longest row (0 for empty matrices)."""
        matrix = self.matrix
        if matrix.num_rows == 0 or matrix.nnz == 0:
            return 0
        return int(self.row_lengths.max())


@dataclass(frozen=True)
class KernelTiming:
    """Simulated timing of one kernel on one matrix (milliseconds)."""

    kernel: str
    preprocessing_ms: float
    iteration_ms: float
    iteration_detail: Optional[LaunchResult] = field(compare=False, default=None)

    def total_ms(self, iterations: int = 1) -> float:
        """End-to-end time for ``iterations`` SpMV iterations."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        return self.preprocessing_ms + iterations * self.iteration_ms


@dataclass
class SpmvRunResult:
    """Numeric result plus timing of one kernel execution."""

    kernel: str
    y: np.ndarray
    timing: KernelTiming
    iterations: int = 1

    @property
    def total_ms(self) -> float:
        """End-to-end simulated time of this run."""
        return self.timing.total_ms(self.iterations)


class SpmvKernel(abc.ABC):
    """Base class of every SpMV kernel variant.

    Subclasses define ``name`` (the label used throughout the paper, e.g.
    ``"CSR,TM"``), ``sparse_format`` and ``schedule``, and implement the
    structural cost model in :meth:`_launch_spec`.
    """

    #: Paper label of the kernel, e.g. ``"CSR,WM"``.
    name: str = "abstract"
    #: Compressed format the kernel consumes ("CSR", "COO", "ELL").
    sparse_format: str = "CSR"
    #: Load-balancing schedule label (Table II).
    schedule: str = "abstract"
    #: Whether the kernel requires a preprocessing stage (Table II / Fig. 7).
    has_preprocessing: bool = False
    #: Fraction of peak DRAM bandwidth this kernel's access pattern sustains.
    bandwidth_utilization: float = 1.0

    def __init__(self, device: DeviceSpec = MI100):
        self.device = device
        self.host = HostModel(device)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, device={self.device.name!r})"

    # ------------------------------------------------------------------
    # Capability checks
    # ------------------------------------------------------------------
    def supports(self, matrix: CSRMatrix) -> bool:
        """Whether the kernel can process this matrix at all."""
        return True

    def _require_supported(self, matrix: CSRMatrix) -> None:
        if not self.supports(matrix):
            raise UnsupportedKernelError(f"{self.name} cannot process this matrix")

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def preprocessing_time_ms(self, matrix: CSRMatrix) -> float:
        """One-time preprocessing cost for this matrix (0 when none)."""
        return 0.0

    @abc.abstractmethod
    def _launch_spec(self, matrix: CSRMatrix, context: LaunchContext) -> LaunchSpec:
        """Translate the matrix structure into this kernel's launch spec.

        The spec is the single source of truth for the kernel's cycle model:
        the scalar path (:meth:`timing`) and the batched path
        (:func:`batch_timings`) both simulate exactly this spec, which is
        what makes them bit-identical by construction.
        """

    def _iteration_launch(self, matrix: CSRMatrix, context=None) -> LaunchResult:
        """Simulate one SpMV iteration and return the launch result."""
        context = LaunchContext.of(matrix, context)
        return simulate_spec(self.device, self._launch_spec(matrix, context))

    def timing(self, matrix: CSRMatrix, context=None) -> KernelTiming:
        """Preprocessing plus per-iteration timing for ``matrix``.

        ``context`` optionally shares a :class:`LaunchContext` across kernels
        measuring the same workload.
        """
        self._require_supported(matrix)
        launch = self._iteration_launch(matrix, context)
        return KernelTiming(
            kernel=self.name,
            preprocessing_ms=self.preprocessing_time_ms(matrix),
            iteration_ms=launch.total_ms,
            iteration_detail=launch,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _numeric_result(self, matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x``; subclasses may override to use their own format."""
        return matrix.spmv(x)

    def run(self, matrix: CSRMatrix, x: np.ndarray, iterations: int = 1) -> SpmvRunResult:
        """Execute ``iterations`` SpMV iterations and return result + timing.

        Iterating SpMV repeatedly with the same ``x`` would be pointless
        numerically, so — as in iterative solvers — the output of one
        iteration feeds the next when the matrix is square; otherwise the
        same ``x`` is reused and only the timing reflects the iteration
        count.
        """
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self._require_supported(matrix)
        timing = self.timing(matrix)
        y = self._numeric_result(matrix, np.asarray(x, dtype=np.float64))
        if matrix.num_rows == matrix.num_cols:
            for _ in range(iterations - 1):
                y = self._numeric_result(matrix, y)
        return SpmvRunResult(kernel=self.name, y=y, timing=timing, iterations=iterations)

    # ------------------------------------------------------------------
    # Shared cost-model helpers
    # ------------------------------------------------------------------
    def _gather_bytes(self, matrix: CSRMatrix, accesses: float) -> float:
        """Bytes moved by gathering ``accesses`` elements of the x vector."""
        vector_bytes = matrix.num_cols * VALUE_BYTES
        return accesses * gather_bytes_per_access(self.device, vector_bytes)

    def _csr_stream_bytes(self, matrix: CSRMatrix) -> float:
        """Bytes of the CSR arrays plus the output vector for one iteration."""
        return (
            matrix.nnz * CSR_NNZ_BYTES
            + (matrix.num_rows + 1) * INDEX_BYTES
            + matrix.num_rows * VALUE_BYTES
        )

    def _launch(
        self,
        wavefront_cycles,
        bytes_moved: float,
        occupancy_factor: float = 1.0,
        extra_launches: int = 0,
        serial_cycles: float = 0.0,
    ) -> LaunchResult:
        """Run the GPU simulator for one launch labelled with this kernel."""
        return simulate_launch(
            self.device,
            wavefront_cycles,
            bytes_moved,
            label=self.name,
            occupancy_factor=occupancy_factor,
            extra_launches=extra_launches,
            bandwidth_utilization=self.bandwidth_utilization,
            serial_cycles=serial_cycles,
        )

    def _spec(
        self,
        wavefront_cycles,
        bytes_moved: float,
        occupancy_factor: float = 1.0,
        extra_launches: int = 0,
        serial_cycles: float = 0.0,
        repeat: int = 1,
    ) -> LaunchSpec:
        """Build a launch spec labelled and bandwidth-scaled for this kernel.

        ``repeat`` describes uniform wavefront blocks symbolically (the
        spec behaves as the element-wise ``np.repeat`` expansion); cost
        models may only emit ``repeat > 1`` when ``context.fast`` — the
        exact path materializes the expansion so it stays bit-identical to
        the scalar reference.
        """
        return LaunchSpec(
            wavefront_cycles=as_wavefront_cycles(wavefront_cycles),
            bytes_moved=float(bytes_moved),
            label=self.name,
            occupancy_factor=occupancy_factor,
            extra_launches=extra_launches,
            bandwidth_utilization=self.bandwidth_utilization,
            serial_cycles=serial_cycles,
            repeat=repeat,
        )


def batch_timings(kernels, workload, context=None, precision: str = "exact") -> dict:
    """Timings of many kernels over one workload through the batched simulator.

    Builds one shared :class:`LaunchContext`, collects every supported
    kernel's :class:`~repro.gpu.simulator.LaunchSpec` and simulates them with
    :func:`~repro.gpu.simulator.simulate_launch_batch`.  Returns ``{kernel
    name: KernelTiming}``; kernels that cannot process the workload are
    absent (callers record those as unsupported).

    With ``precision="exact"`` (the default) this is bit-identical to
    calling :meth:`SpmvKernel.timing` per kernel — both paths simulate the
    same specs.  With ``precision="fast"`` the context's fused shortcuts
    and the simulator's concatenated segment reductions apply, and results
    agree with the scalar reference only to within
    :data:`~repro.gpu.simulator.FAST_MODE_RELATIVE_TOLERANCE`.  When an
    explicit ``context`` is passed its own precision governs the spec
    builders; ``precision`` still selects the simulator path.
    """
    check_precision(precision)
    context = LaunchContext.of(workload, context, precision=precision)
    supported = []
    specs = []
    for kernel in kernels:
        if not kernel.supports(workload):
            continue
        supported.append(kernel)
        specs.append(kernel._launch_spec(workload, context))
    results: list = [None] * len(specs)
    device_groups: dict = {}
    for index, kernel in enumerate(supported):
        device_groups.setdefault(kernel.device, []).append(index)
    for device, indices in device_groups.items():
        launches = simulate_launch_batch(
            device, [specs[i] for i in indices], precision=precision
        )
        for index, launch in zip(indices, launches):
            results[index] = launch
    timings = {}
    for kernel, launch in zip(supported, results):
        timings[kernel.name] = KernelTiming(
            kernel=kernel.name,
            preprocessing_ms=kernel.preprocessing_time_ms(workload),
            iteration_ms=launch.total_ms,
            iteration_detail=launch,
        )
    return timings
