"""Kernel abstraction shared by every SpMV variant.

Each kernel variant of Table II is a class with three responsibilities:

* **numeric correctness** — ``run`` produces the SpMV result ``y = A @ x``
  (computed with the format the kernel operates on where that is feasible);
* **per-iteration timing** — an analytical translation of the matrix
  structure into per-wavefront cycle counts and bytes moved, handed to the
  GPU simulator;
* **preprocessing timing** — the one-time cost (row binning, analysis
  passes) that the multi-iteration study amortizes.

The cost-model constants below are shared so kernels differ only where the
paper says they differ: how work is mapped to lanes, what metadata the
format carries, and what preprocessing they require.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.gpu.device import DeviceSpec, MI100
from repro.gpu.host import HostModel
from repro.gpu.memory import INDEX_BYTES, VALUE_BYTES, gather_bytes_per_access
from repro.gpu.simulator import LaunchResult, simulate_launch
from repro.sparse.csr import CSRMatrix

#: Cycles a lane spends per nonzero (multiply-add plus address arithmetic).
CYCLES_PER_NONZERO = 4.0

#: Per-row bookkeeping cycles (offset reads, output write) for row-mapped kernels.
ROW_OVERHEAD_CYCLES = 8.0

#: Cycles of a wavefront-wide (64-lane) reduction.
WAVE_REDUCTION_CYCLES = 12.0

#: Cycles of a workgroup-wide (LDS) reduction.
BLOCK_REDUCTION_CYCLES = 40.0

#: Cycles of one merge-path binary search (work-oriented kernels).
MERGE_SEARCH_CYCLES = 24.0

#: Cycles of one global atomic update (COO segmented reduction carry-out).
ATOMIC_CYCLES = 16.0

#: Bytes of CSR metadata per nonzero (value + column index).
CSR_NNZ_BYTES = VALUE_BYTES + INDEX_BYTES

#: Bytes of COO metadata per nonzero (value + column index + row index).
COO_NNZ_BYTES = VALUE_BYTES + 2 * INDEX_BYTES


class UnsupportedKernelError(RuntimeError):
    """Raised when a kernel cannot process a matrix (e.g. pathological ELL padding)."""


@dataclass(frozen=True)
class KernelTiming:
    """Simulated timing of one kernel on one matrix (milliseconds)."""

    kernel: str
    preprocessing_ms: float
    iteration_ms: float
    iteration_detail: Optional[LaunchResult] = field(compare=False, default=None)

    def total_ms(self, iterations: int = 1) -> float:
        """End-to-end time for ``iterations`` SpMV iterations."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        return self.preprocessing_ms + iterations * self.iteration_ms


@dataclass
class SpmvRunResult:
    """Numeric result plus timing of one kernel execution."""

    kernel: str
    y: np.ndarray
    timing: KernelTiming
    iterations: int = 1

    @property
    def total_ms(self) -> float:
        """End-to-end simulated time of this run."""
        return self.timing.total_ms(self.iterations)


class SpmvKernel(abc.ABC):
    """Base class of every SpMV kernel variant.

    Subclasses define ``name`` (the label used throughout the paper, e.g.
    ``"CSR,TM"``), ``sparse_format`` and ``schedule``, and implement the
    structural cost model in :meth:`_iteration_launch`.
    """

    #: Paper label of the kernel, e.g. ``"CSR,WM"``.
    name: str = "abstract"
    #: Compressed format the kernel consumes ("CSR", "COO", "ELL").
    sparse_format: str = "CSR"
    #: Load-balancing schedule label (Table II).
    schedule: str = "abstract"
    #: Whether the kernel requires a preprocessing stage (Table II / Fig. 7).
    has_preprocessing: bool = False
    #: Fraction of peak DRAM bandwidth this kernel's access pattern sustains.
    bandwidth_utilization: float = 1.0

    def __init__(self, device: DeviceSpec = MI100):
        self.device = device
        self.host = HostModel(device)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, device={self.device.name!r})"

    # ------------------------------------------------------------------
    # Capability checks
    # ------------------------------------------------------------------
    def supports(self, matrix: CSRMatrix) -> bool:
        """Whether the kernel can process this matrix at all."""
        return True

    def _require_supported(self, matrix: CSRMatrix) -> None:
        if not self.supports(matrix):
            raise UnsupportedKernelError(f"{self.name} cannot process this matrix")

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def preprocessing_time_ms(self, matrix: CSRMatrix) -> float:
        """One-time preprocessing cost for this matrix (0 when none)."""
        return 0.0

    @abc.abstractmethod
    def _iteration_launch(self, matrix: CSRMatrix) -> LaunchResult:
        """Simulate one SpMV iteration and return the launch result."""

    def timing(self, matrix: CSRMatrix) -> KernelTiming:
        """Preprocessing plus per-iteration timing for ``matrix``."""
        self._require_supported(matrix)
        launch = self._iteration_launch(matrix)
        return KernelTiming(
            kernel=self.name,
            preprocessing_ms=self.preprocessing_time_ms(matrix),
            iteration_ms=launch.total_ms,
            iteration_detail=launch,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _numeric_result(self, matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x``; subclasses may override to use their own format."""
        return matrix.spmv(x)

    def run(self, matrix: CSRMatrix, x: np.ndarray, iterations: int = 1) -> SpmvRunResult:
        """Execute ``iterations`` SpMV iterations and return result + timing.

        Iterating SpMV repeatedly with the same ``x`` would be pointless
        numerically, so — as in iterative solvers — the output of one
        iteration feeds the next when the matrix is square; otherwise the
        same ``x`` is reused and only the timing reflects the iteration
        count.
        """
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self._require_supported(matrix)
        timing = self.timing(matrix)
        y = self._numeric_result(matrix, np.asarray(x, dtype=np.float64))
        if matrix.num_rows == matrix.num_cols:
            for _ in range(iterations - 1):
                y = self._numeric_result(matrix, y)
        return SpmvRunResult(kernel=self.name, y=y, timing=timing, iterations=iterations)

    # ------------------------------------------------------------------
    # Shared cost-model helpers
    # ------------------------------------------------------------------
    def _gather_bytes(self, matrix: CSRMatrix, accesses: float) -> float:
        """Bytes moved by gathering ``accesses`` elements of the x vector."""
        vector_bytes = matrix.num_cols * VALUE_BYTES
        return accesses * gather_bytes_per_access(self.device, vector_bytes)

    def _csr_stream_bytes(self, matrix: CSRMatrix) -> float:
        """Bytes of the CSR arrays plus the output vector for one iteration."""
        return (
            matrix.nnz * CSR_NNZ_BYTES
            + (matrix.num_rows + 1) * INDEX_BYTES
            + matrix.num_rows * VALUE_BYTES
        )

    def _launch(
        self,
        wavefront_cycles,
        bytes_moved: float,
        occupancy_factor: float = 1.0,
        extra_launches: int = 0,
        serial_cycles: float = 0.0,
    ) -> LaunchResult:
        """Run the GPU simulator for one launch labelled with this kernel."""
        return simulate_launch(
            self.device,
            wavefront_cycles,
            bytes_moved,
            label=self.name,
            occupancy_factor=occupancy_factor,
            extra_launches=extra_launches,
            bandwidth_utilization=self.bandwidth_utilization,
            serial_cycles=serial_cycles,
        )
