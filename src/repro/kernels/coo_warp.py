"""COO warp-mapped SpMV — ``COO,WM`` in the paper.

Every wavefront processes 64 consecutive nonzeros of the coordinate-format
matrix and combines lanes that belong to the same row with a segmented
reduction; partial sums at row boundaries are committed with global atomics.
Work is perfectly balanced across nonzeros — heavy rows cost nothing extra —
but the format carries an explicit row index per nonzero (more traffic) and
every row boundary inside a wavefront costs an atomic.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.memory import VALUE_BYTES
from repro.gpu.simulator import LaunchSpec
from repro.kernels.base import (
    ATOMIC_CYCLES,
    COO_NNZ_BYTES,
    CYCLES_PER_NONZERO,
    WAVE_REDUCTION_CYCLES,
    LaunchContext,
    SpmvKernel,
)
from repro.sparse.csr import CSRMatrix

#: Carry-out commits the global atomic unit retires per device cycle.
ATOMIC_THROUGHPUT_PER_CYCLE = 2.0


class CooWarpMapped(SpmvKernel):
    """Nonzero-parallel SpMV over the COO format."""

    name = "COO,WM"
    sparse_format = "COO"
    schedule = "Warp Mapped"
    has_preprocessing = False
    bandwidth_utilization = 0.95

    def _launch_spec(self, matrix: CSRMatrix, context: LaunchContext) -> LaunchSpec:
        simd = self.device.simd_width
        num_waves = max(1, int(np.ceil(matrix.nnz / simd)))
        # Number of row boundaries falling inside each wavefront's slice:
        # on average (rows with nonzeros) / waves, at least one per wave.
        occupied_rows = context.occupied_rows
        boundaries_per_wave = max(1.0, occupied_rows / num_waves)
        wave_cycles = (
            CYCLES_PER_NONZERO
            + WAVE_REDUCTION_CYCLES
            + ATOMIC_CYCLES * boundaries_per_wave
        )
        bytes_moved = (
            matrix.nnz * COO_NNZ_BYTES
            + matrix.num_rows * VALUE_BYTES
            + self._gather_bytes(matrix, matrix.nnz)
        )
        # Every occupied row produces at least one carry-out that funnels
        # through the global atomic unit; matrices with millions of short
        # rows therefore serialize on it.
        serial_cycles = occupied_rows / ATOMIC_THROUGHPUT_PER_CYCLE
        if context.fast:
            # Uniform wave cost: one element plus a symbolic repeat count.
            return self._spec(
                [wave_cycles],
                bytes_moved,
                serial_cycles=serial_cycles,
                repeat=num_waves,
            )
        wavefront_cycles = np.full(num_waves, wave_cycles, dtype=np.float64)
        return self._spec(
            wavefront_cycles, bytes_moved, serial_cycles=serial_cycles
        )

    def _numeric_result(self, matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
        """Compute through the COO representation the kernel actually uses."""
        return matrix.to_coo().spmv(x)
