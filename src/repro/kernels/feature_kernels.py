"""Parallel feature-collection kernels.

The gathered features of the case study (max / min / mean / variance of row
density, Section IV-A) are computed by GPU kernels that stride across the
CSR row-offsets array and reduce the per-row densities.  Collection is cheap
per element — it only touches the offsets, not the nonzeros — but it is not
free: it costs two kernel launches (map + reduce), a device-to-host copy of
the resulting scalars, and bandwidth proportional to the number of rows.

That cost is exactly the quantity Fig. 6 plots against the CSR,BM runtime
and the quantity the classifier-selection model weighs against the benefit
of a better prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import DeviceSpec, MI100
from repro.gpu.host import HostModel
from repro.gpu.memory import INDEX_BYTES, VALUE_BYTES
from repro.gpu.simulator import LaunchResult, simulate_launch
from repro.sparse.csr import CSRMatrix
from repro.sparse.features import GatheredFeatures, gathered_features

#: Cycles each lane spends per row (offset diff, density divide, local max/min/sums).
CYCLES_PER_ROW = 6.0

#: Cycles of the final tree reduction combining per-wavefront partials.
REDUCTION_CYCLES = 64.0

#: Scalars copied back to the host (max, min, sum, sum of squares).
RESULT_SCALARS = 4


@dataclass(frozen=True)
class FeatureCollectionResult:
    """Gathered features plus the simulated cost of collecting them."""

    features: GatheredFeatures
    collection_time_ms: float
    launch: LaunchResult


class FeatureCollector:
    """Simulated parallel collection of the gathered row-density features."""

    name = "feature-collection"

    def __init__(self, device: DeviceSpec = MI100):
        self.device = device
        self.host = HostModel(device)

    def collection_time_ms(self, matrix: CSRMatrix) -> float:
        """Cost of gathering the dynamic features for ``matrix``."""
        return self._simulate(matrix)[0]

    def collect(self, matrix: CSRMatrix, context=None) -> FeatureCollectionResult:
        """Compute the gathered features and their collection cost.

        ``context`` optionally shares a
        :class:`~repro.kernels.base.LaunchContext` so the row lengths the
        timing kernels already derived are reused instead of recomputed.
        """
        time_ms, launch = self._simulate(matrix)
        row_lengths = None if context is None else context.row_lengths_f64
        features = gathered_features(
            matrix, row_lengths=row_lengths
        ).with_collection_time(time_ms)
        return FeatureCollectionResult(
            features=features, collection_time_ms=time_ms, launch=launch
        )

    def _simulate(self, matrix: CSRMatrix) -> tuple:
        simd = self.device.simd_width
        num_rows = max(matrix.num_rows, 1)
        num_waves = max(1, int(np.ceil(num_rows / simd)))
        wave_cycles = np.full(
            num_waves, CYCLES_PER_ROW + REDUCTION_CYCLES / simd, dtype=np.float64
        )
        bytes_moved = (
            (matrix.num_rows + 1) * INDEX_BYTES
            + num_waves * RESULT_SCALARS * VALUE_BYTES
        )
        # Two launches: the per-wavefront partial reduction and the final
        # combine; then the four scalars travel back to the host where the
        # decision tree runs.
        launch = simulate_launch(
            self.device,
            wave_cycles,
            bytes_moved,
            label=self.name,
            extra_launches=1,
        )
        transfer_ms = self.host.transfer_time_ms(RESULT_SCALARS * VALUE_BYTES)
        return launch.total_ms + transfer_ms, launch
