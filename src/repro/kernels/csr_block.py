"""CSR block-mapped SpMV — ``CSR,BM`` in the paper.

One workgroup (four wavefronts, 256 lanes) cooperatively processes one row,
combining partial sums through the LDS.  This is the schedule of choice for
matrices with very heavy rows, but the per-row workgroup launch and LDS
reduction overhead makes it expensive when rows are short, and the larger
workgroup footprint lowers occupancy.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.memory import INDEX_BYTES, VALUE_BYTES
from repro.gpu.simulator import LaunchSpec
from repro.kernels.base import (
    BLOCK_REDUCTION_CYCLES,
    CSR_NNZ_BYTES,
    CYCLES_PER_NONZERO,
    ROW_OVERHEAD_CYCLES,
    LaunchContext,
    SpmvKernel,
)
from repro.sparse.csr import CSRMatrix

#: Wavefronts per workgroup of the block-mapped kernel.
WAVES_PER_WORKGROUP = 4

#: Occupancy factor reflecting the LDS footprint of the block reduction.
BLOCK_OCCUPANCY = 0.75

#: Minimum DRAM traffic per row (one transaction per workgroup-owned row).
MIN_ROW_TRANSACTION_BYTES = 128.0


class CsrBlockMapped(SpmvKernel):
    """One row per workgroup over CSR."""

    name = "CSR,BM"
    sparse_format = "CSR"
    schedule = "Block Mapped"
    has_preprocessing = False
    bandwidth_utilization = 0.80

    def _launch_spec(self, matrix: CSRMatrix, context: LaunchContext) -> LaunchSpec:
        group_width = self.device.simd_width * WAVES_PER_WORKGROUP
        # In place on the strip count; summands are integer-valued doubles,
        # so folding the constants matches the chained adds bit for bit.
        workgroup_cycles = np.ceil(context.row_lengths_f64 / group_width)
        workgroup_cycles *= CYCLES_PER_NONZERO
        workgroup_cycles += BLOCK_REDUCTION_CYCLES + ROW_OVERHEAD_CYCLES
        stream_bytes = context.clamped_stream_bytes(
            CSR_NNZ_BYTES, MIN_ROW_TRANSACTION_BYTES
        )
        bytes_moved = (
            stream_bytes
            + (matrix.num_rows + 1) * INDEX_BYTES
            + matrix.num_rows * VALUE_BYTES
            + self._gather_bytes(matrix, matrix.nnz)
        )
        # Every wavefront of the workgroup is busy for the workgroup's
        # duration, so the launch contains WAVES_PER_WORKGROUP waves per row
        # with the same cost.  Fast mode keeps the expansion symbolic.
        if context.fast:
            return self._spec(
                workgroup_cycles,
                bytes_moved,
                occupancy_factor=BLOCK_OCCUPANCY,
                repeat=WAVES_PER_WORKGROUP,
            )
        wavefront_cycles = np.repeat(workgroup_cycles, WAVES_PER_WORKGROUP)
        return self._spec(
            wavefront_cycles, bytes_moved, occupancy_factor=BLOCK_OCCUPANCY
        )
