"""Registry of the SpMV kernel variants (Table II of the paper)."""

from __future__ import annotations

from repro.gpu.device import DeviceSpec, MI100
from repro.kernels.coo_warp import CooWarpMapped
from repro.kernels.csr_adaptive import CsrAdaptive, RocSparseAdaptive
from repro.kernels.csr_block import CsrBlockMapped
from repro.kernels.csr_merge import CsrMergePath, CsrWorkOriented
from repro.kernels.csr_scalar import CsrThreadMapped
from repro.kernels.csr_vector import CsrWarpMapped
from repro.kernels.ell_thread import EllThreadMapped

#: Kernel classes keyed by their paper label, in the order used by Fig. 5.
KERNEL_CLASSES = {
    CsrAdaptive.name: CsrAdaptive,
    CsrBlockMapped.name: CsrBlockMapped,
    CsrMergePath.name: CsrMergePath,
    CsrWarpMapped.name: CsrWarpMapped,
    CsrWorkOriented.name: CsrWorkOriented,
    CsrThreadMapped.name: CsrThreadMapped,
    CooWarpMapped.name: CooWarpMapped,
    EllThreadMapped.name: EllThreadMapped,
    RocSparseAdaptive.name: RocSparseAdaptive,
}

#: The eight kernels shown in the per-matrix plots of Fig. 5.
FIG5_KERNEL_NAMES = (
    "CSR,A",
    "CSR,BM",
    "CSR,MP",
    "CSR,WM",
    "CSR,WO",
    "CSR,TM",
    "COO,WM",
    "ELL,TM",
)

#: The full set, including the vendor library shown in Fig. 1 and Fig. 7.
ALL_KERNEL_NAMES = FIG5_KERNEL_NAMES + ("rocSPARSE",)


def kernel_names(include_rocsparse: bool = True) -> tuple:
    """Kernel labels in paper order."""
    return ALL_KERNEL_NAMES if include_rocsparse else FIG5_KERNEL_NAMES


def make_kernel(name: str, device: DeviceSpec = MI100):
    """Instantiate a kernel variant by its paper label."""
    if name not in KERNEL_CLASSES:
        raise KeyError(
            f"unknown kernel {name!r}; expected one of {sorted(KERNEL_CLASSES)}"
        )
    return KERNEL_CLASSES[name](device)


def default_kernels(device: DeviceSpec = MI100, include_rocsparse: bool = True) -> list:
    """Instantiate the case-study kernel set in paper order."""
    return [make_kernel(name, device) for name in kernel_names(include_rocsparse)]
