"""Registry of the SpMV kernel variants (Table II of the paper).

This module is now a thin compatibility shim over the ``"spmv"`` problem
domain (:mod:`repro.domains.spmv`): the kernel set lives in the domain's
decorator-based registry, and every helper here delegates to it.  Legacy
imports — ``KERNEL_CLASSES``, ``FIG5_KERNEL_NAMES``, ``ALL_KERNEL_NAMES``,
:func:`kernel_names`, :func:`make_kernel`, :func:`default_kernels` — keep
working unchanged and resolve to exactly the same kernels in the same paper
order.
"""

from __future__ import annotations

from repro.gpu.device import MI100, DeviceSpec


def _domain():
    """The registered ``"spmv"`` domain (resolved lazily to avoid import
    cycles between this package and :mod:`repro.domains`)."""
    from repro.domains import get_domain

    return get_domain("spmv")


def __getattr__(name: str):
    # PEP 562 lazy module attributes: the legacy constants are views of the
    # domain registry, materialized on first access.
    if name == "KERNEL_CLASSES":
        return _domain().kernel_classes
    if name == "FIG5_KERNEL_NAMES":
        return _domain().kernel_names(include_aux=False)
    if name == "ALL_KERNEL_NAMES":
        return _domain().kernel_names(include_aux=True)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def kernel_names(include_rocsparse: bool = True) -> tuple:
    """Kernel labels in paper order."""
    return _domain().kernel_names(include_aux=include_rocsparse)


def make_kernel(name, device: DeviceSpec = MI100):
    """Instantiate a kernel variant by its paper label.

    Already-instantiated kernels pass through unchanged; unknown labels
    raise :class:`KeyError` with close-match suggestions.
    """
    return _domain().make_kernel(name, device)


def default_kernels(device: DeviceSpec = MI100, include_rocsparse: bool = True) -> list:
    """Instantiate the case-study kernel set in paper order."""
    return _domain().default_kernels(device, include_aux=include_rocsparse)
