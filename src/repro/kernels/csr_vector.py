"""CSR warp-mapped (vector) SpMV — ``CSR,WM`` in the paper.

One wavefront cooperatively processes one row: the 64 lanes stride across
the row's nonzeros and combine their partial sums with a wavefront-wide
reduction.  Accesses are coalesced, long rows are handled gracefully, but
every row pays the reduction cost and rows shorter than the SIMD width leave
lanes idle — which is why the schedule collapses on matrices made of many
tiny rows.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.memory import INDEX_BYTES, VALUE_BYTES
from repro.gpu.simulator import LaunchSpec
from repro.kernels.base import (
    CSR_NNZ_BYTES,
    CYCLES_PER_NONZERO,
    ROW_OVERHEAD_CYCLES,
    WAVE_REDUCTION_CYCLES,
    LaunchContext,
    SpmvKernel,
)
from repro.sparse.csr import CSRMatrix

#: Extra per-row bookkeeping of the vector kernel: offset loads, lane
#: predication, output write, and the wavefront dispatch itself.  This is the
#: cost that makes the schedule collapse on matrices made of millions of tiny
#: rows.
PER_ROW_BOOKKEEPING_CYCLES = 36.0

#: Minimum DRAM traffic per row: the wavefront's loads for one row are one
#: transaction, so a row shorter than a cache line still moves a full line
#: of values and a full line of column indices.
MIN_ROW_TRANSACTION_BYTES = 128.0


class CsrWarpMapped(SpmvKernel):
    """One row per wavefront over CSR."""

    name = "CSR,WM"
    sparse_format = "CSR"
    schedule = "Warp Mapped"
    has_preprocessing = False
    bandwidth_utilization = 0.80

    def _launch_spec(self, matrix: CSRMatrix, context: LaunchContext) -> LaunchSpec:
        # Computed in place on the strip count; the summands stay exact
        # (strip counts and cycle constants are integer-valued doubles), so
        # folding the constants matches the chained adds bit for bit.
        wavefront_cycles = np.ceil(context.row_lengths_f64 / self.device.simd_width)
        wavefront_cycles *= CYCLES_PER_NONZERO
        wavefront_cycles += (
            WAVE_REDUCTION_CYCLES + ROW_OVERHEAD_CYCLES + PER_ROW_BOOKKEEPING_CYCLES
        )
        stream_bytes = context.clamped_stream_bytes(
            CSR_NNZ_BYTES, MIN_ROW_TRANSACTION_BYTES
        )
        bytes_moved = (
            stream_bytes
            + (matrix.num_rows + 1) * INDEX_BYTES
            + matrix.num_rows * VALUE_BYTES
            + self._gather_bytes(matrix, matrix.nnz)
        )
        return self._spec(wavefront_cycles, bytes_moved)
