"""Static invariant analysis for the reproduction (``repro lint``).

A custom AST-based checker that turns the codebase's standing invariants —
deterministic artifacts, canonical JSON, cache-key purity, daemon locking
discipline, domain-schema conformance — into named, testable rules.  See
:mod:`repro.analysis.engine` for the rule engine and the per-category rule
modules (:mod:`~repro.analysis.determinism`,
:mod:`~repro.analysis.concurrency`, :mod:`~repro.analysis.conformance`,
:mod:`~repro.analysis.environment`, :mod:`~repro.analysis.promotion`).
"""

from repro.analysis.engine import (
    AnalysisError,
    Baseline,
    BaselineEntry,
    Finding,
    LintReport,
    ModuleSource,
    RuleSpec,
    all_rules,
    lint_module,
    lint_package,
    lint_paths,
    lint_source,
    package_dir,
    register_rule,
    render_json,
    render_text,
    rule_ids,
    select_rules,
)

__all__ = [
    "AnalysisError",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintReport",
    "ModuleSource",
    "RuleSpec",
    "all_rules",
    "lint_module",
    "lint_package",
    "lint_paths",
    "lint_source",
    "package_dir",
    "register_rule",
    "render_json",
    "render_text",
    "rule_ids",
    "select_rules",
]
