"""Environment rules: configuration enters at the front door (ENV0xx).

``SEER_*`` environment variables (``SEER_JOBS``, ``SEER_CACHE_DIR``, the
deprecated ``SEER_SCALAR_TIMING``) are *entry-point* configuration: the CLI
and :func:`~repro.bench.engine.engine_from_env` read them exactly once and
thread the resolved values — jobs, cache dir, ``timing_mode``,
``precision`` — through explicit parameters.  A library module that reads
the environment per call reintroduces ambient state: two identical calls
can behave differently depending on who exported what, which breaks cache-
key purity and makes the measurement mode untestable.  ``ENV001`` pins the
boundary.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.engine import Finding, ModuleSource, dotted_name, register_rule

#: Modules sanctioned to read ``SEER_*`` variables: the environment-to-
#: parameter translation layer.  ``core/benchmarking.py``'s deprecated
#: ``timing_mode_from_env`` fallback is *not* listed — it carries an inline
#: disable so the exception stays visible at the call site.
ENV_ENTRY_POINT_MODULES = ("bench/engine.py",)

#: The reserved prefix of this repository's environment variables.
ENV_PREFIX = "SEER_"


def _env_var_name(node: Optional[ast.expr]) -> Optional[str]:
    """The ``SEER_*`` name in a constant expression, if that's what it is."""
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value.startswith(ENV_PREFIX)
    ):
        return node.value
    return None


def _is_environ_mapping(node: ast.expr) -> bool:
    """Whether an expression names an environment mapping (``os.environ``,
    a bare/aliased ``environ``, or any ``*.environ`` attribute)."""
    name = dotted_name(node)
    return name is not None and (name == "environ" or name.endswith(".environ"))


@register_rule(
    "ENV001",
    "SEER_* environment read outside an entry-point module",
)
def env_read_outside_entry_point(module: ModuleSource) -> Iterator[Finding]:
    """Flag ``SEER_*`` reads anywhere but the designated entry points.

    Catches the three read spellings — ``os.getenv("SEER_X")``,
    ``environ.get("SEER_X")`` / ``os.environ["SEER_X"]`` and
    ``"SEER_X" in os.environ`` — in every module not listed in
    :data:`ENV_ENTRY_POINT_MODULES`.  The fix is never a suppression (save
    for the one deprecated fallback): accept the value as a parameter and
    let the CLI/engine layer do the reading.
    """
    if module.module in ENV_ENTRY_POINT_MODULES:
        return
    for node in ast.walk(module.tree):
        variable = None
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            reads_env = name is not None and (
                name == "getenv"
                or name.endswith(".getenv")
                or name == "environ.get"
                or name.endswith(".environ.get")
            )
            if reads_env and node.args:
                variable = _env_var_name(node.args[0])
        elif isinstance(node, ast.Subscript):
            if _is_environ_mapping(node.value):
                variable = _env_var_name(node.slice)
        elif isinstance(node, ast.Compare):
            if (
                len(node.ops) == 1
                and isinstance(node.ops[0], (ast.In, ast.NotIn))
                and _is_environ_mapping(node.comparators[0])
            ):
                variable = _env_var_name(node.left)
        if variable is not None:
            yield module.finding(
                node,
                f"reads {variable} from the environment; {ENV_PREFIX}* "
                f"variables are resolved once at the entry points "
                f"({', '.join(ENV_ENTRY_POINT_MODULES)}) and threaded "
                f"through explicit parameters",
                symbol=variable,
            )
