"""Determinism rules: the bit-identical-artifact invariants (DET0xx).

Everything this repository promises — parallel==serial sweeps, golden
CSV/JSON artifacts, content-addressed cache keys — assumes the code never
lets incidental ordering or ambient entropy leak into an output.  These
rules name the leak patterns:

* ``DET001`` — filesystem iteration (``iterdir``/``glob``/``rglob``/
  ``os.listdir``/``os.scandir``) whose order the OS chooses, not wrapped
  in ``sorted(...)``;
* ``DET002`` — iterating a ``set`` (literal, comprehension or ``set()``
  call), whose order varies per process when hash randomization is on;
* ``DET003`` — wall-clock/entropy calls (``time.time``, ``datetime.now``,
  ``uuid``, unseeded RNG constructors) inside cache-keyed or
  artifact-writing modules, where they would poison keys or golden bytes;
* ``DET004`` — ``json.dump(s)`` without ``sort_keys=True``: dict insertion
  order is program history, not content, and must never reach an artifact
  or a digest.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import (
    Finding,
    ModuleSource,
    call_keywords,
    dotted_name,
    is_wrapped_in,
    register_rule,
)

#: Modules whose outputs participate in cache keys or on-disk artifacts —
#: the scope of the wall-clock/entropy rule.  The daemon (serving/service)
#: legitimately reads the clock for latency metrics and is excluded.
ARTIFACT_MODULE_SCOPE = (
    "bench/engine.py",
    "bench/runner.py",
    "serving/artifacts.py",
    "serving/registry.py",
    "serving/ingest.py",
    "serving/feedback.py",
    "serving/promotion.py",
    "experiments/*.py",
    "core/codegen.py",
)

_FS_ITER_METHODS = frozenset({"iterdir", "glob", "rglob"})
_FS_ITER_FUNCTIONS = frozenset({"os.listdir", "os.scandir", "glob.glob", "glob.iglob"})


@register_rule(
    "DET001",
    "filesystem iteration not wrapped in sorted()",
)
def unsorted_fs_iteration(module: ModuleSource) -> Iterator[Finding]:
    """Flag ``iterdir``/``glob``-style calls whose order reaches the program.

    The OS returns directory entries in arbitrary order; any artifact,
    cache key or serve order derived from an unsorted listing differs
    between hosts.  Wrapping the call in ``sorted(...)`` (directly or via
    a comprehension argument) satisfies the rule.
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        is_fs_iter = name in _FS_ITER_FUNCTIONS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_ITER_METHODS
        )
        if not is_fs_iter:
            continue
        if is_wrapped_in(module, node, "sorted"):
            continue
        short = name.rsplit(".", 1)[-1]
        yield module.finding(
            node,
            f"{short}() yields entries in filesystem order; wrap the "
            f"iteration in sorted(...) so downstream artifacts and cache "
            f"keys are host-independent",
        )


@register_rule(
    "DET002",
    "iteration over a set (hash-randomized order)",
)
def set_iteration(module: ModuleSource) -> Iterator[Finding]:
    """Flag ``for``-loops and comprehensions that iterate a set expression.

    Set iteration order depends on hash seeds and insertion history; a
    loop over a set feeding rows, hashes or log lines is a latent golden-
    test flake.  ``sorted({...})`` is the deterministic spelling.
    """
    for node in ast.walk(module.tree):
        iterables = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iterables.extend(gen.iter for gen in node.generators)
        for iterable in iterables:
            if _is_set_expression(iterable) and not is_wrapped_in(
                module, iterable, "sorted"
            ):
                yield module.finding(
                    iterable,
                    "iterating a set visits elements in hash order; wrap it "
                    "in sorted(...) before the order can reach an artifact",
                )


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


_ENTROPY_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

_RNG_CONSTRUCTORS = ("default_rng", "RandomState")

#: numpy.random module attributes that are *not* the legacy global-state
#: API (calling these is fine; everything else on np.random is flagged).
_NUMPY_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence", "RandomState"})


@register_rule(
    "DET003",
    "wall-clock/entropy call in a cache-keyed or artifact-writing module",
    scope=ARTIFACT_MODULE_SCOPE,
)
def entropy_in_artifact_module(module: ModuleSource) -> Iterator[Finding]:
    """Flag ambient-entropy calls where outputs must be pure functions.

    Cache keys are digests of configuration and sources; artifacts are
    golden-tested bytes.  A timestamp, UUID or unseeded RNG inside these
    modules silently makes every run unique.  Timing *measurement* belongs
    in the daemon/loadgen layers, which are outside this rule's scope.
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        if name in _ENTROPY_CALLS:
            yield module.finding(
                node,
                f"{name}() injects wall-clock/entropy into a module whose "
                f"outputs feed cache keys or committed artifacts",
            )
            continue
        if name.startswith("random.") and not name.startswith("random.Random"):
            yield module.finding(
                node,
                f"module-level {name}() uses the shared global RNG; pass an "
                f"explicitly seeded generator instead",
            )
            continue
        prefix, _, attr = name.rpartition(".")
        if (
            prefix.endswith("np.random") or prefix.endswith("numpy.random")
        ) and attr not in _NUMPY_RANDOM_OK:
            yield module.finding(
                node,
                f"{name}() draws from numpy's global RNG state; pass an "
                f"explicitly seeded Generator instead",
            )
            continue
        if (
            name in _RNG_CONSTRUCTORS
            or any(name.endswith("." + ctor) for ctor in _RNG_CONSTRUCTORS)
        ) and not (node.args or node.keywords):
            yield module.finding(
                node,
                f"{name}() without a seed draws OS entropy; artifact-"
                f"producing code must seed its generators explicitly",
            )


@register_rule(
    "DET004",
    "json.dump(s) without sort_keys=True",
)
def json_dump_without_sort_keys(module: ModuleSource) -> Iterator[Finding]:
    """Flag JSON serialization that preserves dict insertion order.

    Every JSON byte stream in this repository is either a digest input
    (cache keys), a committed artifact (manifests, model.json) or a wire/
    log record that tests may compare byte-wise — all of which must be
    canonical.  ``sort_keys=True`` is the one-argument fix; genuinely
    order-relevant sites can carry an inline disable with a justification.
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if dotted_name(node.func) not in ("json.dump", "json.dumps"):
            continue
        sort_keys = call_keywords(node).get("sort_keys")
        if sort_keys is None:
            yield module.finding(
                node,
                "json serialization without sort_keys=True emits dict "
                "insertion order; canonicalize so artifacts, digests and "
                "logs are byte-stable",
            )
        elif isinstance(sort_keys, ast.Constant) and not sort_keys.value:
            yield module.finding(
                node,
                "sort_keys is explicitly disabled; canonical JSON is the "
                "repository-wide contract for artifacts and digests",
            )
