"""Plugin-conformance rules: the domain/experiment API contracts (DOM/API).

The domain plugin API (:mod:`repro.domains`) hinges on declared feature
schemas: ``FeatureField`` names are the single source of truth for CSV
columns, cache payload keys and classifier input order.  A collector or
row-parser that hard-codes a column name the schema does not declare
works until the first real request touches it.  Similarly, the serving
layer keeps one deprecated entry point alive for compatibility; new code
must not grow calls to it.

* ``DOM001`` — a string column reference (``row["..."]``/``row.get("...")``)
  in a domain module that is not a declared ``FeatureField`` name;
* ``API001`` — a call to the deprecated positional
  ``SeerPredictor._decide(known, name, gather)`` shim.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.engine import (
    Finding,
    ModuleSource,
    call_keywords,
    register_rule,
)

#: Row keys that are part of the row protocol rather than the feature
#: schema (the reserved iteration count and the gathered-cost sidecar).
_PROTOCOL_KEYS = frozenset({"iterations", "collection_time_ms", "name", "family"})

#: Variable names treated as feature-row mappings in domain modules.
_ROW_NAMES = frozenset({"row", "payload", "features"})


def _module_string_sequences(tree: ast.Module) -> Dict[str, Tuple[str, ...]]:
    """Module-level ``NAME = ("a", "b", ...)`` constants of strings."""
    constants: Dict[str, Tuple[str, ...]] = {}
    for statement in tree.body:
        if not isinstance(statement, ast.Assign) or len(statement.targets) != 1:
            continue
        target = statement.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = statement.value
        if not isinstance(value, (ast.Tuple, ast.List)):
            continue
        items = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                items.append(element.value)
            else:
                break
        else:
            if items:
                constants[target.id] = tuple(items)
    return constants


def _declared_field_names(module: ModuleSource) -> Set[str]:
    """Every ``FeatureField(name, ...)`` name declared in the module.

    Literal names are read directly; ``FeatureField(name) for name in
    NAMES``-style declarations resolve ``NAMES`` through the module-level
    string-sequence constants.
    """
    constants = _module_string_sequences(module.tree)
    declared: Set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        func_name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        if func_name != "FeatureField":
            continue
        name_arg: Optional[ast.expr] = None
        if node.args:
            name_arg = node.args[0]
        else:
            name_arg = call_keywords(node).get("name")
        if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
            declared.add(name_arg.value)
        elif isinstance(name_arg, ast.Name):
            declared.update(_comprehension_names(module, node, name_arg.id, constants))
    return declared


def _comprehension_names(
    module: ModuleSource,
    call: ast.Call,
    variable: str,
    constants: Dict[str, Tuple[str, ...]],
) -> Tuple[str, ...]:
    """Resolve ``FeatureField(name) for name in NAMES`` declarations."""
    for ancestor in module.ancestors(call):
        if not isinstance(ancestor, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            continue
        for generator in ancestor.generators:
            target = generator.target
            if isinstance(target, ast.Name) and target.id == variable:
                source = generator.iter
                if isinstance(source, ast.Name) and source.id in constants:
                    return constants[source.id]
    return ()


@register_rule(
    "DOM001",
    "feature column reference not declared in the FeatureField schema",
    scope=("domains/*.py",),
)
def undeclared_feature_column(module: ModuleSource) -> Iterator[Finding]:
    """Flag row-column accesses that the declared schema does not cover.

    In a module that declares ``FeatureField`` schemas, every literal
    ``row["column"]`` / ``row.get("column")`` access must name a declared
    feature (or a protocol key like ``iterations``).  A drifted name means
    the collector/parser and the schema disagree about the domain's
    columns — exactly the mismatch that breaks CSV round-trips and cache
    payload decoding.
    """
    declared = _declared_field_names(module)
    if not declared:
        return
    allowed = declared | _PROTOCOL_KEYS
    for node in ast.walk(module.tree):
        key: Optional[ast.expr] = None
        base: Optional[ast.expr] = None
        if isinstance(node, ast.Subscript):
            base = node.value
            key = node.slice
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
        ):
            base = node.func.value
            key = node.args[0]
        if base is None or not isinstance(base, ast.Name):
            continue
        if base.id not in _ROW_NAMES:
            continue
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            continue
        if key.value not in allowed:
            yield module.finding(
                node,
                f"column {key.value!r} is not a declared FeatureField of "
                f"this domain (declared: {', '.join(sorted(declared))}); "
                f"schema and collector/parser columns must agree",
                symbol=key.value,
            )


@register_rule(
    "API001",
    "call to the deprecated positional _decide entry point",
)
def deprecated_decide_call(module: ModuleSource) -> Iterator[Finding]:
    """Flag calls to ``SeerPredictor._decide``.

    The positional ``_decide(known, name, gather)`` shim exists only so
    pre-PR-6 callers keep working (it warns ``DeprecationWarning`` at
    runtime); in-tree code must call :meth:`SeerPredictor.predict` or the
    keyword ``decide()`` flow instead.
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "_decide":
            yield module.finding(
                node,
                "the positional _decide(known, name, gather) entry point is "
                "deprecated; route through SeerPredictor.predict()/decide()",
                symbol="_decide",
            )
