"""Promotion rules: the registry-pointer-atomicity invariant (PROM0xx).

The serving daemon's :class:`~repro.serving.service.ModelHub` re-resolves
the registry's ``current`` pointer on every request and hot-reloads the
model when it moves.  That only works because every write under
``serving/registry.py`` goes through
:func:`~repro.bench.engine.atomic_write_bytes` (write-to-temp + rename):
a reader either sees the old document or the new one, never a torn half.
A single ``write_text`` slipped into the registry would reintroduce the
race — this rule makes the invariant machine-checked.

* ``PROM001`` — a direct file write (``write_text``/``write_bytes`` or
  ``open(..., "w"/"a"/"x")``) inside the registry module, where every
  persisted byte must go through ``atomic_write_bytes``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import (
    Finding,
    ModuleSource,
    call_keywords,
    dotted_name,
    register_rule,
)

#: Modules whose on-disk documents concurrent serving processes follow —
#: the scope of the atomic-write rule.
REGISTRY_MODULE_SCOPE = ("serving/registry.py",)

_DIRECT_WRITE_METHODS = frozenset({"write_text", "write_bytes"})
_WRITE_MODE_CHARS = frozenset("wax+")


def _open_write_mode(node: ast.Call) -> str:
    """The write-ish mode string of an ``open()`` call, or ``""``."""
    mode = None
    if len(node.args) >= 2:
        mode = node.args[1]
    keyword_mode = call_keywords(node).get("mode")
    if keyword_mode is not None:
        mode = keyword_mode
    if (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and _WRITE_MODE_CHARS.intersection(mode.value)
    ):
        return mode.value
    return ""


@register_rule(
    "PROM001",
    "registry file write bypassing atomic_write_bytes",
    scope=REGISTRY_MODULE_SCOPE,
)
def nonatomic_registry_write(module: ModuleSource) -> Iterator[Finding]:
    """Flag direct file writes in the model-registry module.

    Registry documents (``model.json``, ``manifest.json`` and above all
    the ``current`` promotion pointer) are followed by live serving
    processes; a non-atomic write lets a concurrent reader observe a
    truncated or half-flipped document.  Route every persisted byte
    through ``atomic_write_bytes`` (``save_models`` already does).
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DIRECT_WRITE_METHODS
        ):
            yield module.finding(
                node,
                f"{node.func.attr}() writes the registry in place; a "
                f"concurrent ModelHub can read a torn document — use "
                f"atomic_write_bytes (temp file + rename)",
            )
            continue
        name = dotted_name(node.func)
        if name in ("open", "io.open", "os.open"):
            mode = _open_write_mode(node)
            if mode:
                yield module.finding(
                    node,
                    f"open(..., {mode!r}) writes the registry in place; a "
                    f"concurrent ModelHub can read a torn document — use "
                    f"atomic_write_bytes (temp file + rename)",
                )
