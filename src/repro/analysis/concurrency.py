"""Concurrency rules: the threaded-daemon invariants (CONC0xx).

The serving daemon (:mod:`repro.serving.service`) is the one genuinely
multithreaded subsystem: HTTP handler threads, the admission-batcher
worker and signal-driven shutdown all touch shared state.  Its safety
story is simple and must stay simple — every shared attribute is guarded
by one lock, nothing slow happens while holding a lock, and every
condition wait sits in a predicate loop.  These rules keep each of those
properties checkable per commit:

* ``CONC001`` — an attribute mutated both inside and outside ``with
  self._lock`` blocks of the same class (a data race or a torn invariant);
* ``CONC002`` — blocking work (file/socket I/O, subprocess, inference)
  performed while holding a lock, serializing every other thread behind it;
* ``CONC003`` — ``Condition.wait`` outside a ``while``-predicate loop,
  which breaks under spurious wakeups and notify-before-wait races.

The rules are heuristic by design: a lock is recognized by name (an
attribute containing ``lock``, ``cond``, ``mutex`` or ``guard``), which
matches this codebase's idiom and keeps the analysis dependency-free.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.engine import (
    Finding,
    ModuleSource,
    dotted_name,
    register_rule,
)

#: Context-manager attribute names treated as lock guards.
_LOCK_NAME_RE = re.compile(r"lock|cond|mutex|guard", re.IGNORECASE)

#: Methods whose attribute writes are initialization, not shared mutation:
#: no other thread can hold the object before construction completes.
_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__", "__set_name__"})

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)

#: Call names that block: I/O, subprocesses, sleeps and model inference.
#: Deliberately excludes ``write``/``flush``/``close`` — serializing writes
#: to a shared handle is exactly what a log lock is *for*.
_BLOCKING_SUFFIXES = frozenset(
    {
        "read_text",
        "read_bytes",
        "write_text",
        "write_bytes",
        "urlopen",
        "sleep",
        "predict_batch",
        "recv",
        "accept",
        "connect",
        "check_output",
        "check_call",
        "communicate",
    }
)

_BLOCKING_NAMES = frozenset({"open"})

_BLOCKING_PREFIXES = ("subprocess.",)


def _lock_guard_name(item: ast.withitem) -> Optional[str]:
    """The lock name when a ``with`` item is a lock guard, else ``None``."""
    expr = item.context_expr
    # `with self._lock:` / `with lock:` / `with hub._cond:`
    if isinstance(expr, ast.Attribute) and _LOCK_NAME_RE.search(expr.attr):
        return dotted_name(expr) or expr.attr
    if isinstance(expr, ast.Name) and _LOCK_NAME_RE.search(expr.id):
        return expr.id
    return None


def _enclosing_lock(module: ModuleSource, node: ast.AST) -> Optional[str]:
    """The innermost lock guard a node executes under, if any."""
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function's body runs when *called*, not where the
            # enclosing `with` textually sits.
            return None
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                name = _lock_guard_name(item)
                if name is not None:
                    return name
    return None


def _self_attribute(node: ast.expr) -> Optional[str]:
    """``attr`` when the expression is ``self.attr``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutated_self_attributes(node: ast.stmt) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(attr, node)`` for every ``self.attr`` mutation in a statement."""
    for child in ast.walk(node):
        targets: List[ast.expr] = []
        if isinstance(child, ast.Assign):
            targets.extend(child.targets)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            targets.append(child.target)
        elif isinstance(child, ast.Delete):
            targets.extend(child.targets)
        elif isinstance(child, ast.Call):
            # `self.attr.append(...)`-style in-place mutation.
            func = child.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
                attr = _self_attribute(func.value)
                if attr is not None:
                    yield attr, child
            continue
        stack = list(targets)
        while stack:
            target = stack.pop()
            # Unpack tuple targets, and unwrap `self.attr[...] = x` /
            # `del self.attr[...]` to the attribute being mutated.
            if isinstance(target, (ast.Tuple, ast.List)):
                stack.extend(target.elts)
                continue
            while isinstance(target, (ast.Subscript, ast.Starred)):
                target = target.value
            attr = _self_attribute(target)
            if attr is not None:
                yield attr, target


@register_rule(
    "CONC001",
    "attribute mutated both inside and outside lock guards",
)
def unguarded_shared_mutation(module: ModuleSource) -> Iterator[Finding]:
    """Flag attributes with a mixed locked/unlocked mutation discipline.

    If any method of a class mutates ``self.attr`` under ``with
    self._lock`` while another site mutates it bare, the lock is not
    actually protecting the attribute — the bare site races every guarded
    one.  Constructor methods are exempt (the object is not yet shared),
    as are the lock attributes themselves.
    """
    for classdef in ast.walk(module.tree):
        if not isinstance(classdef, ast.ClassDef):
            continue
        locked: Dict[str, List[ast.AST]] = {}
        unlocked: Dict[str, List[ast.AST]] = {}
        for method in classdef.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _INIT_METHODS:
                continue
            for statement in method.body:
                for attr, node in _mutated_self_attributes(statement):
                    if _LOCK_NAME_RE.search(attr):
                        continue
                    bucket = (
                        locked
                        if _enclosing_lock(module, node) is not None
                        else unlocked
                    )
                    bucket.setdefault(attr, []).append(node)
        for attr in sorted(set(locked) & set(unlocked)):
            for node in unlocked[attr]:
                yield module.finding(
                    node,
                    f"self.{attr} is mutated under a lock elsewhere in "
                    f"{classdef.name} but written here without one; every "
                    f"mutation of a guarded attribute must hold the lock",
                    symbol=f"{classdef.name}.{attr}",
                )


@register_rule(
    "CONC002",
    "blocking call while holding a lock",
)
def blocking_call_under_lock(module: ModuleSource) -> Iterator[Finding]:
    """Flag slow operations performed inside lock-guarded blocks.

    A lock held across file/socket I/O, a subprocess or batched inference
    stalls every thread contending for it — in the daemon that means the
    accept loop and all handler threads.  Compute the slow result outside
    the guard and publish it with a short critical section.
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        short = name.rsplit(".", 1)[-1]
        blocking = (
            name in _BLOCKING_NAMES
            or short in _BLOCKING_SUFFIXES
            or any(name.startswith(prefix) for prefix in _BLOCKING_PREFIXES)
        )
        if not blocking:
            continue
        lock = _enclosing_lock(module, node)
        if lock is None:
            continue
        yield module.finding(
            node,
            f"{name}() can block while holding {lock}; move the slow work "
            f"outside the critical section and publish its result under "
            f"the lock",
            symbol=lock,
        )


@register_rule(
    "CONC003",
    "Condition.wait outside a predicate loop",
)
def wait_without_predicate_loop(module: ModuleSource) -> Iterator[Finding]:
    """Flag ``<condition>.wait(...)`` that is not inside a ``while`` test.

    ``Condition.wait`` can return spuriously and can miss a notify that
    fired before the wait started; the only safe shape is ``while not
    predicate: cond.wait()``.  A ``while True:`` wrapper does not count —
    the loop must actually re-check a predicate.  Receivers are matched by
    name (``cond``/``condition``), so ``Event.wait`` is not flagged.
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "wait"):
            continue
        receiver = dotted_name(func.value) or ""
        leaf = receiver.rsplit(".", 1)[-1]
        if not _LOCK_NAME_RE.search(leaf) or "lock" in leaf.lower():
            continue
        in_predicate_loop = False
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                break
            if isinstance(ancestor, ast.While) and not (
                isinstance(ancestor.test, ast.Constant) and ancestor.test.value
            ):
                in_predicate_loop = True
                break
        if not in_predicate_loop:
            yield module.finding(
                node,
                f"{receiver}.wait() outside a while-predicate loop misses "
                f"notifies and wakes spuriously; use "
                f"'while not <predicate>: {leaf}.wait()'",
                symbol=receiver,
            )
