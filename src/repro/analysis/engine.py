"""The invariant-lint rule engine behind ``repro lint``.

The reproduction's correctness rests on invariants the test suite can only
spot-check dynamically: bit-identical parallel==serial sweeps, caches keyed
by canonical JSON digests, byte-stable artifacts, and a lock-guarded
threaded daemon.  This module is the static side of that contract: a small
AST-walking rule engine that names each invariant as a checkable rule and
reports violations before any test has to flake on them.

The shape mirrors the repository's other registries (domains, experiments):

* rules are plain functions registered through :func:`register_rule` with a
  stable ID (``DET001``, ``CONC002``, ...), a one-line summary and a
  *scope* — fnmatch globs over package-relative module paths, so e.g. the
  wall-clock rule only fires inside cache-keyed modules;
* each rule receives a parsed :class:`ModuleSource` and yields
  :class:`Finding` records with ``file:line:col`` locations;
* inline ``# repro-lint: disable=RULE[,RULE...]`` comments suppress
  findings on their line (``disable=all`` suppresses every rule);
* a committed baseline file (``analysis/baseline.json``) grandfathers
  pre-existing findings so new rules can land strict without a flag day.

:func:`lint_paths` drives files and directories through every selected
rule; :func:`lint_source` runs the same machinery over an in-memory
snippet, which is what the unit tests (and the hypothesis fuzzer) use.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

#: Bumped when the baseline file layout changes.
BASELINE_FORMAT_VERSION = 1

#: Inline suppression syntax: ``# repro-lint: disable=DET001,CONC002``.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_*,\s]+)")

#: Rule-ID shape enforced at registration time.
_RULE_ID_RE = re.compile(r"^[A-Z]{2,8}\d{3}$")


class AnalysisError(ValueError):
    """A lint invocation is invalid (unknown rule, unreadable baseline...)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    module: str
    line: int
    col: int
    message: str
    symbol: str = ""

    @property
    def location(self) -> str:
        """``file:line:col`` (clickable in most terminals/editors)."""
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        suffix = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.location}: {self.rule} {self.message}{suffix}"

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.symbol:
            payload["symbol"] = self.symbol
        return payload

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.module, self.line, self.col, self.rule)


class ModuleSource:
    """One parsed module plus the lookup structures rules need.

    Carries the AST with a parent map (``ast`` has no uplinks), the
    package-relative module path used for rule scoping, and the parsed
    inline suppressions.  Rules create findings through :meth:`finding`;
    the engine stamps the rule ID afterwards, so rule bodies never repeat
    their own name.
    """

    def __init__(self, text: str, path: str, module: str) -> None:
        self.text = text
        self.path = path
        self.module = module
        self.tree = ast.parse(text)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._suppressions = _parse_suppressions(text)

    @classmethod
    def from_file(cls, path: Path, root: Optional[Path] = None) -> "ModuleSource":
        """Parse one file; ``module`` becomes its path relative to ``root``."""
        text = path.read_text(encoding="utf-8")
        if root is not None:
            module = path.relative_to(root).as_posix()
        else:
            module = path.name
        return cls(text, path=str(path), module=module)

    # ------------------------------------------------------------------
    # Structure lookups
    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The chain of enclosing nodes, innermost first."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing(self, node: ast.AST, *types: type) -> Optional[ast.AST]:
        """The nearest ancestor of one of the given node types, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, types):
                return ancestor
        return None

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self._suppressions.get(line)
        return rules is not None and ("all" in rules or rule in rules)

    # ------------------------------------------------------------------
    # Finding factory
    # ------------------------------------------------------------------
    def finding(self, node: ast.AST, message: str, symbol: str = "") -> Finding:
        """A finding at ``node`` (rule ID is stamped by the engine)."""
        return Finding(
            rule="",
            path=self.path,
            module=self.module,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            symbol=symbol,
        )


def _parse_suppressions(text: str) -> Dict[int, frozenset]:
    """Per-line suppressed rule IDs from ``# repro-lint: disable=...``."""
    suppressions: Dict[int, frozenset] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = frozenset(
            code.strip().lower() if code.strip().lower() == "all" else code.strip()
            for code in match.group(1).split(",")
            if code.strip()
        )
        if codes:
            suppressions[lineno] = codes
    return suppressions


# ----------------------------------------------------------------------
# AST helpers shared by the rule modules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """The dotted form of a Name/Attribute chain (``json.dumps``), or None.

    Call nodes resolve through their ``func``; chains rooted in anything
    other than a plain name (subscripts, calls) keep the resolvable suffix
    prefixed with ``*`` (``*.read_text`` for ``Path(x).read_text``), so
    rules can still match on method names.
    """
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return f"*.{node.attr}"
        return f"{base}.{node.attr}"
    return None


def call_keywords(call: ast.Call) -> Dict[str, ast.expr]:
    """Keyword arguments of a call by name (``**kwargs`` entries skipped)."""
    return {kw.arg: kw.value for kw in call.keywords if kw.arg is not None}


def is_wrapped_in(module: ModuleSource, node: ast.AST, func_name: str) -> bool:
    """Whether ``node`` sits (at any depth) inside a ``func_name(...)`` call.

    Walks ancestors only up to the enclosing statement, so a ``sorted``
    call elsewhere in the function never masks an unsorted iteration.
    """
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.stmt):
            return False
        if isinstance(ancestor, ast.Call) and isinstance(ancestor.func, ast.Name):
            if ancestor.func.id == func_name:
                return True
    return False


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
RuleCheck = Callable[[ModuleSource], Iterator[Finding]]


@dataclass(frozen=True)
class RuleSpec:
    """One registered rule: stable ID, summary, scope and check function."""

    id: str
    summary: str
    check: RuleCheck
    scope: Tuple[str, ...] = ("*",)

    def applies_to(self, module: str) -> bool:
        return any(fnmatch.fnmatch(module, pattern) for pattern in self.scope)


_RULES: Dict[str, RuleSpec] = {}


def register_rule(
    rule_id: str,
    summary: str,
    scope: Sequence[str] = ("*",),
) -> Callable[[RuleCheck], RuleCheck]:
    """Register a rule check under a stable ID (decorator).

    ``scope`` is a sequence of fnmatch globs matched against the
    package-relative module path (``serving/service.py``); the default
    applies the rule everywhere.  Re-registering an ID is an error — rule
    IDs are part of the suppression/baseline contract.
    """
    if not _RULE_ID_RE.match(rule_id):
        raise AnalysisError(
            f"rule id {rule_id!r} must look like 'ABC123' (letters then digits)"
        )

    def decorate(check: RuleCheck) -> RuleCheck:
        if rule_id in _RULES:
            raise AnalysisError(f"rule {rule_id!r} is already registered")
        _RULES[rule_id] = RuleSpec(
            id=rule_id, summary=summary, check=check, scope=tuple(scope)
        )
        return check

    return decorate


def _ensure_rules_loaded() -> None:
    """Import the rule modules (registration happens at import time)."""
    from repro.analysis import (  # noqa: F401
        concurrency,
        conformance,
        determinism,
        environment,
        promotion,
    )


def all_rules() -> Tuple[RuleSpec, ...]:
    """Every registered rule, sorted by ID."""
    _ensure_rules_loaded()
    return tuple(_RULES[rule_id] for rule_id in sorted(_RULES))


def rule_ids() -> Tuple[str, ...]:
    return tuple(spec.id for spec in all_rules())


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[RuleSpec, ...]:
    """The rule set after ``--select``/``--ignore`` filtering.

    Entries may be exact IDs or prefixes (``DET`` selects every
    determinism rule).  Unknown entries raise :class:`AnalysisError` —
    a typo silently selecting nothing would report a falsely clean tree.
    """
    rules = all_rules()
    known = {spec.id for spec in rules}

    def expand(entries: Sequence[str], flag: str) -> frozenset:
        chosen = set()
        for entry in entries:
            matches = {rid for rid in known if rid == entry or rid.startswith(entry)}
            if not matches:
                raise AnalysisError(
                    f"{flag} {entry!r} matches no registered rule; known rules: "
                    f"{', '.join(sorted(known))}"
                )
            chosen |= matches
        return frozenset(chosen)

    if select:
        selected = expand(select, "--select")
        rules = tuple(spec for spec in rules if spec.id in selected)
    if ignore:
        ignored = expand(ignore, "--ignore")
        rules = tuple(spec for spec in rules if spec.id not in ignored)
    return rules


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding: rule + module glob (+ optional symbol)."""

    rule: str
    module: str
    symbol: str = ""

    def matches(self, finding: Finding) -> bool:
        if self.rule != finding.rule:
            return False
        if not fnmatch.fnmatch(finding.module, self.module):
            return False
        return not self.symbol or self.symbol == finding.symbol


@dataclass(frozen=True)
class Baseline:
    """The committed set of grandfathered findings."""

    entries: Tuple[BaselineEntry, ...] = ()

    @classmethod
    def from_payload(cls, payload: object, origin: str = "baseline") -> "Baseline":
        if not isinstance(payload, dict):
            raise AnalysisError(f"{origin}: baseline must be a JSON object")
        version = payload.get("version")
        if version != BASELINE_FORMAT_VERSION:
            raise AnalysisError(
                f"{origin}: unsupported baseline version {version!r} "
                f"(expected {BASELINE_FORMAT_VERSION})"
            )
        raw_entries = payload.get("findings", [])
        if not isinstance(raw_entries, list):
            raise AnalysisError(f"{origin}: 'findings' must be a JSON array")
        entries = []
        for index, raw in enumerate(raw_entries):
            if not isinstance(raw, dict) or "rule" not in raw or "module" not in raw:
                raise AnalysisError(
                    f"{origin}: findings[{index}] needs 'rule' and 'module' keys"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    module=str(raw["module"]),
                    symbol=str(raw.get("symbol", "")),
                )
            )
        return cls(entries=tuple(entries))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "Baseline":
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise AnalysisError(f"{path}: unreadable baseline ({error})") from None
        except json.JSONDecodeError as error:
            raise AnalysisError(f"{path}: baseline is not valid JSON: {error}") from None
        return cls.from_payload(payload, origin=str(path))

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """A baseline grandfathering exactly the given findings."""
        entries = sorted(
            {
                BaselineEntry(rule=f.rule, module=f.module, symbol=f.symbol)
                for f in findings
            },
            key=lambda entry: (entry.module, entry.rule, entry.symbol),
        )
        return cls(entries=tuple(entries))

    def matches(self, finding: Finding) -> bool:
        return any(entry.matches(finding) for entry in self.entries)

    def to_payload(self) -> Dict[str, object]:
        return {
            "version": BASELINE_FORMAT_VERSION,
            "findings": [
                {
                    "rule": entry.rule,
                    "module": entry.module,
                    **({"symbol": entry.symbol} if entry.symbol else {}),
                }
                for entry in self.entries
            ],
        }

    def dumps(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Outcome of one lint run: new findings, baselined ones, coverage."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings


def lint_module(
    module: ModuleSource,
    rules: Optional[Sequence[RuleSpec]] = None,
) -> List[Finding]:
    """Run every applicable rule over one parsed module."""
    if rules is None:
        rules = all_rules()
    findings: List[Finding] = []
    for spec in rules:
        if not spec.applies_to(module.module):
            continue
        for found in spec.check(module):
            found = replace(found, rule=spec.id)
            if module.suppressed(found.rule, found.line):
                continue
            findings.append(found)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_source(
    text: str,
    module: str = "snippet.py",
    rules: Optional[Sequence[RuleSpec]] = None,
) -> List[Finding]:
    """Lint an in-memory snippet (unit tests, the hypothesis fuzzer)."""
    return lint_module(ModuleSource(text, path=module, module=module), rules)


def iter_python_files(target: Path) -> List[Path]:
    """Python files under a path, deterministically sorted."""
    if target.is_file():
        return [target]
    return sorted(path for path in target.rglob("*.py") if path.is_file())


def _module_root(target: Path) -> Optional[Path]:
    """The directory module paths are relative to, for scope matching.

    For a package directory this is the directory itself (so modules read
    ``serving/service.py``); for a file inside a package it is the topmost
    ancestor that still contains an ``__init__.py``.
    """
    if target.is_dir():
        return target
    root = target.parent
    while (root / "__init__.py").is_file() and root.parent != root:
        root = root.parent
    return root


def lint_paths(
    paths: Sequence[Union[str, Path]],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint files and directories; directories are walked recursively.

    Module paths for scope matching are taken relative to each directory
    argument (or the enclosing package for file arguments), so rule scopes
    like ``serving/*.py`` work however the tree is addressed.
    """
    rules = select_rules(select, ignore)
    report = LintReport(rules=tuple(spec.id for spec in rules))
    for target in paths:
        target = Path(target)
        if not target.exists():
            raise AnalysisError(f"{target}: no such file or directory")
        root = _module_root(target)
        for path in iter_python_files(target):
            module = ModuleSource.from_file(path, root=root)
            report.files_scanned += 1
            for finding in lint_module(module, rules):
                if baseline is not None and baseline.matches(finding):
                    report.baselined.append(finding)
                else:
                    report.findings.append(finding)
    report.findings.sort(key=Finding.sort_key)
    report.baselined.sort(key=Finding.sort_key)
    return report


def package_dir() -> Path:
    """The installed ``repro`` package directory (the default lint target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def lint_package(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint the ``repro`` package itself (what CI and tier-1 tests run)."""
    return lint_paths([package_dir()], select=select, ignore=ignore, baseline=baseline)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_text(report: LintReport) -> str:
    """Human-readable report: one ``file:line:col: RULE message`` per line."""
    lines = [finding.render() for finding in report.findings]
    summary = (
        f"{len(report.findings)} finding(s), {len(report.baselined)} baselined, "
        f"{report.files_scanned} file(s) scanned, {len(report.rules)} rule(s)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (canonical: sorted keys, stable ordering)."""
    payload = {
        "findings": [finding.to_payload() for finding in report.findings],
        "baselined": [finding.to_payload() for finding in report.baselined],
        "files_scanned": report.files_scanned,
        "rules": list(report.rules),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
