"""The ``"spmm"`` domain: sparse matrix x dense multi-vector (SpMM).

SpMM (``C = A @ B`` with ``B`` a dense ``cols x num_vectors`` block of
right-hand sides) is the second irregular workload shipped through the
domain plugin API, proving the Seer pipeline is not SpMV-specific.  It runs
on the same analytical GPU model as the case study and mirrors its
structure:

* **known features** — rows, cols, nnz plus the number of dense vectors
  (``num_vectors``) and the iteration count;
* **gathered features** — *column-block occupancy* statistics: the columns
  are split into cache-line-sized blocks and each row's footprint over those
  blocks is reduced to max/mean occupancy, alongside the row-density mean
  and variance.  Occupancy is what decides how much of each fetched ``B``
  line a kernel actually uses, so it is the SpMM analog of the paper's
  row-density statistics;
* **kernels** — four schedules with genuinely different failure modes:
  thread-mapped (imbalance- and coalescing-sensitive), row-per-wavefront
  (per-row overhead heavy), work-oriented nnz-splitting (balanced but paying
  search/atomic overheads) and a padded ELL schedule with a device-side
  conversion stage (regular but padding-hostile).

Workload recipes reuse the synthetic collection's matrix grid, crossed with
a ``num_vectors`` grid, so every collection profile (``tiny`` ... ``full``)
works unchanged: ``run_sweep(profile="tiny", domain="spmm")``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.domains.base import FeatureField, GatheredFeatureRow, ProblemDomain
from repro.gpu.device import MI100, DeviceSpec
from repro.gpu.memory import INDEX_BYTES, VALUE_BYTES
from repro.gpu.simulator import LaunchResult, LaunchSpec, simulate_launch
from repro.kernels.base import (
    ATOMIC_CYCLES,
    CSR_NNZ_BYTES,
    CYCLES_PER_NONZERO,
    MERGE_SEARCH_CYCLES,
    ROW_OVERHEAD_CYCLES,
    WAVE_REDUCTION_CYCLES,
    LaunchContext,
    SpmvKernel,
    UnsupportedKernelError,
)
from repro.sparse import collection as sparse_collection
from repro.sparse.csr import CSRMatrix

#: Width (in columns) of one occupancy block — one 512-byte fetch of B rows.
COLUMN_BLOCK = 64

#: Gathered-feature names of the SpMM domain, in classifier input order.
SPMM_GATHERED_NAMES = (
    "max_block_occupancy",
    "mean_block_occupancy",
    "mean_row_density",
    "var_row_density",
)

#: Matrix families of the synthetic collection the SpMM corpus draws from.
SPMM_FAMILIES = (
    "regular",
    "banded",
    "power_law",
    "heavy_tail",
    "skewed",
    "uniform",
    "block",
    "empty_heavy",
)

#: Dense right-hand-side widths each matrix recipe is crossed with.
NUM_VECTORS_GRID = (4, 32)

#: Denser ``num_vectors`` grid swept by the SpMM amortization study
#: (feature-collection cost vs. dense block width).
AMORTIZATION_VECTOR_GRID = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class SpmmWorkload:
    """One SpMM problem instance: a sparse matrix and its dense block width."""

    matrix: CSRMatrix
    num_vectors: int

    def __post_init__(self):
        if self.num_vectors < 1:
            raise ValueError("num_vectors must be >= 1")

    @property
    def num_rows(self) -> int:
        return self.matrix.num_rows

    @property
    def num_cols(self) -> int:
        return self.matrix.num_cols

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    def spmm(self, b: np.ndarray) -> np.ndarray:
        """Reference dense result ``C = A @ B`` (column by column)."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.num_cols, self.num_vectors):
            raise ValueError(
                f"B has shape {b.shape}, expected "
                f"({self.num_cols}, {self.num_vectors})"
            )
        return np.stack(
            [self.matrix.spmv(b[:, j]) for j in range(self.num_vectors)], axis=1
        )


@dataclass(frozen=True)
class SpmmSpec:
    """Recipe for one SpMM workload (picklable, cache-keyable)."""

    name: str
    family: str
    builder: str
    params: tuple
    seed: int
    num_vectors: int

    def build(self) -> CSRMatrix:
        """Construct the sparse-matrix part of the workload."""
        builder = getattr(sparse_collection.gen, self.builder)
        return builder(rng=np.random.default_rng(self.seed), **dict(self.params))


# ----------------------------------------------------------------------
# Gathered features: column-block occupancy
# ----------------------------------------------------------------------
def spmm_gathered_features(
    workload: SpmmWorkload, context: LaunchContext = None
) -> GatheredFeatureRow:
    """Column-block occupancy and row-density statistics of a workload.

    A row's *block occupancy* is the number of distinct ``COLUMN_BLOCK``-wide
    column blocks its nonzeros touch, divided by the number of blocks the
    matrix has.  High occupancy means a kernel streaming B block-by-block
    reuses every fetched line; low occupancy means most of each fetched B
    line is wasted — the quantity the gathered classifier needs to price B
    traffic.

    ``context`` optionally shares the row-length arrays the timing kernels
    already derived for the same matrix.
    """
    matrix = workload.matrix
    if matrix.num_rows == 0 or matrix.num_cols == 0:
        return GatheredFeatureRow(names=SPMM_GATHERED_NAMES, values=(0.0,) * 4)
    context = LaunchContext.of(workload, context)
    lengths = context.row_lengths
    num_blocks = -(-matrix.num_cols // COLUMN_BLOCK)
    if matrix.nnz == 0:
        occupancy = np.zeros(matrix.num_rows, dtype=np.float64)
    else:
        # Column indices are sorted within each row, so distinct blocks per
        # row are transitions in the block id sequence (+1 per non-empty row).
        blocks = matrix.col_indices // COLUMN_BLOCK
        new_block = np.ones(matrix.nnz, dtype=np.int64)
        new_block[1:] = (blocks[1:] != blocks[:-1]).astype(np.int64)
        nonempty_starts = matrix.row_offsets[:-1][lengths > 0]
        new_block[nonempty_starts] = 1
        distinct = np.zeros(matrix.num_rows, dtype=np.float64)
        distinct[lengths > 0] = np.add.reduceat(
            new_block, nonempty_starts.astype(np.int64)
        )
        occupancy = distinct / float(num_blocks)
    densities = context.row_lengths_f64 / float(matrix.num_cols)
    max_occupancy = float(occupancy.max())
    # Clamped so the mean <= max invariant holds exactly even if summation
    # error nudges the mean past the extreme (as the SpMV features do).
    mean_occupancy = min(float(occupancy.mean()), max_occupancy)
    return GatheredFeatureRow(
        names=SPMM_GATHERED_NAMES,
        values=(
            max_occupancy,
            mean_occupancy,
            float(densities.mean()),
            float(densities.var()),
        ),
    )


@dataclass(frozen=True)
class SpmmCollectionResult:
    """Gathered SpMM features plus the simulated cost of collecting them."""

    features: GatheredFeatureRow
    collection_time_ms: float
    launch: LaunchResult


class SpmmFeatureCollector:
    """Simulated parallel collection of the column-block occupancy features.

    Unlike the SpMV collector (which only touches the row offsets), the
    occupancy scan must stream the column-index array itself — collection is
    therefore proportionally more expensive, which sharpens the selector's
    collect-or-not trade-off on this domain.
    """

    name = "spmm-feature-collection"

    #: Cycles each lane spends per nonzero (block id, transition test).
    CYCLES_PER_NONZERO = 3.0

    #: Cycles of the final reduction combining per-wavefront partials.
    REDUCTION_CYCLES = 64.0

    #: Scalars copied back to the host (two occupancy and two density stats).
    RESULT_SCALARS = 4

    def __init__(self, device: DeviceSpec = MI100):
        from repro.gpu.host import HostModel

        self.device = device
        self.host = HostModel(device)

    def collection_time_ms(self, workload: SpmmWorkload) -> float:
        """Cost of gathering the occupancy features for ``workload``."""
        return self._simulate(workload)[0]

    def collect(self, workload: SpmmWorkload, context=None) -> SpmmCollectionResult:
        """Compute the gathered features and their collection cost.

        ``context`` optionally shares a
        :class:`~repro.kernels.base.LaunchContext` with the timing kernels.
        """
        time_ms, launch = self._simulate(workload)
        features = spmm_gathered_features(
            workload, context=context
        ).with_collection_time(time_ms)
        return SpmmCollectionResult(
            features=features, collection_time_ms=time_ms, launch=launch
        )

    def _simulate(self, workload: SpmmWorkload) -> tuple:
        matrix = workload.matrix
        simd = self.device.simd_width
        elements = max(matrix.nnz, 1)
        num_waves = max(1, int(np.ceil(elements / simd)))
        wave_cycles = np.full(
            num_waves,
            self.CYCLES_PER_NONZERO + self.REDUCTION_CYCLES / simd,
            dtype=np.float64,
        )
        bytes_moved = (
            matrix.nnz * INDEX_BYTES
            + (matrix.num_rows + 1) * INDEX_BYTES
            + num_waves * self.RESULT_SCALARS * VALUE_BYTES
        )
        launch = simulate_launch(
            self.device,
            wave_cycles,
            bytes_moved,
            label=self.name,
            extra_launches=1,
        )
        transfer_ms = self.host.transfer_time_ms(self.RESULT_SCALARS * VALUE_BYTES)
        return launch.total_ms + transfer_ms, launch


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
class SpmmKernel(SpmvKernel):
    """Base of the SpMM kernel variants (operates on :class:`SpmmWorkload`)."""

    sparse_format = "CSR"

    def _b_stream_bytes(self, workload: SpmmWorkload) -> float:
        """DRAM traffic for the dense B block over one iteration.

        When B fits in the last-level cache every row of B is fetched about
        once; otherwise each nonzero re-fetches its ``num_vectors``-wide B
        row from DRAM.
        """
        b_total = workload.num_cols * workload.num_vectors * VALUE_BYTES
        if b_total <= self.device.l2_cache_bytes:
            return float(b_total)
        return float(workload.nnz * workload.num_vectors * VALUE_BYTES)

    def _c_stream_bytes(self, workload: SpmmWorkload) -> float:
        """DRAM traffic for writing the dense result C."""
        return float(workload.num_rows * workload.num_vectors * VALUE_BYTES)

    def _a_stream_bytes(self, workload: SpmmWorkload) -> float:
        """DRAM traffic for streaming the CSR arrays once."""
        return float(
            workload.nnz * CSR_NNZ_BYTES
            + (workload.num_rows + 1) * INDEX_BYTES
        )

    def run(self, workload: SpmmWorkload, b: np.ndarray, iterations: int = 1):
        """Execute ``iterations`` SpMM products and return result + timing."""
        from repro.kernels.base import SpmvRunResult

        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self._require_supported(workload)
        timing = self.timing(workload)
        c = workload.spmm(np.asarray(b, dtype=np.float64))
        if workload.num_rows == workload.num_cols:
            for _ in range(iterations - 1):
                c = workload.spmm(c)
        return SpmvRunResult(kernel=self.name, y=c, timing=timing, iterations=iterations)


class SpmmThreadMapped(SpmmKernel):
    """One *(row, vector)* pair per thread: each lane owns one output
    element and walks its row once.  A row's CSR data is broadcast across
    the lanes sharing it, so accesses stay coalesced and short regular rows
    are ideal; a single long row still stalls every wavefront it lands in,
    and ``num_vectors`` beyond the SIMD width re-streams A."""

    name = "CSR,TM"
    schedule = "Thread Mapped"
    has_preprocessing = False
    bandwidth_utilization = 0.90

    def _launch_spec(self, workload: SpmmWorkload, context: LaunchContext) -> LaunchSpec:
        n = workload.num_vectors
        simd = self.device.simd_width
        if n >= simd:
            # Every row spans whole wavefronts; A is re-streamed per pass.
            lane_cycles = (
                context.row_lengths_f64 * CYCLES_PER_NONZERO + ROW_OVERHEAD_CYCLES
            )
            passes = int(np.ceil(n / simd))
            if context.fast:
                # Keep the per-pass replication symbolic in fast mode.
                wavefront_cycles = lane_cycles
                a_passes = passes
                bytes_moved = (
                    a_passes * self._a_stream_bytes(workload)
                    + self._b_stream_bytes(workload)
                    + self._c_stream_bytes(workload)
                )
                return self._spec(wavefront_cycles, bytes_moved, repeat=passes)
            wavefront_cycles = np.repeat(lane_cycles, passes)
            a_passes = passes
        else:
            # A wavefront covers simd // n consecutive rows and is as slow
            # as the heaviest of them; the per-lane transform is monotone in
            # the row length, so it runs on the shared grouped maxima
            # (bit-identical to group-reducing the transformed lanes).
            rows_per_wave = max(1, simd // n)
            wavefront_cycles = (
                context.grouped_max(rows_per_wave) * CYCLES_PER_NONZERO
                + ROW_OVERHEAD_CYCLES
            )
            a_passes = 1
        bytes_moved = (
            a_passes * self._a_stream_bytes(workload)
            + self._b_stream_bytes(workload)
            + self._c_stream_bytes(workload)
        )
        return self._spec(wavefront_cycles, bytes_moved)


class SpmmRowWaveMapped(SpmmKernel):
    """One row per wavefront; the lanes stride across the row's nonzeros and
    the ``num_vectors`` accumulators are reduced per vector.  Long rows are
    handled gracefully, but every row pays ``num_vectors`` reductions — the
    schedule collapses on matrices made of millions of tiny rows."""

    name = "CSR,WM"
    schedule = "Warp Mapped"
    has_preprocessing = False
    bandwidth_utilization = 0.80

    #: Per-row bookkeeping: offset loads, predication, dispatch.
    PER_ROW_BOOKKEEPING_CYCLES = 36.0

    def _launch_spec(self, workload: SpmmWorkload, context: LaunchContext) -> LaunchSpec:
        n = workload.num_vectors
        # In place on the strip count; summands are integer-valued doubles,
        # so folding the constants matches the chained adds bit for bit.
        wavefront_cycles = np.ceil(context.row_lengths_f64 / self.device.simd_width)
        wavefront_cycles *= CYCLES_PER_NONZERO * n
        wavefront_cycles += (
            WAVE_REDUCTION_CYCLES * n
            + ROW_OVERHEAD_CYCLES
            + self.PER_ROW_BOOKKEEPING_CYCLES
        )
        bytes_moved = (
            self._a_stream_bytes(workload)
            + self._b_stream_bytes(workload)
            + self._c_stream_bytes(workload)
        )
        return self._spec(wavefront_cycles, bytes_moved)


class SpmmWorkOriented(SpmmKernel):
    """Work-oriented nnz splitting: every wavefront owns an equal chunk of
    nonzeros regardless of row boundaries, locating its range with a binary
    search and carrying partial rows out through global atomics.  Perfectly
    balanced on any structure, at a fixed per-wavefront overhead."""

    name = "CSR,WO"
    schedule = "Work Oriented"
    has_preprocessing = False
    bandwidth_utilization = 0.95

    #: Nonzeros each wavefront owns.
    CHUNK_NNZ = 512

    def _launch_spec(self, workload: SpmmWorkload, context: LaunchContext) -> LaunchSpec:
        matrix = workload.matrix
        n = workload.num_vectors
        num_chunks = max(1, -(-matrix.nnz // self.CHUNK_NNZ))
        full_cycles = (
            self.CHUNK_NNZ / self.device.simd_width * CYCLES_PER_NONZERO * n
            + MERGE_SEARCH_CYCLES
            + WAVE_REDUCTION_CYCLES
        )
        # Each chunk's carry-out row crosses the global atomic unit once;
        # the num_vectors partials of that row leave as one wide transaction.
        serial_cycles = num_chunks * ATOMIC_CYCLES
        bytes_moved = (
            self._a_stream_bytes(workload)
            + self._b_stream_bytes(workload)
            + self._c_stream_bytes(workload)
        )
        if context.fast:
            return self._spec(
                [full_cycles],
                bytes_moved,
                serial_cycles=serial_cycles,
                repeat=num_chunks,
            )
        wavefront_cycles = np.full(num_chunks, full_cycles, dtype=np.float64)
        return self._spec(
            wavefront_cycles, bytes_moved, serial_cycles=serial_cycles
        )


class SpmmEllBlockMapped(SpmmKernel):
    """Padded ELL schedule: rows are padded to the longest row, giving a
    perfectly regular *(row, vector)*-per-thread loop with unit-stride,
    full-bandwidth accesses.  The conversion is fused into the prologue of
    the first product (a streaming repack, no extra launch), so the format
    pays for itself after a few iterations on near-uniform matrices — while
    a single hub row multiplies the whole matrix's work and B traffic."""

    name = "ELL,BM"
    sparse_format = "ELL"
    schedule = "Block Mapped"
    has_preprocessing = True
    bandwidth_utilization = 1.0

    #: Padding ratios beyond this are refused (the padded arrays and the
    #: padded B traffic would be astronomically wasteful for SpMM).
    MAX_SUPPORTED_PADDING = 32.0

    #: Cycles per padded element: the column-major layout enables unrolled,
    #: gather-free inner loops, cheaper than the CSR kernels' per-nonzero.
    CYCLES_PER_PADDED_ELEMENT = 2.0

    def _padded_width(self, workload: SpmmWorkload) -> int:
        matrix = workload.matrix
        if matrix.num_rows == 0 or matrix.nnz == 0:
            return 0
        return int(matrix.row_lengths().max())

    def supports(self, workload: SpmmWorkload) -> bool:
        matrix = workload.matrix
        if matrix.num_rows == 0 or matrix.nnz == 0:
            return True
        padded = matrix.num_rows * float(matrix.row_lengths().max())
        return padded <= self.MAX_SUPPORTED_PADDING * matrix.nnz

    def preprocessing_time_ms(self, workload: SpmmWorkload) -> float:
        """Streaming CSR-to-ELL repack fused into the first product.

        Bandwidth-bound (read the CSR arrays, write the padded arrays) with
        no launch overhead of its own — the scatter rides the first
        iteration's launch.
        """
        from repro.gpu.memory import memory_time_ms

        matrix = workload.matrix
        padded_slots = matrix.num_rows * max(self._padded_width(workload), 1)
        bytes_moved = (
            matrix.nnz * CSR_NNZ_BYTES + padded_slots * (VALUE_BYTES + INDEX_BYTES)
        )
        return memory_time_ms(self.device, bytes_moved, self.bandwidth_utilization)

    def _launch_spec(self, workload: SpmmWorkload, context: LaunchContext) -> LaunchSpec:
        matrix = workload.matrix
        n = workload.num_vectors
        simd = self.device.simd_width
        width = context.max_row_length
        lanes = matrix.num_rows * n
        num_waves = max(1, int(np.ceil(lanes / simd)))
        uniform_cycles = width * self.CYCLES_PER_PADDED_ELEMENT + ROW_OVERHEAD_CYCLES
        padded_slots = matrix.num_rows * width
        b_total = workload.num_cols * n * VALUE_BYTES
        if b_total <= self.device.l2_cache_bytes:
            b_bytes = float(b_total)
        else:
            # Padded slots fetch B lines too: padding is real traffic here.
            b_bytes = float(padded_slots * n * VALUE_BYTES)
        bytes_moved = (
            padded_slots * (VALUE_BYTES + INDEX_BYTES)
            + b_bytes
            + self._c_stream_bytes(workload)
        )
        if context.fast:
            return self._spec([uniform_cycles], bytes_moved, repeat=num_waves)
        wave_cycles = np.full(num_waves, uniform_cycles, dtype=np.float64)
        return self._spec(wave_cycles, bytes_moved)

    def timing(self, workload: SpmmWorkload, context=None):
        if not self.supports(workload):
            raise UnsupportedKernelError(
                f"{self.name}: padding ratio too large for this workload"
            )
        return super().timing(workload, context)


# ----------------------------------------------------------------------
# The domain
# ----------------------------------------------------------------------
class SpmmDomain(ProblemDomain):
    """Sparse matrix x dense multi-vector: ``C = A @ B``."""

    name = "spmm"
    description = "sparse matrix x dense multi-vector (SpMM)"
    known_fields = (
        FeatureField("rows", lambda w: w.num_rows, "matrix rows"),
        FeatureField("cols", lambda w: w.num_cols, "matrix columns"),
        FeatureField("nnz", lambda w: w.nnz, "stored nonzeros"),
        FeatureField("num_vectors", lambda w: w.num_vectors, "dense B width"),
        FeatureField("iterations", None, "SpMM iterations the caller will run"),
    )
    gathered_fields = tuple(
        FeatureField(name) for name in SPMM_GATHERED_NAMES
    )
    default_iteration_counts = (1, 4, 19)
    #: Reference kernel of the feature-cost scaling study: the work-oriented
    #: schedule runs on any structure, so the comparison is always defined.
    feature_cost_kernel = "CSR,WO"
    #: Dense block width of the default cost-scaling workloads.
    scaling_num_vectors = 8

    def _populate_kernels(self) -> None:
        for kernel_cls in (
            SpmmThreadMapped,
            SpmmRowWaveMapped,
            SpmmWorkOriented,
            SpmmEllBlockMapped,
        ):
            self.register_kernel(kernel_cls)

    def make_collector(self, device: DeviceSpec = MI100) -> SpmmFeatureCollector:
        return SpmmFeatureCollector(device)

    @property
    def profile_names(self) -> tuple:
        return sparse_collection.PROFILE_NAMES

    def collection_specs(self, profile="small", base_seed: int = 7) -> list:
        specs = []
        for base in sparse_collection.collection_specs(profile, base_seed):
            if base.family not in SPMM_FAMILIES:
                continue
            for num_vectors in NUM_VECTORS_GRID:
                specs.append(
                    SpmmSpec(
                        name=f"{base.name}_v{num_vectors}",
                        family=base.family,
                        builder=base.builder,
                        params=base.params,
                        seed=base.seed,
                        num_vectors=num_vectors,
                    )
                )
        return specs

    def matrix_payload(self, spec) -> dict:
        # The built matrix does not depend on the workload name or on
        # num_vectors, so all B widths share one cached matrix artifact.
        payload = super().matrix_payload(spec)
        payload.pop("num_vectors", None)
        return payload

    def workload_from_matrix(self, spec, matrix) -> SpmmWorkload:
        return SpmmWorkload(matrix=matrix, num_vectors=spec.num_vectors)

    serving_option_names = ("num_vectors",)

    def serving_workload(self, matrix, options=None) -> SpmmWorkload:
        """An ingested matrix serves with ``options["num_vectors"]`` B columns.

        Raw matrix files carry no dense-block width, so the serve layer
        supplies it (``repro serve --workload-option num_vectors=8``); the
        scaling default keeps matrix-only corpora servable out of the box.
        """
        options = self.validate_serving_options(options)
        raw = options.get("num_vectors", self.scaling_num_vectors)
        num_vectors = int(raw)
        if num_vectors != raw:
            raise ValueError(
                f"workload option num_vectors must be a whole number, got {raw!r}"
            )
        return SpmmWorkload(matrix=matrix, num_vectors=num_vectors)

    def scaling_workload(self, num_rows: int, seed: int = 0) -> SpmmWorkload:
        from repro.domains.base import SCALING_AVG_ROW_LENGTH, SCALING_EXPONENT
        from repro.sparse.generators import power_law_matrix

        matrix = power_law_matrix(
            num_rows=num_rows,
            num_cols=num_rows,
            avg_row_length=SCALING_AVG_ROW_LENGTH,
            exponent=SCALING_EXPONENT,
            rng=seed,
        )
        return SpmmWorkload(matrix=matrix, num_vectors=self.scaling_num_vectors)

    def iter_collection(self, profile="small", base_seed: int = 7):
        """Yield workload records, building each matrix recipe only once.

        Consecutive specs differing only in ``num_vectors`` share the same
        underlying matrix (generation dominates benchmarking for the largest
        profiles); the workloads merely wrap it with different B widths, so
        peak memory stays at a single matrix as in the base implementation.
        """
        from repro.sparse.collection import MatrixRecord

        previous_recipe = None
        matrix = None
        for spec in self.collection_specs(profile, base_seed):
            recipe = (spec.builder, spec.params, spec.seed)
            if recipe != previous_recipe:
                matrix = self.spec_matrix(spec)
                previous_recipe = recipe
            yield MatrixRecord(
                name=spec.name,
                family=spec.family,
                matrix=self.workload_from_matrix(spec, matrix),
            )


#: The registered ``"spmm"`` domain singleton.
SPMM = SpmmDomain()

from repro.domains.registry import register_domain  # noqa: E402

register_domain(SPMM)
