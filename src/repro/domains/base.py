"""The domain plugin API: ``ProblemDomain`` and generic feature rows.

The paper's central abstraction — ``seer(runtime, preprocessing_data,
features)`` — is domain-agnostic (Sections III-A through III-D): nothing in
the training or inference flow is specific to SpMV beyond the kernel set,
the feature definitions and the workload corpus.  This module makes that
explicit.  A :class:`ProblemDomain` bundles everything the pipeline needs to
know about one problem class:

* **feature schemas** — the named known features (free at runtime) and
  gathered features (collected by dedicated kernels at a cost), declared as
  :class:`FeatureField` lists with extraction callables;
* **a kernel registry** — candidate kernel variants registered through the
  ``@domain.register_kernel`` decorator, in paper order;
* **workload generation** — named collection profiles expanded into
  picklable workload *specs* (recipes) that worker processes rebuild;
* **a feature-collector factory** — the simulated parallel kernels that
  gather the dynamic features and account for their cost.

The pipeline stages (:mod:`repro.core.benchmarking`,
:mod:`repro.core.dataset`, :mod:`repro.core.training`,
:mod:`repro.core.inference`, :mod:`repro.bench.runner`,
:mod:`repro.bench.engine`) are all driven by the active domain; registering
a new domain (see ``repro.domains.spmm`` for a complete example) makes a new
irregular workload runnable end to end without touching any of them.
"""

from __future__ import annotations

import dataclasses
import difflib
import numbers
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.gpu.device import MI100, DeviceSpec

#: Reserved known-feature name filled in from the caller's iteration count
#: rather than extracted from the workload.
ITERATIONS_FIELD = "iterations"

#: Average row length of the default cost-scaling workloads (mildly
#: irregular, FEM-like) — the Fig. 6 sweep of the paper.
SCALING_AVG_ROW_LENGTH = 8.0

#: Power-law exponent of the default cost-scaling workloads.
SCALING_EXPONENT = 2.4


def jsonable(value):
    """Recursively coerce containers and numpy scalars to plain JSON types.

    Tuples become lists, numpy integers/floats become their Python
    equivalents (bools and strings pass through untouched), so spec payloads
    and artifact manifests serialize with the standard ``json`` module.
    """
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (tuple, list)):
        return [jsonable(item) for item in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    return value


def spec_payload(spec) -> dict:
    """Deterministic, JSON-serializable payload of a workload spec.

    Every dataclass field of the spec participates, so two specs differing
    in any recipe parameter (including domain-specific ones such as SpMM's
    ``num_vectors``) can never collide in a cache key.
    """
    return {
        f.name: jsonable(getattr(spec, f.name))
        for f in dataclasses.fields(spec)
    }


def suggest_names(wanted: str, known, limit: int = 3) -> str:
    """A ``; did you mean ...?`` suffix from the close matches of ``wanted``."""
    matches = difflib.get_close_matches(wanted, list(known), n=limit, cutoff=0.4)
    if not matches:
        return ""
    return "; did you mean " + " or ".join(repr(match) for match in matches) + "?"


@dataclass(frozen=True)
class FeatureField:
    """One named feature plus how to extract it from a workload.

    ``extract`` maps a workload to the feature value; it may be ``None`` for
    fields that are filled in externally (the reserved ``iterations`` known
    feature) or computed jointly by the domain's collector (gathered
    features whose per-field extraction would repeat shared work).
    """

    name: str
    extract: Optional[Callable] = None
    description: str = ""


class _FeatureRowBase:
    """Attribute-style access shared by the generic feature rows."""

    def __getattr__(self, item):
        try:
            names = object.__getattribute__(self, "names")
            values = object.__getattribute__(self, "values")
            index = names.index(item)
        except (AttributeError, ValueError):
            raise AttributeError(item) from None
        return values[index]


@dataclass(frozen=True)
class KnownFeatureRow(_FeatureRowBase):
    """Generic known-feature vector of a domain (free at runtime).

    Provides the same protocol as the SpMV case study's ``KnownFeatures``:
    ``as_vector``/``as_dict`` in schema order, an ``iterations`` attribute,
    and ``with_iterations`` returning an updated copy.  Individual features
    are also readable as attributes (``row.nnz``).
    """

    names: tuple
    values: tuple

    def as_vector(self) -> np.ndarray:
        """Return the features in schema order."""
        return np.array(self.values, dtype=np.float64)

    def as_dict(self) -> dict:
        """Return ``{name: value}`` for CSV emission."""
        return dict(zip(self.names, self.values))

    def with_iterations(self, iterations: int) -> "KnownFeatureRow":
        """Return a copy with a different iteration count."""
        if ITERATIONS_FIELD not in self.names:
            raise ValueError(
                f"feature schema {self.names!r} has no {ITERATIONS_FIELD!r} field"
            )
        index = self.names.index(ITERATIONS_FIELD)
        values = list(self.values)
        values[index] = int(iterations)
        return KnownFeatureRow(names=self.names, values=tuple(values))


@dataclass(frozen=True)
class GatheredFeatureRow(_FeatureRowBase):
    """Generic gathered-feature vector plus the cost of collecting it."""

    names: tuple
    values: tuple
    collection_time_ms: float = field(default=0.0, compare=False)

    def as_vector(self) -> np.ndarray:
        """Return the features in schema order."""
        return np.array(self.values, dtype=np.float64)

    def as_dict(self) -> dict:
        """Return ``{name: value}`` for CSV emission (without the cost)."""
        return dict(zip(self.names, self.values))

    def with_collection_time(self, collection_time_ms: float) -> "GatheredFeatureRow":
        """Return a copy carrying the measured collection time."""
        return GatheredFeatureRow(
            names=self.names,
            values=self.values,
            collection_time_ms=collection_time_ms,
        )


def _resolve_registered_domain(name: str):
    """Unpickle helper: resolve a domain back to its registered singleton."""
    from repro.domains.registry import get_domain

    return get_domain(name)


def _resolve_or_rebuild_domain(name: str, cls):
    """Unpickle helper tolerant of processes that lack the registration.

    Prefers the process-local registered singleton (built-in domains, or
    custom domains the process registered itself); otherwise rebuilds an
    instance of ``cls`` — pickle applies the carried state next — and
    registers it so name-only references (cache keys, suites) resolve too.
    This is what lets registered custom domains reach spawn/forkserver
    engine workers, whose fresh interpreters only register the built-ins.
    """
    from repro.domains.registry import _DOMAINS

    existing = _DOMAINS.get(name)
    if existing is not None:
        return existing
    instance = cls.__new__(cls)
    instance.__init__()
    _DOMAINS[name] = instance
    return instance


class ProblemDomain:
    """One problem class the Seer pipeline can train and deploy on.

    Subclasses (or configured instances) provide four things: feature
    schemas (:attr:`known_fields` / :attr:`gathered_fields`), kernels
    (via :meth:`register_kernel`), workloads (:meth:`collection_specs` /
    :meth:`iter_collection`) and a collector (:meth:`make_collector`).
    Everything else — training-set assembly, the three decision trees, the
    cost-aware selector, evaluation, caching — is shared machinery.
    """

    #: Registry name of the domain (``"spmv"``, ``"spmm"``, ...).
    name: str = "abstract"
    #: One-line description shown in CLI help and manifests.
    description: str = ""
    #: Known-feature schema; must contain a field named ``iterations``.
    known_fields: tuple = ()
    #: Gathered-feature schema.
    gathered_fields: tuple = ()
    #: Iteration counts the default training corpus expands over.
    default_iteration_counts: tuple = (1, 4, 19)
    #: Kernel label the feature-cost study (Fig. 6) compares collection
    #: against; ``None`` disables the study for the domain.
    feature_cost_kernel: Optional[str] = None

    def __init__(self):
        self._kernel_classes = {}
        self._aux_kernel_names = set()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

    def __reduce__(self):
        # Registered domains pickle by name *plus* state: the unpickling
        # process resolves its own singleton when it has one (built-ins, or
        # a custom domain it registered itself) and otherwise rebuilds the
        # instance from the carried class and state — so registered custom
        # domains survive spawn/forkserver worker boundaries, whose fresh
        # interpreters only register the built-ins.  Unregistered instances
        # fall back to ordinary state pickling.
        from repro.domains.registry import is_registered_instance

        if is_registered_instance(self):
            return (
                _resolve_or_rebuild_domain,
                (self.name, type(self)),
                dict(self.__dict__),
            )
        return object.__reduce__(self)

    # ------------------------------------------------------------------
    # Feature schemas
    # ------------------------------------------------------------------
    @property
    def known_feature_names(self) -> tuple:
        """Known-feature names in classifier input order."""
        return tuple(f.name for f in self.known_fields)

    @property
    def gathered_feature_names(self) -> tuple:
        """Gathered-feature names in classifier input order."""
        return tuple(f.name for f in self.gathered_fields)

    @property
    def all_feature_names(self) -> tuple:
        """Known followed by gathered — the gathered classifier's layout."""
        return self.known_feature_names + self.gathered_feature_names

    def known_features(self, workload, iterations: int = 1):
        """Extract the trivially known features of ``workload``."""
        values = []
        for f in self.known_fields:
            if f.name == ITERATIONS_FIELD:
                values.append(int(iterations))
            elif f.extract is None:
                raise ValueError(
                    f"known feature {f.name!r} of domain {self.name!r} has "
                    f"no extractor"
                )
            else:
                values.append(f.extract(workload))
        return KnownFeatureRow(names=self.known_feature_names, values=tuple(values))

    def empty_gathered(self):
        """The all-zero gathered row used when collection is skipped."""
        return GatheredFeatureRow(
            names=self.gathered_feature_names,
            values=(0.0,) * len(self.gathered_fields),
        )

    def known_from_row(self, row: dict):
        """Rebuild a known-feature object from a CSV/table row."""
        values = tuple(
            int(row.get(ITERATIONS_FIELD, 1)) if name == ITERATIONS_FIELD
            else row[name]
            for name in self.known_feature_names
        )
        return KnownFeatureRow(names=self.known_feature_names, values=values)

    def gathered_from_row(self, row: dict, collection_time_ms: float = 0.0):
        """Rebuild a gathered-feature object from a CSV/table row."""
        return GatheredFeatureRow(
            names=self.gathered_feature_names,
            values=tuple(row[name] for name in self.gathered_feature_names),
            collection_time_ms=collection_time_ms,
        )

    # JSON payloads for the engine's measurement cache -------------------
    def known_to_payload(self, known) -> dict:
        """JSON-serializable form of a known-feature object."""
        return known.as_dict()

    def known_from_payload(self, payload: dict):
        """Inverse of :meth:`known_to_payload`."""
        return self.known_from_row(payload)

    def gathered_to_payload(self, gathered) -> dict:
        """JSON-serializable form of a gathered-feature object."""
        payload = gathered.as_dict()
        payload["collection_time_ms"] = gathered.collection_time_ms
        return payload

    def gathered_from_payload(self, payload: dict):
        """Inverse of :meth:`gathered_to_payload`."""
        return self.gathered_from_row(
            payload, collection_time_ms=payload.get("collection_time_ms", 0.0)
        )

    # ------------------------------------------------------------------
    # Kernel registry
    # ------------------------------------------------------------------
    def _populate_kernels(self) -> None:
        """Hook for domains that register their kernels lazily.

        Called before the first kernel lookup; the default does nothing
        (kernels registered at module import time, the common case)."""

    def _ensure_kernels(self) -> None:
        if not self._kernel_classes:
            self._populate_kernels()

    def register_kernel(self, cls=None, *, aux: bool = False):
        """Register a kernel class under its ``name`` label.

        Usable as a plain decorator (``@domain.register_kernel``), with
        arguments (``@domain.register_kernel(aux=True)``) or as a direct
        call.  ``aux`` marks reference/vendor kernels (the rocSPARSE analog)
        that are excluded when the caller asks for the core set only.
        Registration order is the paper order used by figures and reports.
        """

        def decorate(kernel_cls):
            label = getattr(kernel_cls, "name", None)
            if not label or label == "abstract":
                raise ValueError(
                    f"kernel class {kernel_cls!r} must define a non-abstract "
                    f"'name' label to be registered"
                )
            if label in self._kernel_classes:
                raise ValueError(
                    f"kernel {label!r} is already registered in domain "
                    f"{self.name!r}"
                )
            self._kernel_classes[label] = kernel_cls
            if aux:
                self._aux_kernel_names.add(label)
            return kernel_cls

        if cls is not None:
            return decorate(cls)
        return decorate

    @property
    def kernel_classes(self) -> dict:
        """Registered kernel classes keyed by label, in registration order."""
        self._ensure_kernels()
        return dict(self._kernel_classes)

    def kernel_names(self, include_aux: bool = True) -> tuple:
        """Kernel labels in registration (paper) order."""
        self._ensure_kernels()
        return tuple(
            name
            for name in self._kernel_classes
            if include_aux or name not in self._aux_kernel_names
        )

    def make_kernel(self, kernel, device: DeviceSpec = MI100):
        """Instantiate a kernel by label, or pass an instance through.

        Already-instantiated kernels (anything with ``timing`` and ``name``)
        are returned unchanged, so call sites can uniformly accept either.
        Unknown labels raise :class:`KeyError` with close-match suggestions.
        """
        self._ensure_kernels()
        if not isinstance(kernel, str):
            if hasattr(kernel, "timing") and hasattr(kernel, "name"):
                return kernel
            raise TypeError(
                f"expected a kernel label or kernel instance, got {kernel!r}"
            )
        if kernel not in self._kernel_classes:
            raise KeyError(
                f"unknown kernel {kernel!r} in domain {self.name!r}; expected "
                f"one of {sorted(self._kernel_classes)}"
                + suggest_names(kernel, self._kernel_classes)
            )
        return self._kernel_classes[kernel](device)

    def default_kernels(self, device: DeviceSpec = MI100, include_aux: bool = True) -> list:
        """Instantiate the registered kernel set in paper order."""
        return [
            self.make_kernel(name, device)
            for name in self.kernel_names(include_aux)
        ]

    # ------------------------------------------------------------------
    # Feature collection
    # ------------------------------------------------------------------
    def make_collector(self, device: DeviceSpec = MI100):
        """Build the feature collector running the gathered-feature kernels."""
        raise NotImplementedError

    def make_pipeline(self, device: DeviceSpec = MI100, collector=None):
        """Build the domain's :class:`~repro.pipeline.FeaturePipeline`.

        This is the one featurization path of the reproduction: the
        benchmark sweep, the runtime predictor and the raw-matrix serving
        layer all extract features through the pipeline this factory
        returns, so sweep-time and serve-time feature values can never
        diverge.  The collector is built lazily unless one is supplied.
        """
        from repro.pipeline import FeaturePipeline

        return FeaturePipeline(domain=self, device=device, collector=collector)

    #: Workload-option names :meth:`serving_workload` understands; anything
    #: else passed through ``--workload-option`` is rejected loudly.
    serving_option_names: tuple = ()

    def validate_serving_options(self, options: Optional[dict]) -> dict:
        """Check serving options against :attr:`serving_option_names`.

        A misspelled option silently falling back to a default would serve
        a whole corpus with the wrong workload parameters, so unknown keys
        raise :class:`ValueError` with close-match suggestions instead.
        """
        options = dict(options or {})
        for key in options:
            if key not in self.serving_option_names:
                expected = (
                    f"expected one of {sorted(self.serving_option_names)}"
                    if self.serving_option_names
                    else "it accepts none"
                )
                raise ValueError(
                    f"domain {self.name!r} does not understand workload "
                    f"option {key!r}; {expected}"
                    + suggest_names(key, self.serving_option_names)
                )
        return options

    def serving_workload(self, matrix, options: Optional[dict] = None):
        """Wrap a raw CSR matrix into this domain's workload type.

        Used by the ingestion path (``repro serve``), where only a matrix
        file exists: domains whose workloads carry extra parameters (e.g.
        SpMM's ``num_vectors``) read them from ``options`` and declare them
        in :attr:`serving_option_names`.  The default — the matrix *is* the
        workload — fits matrix-only domains like SpMV.
        """
        self.validate_serving_options(options)
        return matrix

    # ------------------------------------------------------------------
    # Workloads
    # ------------------------------------------------------------------
    @property
    def profile_names(self) -> tuple:
        """Names of the collection profiles this domain understands."""
        raise NotImplementedError

    def collection_specs(self, profile="small", base_seed: int = 7) -> list:
        """Expand a profile into picklable workload specs (recipes).

        A spec must be a (frozen) dataclass carrying at least ``name`` and
        ``family`` plus whatever the domain needs to rebuild the workload;
        every field participates in the engine's cache keys.
        """
        raise NotImplementedError

    def spec_matrix(self, spec):
        """Build the (cacheable) sparse-matrix part of one spec's workload."""
        return spec.build()

    def matrix_payload(self, spec) -> dict:
        """Recipe-hash payload of the matrix part of a spec.

        Used to key the engine's generated-matrix artifact cache.  The
        workload *name* never affects the built matrix and is excluded, so
        renamed recipes keep hitting the same artifact; domains whose specs
        carry fields that do not influence the matrix (e.g. SpMM's
        ``num_vectors``) drop those too.
        """
        payload = spec_payload(spec)
        payload.pop("name", None)
        return payload

    def workload_from_matrix(self, spec, matrix):
        """Assemble the full workload from a spec and its built matrix."""
        return matrix

    def build_workload(self, spec):
        """Build one spec's complete workload."""
        return self.workload_from_matrix(spec, self.spec_matrix(spec))

    def scaling_workload(self, num_rows: int, seed: int = 0):
        """A representative workload at a given row count.

        Used by the cost-scaling studies (feature-collection cost vs. kernel
        runtime as the problem grows, the paper's Fig. 6) to sweep problem
        sizes without going through a collection profile.
        """
        raise NotImplementedError

    def iter_collection(self, profile="small", base_seed: int = 7):
        """Yield named workload records one at a time (low peak memory)."""
        from repro.sparse.collection import MatrixRecord

        for spec in self.collection_specs(profile, base_seed):
            yield MatrixRecord(
                name=spec.name, family=spec.family, matrix=self.build_workload(spec)
            )

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Manifest payload describing this domain's schemas and kernels."""
        return {
            "name": self.name,
            "description": self.description,
            "known_features": list(self.known_feature_names),
            "gathered_features": list(self.gathered_feature_names),
            "kernels": list(self.kernel_names()),
        }
