"""Global registry of problem domains.

Domains register once (usually at import of :mod:`repro.domains`) and are
resolved by name everywhere else — CLI flags, cache keys, pickled artifacts.
"""

from __future__ import annotations

from repro.domains.base import ProblemDomain, suggest_names

_DOMAINS = {}

#: Name of the domain used when callers do not specify one.
DEFAULT_DOMAIN = "spmv"


def register_domain(domain: ProblemDomain) -> ProblemDomain:
    """Register ``domain`` under its name; duplicate names are an error."""
    if not isinstance(domain, ProblemDomain):
        raise TypeError(f"expected a ProblemDomain instance, got {domain!r}")
    if not domain.name or domain.name == "abstract":
        raise ValueError("domains must define a concrete 'name' to register")
    if domain.name in _DOMAINS:
        raise ValueError(f"domain {domain.name!r} is already registered")
    _DOMAINS[domain.name] = domain
    return domain


def unregister_domain(name: str) -> None:
    """Remove a registered domain (primarily for tests)."""
    _DOMAINS.pop(name, None)


def get_domain(domain) -> ProblemDomain:
    """Resolve a domain name (or pass a domain instance through).

    ``None`` resolves to the default (``"spmv"``) domain.  Instances are
    additionally made resolvable *by name* for the rest of this process, so
    pipeline stages that only carry the domain's name (cache artifacts, the
    benchmark suite) work for instance-passed custom domains too.
    """
    if domain is None:
        domain = DEFAULT_DOMAIN
    if isinstance(domain, ProblemDomain):
        return ensure_registered(domain)
    if domain in _DOMAINS:
        return _DOMAINS[domain]
    raise KeyError(
        f"unknown domain {domain!r}; expected one of {sorted(_DOMAINS)}"
        + suggest_names(str(domain), _DOMAINS)
    )


def ensure_registered(domain: ProblemDomain) -> ProblemDomain:
    """Make ``domain`` resolvable by name, tolerating re-registration.

    Unlike :func:`register_domain` this is idempotent for the same instance;
    it still refuses to silently shadow a *different* domain registered
    under the same name.
    """
    existing = _DOMAINS.get(domain.name)
    if existing is None:
        _DOMAINS[domain.name] = domain
    elif existing is not domain:
        raise ValueError(
            f"a different domain is already registered as {domain.name!r}"
        )
    return domain


def domain_names() -> tuple:
    """Registered domain names, in registration order."""
    return tuple(_DOMAINS)


def is_registered_instance(domain: ProblemDomain) -> bool:
    """Whether ``domain`` is the instance registered under its name."""
    return _DOMAINS.get(domain.name) is domain
