"""The SpMV case-study domain (Table II of the paper), as a plugin.

This re-registers the original reproduction — the eight SpMV kernel
variants plus rocSPARSE, the row-density gathered features and the synthetic
SuiteSparse-like collection — as the default ``"spmv"`` domain.  The legacy
entry points (:func:`repro.kernels.registry.make_kernel`,
``run_sweep(profile=...)``, ``seer(...)``) are thin shims over this domain
and produce bit-identical results to the pre-domain pipeline: the feature
objects are still the :class:`~repro.sparse.features.KnownFeatures` /
:class:`~repro.sparse.features.GatheredFeatures` dataclasses and the kernel
registration order is the paper order.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.domains.base import (
    SCALING_AVG_ROW_LENGTH,
    SCALING_EXPONENT,
    FeatureField,
    ProblemDomain,
)
from repro.gpu.device import MI100, DeviceSpec
from repro.sparse import collection as sparse_collection
from repro.sparse.features import GatheredFeatures, KnownFeatures, known_features


class SpmvDomain(ProblemDomain):
    """Sparse matrix-vector multiplication: ``y = A @ x``."""

    name = "spmv"
    description = "sparse matrix x vector (the paper's case study)"
    known_fields = (
        FeatureField("rows", lambda m: m.num_rows, "matrix rows"),
        FeatureField("cols", lambda m: m.num_cols, "matrix columns"),
        FeatureField("nnz", lambda m: m.nnz, "stored nonzeros"),
        FeatureField("iterations", None, "SpMV iterations the caller will run"),
    )
    gathered_fields = (
        FeatureField("max_row_density", description="max of row nnz / cols"),
        FeatureField("min_row_density", description="min of row nnz / cols"),
        FeatureField("mean_row_density", description="mean of row nnz / cols"),
        FeatureField("var_row_density", description="variance of row nnz / cols"),
    )
    default_iteration_counts = (1, 4, 19)
    #: The paper's Fig. 6 compares collection cost against CSR,BM.
    feature_cost_kernel = "CSR,BM"

    # ------------------------------------------------------------------
    # Kernels — registered lazily to keep repro.domains importable without
    # triggering the repro.kernels package (which shims back onto this
    # domain); the order is the paper order of Table II / Fig. 5.
    # ------------------------------------------------------------------
    def _populate_kernels(self) -> None:
        from repro.kernels.coo_warp import CooWarpMapped
        from repro.kernels.csr_adaptive import CsrAdaptive, RocSparseAdaptive
        from repro.kernels.csr_block import CsrBlockMapped
        from repro.kernels.csr_merge import CsrMergePath, CsrWorkOriented
        from repro.kernels.csr_scalar import CsrThreadMapped
        from repro.kernels.csr_vector import CsrWarpMapped
        from repro.kernels.ell_thread import EllThreadMapped

        for kernel_cls in (
            CsrAdaptive,
            CsrBlockMapped,
            CsrMergePath,
            CsrWarpMapped,
            CsrWorkOriented,
            CsrThreadMapped,
            CooWarpMapped,
            EllThreadMapped,
        ):
            self.register_kernel(kernel_cls)
        self.register_kernel(RocSparseAdaptive, aux=True)

    # ------------------------------------------------------------------
    # Features — the legacy dataclasses, so every artifact (measurement
    # JSON, CSVs, pickled sweeps) keeps its exact pre-domain shape.
    # ------------------------------------------------------------------
    def known_features(self, workload, iterations: int = 1) -> KnownFeatures:
        return known_features(workload, iterations)

    def empty_gathered(self) -> GatheredFeatures:
        return GatheredFeatures(0.0, 0.0, 0.0, 0.0)

    def known_from_row(self, row: dict) -> KnownFeatures:
        return KnownFeatures(
            rows=int(row["rows"]),
            cols=int(row["cols"]),
            nnz=int(row["nnz"]),
            iterations=int(row.get("iterations", 1)),
        )

    def gathered_from_row(
        self, row: dict, collection_time_ms: float = 0.0
    ) -> GatheredFeatures:
        return GatheredFeatures(
            max_row_density=row["max_row_density"],
            min_row_density=row["min_row_density"],
            mean_row_density=row["mean_row_density"],
            var_row_density=row["var_row_density"],
            collection_time_ms=collection_time_ms,
        )

    def known_to_payload(self, known) -> dict:
        return asdict(known)

    def known_from_payload(self, payload: dict) -> KnownFeatures:
        return KnownFeatures(**payload)

    def gathered_to_payload(self, gathered) -> dict:
        return asdict(gathered)

    def gathered_from_payload(self, payload: dict) -> GatheredFeatures:
        return GatheredFeatures(**payload)

    def make_collector(self, device: DeviceSpec = MI100):
        # Imported lazily for the same reason as the kernels: the collector
        # lives in the repro.kernels package, which shims onto this domain.
        from repro.kernels.feature_kernels import FeatureCollector

        return FeatureCollector(device)

    # ------------------------------------------------------------------
    # Workloads — the synthetic SuiteSparse-like collection.
    # ------------------------------------------------------------------
    @property
    def profile_names(self) -> tuple:
        return sparse_collection.PROFILE_NAMES

    def collection_specs(self, profile="small", base_seed: int = 7) -> list:
        return sparse_collection.collection_specs(profile, base_seed)

    def scaling_workload(self, num_rows: int, seed: int = 0):
        from repro.sparse.generators import power_law_matrix

        return power_law_matrix(
            num_rows=num_rows,
            num_cols=num_rows,
            avg_row_length=SCALING_AVG_ROW_LENGTH,
            exponent=SCALING_EXPONENT,
            rng=seed,
        )


#: The registered ``"spmv"`` domain singleton.
SPMV = SpmvDomain()

# Registered here (not in repro.domains.__init__) so the domain is resolvable
# the moment this module finishes importing — repro.kernels shims onto it and
# may be imported while repro.domains is still initializing.
from repro.domains.registry import register_domain  # noqa: E402

register_domain(SPMV)
