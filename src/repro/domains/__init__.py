"""Problem-domain plugins for the Seer pipeline.

Importing this package registers the built-in domains:

* ``"spmv"`` — the paper's sparse matrix-vector case study (the default
  everywhere a domain is not named);
* ``"spmm"`` — sparse matrix x dense multi-vector, proving the pipeline is
  domain-agnostic.

Register a new domain with::

    from repro.domains import ProblemDomain, register_domain

    class MyDomain(ProblemDomain):
        name = "mydomain"
        ...

    register_domain(MyDomain())

after which ``run_sweep(domain="mydomain")`` and
``repro sweep --domain mydomain`` work end to end.  See the README's
"Writing a new domain" guide and :mod:`repro.domains.spmm` for a complete
worked example.
"""

from repro.domains.base import (
    FeatureField,
    GatheredFeatureRow,
    KnownFeatureRow,
    ProblemDomain,
    spec_payload,
)
from repro.domains.registry import (
    DEFAULT_DOMAIN,
    domain_names,
    ensure_registered,
    get_domain,
    register_domain,
    unregister_domain,
)
from repro.domains.spmv import SPMV, SpmvDomain
from repro.domains.spmm import SPMM, SpmmDomain, SpmmWorkload

__all__ = [
    "FeatureField",
    "GatheredFeatureRow",
    "KnownFeatureRow",
    "ProblemDomain",
    "spec_payload",
    "domain_names",
    "ensure_registered",
    "get_domain",
    "register_domain",
    "unregister_domain",
    "SPMV",
    "SpmvDomain",
    "SPMM",
    "SpmmDomain",
    "SpmmWorkload",
    "DEFAULT_DOMAIN",
]
