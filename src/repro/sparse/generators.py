"""Synthetic sparse-matrix generators.

The real evaluation of the paper runs over the SuiteSparse Matrix Collection.
That collection is not available offline, so these generators produce
matrices spanning the same *structural* axes the Seer predictor exploits:

* near-uniform row lengths (FEM meshes, banded stencils) — ELL and
  thread-mapped kernels shine here;
* power-law row lengths (web/social graphs) — warp/block-mapped and
  work-oriented kernels shine here;
* long-tail rows (a handful of extremely heavy rows) — block-mapped and
  merge-path kernels shine here;
* very small or very sparse matrices — launch overhead and feature-collection
  cost dominate;
* matrices with many empty rows — row-mapped schedules waste lanes.

All generators are deterministic given a ``numpy.random.Generator`` or an
integer seed, so the collection, the benchmarks and the trained models are
reproducible run to run.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix


def _as_rng(rng) -> np.random.Generator:
    """Accept either a Generator or an integer seed."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def matrix_from_row_lengths(
    row_lengths: np.ndarray, num_cols: int, rng=0
) -> CSRMatrix:
    """Build a CSR matrix with the requested per-row nonzero counts.

    Column indices are laid out as a strided run starting at a random
    position per row, which guarantees uniqueness within a row while staying
    fully vectorized (the per-row rejection sampling of
    :meth:`CSRMatrix.from_row_lengths` is too slow for collection-sized
    matrices).
    """
    rng = _as_rng(rng)
    row_lengths = np.asarray(row_lengths, dtype=np.int64)
    row_lengths = np.minimum(row_lengths, num_cols)
    num_rows = row_lengths.shape[0]
    row_offsets = np.zeros(num_rows + 1, dtype=np.int64)
    row_offsets[1:] = np.cumsum(row_lengths)
    nnz = int(row_offsets[-1])
    if nnz == 0:
        return CSRMatrix(
            num_rows=num_rows,
            num_cols=num_cols,
            row_offsets=row_offsets,
            col_indices=np.empty(0, dtype=np.int64),
            values=np.empty(0, dtype=np.float64),
        )
    starts = rng.integers(0, num_cols, size=num_rows)
    # Strides are capped so a row never wraps around, keeping columns unique.
    max_stride = np.maximum(1, (num_cols - 1) // np.maximum(row_lengths, 1))
    strides = 1 + (rng.integers(0, 8, size=num_rows) % max_stride)
    row_ids = np.repeat(np.arange(num_rows, dtype=np.int64), row_lengths)
    intra = np.arange(nnz, dtype=np.int64) - np.repeat(row_offsets[:-1], row_lengths)
    col_indices = (starts[row_ids] + intra * strides[row_ids]) % num_cols
    values = rng.uniform(0.5, 1.5, size=nnz)
    return CSRMatrix(
        num_rows=num_rows,
        num_cols=num_cols,
        row_offsets=row_offsets,
        col_indices=col_indices,
        values=values,
    )


def regular_matrix(num_rows: int, num_cols: int, row_length: int, rng=0) -> CSRMatrix:
    """Every row has exactly ``row_length`` nonzeros (ELL-friendly)."""
    row_lengths = np.full(num_rows, row_length, dtype=np.int64)
    return matrix_from_row_lengths(row_lengths, num_cols, rng)


def diagonal_matrix(num_rows: int, rng=0) -> CSRMatrix:
    """Square matrix with a single nonzero on each diagonal position."""
    rng = _as_rng(rng)
    row_offsets = np.arange(num_rows + 1, dtype=np.int64)
    return CSRMatrix(
        num_rows=num_rows,
        num_cols=num_rows,
        row_offsets=row_offsets,
        col_indices=np.arange(num_rows, dtype=np.int64),
        values=rng.uniform(0.5, 1.5, size=num_rows),
    )


def banded_matrix(num_rows: int, bandwidth: int, rng=0) -> CSRMatrix:
    """Square banded matrix (stencil / FEM-like locality, near-uniform rows)."""
    rng = _as_rng(rng)
    half = max(bandwidth // 2, 0)
    rows = np.arange(num_rows, dtype=np.int64)
    starts = np.maximum(rows - half, 0)
    stops = np.minimum(rows + half + 1, num_rows)
    row_lengths = stops - starts
    row_offsets = np.zeros(num_rows + 1, dtype=np.int64)
    row_offsets[1:] = np.cumsum(row_lengths)
    nnz = int(row_offsets[-1])
    row_ids = np.repeat(rows, row_lengths)
    intra = np.arange(nnz, dtype=np.int64) - np.repeat(row_offsets[:-1], row_lengths)
    col_indices = starts[row_ids] + intra
    return CSRMatrix(
        num_rows=num_rows,
        num_cols=num_rows,
        row_offsets=row_offsets,
        col_indices=col_indices,
        values=rng.uniform(0.5, 1.5, size=nnz),
    )


def uniform_random_matrix(
    num_rows: int, num_cols: int, density: float, rng=0
) -> CSRMatrix:
    """Erdos-Renyi style matrix: row lengths are binomial around the mean."""
    rng = _as_rng(rng)
    mean = density * num_cols
    row_lengths = rng.binomial(num_cols, min(max(density, 0.0), 1.0), size=num_rows)
    if mean >= 1 and row_lengths.max() == 0:
        row_lengths[rng.integers(0, num_rows)] = 1
    return matrix_from_row_lengths(row_lengths, num_cols, rng)


def power_law_matrix(
    num_rows: int,
    num_cols: int,
    avg_row_length: float,
    exponent: float = 2.1,
    rng=0,
    max_row_length: int = None,
) -> CSRMatrix:
    """Graph-like matrix whose row lengths follow a truncated power law.

    ``max_row_length`` caps the tail (hub rows); by default rows may grow up
    to the full matrix width, as the hubs of real web/social graphs do.
    """
    rng = _as_rng(rng)
    raw = rng.pareto(exponent - 1.0, size=num_rows) + 1.0
    raw = raw / raw.mean() * avg_row_length
    cap = num_cols if max_row_length is None else min(int(max_row_length), num_cols)
    row_lengths = np.minimum(np.maximum(raw.astype(np.int64), 0), cap)
    return matrix_from_row_lengths(row_lengths, num_cols, rng)


def skewed_matrix(
    num_rows: int,
    num_cols: int,
    base_row_length: int,
    heavy_rows: int,
    heavy_row_length: int,
    rng=0,
) -> CSRMatrix:
    """Mostly-light matrix with a handful of extremely heavy rows.

    This is the archetype that breaks thread-mapped schedules: the heavy rows
    become the slowest SIMD lanes while every other lane idles.
    """
    rng = _as_rng(rng)
    row_lengths = np.full(num_rows, base_row_length, dtype=np.int64)
    heavy_rows = min(heavy_rows, num_rows)
    if heavy_rows:
        heavy_ids = rng.choice(num_rows, size=heavy_rows, replace=False)
        row_lengths[heavy_ids] = min(heavy_row_length, num_cols)
    return matrix_from_row_lengths(row_lengths, num_cols, rng)


def block_diagonal_matrix(num_blocks: int, block_size: int, rng=0) -> CSRMatrix:
    """Dense blocks along the diagonal (circuit / multi-body structure)."""
    rng = _as_rng(rng)
    num_rows = num_blocks * block_size
    row_lengths = np.full(num_rows, block_size, dtype=np.int64)
    row_offsets = np.zeros(num_rows + 1, dtype=np.int64)
    row_offsets[1:] = np.cumsum(row_lengths)
    nnz = int(row_offsets[-1])
    rows = np.arange(num_rows, dtype=np.int64)
    block_starts = (rows // block_size) * block_size
    row_ids = np.repeat(rows, row_lengths)
    intra = np.arange(nnz, dtype=np.int64) - np.repeat(row_offsets[:-1], row_lengths)
    col_indices = block_starts[row_ids] + intra
    return CSRMatrix(
        num_rows=num_rows,
        num_cols=num_rows,
        row_offsets=row_offsets,
        col_indices=col_indices,
        values=rng.uniform(0.5, 1.5, size=nnz),
    )


def road_network_matrix(num_rows: int, rng=0) -> CSRMatrix:
    """Road-network-like matrix: enormous row count, 2-4 nonzeros per row.

    The largest matrices of the SuiteSparse collection by row count are road
    networks and circuits with average degree barely above two.  They are the
    class that punishes schedules with per-row overheads (warp/block mapped)
    and per-row atomics (COO) while being trivial for thread-mapped and ELL
    kernels.
    """
    rng = _as_rng(rng)
    row_lengths = rng.integers(1, 5, size=num_rows).astype(np.int64)
    return matrix_from_row_lengths(row_lengths, num_rows, rng)


def variable_block_matrix(
    num_rows: int, min_block: int, max_block: int, rng=0
) -> CSRMatrix:
    """Dense diagonal blocks of varying size (stiffness-matrix structure).

    The varying block sizes give the matrix a moderate spread of row lengths:
    regular enough for row-mapped kernels, irregular enough that ELL pays a
    padding penalty — the structure of matrices like PWTK.
    """
    rng = _as_rng(rng)
    if min_block < 1 or max_block < min_block:
        raise ValueError("need 1 <= min_block <= max_block")
    block_sizes = []
    total = 0
    while total < num_rows:
        size = int(rng.integers(min_block, max_block + 1))
        size = min(size, num_rows - total)
        block_sizes.append(size)
        total += size
    row_lengths = np.concatenate(
        [np.full(size, size, dtype=np.int64) for size in block_sizes]
    )
    block_starts = np.concatenate(
        [np.full(size, start, dtype=np.int64)
         for start, size in zip(np.cumsum([0] + block_sizes[:-1]), block_sizes)]
    )
    row_offsets = np.zeros(num_rows + 1, dtype=np.int64)
    row_offsets[1:] = np.cumsum(row_lengths)
    nnz = int(row_offsets[-1])
    intra = np.arange(nnz, dtype=np.int64) - np.repeat(row_offsets[:-1], row_lengths)
    col_indices = np.repeat(block_starts, row_lengths) + intra
    return CSRMatrix(
        num_rows=num_rows,
        num_cols=num_rows,
        row_offsets=row_offsets,
        col_indices=col_indices,
        values=rng.uniform(0.5, 1.5, size=nnz),
    )


def stencil_matrix(num_rows: int, points: int = 9, rng=0) -> CSRMatrix:
    """Finite-difference stencil on a square 2D grid (banded, near-uniform).

    ``points`` selects the classic 5-point (von Neumann) or 9-point (Moore)
    neighbourhood.  Rows in the grid interior all have exactly ``points``
    nonzeros; boundary rows are slightly shorter — the mild irregularity real
    mesh matrices show at domain edges.
    """
    if points not in (5, 9):
        raise ValueError("points must be 5 or 9")
    rng = _as_rng(rng)
    width = max(int(round(num_rows**0.5)), 3)
    if points == 5:
        neighbourhood = [(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)]
    else:
        neighbourhood = [
            (dr, dc) for dr in (-1, 0, 1) for dc in (-1, 0, 1)
        ]
    # Unflatten each row index into 2D grid coordinates so the
    # neighbourhood never wraps around a grid-row boundary: a left-edge
    # point has no left neighbour rather than coupling to the previous
    # grid row's right edge.
    rows = np.arange(num_rows, dtype=np.int64)
    grid_c = rows % width
    # Sort by flattened offset so columns come out ascending within a row.
    neighbourhood.sort(key=lambda pair: pair[0] * width + pair[1])
    offsets = np.array(
        [dr * width + dc for dr, dc in neighbourhood], dtype=np.int64
    )
    delta_c = np.array([dc for _, dc in neighbourhood], dtype=np.int64)
    cols = rows[:, None] + offsets[None, :]
    neighbour_c = grid_c[:, None] + delta_c[None, :]
    valid = (
        (cols >= 0)
        & (cols < num_rows)
        & (neighbour_c >= 0)
        & (neighbour_c < width)
    )
    row_lengths = valid.sum(axis=1).astype(np.int64)
    row_offsets = np.zeros(num_rows + 1, dtype=np.int64)
    row_offsets[1:] = np.cumsum(row_lengths)
    col_indices = cols[valid]
    return CSRMatrix(
        num_rows=num_rows,
        num_cols=num_rows,
        row_offsets=row_offsets,
        col_indices=col_indices,
        values=rng.uniform(0.5, 1.5, size=int(row_offsets[-1])),
    )


def empty_row_heavy_matrix(
    num_rows: int,
    num_cols: int,
    empty_fraction: float,
    row_length: int,
    rng=0,
) -> CSRMatrix:
    """Matrix where a large fraction of rows hold no nonzeros at all."""
    rng = _as_rng(rng)
    row_lengths = np.full(num_rows, row_length, dtype=np.int64)
    num_empty = int(round(min(max(empty_fraction, 0.0), 1.0) * num_rows))
    if num_empty:
        empty_ids = rng.choice(num_rows, size=num_empty, replace=False)
        row_lengths[empty_ids] = 0
    return matrix_from_row_lengths(row_lengths, num_cols, rng)
