"""Sparse-matrix substrate for the Seer reproduction.

This package provides the compressed sparse formats used by the SpMV case
study (COO, CSR, ELL), structural feature computation (the "known" and
"gathered" features of the paper), Matrix-Market I/O, and a synthetic
SuiteSparse-like matrix collection used in place of the real collection.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.features import (
    GATHERED_FEATURE_NAMES,
    KNOWN_FEATURE_NAMES,
    GatheredFeatures,
    KnownFeatures,
    gathered_features,
    known_features,
)
from repro.sparse.generators import (
    banded_matrix,
    block_diagonal_matrix,
    diagonal_matrix,
    empty_row_heavy_matrix,
    matrix_from_row_lengths,
    power_law_matrix,
    regular_matrix,
    road_network_matrix,
    skewed_matrix,
    uniform_random_matrix,
    variable_block_matrix,
)
from repro.sparse.collection import (
    CollectionProfile,
    MatrixRecord,
    MatrixSpec,
    SyntheticCollection,
    archetype,
    build_collection,
    collection_specs,
    iter_collection,
)
from repro.sparse.io import read_matrix_market, write_matrix_market

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "ELLMatrix",
    "KnownFeatures",
    "GatheredFeatures",
    "KNOWN_FEATURE_NAMES",
    "GATHERED_FEATURE_NAMES",
    "known_features",
    "gathered_features",
    "banded_matrix",
    "block_diagonal_matrix",
    "diagonal_matrix",
    "empty_row_heavy_matrix",
    "matrix_from_row_lengths",
    "power_law_matrix",
    "regular_matrix",
    "road_network_matrix",
    "skewed_matrix",
    "uniform_random_matrix",
    "variable_block_matrix",
    "CollectionProfile",
    "MatrixRecord",
    "MatrixSpec",
    "SyntheticCollection",
    "archetype",
    "build_collection",
    "collection_specs",
    "iter_collection",
    "read_matrix_market",
    "write_matrix_market",
]
