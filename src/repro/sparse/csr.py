"""Compressed Sparse Row (CSR) format.

CSR is the primary format of the SpMV case study: six of the eight kernel
variants in the paper (Table II) operate on CSR.  The format stores a
``row_offsets`` array of length ``num_rows + 1`` plus per-nonzero column
indices and values sorted by row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.coo import COOMatrix, SparseFormatError


@dataclass
class CSRMatrix:
    """A sparse matrix in compressed-sparse-row format.

    Attributes
    ----------
    num_rows, num_cols:
        Matrix dimensions.
    row_offsets:
        Integer array of length ``num_rows + 1``; row ``i`` owns the nonzeros
        in ``[row_offsets[i], row_offsets[i + 1])``.
    col_indices:
        Column index of every stored entry, grouped by row.
    values:
        Stored values, aligned with ``col_indices``.
    """

    num_rows: int
    num_cols: int
    row_offsets: np.ndarray
    col_indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.row_offsets = np.asarray(self.row_offsets, dtype=np.int64)
        self.col_indices = np.asarray(self.col_indices, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)
        self.validate()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.values.shape[0])

    @property
    def shape(self) -> tuple:
        """``(num_rows, num_cols)``."""
        return (self.num_rows, self.num_cols)

    def validate(self) -> None:
        """Check structural invariants, raising :class:`SparseFormatError`."""
        if self.num_rows < 0 or self.num_cols < 0:
            raise SparseFormatError("matrix dimensions must be non-negative")
        if self.row_offsets.shape != (self.num_rows + 1,):
            raise SparseFormatError(
                "row_offsets must have length num_rows + 1, got "
                f"{self.row_offsets.shape[0]} for {self.num_rows} rows"
            )
        if self.col_indices.shape != self.values.shape:
            raise SparseFormatError("col_indices and values must align")
        if self.row_offsets[0] != 0:
            raise SparseFormatError("row_offsets must start at 0")
        if self.row_offsets[-1] != self.values.shape[0]:
            raise SparseFormatError("row_offsets must end at nnz")
        if np.any(np.diff(self.row_offsets) < 0):
            raise SparseFormatError("row_offsets must be non-decreasing")
        if self.values.shape[0]:
            if self.col_indices.min() < 0 or self.col_indices.max() >= self.num_cols:
                raise SparseFormatError("column index out of bounds")

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        """Convert from COO (duplicates are preserved, entries sorted by row)."""
        ordered = coo.sorted_by_row()
        row_offsets = np.zeros(coo.num_rows + 1, dtype=np.int64)
        counts = np.bincount(ordered.rows, minlength=coo.num_rows)
        row_offsets[1:] = np.cumsum(counts)
        return cls(
            num_rows=coo.num_rows,
            num_cols=coo.num_cols,
            row_offsets=row_offsets,
            col_indices=ordered.cols,
            values=ordered.values,
        )

    def to_coo(self) -> COOMatrix:
        """Convert to COO format."""
        rows = np.repeat(np.arange(self.num_rows, dtype=np.int64), self.row_lengths())
        return COOMatrix(
            num_rows=self.num_rows,
            num_cols=self.num_cols,
            rows=rows,
            cols=self.col_indices.copy(),
            values=self.values.copy(),
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build from a dense 2-D array (zeros dropped)."""
        return cls.from_coo(COOMatrix.from_dense(dense))

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array."""
        return self.to_coo().to_dense()

    @classmethod
    def from_row_lengths(
        cls,
        row_lengths: np.ndarray,
        num_cols: int,
        rng: np.random.Generator,
    ) -> "CSRMatrix":
        """Build a matrix with the given per-row nonzero counts.

        Column indices within each row are sampled without replacement from
        ``[0, num_cols)`` and sorted; values are drawn uniformly from
        ``[0.5, 1.5)`` so SpMV results are well-conditioned for comparisons.
        """
        row_lengths = np.asarray(row_lengths, dtype=np.int64)
        if np.any(row_lengths < 0):
            raise SparseFormatError("row lengths must be non-negative")
        if np.any(row_lengths > num_cols):
            raise SparseFormatError("row length exceeds number of columns")
        num_rows = row_lengths.shape[0]
        row_offsets = np.zeros(num_rows + 1, dtype=np.int64)
        row_offsets[1:] = np.cumsum(row_lengths)
        nnz = int(row_offsets[-1])
        col_indices = np.empty(nnz, dtype=np.int64)
        for row in range(num_rows):
            start, stop = row_offsets[row], row_offsets[row + 1]
            length = stop - start
            if length == 0:
                continue
            if length > num_cols // 2 and num_cols < 1 << 20:
                cols = rng.permutation(num_cols)[:length]
            else:
                # Sampling with replacement then deduplicating is much faster
                # for sparse rows; top up until the row is full.
                cols = np.unique(rng.integers(0, num_cols, size=int(length * 1.3) + 4))
                while cols.shape[0] < length:
                    extra = rng.integers(0, num_cols, size=length)
                    cols = np.unique(np.concatenate([cols, extra]))
                cols = rng.permutation(cols)[:length]
            col_indices[start:stop] = np.sort(cols)
        values = rng.uniform(0.5, 1.5, size=nnz)
        return cls(
            num_rows=num_rows,
            num_cols=num_cols,
            row_offsets=row_offsets,
            col_indices=col_indices,
            values=values,
        )

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------
    def row_lengths(self) -> np.ndarray:
        """Number of stored entries per row."""
        return np.diff(self.row_offsets)

    def row_slice(self, row: int) -> tuple:
        """Return ``(col_indices, values)`` for a single row."""
        start, stop = self.row_offsets[row], self.row_offsets[row + 1]
        return self.col_indices[start:stop], self.values[start:stop]

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference sparse matrix-vector product ``y = A @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.num_cols,):
            raise ValueError(
                f"vector has shape {x.shape}, expected ({self.num_cols},)"
            )
        products = self.values * x[self.col_indices]
        y = np.add.reduceat(
            np.concatenate([products, [0.0]]),
            np.minimum(self.row_offsets[:-1], products.shape[0]),
        )
        # reduceat repeats the previous segment when a row is empty; zero them.
        y[self.row_lengths() == 0] = 0.0
        return y[: self.num_rows]

    def transpose(self) -> "CSRMatrix":
        """Return the transpose as a new CSR matrix."""
        coo = self.to_coo()
        flipped = COOMatrix(
            num_rows=self.num_cols,
            num_cols=self.num_rows,
            rows=coo.cols,
            cols=coo.rows,
            values=coo.values,
        )
        return CSRMatrix.from_coo(flipped)
