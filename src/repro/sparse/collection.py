"""Synthetic SuiteSparse-like matrix collection.

The paper evaluates on the entire SuiteSparse Matrix Collection.  The
collection itself cannot be shipped offline, so this module builds a
reproducible synthetic stand-in with the structural diversity the predictor
needs: several matrix *families* (regular, banded, power-law, skewed,
block-diagonal, variable-block, empty-row-heavy, random, diagonal) crossed
with a geometric grid of sizes.  Families deliberately overlap in the
(rows, nnz) plane so that the trivially known features alone cannot always
identify the structure — the ambiguity that makes gathered features (and the
classifier-selection model) worth their cost.

Every matrix has a stable name of the form ``family_rows_<variant>`` so
benchmark CSVs and trained models can refer to it.  Named *archetypes* mimic
the individual SuiteSparse matrices discussed in Figures 5 and 7 of the
paper (nlpkkt200, matrix-new_3, Ga41As41H72, CurlCurl_3, G3_Circuit, PWTK)
at a configurable scale.

Large profiles should be consumed through :func:`iter_collection`, which
builds matrices one at a time so the peak memory stays at a single matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse import generators as gen

#: Supported collection profiles and the per-family size grids they use.
_PROFILE_SIZES = {
    "tiny": (256, 1024),
    "small": (1024, 4096, 16384),
    "medium": (4096, 16384, 65536, 262144),
    "full": (4096, 16384, 65536, 262144, 1048576),
    "wide": (1024, 4096, 16384),
    "banded": (1024, 4096, 16384),
}

#: Number of seeds (variants) generated per (family, size) combination.
_PROFILE_VARIANTS = {
    "tiny": 1,
    "small": 2,
    "medium": 3,
    "full": 3,
    "wide": 2,
    "banded": 2,
}

#: The family mix of the original size-graded profiles.
_CLASSIC_FAMILIES = (
    "regular",
    "banded",
    "power_law",
    "heavy_tail",
    "skewed",
    "uniform",
    "block",
    "variable_block",
    "empty_heavy",
    "diagonal",
    "road_network",
)

#: Family mixes of the scenario-focused profiles.  ``wide`` concentrates on
#: heavy-tailed / hub-dominated structure (web and social graphs, including
#: rectangular hub matrices much wider than tall); ``banded`` concentrates on
#: stencil and near-regular mesh structure where padded and thread-mapped
#: schedules fight it out.
_PROFILE_FAMILIES = {
    "wide": ("power_law", "heavy_tail", "skewed", "uniform", "road_network", "wide_hub"),
    "banded": ("banded", "regular", "stencil", "block", "variable_block", "diagonal"),
}

#: Every profile name accepted by :func:`CollectionProfile.from_name`,
#: in declaration order (useful for CLI choices).
PROFILE_NAMES = tuple(_PROFILE_SIZES)


@dataclass(frozen=True)
class CollectionProfile:
    """Size/variant/family configuration of a synthetic collection."""

    name: str
    sizes: tuple
    variants: int
    families: tuple = _CLASSIC_FAMILIES

    @classmethod
    def from_name(cls, name: str) -> "CollectionProfile":
        """Look up one of the built-in profiles (see :data:`PROFILE_NAMES`)."""
        if name not in _PROFILE_SIZES:
            raise ValueError(
                f"unknown profile {name!r}; expected one of {sorted(_PROFILE_SIZES)}"
            )
        return cls(
            name=name,
            sizes=_PROFILE_SIZES[name],
            variants=_PROFILE_VARIANTS[name],
            families=_PROFILE_FAMILIES.get(name, _CLASSIC_FAMILIES),
        )


@dataclass(frozen=True)
class MatrixSpec:
    """Recipe for one matrix in the collection."""

    name: str
    family: str
    builder: str
    params: tuple
    seed: int

    def build(self) -> CSRMatrix:
        """Construct the matrix described by this spec."""
        builder = getattr(gen, self.builder)
        kwargs = dict(self.params)
        return builder(rng=np.random.default_rng(self.seed), **kwargs)


@dataclass
class MatrixRecord:
    """A named matrix plus its family label."""

    name: str
    family: str
    matrix: CSRMatrix


@dataclass
class SyntheticCollection:
    """An ordered, named set of matrices, fully materialized in memory."""

    profile: CollectionProfile
    records: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def names(self) -> list:
        """Names of every matrix, in collection order."""
        return [record.name for record in self.records]

    def get(self, name: str) -> MatrixRecord:
        """Look a matrix up by name."""
        for record in self.records:
            if record.name == name:
                return record
        raise KeyError(name)

    def families(self) -> set:
        """The distinct family labels present in the collection."""
        return {record.family for record in self.records}


def _family_specs(size: int, variant: int, seed: int) -> list:
    """Specs for every family at one size/variant point.

    Average row lengths are similar — but not identical — across families at
    a given size: the trivially known features (rows, nnz) therefore carry a
    useful signal, as they do on SuiteSparse, while structurally different
    families still overlap enough that some decisions genuinely require the
    gathered row-density statistics.
    """
    cols = size
    base_degree = 8 + 4 * variant
    specs = [
        ("regular", "regular_matrix",
         (("num_rows", size), ("num_cols", cols), ("row_length", base_degree))),
        ("banded", "banded_matrix",
         (("num_rows", size), ("bandwidth", base_degree + 1))),
        ("power_law", "power_law_matrix",
         (("num_rows", size), ("num_cols", cols),
          ("avg_row_length", float(base_degree)), ("exponent", 1.9 + 0.2 * variant))),
        # A denser heavy-tailed family whose nonzero count overlaps the block
        # and variable-block families: the known features cannot separate
        # them, but the right kernels differ drastically (padded formats are
        # catastrophic here) — the case that forces feature gathering.
        ("heavy_tail", "power_law_matrix",
         (("num_rows", size), ("num_cols", cols),
          ("avg_row_length", 2.0 * base_degree), ("exponent", 1.8),
          ("max_row_length", 64 * base_degree))),
        ("skewed", "skewed_matrix",
         (("num_rows", size), ("num_cols", cols),
          ("base_row_length", max(2, base_degree // 2)),
          ("heavy_rows", max(1, size // 4096)),
          ("heavy_row_length", min(cols, max(512, size // 64))))),
        ("uniform", "uniform_random_matrix",
         (("num_rows", size), ("num_cols", cols),
          ("density", (base_degree + 2) / cols))),
        ("block", "block_diagonal_matrix",
         (("num_blocks", max(1, size // (2 * base_degree))),
          ("block_size", 2 * base_degree))),
        ("variable_block", "variable_block_matrix",
         (("num_rows", size), ("min_block", 4), ("max_block", 4 * base_degree))),
        # Half the rows are empty, so the average degree lands close to the
        # regular family while the structure (and best kernel) differ — one
        # of the ambiguities that justifies gathering features.
        ("empty_heavy", "empty_row_heavy_matrix",
         (("num_rows", size), ("num_cols", cols), ("empty_fraction", 0.5),
          ("row_length", 2 * base_degree))),
        ("diagonal", "diagonal_matrix", (("num_rows", size),)),
        # Road networks have far more rows than the other families at the
        # same grid point — exactly as the row-count outliers of SuiteSparse
        # (osm/circuit matrices) relate to the rest of the collection.
        ("road_network", "road_network_matrix", (("num_rows", 4 * size),)),
        # Rectangular hub matrix, four times wider than tall, with an
        # aggressive tail: the hub rows of web graphs whose adjacency lists
        # reference a much larger universe of columns.
        ("wide_hub", "power_law_matrix",
         (("num_rows", size), ("num_cols", 4 * size),
          ("avg_row_length", float(base_degree)), ("exponent", 1.6 + 0.1 * variant),
          ("max_row_length", 2 * size))),
        # Finite-difference stencils on a 2D grid: perfectly banded away from
        # the boundary, ELL-friendly, the classic mesh workload.
        ("stencil", "stencil_matrix",
         (("num_rows", size), ("points", 5 if variant % 2 else 9))),
    ]
    out = []
    for family, builder, params in specs:
        out.append(
            MatrixSpec(
                name=f"{family}_{size}_{variant}",
                family=family,
                builder=builder,
                params=params,
                seed=seed,
            )
        )
    return out


def collection_specs(profile="small", base_seed: int = 7) -> list:
    """Enumerate the :class:`MatrixSpec` recipes for a profile."""
    if isinstance(profile, str):
        profile = CollectionProfile.from_name(profile)
    wanted = set(profile.families)
    specs = []
    seed = base_seed
    for size in profile.sizes:
        for variant in range(profile.variants):
            specs.extend(
                spec
                for spec in _family_specs(size, variant, seed)
                if spec.family in wanted
            )
            seed += 1
    return specs


def iter_collection(profile="small", base_seed: int = 7):
    """Yield :class:`MatrixRecord` objects one at a time (low peak memory)."""
    for spec in collection_specs(profile, base_seed):
        yield MatrixRecord(name=spec.name, family=spec.family, matrix=spec.build())


def build_collection(profile="small", base_seed: int = 7) -> SyntheticCollection:
    """Build every matrix of a profile into memory.

    Prefer :func:`iter_collection` for the ``medium`` and ``full`` profiles:
    their largest matrices are tens of megabytes each and only need to exist
    one at a time during benchmarking.
    """
    if isinstance(profile, str):
        profile = CollectionProfile.from_name(profile)
    records = list(iter_collection(profile, base_seed))
    return SyntheticCollection(profile=profile, records=records)


# ----------------------------------------------------------------------
# Archetypes of the individual matrices discussed in Figures 5 and 7
# ----------------------------------------------------------------------
def _nlpkkt200_like(scale: int, seed: int) -> CSRMatrix:
    """Large optimization matrix: huge, near-regular banded rows (Fig. 5a)."""
    return gen.banded_matrix(num_rows=16 * scale, bandwidth=25, rng=seed)


def _matrix_new_3_like(scale: int, seed: int) -> CSRMatrix:
    """Small, highly irregular device-simulation matrix (Fig. 5b)."""
    return gen.skewed_matrix(
        num_rows=2 * scale,
        num_cols=2 * scale,
        base_row_length=3,
        heavy_rows=max(2, scale // 64),
        heavy_row_length=max(64, scale // 2),
        rng=seed,
    )


def _ga41as41h72_like(scale: int, seed: int) -> CSRMatrix:
    """Quantum-chemistry matrix: moderate size, heavy-tailed rows (Fig. 5c)."""
    return gen.power_law_matrix(
        num_rows=4 * scale,
        num_cols=4 * scale,
        avg_row_length=40.0,
        exponent=2.0,
        rng=seed,
        max_row_length=2048,
    )


def _curlcurl3_like(scale: int, seed: int) -> CSRMatrix:
    """Electromagnetics matrix: large, mildly irregular rows (Fig. 7a/b)."""
    return gen.power_law_matrix(
        num_rows=12 * scale,
        num_cols=12 * scale,
        avg_row_length=12.0,
        exponent=2.6,
        rng=seed,
    )


def _g3_circuit_like(scale: int, seed: int) -> CSRMatrix:
    """Circuit matrix: very uniform short rows, ELL-friendly (Fig. 7c/d)."""
    return gen.regular_matrix(
        num_rows=16 * scale, num_cols=16 * scale, row_length=4, rng=seed
    )


def _pwtk_like(scale: int, seed: int) -> CSRMatrix:
    """Wind-tunnel stiffness matrix: variable dense blocks (Fig. 7e/f)."""
    return gen.variable_block_matrix(
        num_rows=10 * scale, min_block=6, max_block=48, rng=seed
    )


ARCHETYPE_BUILDERS = {
    "nlpkkt200_like": _nlpkkt200_like,
    "matrix_new_3_like": _matrix_new_3_like,
    "Ga41As41H72_like": _ga41as41h72_like,
    "CurlCurl_3_like": _curlcurl3_like,
    "G3_Circuit_like": _g3_circuit_like,
    "PWTK_like": _pwtk_like,
}


def archetype(name: str, scale: int = 1024, seed: int = 99) -> MatrixRecord:
    """Build one of the named archetype matrices used by Figures 5 and 7.

    ``scale`` multiplies the base dimensions; the experiment drivers use
    scales large enough to leave the launch-overhead-dominated regime while
    staying laptop-friendly.
    """
    if name not in ARCHETYPE_BUILDERS:
        raise KeyError(
            f"unknown archetype {name!r}; expected one of {sorted(ARCHETYPE_BUILDERS)}"
        )
    matrix = ARCHETYPE_BUILDERS[name](scale, seed)
    return MatrixRecord(name=name, family="archetype", matrix=matrix)
